# Developer entry points. Everything here is a thin wrapper over cargo;
# CI runs the same commands (see .github/workflows/ci.yml).

.PHONY: build test lint figures figures-sharded bench bench-snapshot \
        bench-check sim-report sweep-report telemetry-check bakeoff \
        bakeoff-smoke serve serve-load serve-smoke shard-smoke \
        ops-report metrics-smoke

build:
	cargo build --release

test:
	cargo test -q --workspace

lint:
	cargo fmt --all -- --check
	cargo clippy --workspace --all-targets -- -D warnings

figures:
	cargo run --release -p ipsim-experiments --bin all_figures

# Process-parallel figure sweep: the run set is partitioned by cache key
# over N processes (override with SHARDS=N), all writing through the
# shared run cache; figures are byte-identical at any shard count.
SHARDS ?= 4
figures-sharded:
	cargo run --release -p ipsim-experiments --bin all_figures -- --shards $(SHARDS)

# Queryable summary of everything the runlog + run cache + telemetry
# artifacts record: totals, cache economics, per-workload/per-scheme
# accuracy/coverage/timeliness, shard utilization. Add
# SWEEP_REPORT_FLAGS="--stable" for the machine-stable view.
sweep-report:
	cargo run --release -p ipsim-experiments --bin sweep_report -- $(SWEEP_REPORT_FLAGS)

bench:
	cargo bench -p ipsim-bench

# Regenerate BENCH_sim_kernel.json (run on a quiet machine; the committed
# "baseline" block is preserved). Commit the result so the kernel's perf
# trajectory stays machine-readable.
bench-snapshot:
	cargo run --release -p ipsim-bench --bin bench_snapshot

# Fail if system/* throughput regressed >10% vs the committed snapshot.
# Widen with IPSIM_BENCH_TOLERANCE=<percent> on noisy machines. The
# snapshot path follows --out / IPSIM_BENCH_BASELINE.
bench-check:
	cargo run --release -p ipsim-bench --bin bench_snapshot -- --check

# Telemetry-enabled diagnosis sweep: per-workload prefetcher accuracy /
# coverage / timeliness from the artifacts under results/telemetry/.
# Use SIM_REPORT_FLAGS="--quick" (or --smoke) for shorter windows.
sim-report:
	cargo run --release -p ipsim-experiments --bin sim_report -- $(SIM_REPORT_FLAGS)

# Re-validate every telemetry artifact directory with the exporters' own
# parsers (JSONL schema, lifecycle state machine, Chrome trace, TSVs).
telemetry-check:
	cargo run --release -p ipsim-experiments --bin telemetry_check

# Prefetcher-zoo bake-off: every registered contender side by side per
# workload, per-scheme accuracy/coverage/timeliness from shadow
# attribution. Use BAKEOFF_FLAGS="--quick" (or --smoke) for shorter
# windows.
bakeoff:
	cargo run --release -p ipsim-experiments --bin sim_report -- --bakeoff $(BAKEOFF_FLAGS)

# CI-sized bake-off: small zoo sweep, full-coverage check, worker-count
# byte-identity, and a golden table hash.
bakeoff-smoke: build
	bash scripts/bakeoff_smoke.sh

# Long-running experiment daemon on 127.0.0.1:7791 (journal + run cache
# under results/serve/; Ctrl-C drains gracefully). Submit jobs with curl
# — see the README quickstart and DESIGN.md §11.
serve:
	cargo run --release -p ipsim-serve --bin ipsim_serve -- $(SERVE_FLAGS)

# Closed-loop load test against a running daemon: concurrent clients,
# submit + completion latency percentiles. Tune with SERVE_LOAD_FLAGS
# (e.g. "--clients 16 --jobs 8").
serve-load:
	cargo run --release -p ipsim-serve --bin serve_load -- $(SERVE_LOAD_FLAGS)

# End-to-end daemon smoke: byte-identity across cold daemons, cache
# dedup, kill -9 + journal recovery, queue backpressure. Needs curl+jq.
serve-smoke: build
	bash scripts/serve_smoke.sh

# Render a saved operational snapshot offline: counters/gauges, per
# label-set histogram percentiles, span timing table. Point at a
# /v1/metrics scrape and/or an exported spans.trace.json, e.g.
# OPS_REPORT_FLAGS="--metrics scrape.prom --spans results/serve/spans.trace.json".
ops-report:
	cargo run --release -p ipsim-experiments --bin ops_report -- $(OPS_REPORT_FLAGS)

# End-to-end observability smoke: /v1/metrics exposition + required
# families, histograms move under a real job, /v1/stats percentiles,
# drain-time span export validated by telemetry_check. Needs curl+jq.
metrics-smoke: build
	bash scripts/metrics_smoke.sh

# Sharded-sweep smoke: 2-shard mini-sweep with a real child process,
# golden figure hashes, warm-rerun manifest skip, stable-report
# byte-identity. Same script CI runs.
shard-smoke: build
	bash scripts/shard_smoke.sh
