//! `ipsim` — command-line front end for the instruction-prefetching CMP
//! simulator.
//!
//! ```text
//! ipsim run       --workload db --cores 4 --prefetcher discontinuity --policy bypass
//! ipsim compare   --workload japp
//! ipsim breakdown --workload db
//! ipsim info
//! ```

use std::process::ExitCode;

use ipsim::cache::InstallPolicy;
use ipsim::cpu::{SystemBuilder, SystemMetrics, WorkloadSet};
use ipsim::prefetch::PrefetcherKind;
use ipsim::trace::Workload;
use ipsim::types::{MissCategory, SystemConfig};

const USAGE: &str = "\
ipsim — instruction prefetching in chip multiprocessors (HPCA 2005 reproduction)

USAGE:
    ipsim <COMMAND> [OPTIONS]

COMMANDS:
    run        simulate one configuration and print its metrics
    compare    run every prefetching scheme on one workload
    breakdown  print the miss-category breakdown for one workload
    info       list workloads, schemes and the default configuration

OPTIONS (run / compare / breakdown):
    --workload <db|tpcw|japp|web|mixed>   workload (default: db)
    --cores <1|4>                         core count (default: 4)
    --warm <N>                            warm-up instructions per core (default: 2000000)
    --measure <N>                         measured instructions per core (default: 5000000)

OPTIONS (run):
    --prefetcher <none|next-line|next-line-tagged|next-4-line|discontinuity|
                  discont-2nl|target|wrong-path|markov>   (default: discontinuity)
    --policy <install|bypass>             L2 install policy (default: bypass)
";

#[derive(Debug)]
struct Options {
    workload: WorkloadSet,
    cores: u32,
    warm: u64,
    measure: u64,
    prefetcher: PrefetcherKind,
    policy: InstallPolicy,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut opts = Options {
            workload: WorkloadSet::homogeneous(Workload::Db),
            cores: 4,
            warm: 2_000_000,
            measure: 5_000_000,
            prefetcher: PrefetcherKind::discontinuity_default(),
            policy: InstallPolicy::BypassL2UntilUseful,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let value = |it: &mut std::slice::Iter<'_, String>| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match flag.as_str() {
                "--workload" => {
                    opts.workload = match value(&mut it)?.as_str() {
                        "db" => WorkloadSet::homogeneous(Workload::Db),
                        "tpcw" => WorkloadSet::homogeneous(Workload::TpcW),
                        "japp" => WorkloadSet::homogeneous(Workload::JApp),
                        "web" => WorkloadSet::homogeneous(Workload::Web),
                        "mixed" => WorkloadSet::mixed(),
                        other => return Err(format!("unknown workload '{other}'")),
                    };
                }
                "--cores" => {
                    opts.cores = value(&mut it)?
                        .parse()
                        .map_err(|_| "cores must be a number".to_string())?;
                }
                "--warm" => {
                    opts.warm = value(&mut it)?
                        .parse()
                        .map_err(|_| "warm must be a number".to_string())?;
                }
                "--measure" => {
                    opts.measure = value(&mut it)?
                        .parse()
                        .map_err(|_| "measure must be a number".to_string())?;
                }
                "--prefetcher" => {
                    opts.prefetcher = match value(&mut it)?.as_str() {
                        "none" => PrefetcherKind::None,
                        "next-line" => PrefetcherKind::NextLineOnMiss,
                        "next-line-tagged" => PrefetcherKind::NextLineTagged,
                        "next-4-line" => PrefetcherKind::NextNLineTagged { n: 4 },
                        "discontinuity" => PrefetcherKind::discontinuity_default(),
                        "discont-2nl" => PrefetcherKind::discontinuity_2nl(),
                        "target" => PrefetcherKind::Target {
                            table_entries: 8192,
                        },
                        "wrong-path" => PrefetcherKind::WrongPath { next_line: true },
                        "markov" => PrefetcherKind::Markov {
                            table_entries: 8192,
                            ahead: 4,
                        },
                        other => return Err(format!("unknown prefetcher '{other}'")),
                    };
                }
                "--policy" => {
                    opts.policy = match value(&mut it)?.as_str() {
                        "install" => InstallPolicy::InstallBoth,
                        "bypass" => InstallPolicy::BypassL2UntilUseful,
                        other => return Err(format!("unknown policy '{other}'")),
                    };
                }
                other => return Err(format!("unknown option '{other}'")),
            }
        }
        if opts.cores != 1 && opts.cores != 4 {
            return Err("cores must be 1 or 4 (the paper's design points)".to_string());
        }
        Ok(opts)
    }

    fn config(&self) -> SystemConfig {
        if self.cores == 1 {
            SystemConfig::single_core()
        } else {
            SystemConfig::cmp4()
        }
    }

    fn simulate(&self, prefetcher: PrefetcherKind, policy: InstallPolicy) -> SystemMetrics {
        let mut system = SystemBuilder::new(self.config())
            .prefetcher(prefetcher)
            .install_policy(policy)
            .build()
            .expect("the paper design points are valid configurations");
        system.run_workload(&self.workload, self.warm, self.measure)
    }
}

fn print_metrics(label: &str, m: &SystemMetrics, base: Option<&SystemMetrics>) {
    print!(
        "{label:<26} IPC {:>6.3}  L1I {:>5.2}%  L2I {:>6.3}%  L2D {:>6.3}%",
        m.ipc(),
        m.l1i_miss_per_instr() * 100.0,
        m.l2_instr_miss_per_instr() * 100.0,
        m.l2_data_miss_per_instr() * 100.0,
    );
    if m.prefetch().issued > 0 {
        print!("  acc {:>3.0}%", m.prefetch_accuracy() * 100.0);
    }
    if let Some(b) = base {
        print!("  speedup {:.3}x", m.speedup_over(b));
    }
    println!();
}

fn cmd_run(opts: &Options) {
    println!(
        "{} on {} core(s), {} / bypassing={}",
        opts.workload.name(),
        opts.cores,
        opts.prefetcher.label(),
        opts.policy == InstallPolicy::BypassL2UntilUseful,
    );
    let base = opts.simulate(PrefetcherKind::None, InstallPolicy::InstallBoth);
    print_metrics("no prefetch", &base, None);
    if opts.prefetcher != PrefetcherKind::None {
        let m = opts.simulate(opts.prefetcher, opts.policy);
        print_metrics(&opts.prefetcher.label(), &m, Some(&base));
    }
}

fn cmd_compare(opts: &Options) {
    println!(
        "all schemes, {} on {} core(s), bypass policy",
        opts.workload.name(),
        opts.cores
    );
    let base = opts.simulate(PrefetcherKind::None, InstallPolicy::InstallBoth);
    print_metrics("no prefetch", &base, None);
    let schemes = [
        PrefetcherKind::NextLineOnMiss,
        PrefetcherKind::NextLineTagged,
        PrefetcherKind::NextNLineTagged { n: 4 },
        PrefetcherKind::WrongPath { next_line: true },
        PrefetcherKind::Target {
            table_entries: 8192,
        },
        PrefetcherKind::Markov {
            table_entries: 8192,
            ahead: 4,
        },
        PrefetcherKind::discontinuity_2nl(),
        PrefetcherKind::discontinuity_default(),
    ];
    for kind in schemes {
        let m = opts.simulate(kind, InstallPolicy::BypassL2UntilUseful);
        print_metrics(&kind.label(), &m, Some(&base));
    }
}

fn cmd_breakdown(opts: &Options) {
    println!(
        "miss breakdown, {} on {} core(s), no prefetching",
        opts.workload.name(),
        opts.cores
    );
    let m = opts.simulate(PrefetcherKind::None, InstallPolicy::InstallBoth);
    let l1i = m.l1i_miss_breakdown();
    let l2i = m.l2_instr_miss_breakdown();
    println!("{:<18} {:>8} {:>8}", "category", "L1I", "L2I");
    for cat in MissCategory::ALL {
        println!(
            "{:<18} {:>7.1}% {:>7.1}%",
            cat.label(),
            l1i.fraction(cat) * 100.0,
            l2i.fraction(cat) * 100.0,
        );
    }
    println!(
        "\ntotals: L1I {:.2}%/instr   L2I {:.3}%/instr",
        m.l1i_miss_per_instr() * 100.0,
        m.l2_instr_miss_per_instr() * 100.0
    );
}

fn cmd_info() {
    println!("workloads (synthetic, calibrated to the paper's published statistics):");
    for w in Workload::ALL {
        let p = w.profile();
        println!(
            "  {:<6} {:>6} functions, hot tier {:>4}, txn ~{} instrs",
            w.name(),
            p.n_functions,
            p.code_hot_fns,
            p.txn_len_mean as u64,
        );
    }
    println!("  Mixed  one application per core (4-way CMP only)");
    println!("\ndefault system (paper Section 5):");
    let c = SystemConfig::cmp4();
    println!(
        "  {} cores, 8-wide fetch / 3-wide issue / 64-entry ROB / 16-stage pipe",
        c.n_cores
    );
    println!(
        "  32KB 4-way L1I+L1D per core; shared {}MB {}-way L2; 25/400-cycle L2/memory",
        c.mem.l2.size_bytes() >> 20,
        c.mem.l2.assoc()
    );
    println!(
        "  off-chip bandwidth {:.1} B/cycle (20 GB/s at 3 GHz)",
        c.mem.offchip_bytes_per_cycle
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    match Options::parse(&args[1..]) {
        Ok(opts) => {
            match command {
                "run" => cmd_run(&opts),
                "compare" => cmd_compare(&opts),
                "breakdown" => cmd_breakdown(&opts),
                "info" => cmd_info(),
                "help" | "--help" | "-h" => print!("{USAGE}"),
                other => {
                    eprintln!("unknown command '{other}'\n");
                    eprint!("{USAGE}");
                    return ExitCode::from(2);
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
