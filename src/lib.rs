//! # ipsim — instruction prefetching in chip multiprocessors
//!
//! A from-scratch Rust reproduction of *"Effective Instruction Prefetching
//! in Chip Multiprocessors for Modern Commercial Applications"*
//! (Spracklen, Chou & Abraham, HPCA 2005): the paper's **discontinuity
//! instruction prefetcher**, its prefetch filtering infrastructure and its
//! **selective L2-install (bypass) policy**, together with every substrate
//! needed to evaluate them — synthetic commercial workloads, a cache
//! hierarchy, branch predictors and a bandwidth-aware CMP timing model.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! name. See `DESIGN.md` for the architecture and `EXPERIMENTS.md` for the
//! paper-versus-measured results.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`types`] | `ipsim-types` | addresses, instruction taxonomy, configs, miss categories |
//! | [`cache`] | `ipsim-cache` | set-associative caches, MSHRs, install policies |
//! | [`trace`] | `ipsim-trace` | synthetic commercial-workload generation |
//! | [`prefetch`] | `ipsim-core` | the paper's prefetchers, queue and filters |
//! | [`zoo`] | `ipsim-prefetch` | the pluggable prefetcher zoo: registry, shadow attribution, rival schemes |
//! | [`cpu`] | `ipsim-cpu` | cores, shared L2, bus, the CMP system |
//! | [`telemetry`] | `ipsim-telemetry` | interval sampling, prefetch lifecycle tracing, artifact sinks |
//!
//! # Quickstart
//!
//! Run the paper's flagship configuration — the discontinuity prefetcher
//! with the bypass policy on a 4-way CMP — against the no-prefetch
//! baseline:
//!
//! ```
//! use ipsim::cache::InstallPolicy;
//! use ipsim::cpu::{SystemBuilder, WorkloadSet};
//! use ipsim::prefetch::PrefetcherKind;
//! use ipsim::trace::Workload;
//!
//! # fn main() -> Result<(), ipsim::types::ConfigError> {
//! let workload = WorkloadSet::homogeneous(Workload::Web);
//!
//! let mut baseline = SystemBuilder::cmp4().build()?;
//! let base = baseline.run_workload(&workload, 20_000, 100_000);
//!
//! let mut system = SystemBuilder::cmp4()
//!     .prefetcher(PrefetcherKind::discontinuity_default())
//!     .install_policy(InstallPolicy::BypassL2UntilUseful)
//!     .build()?;
//! let metrics = system.run_workload(&workload, 20_000, 100_000);
//!
//! assert!(metrics.l1i_miss_per_instr() < base.l1i_miss_per_instr());
//! println!("speedup: {:.2}x", metrics.speedup_over(&base));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ipsim_cache as cache;
pub use ipsim_core as prefetch;
pub use ipsim_cpu as cpu;
pub use ipsim_prefetch as zoo;
pub use ipsim_telemetry as telemetry;
pub use ipsim_trace as trace;
pub use ipsim_types as types;
