//! TLB ablation: enable the paper's TLB hierarchy (128-entry 2-way primary
//! I/D TLBs, 2K-entry secondary) and measure its effect on the baseline
//! and on the prefetched configuration.
//!
//! The paper lists the TLB organisation in its methodology but never varies
//! it; this study confirms that, with 8 KB pages, TLB stalls are a
//! second-order effect next to instruction-cache misses — which is why the
//! calibrated default runs with TLBs disabled.
//!
//! ```text
//! cargo run --release --example tlb_study
//! ```

use ipsim::cache::InstallPolicy;
use ipsim::cpu::{SystemBuilder, WorkloadSet};
use ipsim::prefetch::PrefetcherKind;
use ipsim::trace::Workload;
use ipsim::types::config::TlbConfig;
use ipsim::types::{ConfigError, SystemConfig};

fn main() -> Result<(), ConfigError> {
    let workload = WorkloadSet::homogeneous(Workload::Db);
    let (warm, measure) = (2_000_000, 5_000_000);
    println!("TLB ablation: {} on a 4-way CMP\n", workload.name());

    for (label, tlb) in [
        ("TLBs disabled (default)", TlbConfig::disabled()),
        ("TLBs enabled (paper organisation)", TlbConfig::paper()),
    ] {
        let mut config = SystemConfig::cmp4();
        config.core.tlb = tlb;

        let mut base_sys = SystemBuilder::new(config.clone()).build()?;
        let base = base_sys.run_workload(&workload, warm, measure);

        let mut pf_sys = SystemBuilder::new(config)
            .prefetcher(PrefetcherKind::discontinuity_default())
            .install_policy(InstallPolicy::BypassL2UntilUseful)
            .build()?;
        let pf = pf_sys.run_workload(&workload, warm, measure);

        println!(
            "{label}\n  baseline IPC {:.3}   discontinuity IPC {:.3}   speedup {:.3}x",
            base.ipc(),
            pf.ipc(),
            pf.speedup_over(&base),
        );
    }
    Ok(())
}
