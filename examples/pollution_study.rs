//! Reproduce the paper's L2-pollution story end to end: aggressive
//! instruction prefetching inflates the shared L2's *data* miss rate, and
//! the selective-install (bypass) policy removes the pollution.
//!
//! ```text
//! cargo run --release --example pollution_study
//! ```

use ipsim::cache::InstallPolicy;
use ipsim::cpu::{SystemBuilder, WorkloadSet};
use ipsim::prefetch::PrefetcherKind;
use ipsim::trace::Workload;
use ipsim::types::ConfigError;

fn main() -> Result<(), ConfigError> {
    let workload = WorkloadSet::homogeneous(Workload::JApp);
    let (warm, measure) = (2_000_000, 5_000_000);
    println!("4-way CMP, workload {}\n", workload.name());

    let mut baseline = SystemBuilder::cmp4().build()?;
    let base = baseline.run_workload(&workload, warm, measure);
    println!(
        "{:<34} L2 data miss {:.3}%   IPC {:.3}",
        "no prefetch",
        base.l2_data_miss_per_instr() * 100.0,
        base.ipc()
    );

    for (label, policy) in [
        ("discontinuity, install in L2", InstallPolicy::InstallBoth),
        (
            "discontinuity, bypass until useful",
            InstallPolicy::BypassL2UntilUseful,
        ),
    ] {
        let mut system = SystemBuilder::cmp4()
            .prefetcher(PrefetcherKind::discontinuity_default())
            .install_policy(policy)
            .build()?;
        let m = system.run_workload(&workload, warm, measure);
        println!(
            "{:<34} L2 data miss {:.3}%   IPC {:.3}   (data pollution {:.2}x)",
            label,
            m.l2_data_miss_per_instr() * 100.0,
            m.ipc(),
            m.l2_data_miss_ratio_vs(&base),
        );
    }
    println!(
        "\nThe install-in-L2 run shows the pollution of Figure 7; the bypass run\n\
         removes it (ratio ≈ 1.0), the effect of the paper's Section 7 policy."
    );
    Ok(())
}
