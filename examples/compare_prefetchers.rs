//! Compare every prefetching scheme on one workload — the paper's
//! Figures 5/6/8 in miniature, plus the related-work baselines.
//!
//! ```text
//! cargo run --release --example compare_prefetchers [db|tpcw|japp|web|mixed]
//! ```

use ipsim::cache::InstallPolicy;
use ipsim::cpu::{SystemBuilder, SystemMetrics, WorkloadSet};
use ipsim::prefetch::PrefetcherKind;
use ipsim::trace::Workload;
use ipsim::types::ConfigError;

fn run(
    kind: Option<PrefetcherKind>,
    policy: InstallPolicy,
    workload: &WorkloadSet,
) -> Result<SystemMetrics, ConfigError> {
    let mut builder = SystemBuilder::cmp4().install_policy(policy);
    if let Some(k) = kind {
        builder = builder.prefetcher(k);
    }
    let mut system = builder.build()?;
    Ok(system.run_workload(workload, 2_000_000, 5_000_000))
}

fn main() -> Result<(), ConfigError> {
    let workload = match std::env::args().nth(1).as_deref() {
        Some("db") => WorkloadSet::homogeneous(Workload::Db),
        Some("tpcw") => WorkloadSet::homogeneous(Workload::TpcW),
        Some("web") => WorkloadSet::homogeneous(Workload::Web),
        Some("mixed") => WorkloadSet::mixed(),
        _ => WorkloadSet::homogeneous(Workload::JApp),
    };
    println!(
        "4-way CMP, workload {}, bypass install policy\n",
        workload.name()
    );

    let base = run(None, InstallPolicy::InstallBoth, &workload)?;
    println!(
        "{:<24} IPC {:.3}  L1I {:.2}%  L2I {:.3}%",
        "no prefetch",
        base.ipc(),
        base.l1i_miss_per_instr() * 100.0,
        base.l2_instr_miss_per_instr() * 100.0,
    );

    let schemes = [
        PrefetcherKind::NextLineOnMiss,
        PrefetcherKind::NextLineAlways,
        PrefetcherKind::NextLineTagged,
        PrefetcherKind::NextNLineTagged { n: 4 },
        PrefetcherKind::Lookahead { n: 4 },
        PrefetcherKind::Target {
            table_entries: 8192,
        },
        PrefetcherKind::discontinuity_2nl(),
        PrefetcherKind::discontinuity_default(),
    ];
    for kind in schemes {
        let m = run(Some(kind), InstallPolicy::BypassL2UntilUseful, &workload)?;
        println!(
            "{:<24} IPC {:.3}  L1I {:.2}%  L2I {:.3}%  acc {:>3.0}%  speedup {:.3}x",
            kind.label(),
            m.ipc(),
            m.l1i_miss_per_instr() * 100.0,
            m.l2_instr_miss_per_instr() * 100.0,
            m.prefetch_accuracy() * 100.0,
            m.speedup_over(&base),
        );
    }
    Ok(())
}
