//! Quickstart: run the paper's flagship configuration — the discontinuity
//! prefetcher with the selective L2-install policy on a 4-way CMP — and
//! compare it with the no-prefetch baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ipsim::cache::InstallPolicy;
use ipsim::cpu::{SystemBuilder, WorkloadSet};
use ipsim::prefetch::PrefetcherKind;
use ipsim::trace::Workload;
use ipsim::types::ConfigError;

fn main() -> Result<(), ConfigError> {
    let workload = WorkloadSet::homogeneous(Workload::Db);
    let (warm, measure) = (2_000_000, 5_000_000);

    println!(
        "workload: {} on a 4-way CMP (shared 2MB L2)",
        workload.name()
    );

    // Baseline: no prefetching.
    let mut baseline = SystemBuilder::cmp4().build()?;
    let base = baseline.run_workload(&workload, warm, measure);
    println!(
        "baseline      : IPC {:.3}  L1I miss {:.2}%  L2I miss {:.2}%",
        base.ipc(),
        base.l1i_miss_per_instr() * 100.0,
        base.l2_instr_miss_per_instr() * 100.0,
    );

    // The paper's proposal: discontinuity prefetcher (8K-entry table,
    // next-4-line partner) with prefetches bypassing the L2 until useful.
    let mut system = SystemBuilder::cmp4()
        .prefetcher(PrefetcherKind::discontinuity_default())
        .install_policy(InstallPolicy::BypassL2UntilUseful)
        .build()?;
    let m = system.run_workload(&workload, warm, measure);
    println!(
        "discontinuity : IPC {:.3}  L1I miss {:.2}%  L2I miss {:.2}%  accuracy {:.0}%",
        m.ipc(),
        m.l1i_miss_per_instr() * 100.0,
        m.l2_instr_miss_per_instr() * 100.0,
        m.prefetch_accuracy() * 100.0,
    );
    println!(
        "\nmisses eliminated: L1I {:.0}%  L2I {:.0}%   speedup {:.2}x",
        m.l1i_coverage_vs(&base) * 100.0,
        m.l2_instr_coverage_vs(&base) * 100.0,
        m.speedup_over(&base),
    );
    Ok(())
}
