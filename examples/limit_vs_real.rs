//! Potential versus achieved: the paper's Figure 4 limit study against the
//! real discontinuity prefetcher — how much of the perfect-prefetching
//! headroom the mechanism captures.
//!
//! ```text
//! cargo run --release --example limit_vs_real
//! ```

use ipsim::cache::InstallPolicy;
use ipsim::cpu::{LimitSpec, SystemBuilder, WorkloadSet};
use ipsim::prefetch::PrefetcherKind;
use ipsim::trace::Workload;
use ipsim::types::ConfigError;

fn main() -> Result<(), ConfigError> {
    let (warm, measure) = (2_000_000, 5_000_000);
    println!("potential vs achieved on the 4-way CMP (bypass policy)\n");
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>12}",
        "workload", "baseline", "limit", "achieved", "captured"
    );

    for w in Workload::ALL {
        let ws = WorkloadSet::homogeneous(w);

        let mut base_sys = SystemBuilder::cmp4().build()?;
        let base = base_sys.run_workload(&ws, warm, measure);

        // Perfect elimination of sequential + branch + function misses.
        let mut limit_sys = SystemBuilder::cmp4()
            .limit(LimitSpec {
                sequential: true,
                branch: true,
                function_call: true,
            })
            .build()?;
        let limit = limit_sys.run_workload(&ws, warm, measure);

        let mut real_sys = SystemBuilder::cmp4()
            .prefetcher(PrefetcherKind::discontinuity_default())
            .install_policy(InstallPolicy::BypassL2UntilUseful)
            .build()?;
        let real = real_sys.run_workload(&ws, warm, measure);

        let limit_gain = limit.speedup_over(&base) - 1.0;
        let real_gain = real.speedup_over(&base) - 1.0;
        println!(
            "{:<8} {:>9.3}  {:>9.3}x {:>9.3}x {:>11.0}%",
            w.name(),
            base.ipc(),
            limit.speedup_over(&base),
            real.speedup_over(&base),
            real_gain / limit_gain * 100.0,
        );
    }
    println!(
        "\nThe gap between 'limit' and 'achieved' is the paper's Section 6 story:\n\
         imperfect coverage, imperfect accuracy (bandwidth), and timeliness."
    );
    Ok(())
}
