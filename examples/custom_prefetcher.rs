//! Implement your own prefetch policy against the `PrefetchEngine` trait
//! and evaluate it in the full CMP simulator.
//!
//! The example builds a naive "stream pair" prefetcher — on every miss it
//! prefetches the next line *and* the line after the last observed
//! discontinuity target — and races it against the paper's schemes.
//!
//! ```text
//! cargo run --release --example custom_prefetcher
//! ```

use ipsim::cpu::{Core, MemSystem, SystemBuilder, WorkloadSet};
use ipsim::prefetch::{FetchEvent, PrefetchEngine, PrefetchRequest, PrefetcherKind};
use ipsim::trace::Workload;
use ipsim::types::{ConfigError, LineAddr};

/// A deliberately simple custom policy: next-line on miss, plus a replay of
/// the most recently seen discontinuity target (a one-entry "table").
#[derive(Debug, Default)]
struct StreamPair {
    last_target: Option<LineAddr>,
}

impl PrefetchEngine for StreamPair {
    fn on_fetch(&mut self, ev: &FetchEvent, out: &mut Vec<PrefetchRequest>) {
        if ev.miss {
            out.push(PrefetchRequest::sequential(ev.line.next()));
            if let Some(t) = self.last_target {
                if t != ev.line {
                    out.push(PrefetchRequest::sequential(t));
                }
            }
            if ev.is_discontinuity() {
                self.last_target = Some(ev.line);
            }
        }
    }

    fn name(&self) -> &'static str {
        "stream-pair (custom)"
    }
}

fn main() -> Result<(), ConfigError> {
    // The builder API takes a `PrefetcherKind`; custom engines plug in at
    // the `Core` level, which the `ipsim-cpu` crate exposes for exactly
    // this purpose. For an apples-to-apples comparison we drive a single
    // core by hand with each engine.
    let workload = WorkloadSet::homogeneous(Workload::Web);
    let (warm, measure) = (1_000_000u64, 4_000_000u64);

    // Reference runs through the high-level API.
    for kind in [
        PrefetcherKind::None,
        PrefetcherKind::NextLineOnMiss,
        PrefetcherKind::discontinuity_default(),
    ] {
        let mut system = SystemBuilder::single_core().prefetcher(kind).build()?;
        let m = system.run_workload(&workload, warm, measure);
        println!(
            "{:<24} IPC {:.3}  L1I miss {:.2}%",
            kind.label(),
            m.ipc(),
            m.l1i_miss_per_instr() * 100.0
        );
    }

    // The custom engine, wired into a core directly.
    let config = ipsim::types::SystemConfig::single_core();
    let program = Workload::Web.build_program(0x5EED_0001);
    let mut walker =
        ipsim::trace::TraceWalker::new(&program, Workload::Web.profile(), 0, 0x5EED_1001);
    let mut core = Core::with_engine(0, &config.core, Box::new(StreamPair::default()), None);
    let mut mem = MemSystem::new(&config.mem, ipsim::cache::InstallPolicy::InstallBoth);
    for _ in 0..warm {
        core.step(walker.next_op(), &mut mem);
    }
    core.reset_stats();
    for _ in 0..measure {
        core.step(walker.next_op(), &mut mem);
    }
    let m = core.metrics();
    println!(
        "{:<24} IPC {:.3}  L1I miss {:.2}%",
        "stream-pair (custom)",
        m.ipc(),
        m.l1i_miss_per_instr() * 100.0
    );
    Ok(())
}
