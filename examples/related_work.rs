//! Race the paper's discontinuity prefetcher against the related-work
//! schemes it discusses in Section 2: wrong-path prefetching
//! (Pierce & Mudge), a classic target prefetcher (Smith & Hsu) and a
//! two-target Markov-style predictor (Joseph & Grunwald).
//!
//! ```text
//! cargo run --release --example related_work
//! ```

use ipsim::cache::InstallPolicy;
use ipsim::cpu::{SystemBuilder, WorkloadSet};
use ipsim::prefetch::PrefetcherKind;
use ipsim::trace::Workload;
use ipsim::types::ConfigError;

fn main() -> Result<(), ConfigError> {
    let workload = WorkloadSet::homogeneous(Workload::Db);
    let (warm, measure) = (2_000_000, 5_000_000);
    println!(
        "related-work shoot-out: {} on a 4-way CMP\n",
        workload.name()
    );

    let mut baseline = SystemBuilder::cmp4().build()?;
    let base = baseline.run_workload(&workload, warm, measure);
    println!(
        "{:<28} IPC {:.3}  L1I {:.2}%",
        "no prefetch",
        base.ipc(),
        base.l1i_miss_per_instr() * 100.0
    );

    let contenders = [
        PrefetcherKind::WrongPath { next_line: false },
        PrefetcherKind::WrongPath { next_line: true },
        PrefetcherKind::Target {
            table_entries: 8192,
        },
        PrefetcherKind::Markov {
            table_entries: 8192,
            ahead: 4,
        },
        PrefetcherKind::NextNLineTagged { n: 4 },
        PrefetcherKind::discontinuity_default(),
    ];
    for kind in contenders {
        let mut system = SystemBuilder::cmp4()
            .prefetcher(kind)
            .install_policy(InstallPolicy::BypassL2UntilUseful)
            .build()?;
        let m = system.run_workload(&workload, warm, measure);
        println!(
            "{:<28} IPC {:.3}  L1I {:.2}%  coverage {:>3.0}%  acc {:>3.0}%  speedup {:.3}x",
            kind.label(),
            m.ipc(),
            m.l1i_miss_per_instr() * 100.0,
            m.l1i_coverage_vs(&base) * 100.0,
            m.prefetch_accuracy() * 100.0,
            m.speedup_over(&base),
        );
    }
    println!(
        "\nThe single-target discontinuity table matches the 2-target Markov\n\
         predictor at half the storage — the paper's Section 4 design argument."
    );
    Ok(())
}
