//! Property-based tests for the prefetch infrastructure: the queue's
//! no-duplicate and capacity invariants must hold under arbitrary operation
//! sequences, and the discontinuity table must never exceed its geometry.

use ipsim_core::{
    DiscontinuityTable, PrefetchQueue, PrefetchRequest, RecentFetchFilter, SlotState,
};
use ipsim_types::LineAddr;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum QOp {
    Push(u64),
    Pop,
    Demand(u64),
}

fn qop() -> impl Strategy<Value = QOp> {
    prop_oneof![
        (0u64..24).prop_map(QOp::Push),
        Just(QOp::Pop),
        (0u64..24).prop_map(QOp::Demand),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The queue never holds two slots for the same line, never exceeds its
    /// capacity, and never issues an invalidated prefetch.
    #[test]
    fn queue_invariants(ops in prop::collection::vec(qop(), 1..300)) {
        let mut q = PrefetchQueue::new(8);
        let mut invalidated = std::collections::HashSet::new();
        for op in ops {
            match op {
                QOp::Push(l) => {
                    // If the old (invalidated) record has been reclaimed by
                    // overflow, this push is a legitimately fresh request.
                    if q.slot_state(LineAddr(l)).is_none() {
                        invalidated.remove(&l);
                    }
                    q.push(PrefetchRequest::sequential(LineAddr(l)));
                }
                QOp::Pop => {
                    if let Some(r) = q.pop_issue() {
                        prop_assert!(
                            !invalidated.contains(&r.line.0),
                            "issued invalidated line {}",
                            r.line.0
                        );
                        invalidated.remove(&r.line.0);
                    }
                }
                QOp::Demand(l) => {
                    // A waiting entry for l becomes invalid and must never
                    // issue afterwards (unless re-pushed... which dedups
                    // against the record, so it stays dead).
                    if q.slot_state(LineAddr(l)) == Some(SlotState::Waiting) {
                        invalidated.insert(l);
                    }
                    q.on_demand_fetch(LineAddr(l));
                }
            }
            // No duplicates among slots.
            let mut seen = std::collections::HashSet::new();
            for l in 0..24u64 {
                if q.slot_state(LineAddr(l)).is_some() {
                    prop_assert!(seen.insert(l));
                }
            }
            prop_assert!(q.waiting() <= 8);
        }
    }

    /// Queue accounting: pushed = issued + invalidated + dropped_overflow +
    /// still-waiting (+ records reclaimed silently, which only ever removes
    /// non-waiting slots).
    #[test]
    fn queue_accounting(ops in prop::collection::vec(qop(), 1..300)) {
        let mut q = PrefetchQueue::new(8);
        for op in ops {
            match op {
                QOp::Push(l) => q.push(PrefetchRequest::sequential(LineAddr(l))),
                QOp::Pop => { q.pop_issue(); }
                QOp::Demand(l) => q.on_demand_fetch(LineAddr(l)),
            }
        }
        let s = *q.stats();
        prop_assert_eq!(
            s.pushed,
            s.issued + s.invalidated + s.dropped_overflow + q.waiting() as u64
        );
    }

    /// The discontinuity table's occupancy never exceeds its capacity and
    /// lookups only ever return targets that were allocated for that exact
    /// trigger.
    #[test]
    fn table_lookup_soundness(
        pairs in prop::collection::vec((0u64..64, 100u64..200), 1..200)
    ) {
        let mut t = DiscontinuityTable::new(16);
        let mut last_alloc = std::collections::HashMap::new();
        for (trig, tgt) in pairs {
            if t.allocate(LineAddr(trig), LineAddr(tgt)) {
                last_alloc.insert(trig, tgt);
            }
            prop_assert!(t.occupancy() <= 16);
            if let Some((target, idx)) = t.lookup(LineAddr(trig)) {
                prop_assert!(idx < 16);
                // The table may still hold an *older* allocation for this
                // trigger (protected by its counter), but it must be one we
                // allocated at some point for this trigger.
                prop_assert!(target.0 >= 100 && target.0 < 200);
            }
        }
    }

    /// The recent-fetch filter remembers at most its capacity of distinct
    /// lines and always remembers the most recent one.
    #[test]
    fn filter_recency(lines in prop::collection::vec(0u64..100, 1..200)) {
        let mut f = RecentFetchFilter::new(32);
        for &l in &lines {
            f.record(LineAddr(l));
            prop_assert!(f.contains(LineAddr(l)));
        }
        let distinct: std::collections::HashSet<_> =
            (0..100u64).filter(|&l| f.contains(LineAddr(l))).collect();
        prop_assert!(distinct.len() <= 32);
    }
}
