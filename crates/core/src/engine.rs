//! The prefetch-policy interface between the core front end and the
//! prefetchers.

use ipsim_types::LineAddr;

/// One demand fetch of a (new) instruction cache line, as observed by the
/// front end.
///
/// The front end raises one event per *line transition* of the fetch PC,
/// not per instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchEvent {
    /// The line being fetched.
    pub line: LineAddr,
    /// The fetch missed in the L1 instruction cache.
    pub miss: bool,
    /// The fetch hit a prefetched line for the first time (prefetch
    /// tagging), or merged with an in-flight prefetch. Triggers *tagged*
    /// prefetch schemes.
    pub first_use_of_prefetch: bool,
    /// The previously fetched line, if any.
    pub prev_line: Option<LineAddr>,
}

impl FetchEvent {
    /// Convenience constructor for a missing fetch (tests, examples).
    pub fn miss(line: LineAddr, prev_line: Option<LineAddr>) -> FetchEvent {
        FetchEvent {
            line,
            miss: true,
            first_use_of_prefetch: false,
            prev_line,
        }
    }

    /// Convenience constructor for a plain hit.
    pub fn hit(line: LineAddr, prev_line: Option<LineAddr>) -> FetchEvent {
        FetchEvent {
            line,
            miss: false,
            first_use_of_prefetch: false,
            prev_line,
        }
    }

    /// `true` when this fetch is a *discontinuity*: a transition from the
    /// previous line that is neither within the same line nor to the next
    /// sequential line. (Transitions within the same cache line are
    /// invisible at line granularity and explicitly ignored by the paper.)
    pub fn is_discontinuity(&self) -> bool {
        match self.prev_line {
            Some(prev) => self.line != prev && !self.line.is_sequential_after(prev),
            None => false,
        }
    }
}

/// Which mechanism generated a prefetch. Echoed back to the engine when the
/// prefetched line proves useful, so table-based schemes can reinforce the
/// responsible entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchSource {
    /// A sequential (next-line / next-N-line / lookahead) prefetch.
    Sequential,
    /// A discontinuity prediction; carries the predictor-table index of the
    /// entry that produced it.
    Discontinuity {
        /// Direct-mapped table index of the predicting entry.
        table_index: u32,
    },
    /// A classic target-table prediction.
    Target,
}

/// A line-prefetch request produced by an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchRequest {
    /// The line to prefetch.
    pub line: LineAddr,
    /// The mechanism that generated it.
    pub source: PrefetchSource,
    /// Zoo slot of the issuing scheme when the engine multiplexes several
    /// prefetchers (`ipsim-prefetch`); `0` for plain engines. Carried
    /// through the queue so shadow attribution stays exact even when a
    /// request lingers queued across many fetch events.
    pub scheme: u8,
}

impl PrefetchRequest {
    /// A request from `source` (scheme slot 0).
    pub fn new(line: LineAddr, source: PrefetchSource) -> PrefetchRequest {
        PrefetchRequest {
            line,
            source,
            scheme: 0,
        }
    }

    /// A sequential-source request.
    pub fn sequential(line: LineAddr) -> PrefetchRequest {
        PrefetchRequest::new(line, PrefetchSource::Sequential)
    }

    /// The same request re-tagged with a zoo scheme slot.
    pub fn with_scheme(mut self, scheme: u8) -> PrefetchRequest {
        self.scheme = scheme;
        self
    }
}

/// A hardware instruction-prefetch policy.
///
/// Engines are deterministic state machines: they observe demand-fetch
/// events and usefulness feedback, and emit prefetch requests. They never
/// see timing, caches or bandwidth — the CPU model owns those.
pub trait PrefetchEngine: std::fmt::Debug {
    /// Observes one demand line fetch and appends any generated prefetch
    /// requests to `out` (in issue-priority order, most important first).
    fn on_fetch(&mut self, ev: &FetchEvent, out: &mut Vec<PrefetchRequest>);

    /// Feedback: a prefetch this engine generated (with `source`) was
    /// demand-referenced — it proved useful.
    fn on_prefetch_useful(&mut self, line: LineAddr, source: PrefetchSource) {
        let _ = (line, source);
    }

    /// Feedback: a prefetch this engine generated was evicted from the
    /// instruction cache without ever being demand-referenced.
    fn on_prefetch_useless(&mut self, line: LineAddr, source: PrefetchSource) {
        let _ = (line, source);
    }

    /// `true` when the engine consumes the lifecycle hooks below. The core
    /// caches this at construction and skips the calls (and the attribution
    /// lookups feeding them) entirely when `false`, so plain engines pay
    /// one never-taken branch per site — the same discipline as the
    /// telemetry hooks.
    fn wants_lifecycle_hooks(&self) -> bool {
        false
    }

    /// Lifecycle: one of this engine's requests was accepted by the memory
    /// system (MSHR allocated, request in flight). `req` is the exact
    /// request popped from the prefetch queue, scheme tag included.
    fn on_prefetch_issued(&mut self, req: &PrefetchRequest) {
        let _ = req;
    }

    /// Lifecycle: an in-flight prefetch completed and its line was
    /// installed in the instruction cache.
    fn on_prefetch_fill(&mut self, line: LineAddr, source: PrefetchSource) {
        let _ = (line, source);
    }

    /// Lifecycle: a prefetched line was demand-referenced for the first
    /// time. `late` is `true` when the demand fetch arrived while the
    /// prefetch was still in flight (the fetch merged with the MSHR and
    /// stalled), `false` when the line was already resident.
    fn on_prefetch_first_use(&mut self, line: LineAddr, source: PrefetchSource, late: bool) {
        let _ = (line, source, late);
    }

    /// Lifecycle: a line with live prefetch attribution left the
    /// instruction cache. `used` is `false` only for the pure waste case —
    /// a prefetched line evicted without ever being demand-referenced.
    fn on_prefetch_evicted(&mut self, line: LineAddr, source: PrefetchSource, used: bool) {
        let _ = (line, source, used);
    }

    /// Resets any *windowed* statistics this engine keeps (e.g. per-scheme
    /// attribution counters) at a measurement-window boundary. Predictor
    /// state and line attributions must survive — only counters reset,
    /// mirroring how the core resets `pf_stats` but not `pf_sources`.
    fn reset_window_stats(&mut self) {}

    /// Downcast escape hatch so owners can reach engine-specific state
    /// (the prefetcher zoo exposes per-scheme counters this way). Plain
    /// engines return `None`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Observes a conditional branch passing through the front end:
    /// `alternate` is the line of the path *not* taken this time (the
    /// fall-through line of a taken branch, or the target line of a
    /// not-taken one). Used by wrong-path prefetching (Pierce & Mudge);
    /// most engines ignore it.
    fn on_cond_branch(&mut self, alternate: LineAddr, out: &mut Vec<PrefetchRequest>) {
        let _ = (alternate, out);
    }

    /// Short scheme name for reports (e.g. `"next-4-line (tagged)"`).
    fn name(&self) -> &'static str;

    /// `true` when this engine can ever append a request in `on_fetch` /
    /// `on_cond_branch`. An engine returning `false` makes the whole
    /// prefetch pipeline provably dead — the queue and recent-fetch
    /// filter stay empty forever, so the core skips the per-fetch hook
    /// block (queue invalidation scan, filter insert, engine dispatch,
    /// issue budget) outright. Every counter that block touches stays at
    /// the value the full path would compute (all zeros), so the skip is
    /// observationally exact.
    fn generates_requests(&self) -> bool {
        true
    }
}

/// The no-op baseline: never prefetches.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPrefetcher;

impl NoPrefetcher {
    /// Creates the null engine.
    pub fn new() -> NoPrefetcher {
        NoPrefetcher
    }
}

impl PrefetchEngine for NoPrefetcher {
    fn on_fetch(&mut self, _ev: &FetchEvent, _out: &mut Vec<PrefetchRequest>) {}

    fn name(&self) -> &'static str {
        "no prefetch"
    }

    fn generates_requests(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discontinuity_detection() {
        // No previous line: not a discontinuity.
        assert!(!FetchEvent::miss(LineAddr(10), None).is_discontinuity());
        // Sequential: not a discontinuity.
        assert!(!FetchEvent::miss(LineAddr(11), Some(LineAddr(10))).is_discontinuity());
        // Same line: not a discontinuity.
        assert!(!FetchEvent::miss(LineAddr(10), Some(LineAddr(10))).is_discontinuity());
        // Forward jump: discontinuity.
        assert!(FetchEvent::miss(LineAddr(20), Some(LineAddr(10))).is_discontinuity());
        // Backward jump: discontinuity.
        assert!(FetchEvent::miss(LineAddr(5), Some(LineAddr(10))).is_discontinuity());
    }

    #[test]
    fn no_prefetcher_emits_nothing() {
        let mut pf = NoPrefetcher::new();
        let mut out = Vec::new();
        pf.on_fetch(&FetchEvent::miss(LineAddr(1), None), &mut out);
        assert!(out.is_empty());
        assert_eq!(pf.name(), "no prefetch");
    }
}
