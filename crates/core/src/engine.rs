//! The prefetch-policy interface between the core front end and the
//! prefetchers.

use ipsim_types::LineAddr;

/// One demand fetch of a (new) instruction cache line, as observed by the
/// front end.
///
/// The front end raises one event per *line transition* of the fetch PC,
/// not per instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchEvent {
    /// The line being fetched.
    pub line: LineAddr,
    /// The fetch missed in the L1 instruction cache.
    pub miss: bool,
    /// The fetch hit a prefetched line for the first time (prefetch
    /// tagging), or merged with an in-flight prefetch. Triggers *tagged*
    /// prefetch schemes.
    pub first_use_of_prefetch: bool,
    /// The previously fetched line, if any.
    pub prev_line: Option<LineAddr>,
}

impl FetchEvent {
    /// Convenience constructor for a missing fetch (tests, examples).
    pub fn miss(line: LineAddr, prev_line: Option<LineAddr>) -> FetchEvent {
        FetchEvent {
            line,
            miss: true,
            first_use_of_prefetch: false,
            prev_line,
        }
    }

    /// Convenience constructor for a plain hit.
    pub fn hit(line: LineAddr, prev_line: Option<LineAddr>) -> FetchEvent {
        FetchEvent {
            line,
            miss: false,
            first_use_of_prefetch: false,
            prev_line,
        }
    }

    /// `true` when this fetch is a *discontinuity*: a transition from the
    /// previous line that is neither within the same line nor to the next
    /// sequential line. (Transitions within the same cache line are
    /// invisible at line granularity and explicitly ignored by the paper.)
    pub fn is_discontinuity(&self) -> bool {
        match self.prev_line {
            Some(prev) => self.line != prev && !self.line.is_sequential_after(prev),
            None => false,
        }
    }
}

/// Which mechanism generated a prefetch. Echoed back to the engine when the
/// prefetched line proves useful, so table-based schemes can reinforce the
/// responsible entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchSource {
    /// A sequential (next-line / next-N-line / lookahead) prefetch.
    Sequential,
    /// A discontinuity prediction; carries the predictor-table index of the
    /// entry that produced it.
    Discontinuity {
        /// Direct-mapped table index of the predicting entry.
        table_index: u32,
    },
    /// A classic target-table prediction.
    Target,
}

/// A line-prefetch request produced by an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchRequest {
    /// The line to prefetch.
    pub line: LineAddr,
    /// The mechanism that generated it.
    pub source: PrefetchSource,
}

impl PrefetchRequest {
    /// A sequential-source request.
    pub fn sequential(line: LineAddr) -> PrefetchRequest {
        PrefetchRequest {
            line,
            source: PrefetchSource::Sequential,
        }
    }
}

/// A hardware instruction-prefetch policy.
///
/// Engines are deterministic state machines: they observe demand-fetch
/// events and usefulness feedback, and emit prefetch requests. They never
/// see timing, caches or bandwidth — the CPU model owns those.
pub trait PrefetchEngine: std::fmt::Debug {
    /// Observes one demand line fetch and appends any generated prefetch
    /// requests to `out` (in issue-priority order, most important first).
    fn on_fetch(&mut self, ev: &FetchEvent, out: &mut Vec<PrefetchRequest>);

    /// Feedback: a prefetch this engine generated (with `source`) was
    /// demand-referenced — it proved useful.
    fn on_prefetch_useful(&mut self, line: LineAddr, source: PrefetchSource) {
        let _ = (line, source);
    }

    /// Feedback: a prefetch this engine generated was evicted from the
    /// instruction cache without ever being demand-referenced.
    fn on_prefetch_useless(&mut self, line: LineAddr, source: PrefetchSource) {
        let _ = (line, source);
    }

    /// Observes a conditional branch passing through the front end:
    /// `alternate` is the line of the path *not* taken this time (the
    /// fall-through line of a taken branch, or the target line of a
    /// not-taken one). Used by wrong-path prefetching (Pierce & Mudge);
    /// most engines ignore it.
    fn on_cond_branch(&mut self, alternate: LineAddr, out: &mut Vec<PrefetchRequest>) {
        let _ = (alternate, out);
    }

    /// Short scheme name for reports (e.g. `"next-4-line (tagged)"`).
    fn name(&self) -> &'static str;
}

/// The no-op baseline: never prefetches.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPrefetcher;

impl NoPrefetcher {
    /// Creates the null engine.
    pub fn new() -> NoPrefetcher {
        NoPrefetcher
    }
}

impl PrefetchEngine for NoPrefetcher {
    fn on_fetch(&mut self, _ev: &FetchEvent, _out: &mut Vec<PrefetchRequest>) {}

    fn name(&self) -> &'static str {
        "no prefetch"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discontinuity_detection() {
        // No previous line: not a discontinuity.
        assert!(!FetchEvent::miss(LineAddr(10), None).is_discontinuity());
        // Sequential: not a discontinuity.
        assert!(!FetchEvent::miss(LineAddr(11), Some(LineAddr(10))).is_discontinuity());
        // Same line: not a discontinuity.
        assert!(!FetchEvent::miss(LineAddr(10), Some(LineAddr(10))).is_discontinuity());
        // Forward jump: discontinuity.
        assert!(FetchEvent::miss(LineAddr(20), Some(LineAddr(10))).is_discontinuity());
        // Backward jump: discontinuity.
        assert!(FetchEvent::miss(LineAddr(5), Some(LineAddr(10))).is_discontinuity());
    }

    #[test]
    fn no_prefetcher_emits_nothing() {
        let mut pf = NoPrefetcher::new();
        let mut out = Vec::new();
        pf.on_fetch(&FetchEvent::miss(LineAddr(1), None), &mut out);
        assert!(out.is_empty());
        assert_eq!(pf.name(), "no prefetch");
    }
}
