//! Wrong-path instruction prefetching (Pierce & Mudge, MICRO 1996) — a
//! related-work baseline the paper discusses in Section 2.3.

use ipsim_types::LineAddr;

use crate::engine::{FetchEvent, PrefetchEngine, PrefetchRequest};

/// Prefetches the *untaken* outcome of every conditional branch.
///
/// Pierce & Mudge observed that for many conditional branches both outcomes
/// execute within a short window, so fetching the wrong path effectively
/// prefetches it for imminent use. The scheme needs no prediction tables —
/// just the branch's two successor lines — but covers neither sequential
/// misses beyond the next line nor call/return transfers, which is why the
/// paper's discontinuity prefetcher subsumes it on commercial workloads.
///
/// The optional next-line component (on by default via
/// [`WrongPathPrefetcher::with_next_line`]) matches the original paper's
/// pairing with simple sequential prefetching.
#[derive(Debug, Clone, Copy)]
pub struct WrongPathPrefetcher {
    next_line: bool,
}

impl WrongPathPrefetcher {
    /// Wrong-path prefetching only.
    pub fn new() -> WrongPathPrefetcher {
        WrongPathPrefetcher { next_line: false }
    }

    /// Wrong-path prefetching plus next-line-on-miss, as originally
    /// evaluated.
    pub fn with_next_line() -> WrongPathPrefetcher {
        WrongPathPrefetcher { next_line: true }
    }
}

impl Default for WrongPathPrefetcher {
    fn default() -> Self {
        WrongPathPrefetcher::with_next_line()
    }
}

impl PrefetchEngine for WrongPathPrefetcher {
    fn on_fetch(&mut self, ev: &FetchEvent, out: &mut Vec<PrefetchRequest>) {
        if self.next_line && ev.miss {
            out.push(PrefetchRequest::sequential(ev.line.next()));
        }
    }

    fn on_cond_branch(&mut self, alternate: LineAddr, out: &mut Vec<PrefetchRequest>) {
        out.push(PrefetchRequest::sequential(alternate));
    }

    fn name(&self) -> &'static str {
        if self.next_line {
            "wrong-path + next-line"
        } else {
            "wrong-path"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetches_the_alternate_path() {
        let mut pf = WrongPathPrefetcher::new();
        let mut out = Vec::new();
        pf.on_cond_branch(LineAddr(77), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, LineAddr(77));
    }

    #[test]
    fn pure_variant_ignores_fetches() {
        let mut pf = WrongPathPrefetcher::new();
        let mut out = Vec::new();
        pf.on_fetch(&FetchEvent::miss(LineAddr(5), None), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn next_line_variant_covers_misses_too() {
        let mut pf = WrongPathPrefetcher::with_next_line();
        let mut out = Vec::new();
        pf.on_fetch(&FetchEvent::miss(LineAddr(5), None), &mut out);
        assert_eq!(out[0].line, LineAddr(6));
        pf.on_fetch(&FetchEvent::hit(LineAddr(5), None), &mut out);
        assert_eq!(out.len(), 1, "hits do not trigger the next-line part");
    }

    #[test]
    fn names_distinguish_variants() {
        assert_eq!(WrongPathPrefetcher::new().name(), "wrong-path");
        assert_eq!(
            WrongPathPrefetcher::with_next_line().name(),
            "wrong-path + next-line"
        );
    }
}
