//! Instruction prefetchers — the primary contribution of the reproduced
//! paper (Spracklen, Chou & Abraham, HPCA 2005).
//!
//! The crate provides:
//!
//! * [`PrefetchEngine`] — the policy interface: the core's front end feeds
//!   the engine one [`FetchEvent`] per demand-fetched cache line, and the
//!   engine emits [`PrefetchRequest`]s;
//! * the paper's **discontinuity prefetcher** ([`DiscontinuityPrefetcher`])
//!   — a direct-mapped table of non-sequential fetch-stream transitions with
//!   2-bit saturating *eviction counters*, probed ahead of the demand stream
//!   and paired with a next-N-line sequential prefetcher;
//! * the sequential baselines the paper evaluates —
//!   [`NextLinePrefetcher`] (on-miss / always / tagged),
//!   [`NextNLinePrefetcher`] (tagged) and [`LookaheadPrefetcher`];
//! * a classic history-based [`TargetPrefetcher`] (Smith & Hsu) as an
//!   additional related-work baseline;
//! * the paper's prefetch-issue infrastructure — a LIFO [`PrefetchQueue`]
//!   with dedup / demand-invalidation / hoisting, and the
//!   [`RecentFetchFilter`] over the last 32 demand fetches.
//!
//! The prefetchers are *pure policy*: they own no caches and model no
//! timing. The CPU crate (`ipsim-cpu`) owns the caches, the issue path and
//! the selective L2-install policy, and drives these engines.
//!
//! # Examples
//!
//! Drive a discontinuity prefetcher by hand:
//!
//! ```
//! use ipsim_core::{DiscontinuityConfig, DiscontinuityPrefetcher, FetchEvent, PrefetchEngine};
//! use ipsim_types::LineAddr;
//!
//! let mut pf = DiscontinuityPrefetcher::new(DiscontinuityConfig::default());
//! let mut out = Vec::new();
//!
//! // A missing fetch at line 100 triggers sequential prefetches 101..=104.
//! pf.on_fetch(&FetchEvent::miss(LineAddr(100), None), &mut out);
//! let lines: Vec<u64> = out.iter().map(|r| r.line.0).collect();
//! assert_eq!(lines, vec![101, 102, 103, 104]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod discontinuity;
mod engine;
mod filter;
mod kind;
mod markov;
mod queue;
mod sequential;
mod stats;
mod table;
mod target;
mod wrongpath;

pub use discontinuity::{DiscontinuityConfig, DiscontinuityPrefetcher};
pub use engine::{FetchEvent, NoPrefetcher, PrefetchEngine, PrefetchRequest, PrefetchSource};
pub use filter::RecentFetchFilter;
pub use kind::PrefetcherKind;
pub use markov::{MarkovPrefetcher, MARKOV_WAYS};
pub use queue::{PrefetchQueue, QueueStats, SlotState};
pub use sequential::{LookaheadPrefetcher, NextLineMode, NextLinePrefetcher, NextNLinePrefetcher};
pub use stats::PrefetchStats;
pub use table::DiscontinuityTable;
pub use target::TargetPrefetcher;
pub use wrongpath::WrongPathPrefetcher;
