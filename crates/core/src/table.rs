//! The discontinuity prediction table (Section 4 of the paper).

use ipsim_types::LineAddr;

/// Initial / maximum value of the 2-bit saturating eviction counter.
const COUNTER_MAX: u8 = 3;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    /// The triggering cache line (the line the discontinuity departs from).
    trigger: LineAddr,
    /// The observed target line.
    target: LineAddr,
    /// 2-bit saturating *eviction* counter: set to max on allocation,
    /// incremented when the entry's prefetch proves useful, decremented by
    /// conflicting allocation attempts; the entry may only be replaced when
    /// it reaches zero. This protects useful entries from being thrashed by
    /// stray events.
    counter: u8,
}

/// Direct-mapped table of fetch-stream discontinuities, one target per
/// entry.
///
/// The paper found that, at cache-line granularity, the vast majority of
/// discontinuity trigger lines have a *single* target, so a direct-mapped,
/// one-target-per-entry organisation suffices — substantially smaller than
/// multi-target predictors.
///
/// # Examples
///
/// ```
/// use ipsim_core::DiscontinuityTable;
/// use ipsim_types::LineAddr;
///
/// let mut t = DiscontinuityTable::new(256);
/// t.allocate(LineAddr(100), LineAddr(9000));
/// assert_eq!(t.lookup(LineAddr(100)).map(|(tgt, _)| tgt), Some(LineAddr(9000)));
/// assert_eq!(t.lookup(LineAddr(101)), None);
/// ```
#[derive(Debug, Clone)]
pub struct DiscontinuityTable {
    entries: Vec<Option<Entry>>,
    mask: u64,
    allocations: u64,
    rejections: u64,
}

impl DiscontinuityTable {
    /// Creates an empty table with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a non-zero power of two.
    pub fn new(entries: usize) -> DiscontinuityTable {
        assert!(
            entries > 0 && entries.is_power_of_two(),
            "table entries must be a non-zero power of two"
        );
        DiscontinuityTable {
            entries: vec![None; entries],
            mask: entries as u64 - 1,
            allocations: 0,
            rejections: 0,
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Successful allocations so far.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Allocation attempts rejected because the incumbent's counter had not
    /// yet reached zero.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    #[inline]
    fn index(&self, trigger: LineAddr) -> usize {
        (trigger.0 & self.mask) as usize
    }

    /// Looks up the predicted target for a discontinuity departing
    /// `trigger`, returning `(target, table_index)` on a hit.
    pub fn lookup(&self, trigger: LineAddr) -> Option<(LineAddr, u32)> {
        let idx = self.index(trigger);
        match &self.entries[idx] {
            Some(e) if e.trigger == trigger => Some((e.target, idx as u32)),
            _ => None,
        }
    }

    /// Records that a discontinuity `trigger → target` caused an
    /// instruction cache miss, making it an insertion candidate.
    ///
    /// * Transition already present: nothing to do.
    /// * Slot empty: insert with the counter at its saturated maximum.
    /// * Slot held by a different transition: decrement the incumbent's
    ///   counter; replace it only if the counter has reached zero.
    ///
    /// Returns `true` if the transition is present afterwards.
    pub fn allocate(&mut self, trigger: LineAddr, target: LineAddr) -> bool {
        let idx = self.index(trigger);
        match &mut self.entries[idx] {
            slot @ None => {
                *slot = Some(Entry {
                    trigger,
                    target,
                    counter: COUNTER_MAX,
                });
                self.allocations += 1;
                true
            }
            Some(e) if e.trigger == trigger && e.target == target => true,
            Some(e) => {
                if e.counter == 0 {
                    *e = Entry {
                        trigger,
                        target,
                        counter: COUNTER_MAX,
                    };
                    self.allocations += 1;
                    true
                } else {
                    e.counter -= 1;
                    self.rejections += 1;
                    false
                }
            }
        }
    }

    /// Reinforces the entry at `table_index`: its prediction produced a
    /// useful prefetch. Saturating increment.
    pub fn reinforce(&mut self, table_index: u32) {
        if let Some(Some(e)) = self.entries.get_mut(table_index as usize) {
            e.counter = (e.counter + 1).min(COUNTER_MAX);
        }
    }

    /// Weakens the entry at `table_index`: its prediction produced a
    /// prefetch that was evicted unused. Saturating decrement. Used by the
    /// confidence-gated variant (an extension in the spirit of Haga et
    /// al.'s confidence filtering; the paper's base design only decrements
    /// on allocation conflicts).
    pub fn weaken(&mut self, table_index: u32) {
        if let Some(Some(e)) = self.entries.get_mut(table_index as usize) {
            e.counter = e.counter.saturating_sub(1);
        }
    }

    /// The confidence counter of the entry at `table_index`, if valid.
    pub fn confidence(&self, table_index: u32) -> Option<u8> {
        self.entries
            .get(table_index as usize)
            .and_then(|e| e.as_ref())
            .map(|e| e.counter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_lookup() {
        let mut t = DiscontinuityTable::new(16);
        assert!(t.allocate(LineAddr(1), LineAddr(100)));
        assert_eq!(t.lookup(LineAddr(1)), Some((LineAddr(100), 1)));
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn direct_mapping_conflicts_respect_counter() {
        let mut t = DiscontinuityTable::new(16);
        // Lines 1 and 17 collide in a 16-entry table.
        assert!(t.allocate(LineAddr(1), LineAddr(100)));
        // Counter starts at 3: three rejected attempts decrement to zero...
        assert!(!t.allocate(LineAddr(17), LineAddr(200)));
        assert!(!t.allocate(LineAddr(17), LineAddr(200)));
        assert!(!t.allocate(LineAddr(17), LineAddr(200)));
        // ...and the fourth replaces.
        assert!(t.allocate(LineAddr(17), LineAddr(200)));
        assert_eq!(t.lookup(LineAddr(17)), Some((LineAddr(200), 1)));
        assert_eq!(t.lookup(LineAddr(1)), None);
        assert_eq!(t.rejections(), 3);
        assert_eq!(t.allocations(), 2);
    }

    #[test]
    fn reinforce_protects_entry() {
        let mut t = DiscontinuityTable::new(16);
        t.allocate(LineAddr(1), LineAddr(100));
        // Wear it down by two...
        t.allocate(LineAddr(17), LineAddr(200));
        t.allocate(LineAddr(17), LineAddr(200));
        // ...then two useful prefetches restore it (saturating at 3).
        t.reinforce(1);
        t.reinforce(1);
        t.reinforce(1);
        for _ in 0..3 {
            assert!(!t.allocate(LineAddr(17), LineAddr(200)));
        }
        assert!(t.allocate(LineAddr(17), LineAddr(200)));
    }

    #[test]
    fn same_transition_is_idempotent() {
        let mut t = DiscontinuityTable::new(16);
        t.allocate(LineAddr(1), LineAddr(100));
        assert!(t.allocate(LineAddr(1), LineAddr(100)));
        assert_eq!(t.allocations(), 1);
        assert_eq!(t.rejections(), 0);
    }

    #[test]
    fn same_trigger_new_target_counts_as_conflict() {
        let mut t = DiscontinuityTable::new(16);
        t.allocate(LineAddr(1), LineAddr(100));
        // A different target for the same trigger line must also fight the
        // eviction counter (one-target-per-entry design).
        assert!(!t.allocate(LineAddr(1), LineAddr(300)));
        assert_eq!(t.lookup(LineAddr(1)), Some((LineAddr(100), 1)));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        DiscontinuityTable::new(100);
    }

    #[test]
    fn reinforce_out_of_range_is_ignored() {
        let mut t = DiscontinuityTable::new(4);
        t.reinforce(99); // must not panic
    }
}
