//! A classic history-based target prefetcher (Smith & Hsu style), included
//! as a related-work baseline.

use ipsim_types::LineAddr;

use crate::engine::{FetchEvent, PrefetchEngine, PrefetchRequest, PrefetchSource};

#[derive(Debug, Clone, Copy)]
struct Entry {
    trigger: LineAddr,
    next: LineAddr,
}

/// Predicts the next fetched line from the previous transition history.
///
/// Unlike the [`DiscontinuityPrefetcher`](crate::DiscontinuityPrefetcher),
/// this scheme
///
/// * records **every** line transition (sequential ones included), so its
///   table must be much larger for the same coverage,
/// * updates on every fetch (not only on misses), so entries churn,
/// * has no eviction counter — a single stray transition replaces a useful
///   entry,
/// * probes only with the current line, so its prefetches are far less
///   timely against multi-hundred-cycle memory latencies.
///
/// Those four differences are exactly what the paper's design improves on.
#[derive(Debug, Clone)]
pub struct TargetPrefetcher {
    entries: Vec<Option<Entry>>,
    mask: u64,
    last_line: Option<LineAddr>,
}

impl TargetPrefetcher {
    /// Creates a target prefetcher with `entries` table slots.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a non-zero power of two.
    pub fn new(entries: usize) -> TargetPrefetcher {
        assert!(
            entries > 0 && entries.is_power_of_two(),
            "table entries must be a non-zero power of two"
        );
        TargetPrefetcher {
            entries: vec![None; entries],
            mask: entries as u64 - 1,
            last_line: None,
        }
    }

    #[inline]
    fn index(&self, line: LineAddr) -> usize {
        (line.0 & self.mask) as usize
    }
}

impl PrefetchEngine for TargetPrefetcher {
    fn on_fetch(&mut self, ev: &FetchEvent, out: &mut Vec<PrefetchRequest>) {
        // Learn the transition that just happened.
        if let Some(prev) = ev.prev_line {
            if prev != ev.line {
                let idx = self.index(prev);
                self.entries[idx] = Some(Entry {
                    trigger: prev,
                    next: ev.line,
                });
            }
        }
        self.last_line = Some(ev.line);
        // Predict the line after this one.
        let idx = self.index(ev.line);
        if let Some(e) = &self.entries[idx] {
            if e.trigger == ev.line {
                out.push(PrefetchRequest::new(e.next, PrefetchSource::Target));
            }
        }
    }

    fn name(&self) -> &'static str {
        "target"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fetch(pf: &mut TargetPrefetcher, line: u64, prev: Option<u64>) -> Vec<u64> {
        let mut out = Vec::new();
        pf.on_fetch(
            &FetchEvent::hit(LineAddr(line), prev.map(LineAddr)),
            &mut out,
        );
        out.iter().map(|r| r.line.0).collect()
    }

    #[test]
    fn learns_and_predicts_transitions() {
        let mut pf = TargetPrefetcher::new(64);
        fetch(&mut pf, 10, None);
        fetch(&mut pf, 50, Some(10)); // learn 10 -> 50
                                      // Revisiting 10 predicts 50.
        assert_eq!(fetch(&mut pf, 10, Some(50)), [50]);
    }

    #[test]
    fn records_sequential_transitions_too() {
        let mut pf = TargetPrefetcher::new(64);
        fetch(&mut pf, 11, Some(10)); // learns 10 -> 11
        assert_eq!(fetch(&mut pf, 10, Some(11)), [11]);
    }

    #[test]
    fn newer_transition_replaces_older() {
        let mut pf = TargetPrefetcher::new(64);
        fetch(&mut pf, 50, Some(10));
        fetch(&mut pf, 60, Some(10)); // replaces 10 -> 50
        assert_eq!(fetch(&mut pf, 10, Some(60)), [60]);
    }

    #[test]
    fn no_prediction_for_unknown_line() {
        let mut pf = TargetPrefetcher::new(64);
        assert!(fetch(&mut pf, 123, None).is_empty());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_size_panics() {
        TargetPrefetcher::new(3);
    }
}
