//! Sequential prefetchers: next-line (three trigger variants), next-N-line
//! tagged, and lookahead-N (Section 2.1 of the paper).

use crate::engine::{FetchEvent, PrefetchEngine, PrefetchRequest};

/// When a next-line prefetcher fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextLineMode {
    /// Prefetch the next line on every demand fetch.
    Always,
    /// Prefetch the next line only when the current fetch missed.
    OnMiss,
    /// Prefetch on a miss *or* on the first use of a previously prefetched
    /// line (Smith's tagged scheme) — keeps a sequential run of prefetches
    /// alive without re-missing.
    Tagged,
}

impl NextLineMode {
    fn triggered(self, ev: &FetchEvent) -> bool {
        match self {
            NextLineMode::Always => true,
            NextLineMode::OnMiss => ev.miss,
            NextLineMode::Tagged => ev.miss || ev.first_use_of_prefetch,
        }
    }
}

/// Next-line prefetcher: on its trigger, prefetches line `L+1`.
///
/// # Examples
///
/// ```
/// use ipsim_core::{FetchEvent, NextLineMode, NextLinePrefetcher, PrefetchEngine};
/// use ipsim_types::LineAddr;
///
/// let mut pf = NextLinePrefetcher::new(NextLineMode::OnMiss);
/// let mut out = Vec::new();
/// pf.on_fetch(&FetchEvent::miss(LineAddr(9), None), &mut out);
/// assert_eq!(out[0].line, LineAddr(10));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct NextLinePrefetcher {
    mode: NextLineMode,
}

impl NextLinePrefetcher {
    /// Creates a next-line prefetcher with the given trigger mode.
    pub fn new(mode: NextLineMode) -> NextLinePrefetcher {
        NextLinePrefetcher { mode }
    }
}

impl PrefetchEngine for NextLinePrefetcher {
    fn on_fetch(&mut self, ev: &FetchEvent, out: &mut Vec<PrefetchRequest>) {
        if self.mode.triggered(ev) {
            out.push(PrefetchRequest::sequential(ev.line.next()));
        }
    }

    fn name(&self) -> &'static str {
        match self.mode {
            NextLineMode::Always => "next-line (always)",
            NextLineMode::OnMiss => "next-line (on miss)",
            NextLineMode::Tagged => "next-line (tagged)",
        }
    }
}

/// Next-N-line tagged prefetcher: on a miss or first use of a prefetched
/// line, prefetches lines `L+1 ..= L+N`.
///
/// Increasing N improves timeliness and covers short forward control
/// transfers whose targets land within the prefetch-ahead window, at the
/// cost of over-run past the end of sequential segments.
#[derive(Debug, Clone, Copy)]
pub struct NextNLinePrefetcher {
    n: u32,
}

impl NextNLinePrefetcher {
    /// Creates a next-N-line tagged prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u32) -> NextNLinePrefetcher {
        assert!(n > 0, "prefetch-ahead distance must be non-zero");
        NextNLinePrefetcher { n }
    }

    /// The prefetch-ahead distance.
    pub fn distance(&self) -> u32 {
        self.n
    }
}

impl PrefetchEngine for NextNLinePrefetcher {
    fn on_fetch(&mut self, ev: &FetchEvent, out: &mut Vec<PrefetchRequest>) {
        if ev.miss || ev.first_use_of_prefetch {
            for d in 1..=self.n {
                out.push(PrefetchRequest::sequential(ev.line.ahead(d as u64)));
            }
        }
    }

    fn name(&self) -> &'static str {
        match self.n {
            2 => "next-2-lines (tagged)",
            4 => "next-4-lines (tagged)",
            8 => "next-8-lines (tagged)",
            _ => "next-N-lines (tagged)",
        }
    }
}

/// Lookahead prefetcher: on its trigger, prefetches the *single* line `L+N`
/// (Han et al.): improves timeliness without issuing N requests per fetch,
/// but leaves gaps after control transfers.
#[derive(Debug, Clone, Copy)]
pub struct LookaheadPrefetcher {
    n: u32,
}

impl LookaheadPrefetcher {
    /// Creates a lookahead-N prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u32) -> LookaheadPrefetcher {
        assert!(n > 0, "lookahead distance must be non-zero");
        LookaheadPrefetcher { n }
    }
}

impl PrefetchEngine for LookaheadPrefetcher {
    fn on_fetch(&mut self, ev: &FetchEvent, out: &mut Vec<PrefetchRequest>) {
        if ev.miss || ev.first_use_of_prefetch {
            out.push(PrefetchRequest::sequential(ev.line.ahead(self.n as u64)));
        }
    }

    fn name(&self) -> &'static str {
        "lookahead-N"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipsim_types::LineAddr;

    fn fetch(pf: &mut dyn PrefetchEngine, ev: FetchEvent) -> Vec<u64> {
        let mut out = Vec::new();
        pf.on_fetch(&ev, &mut out);
        out.iter().map(|r| r.line.0).collect()
    }

    #[test]
    fn on_miss_fires_only_on_miss() {
        let mut pf = NextLinePrefetcher::new(NextLineMode::OnMiss);
        assert_eq!(fetch(&mut pf, FetchEvent::miss(LineAddr(5), None)), [6]);
        assert!(fetch(&mut pf, FetchEvent::hit(LineAddr(5), None)).is_empty());
        let tagged_hit = FetchEvent {
            first_use_of_prefetch: true,
            ..FetchEvent::hit(LineAddr(5), None)
        };
        assert!(fetch(&mut pf, tagged_hit).is_empty());
    }

    #[test]
    fn always_fires_on_everything() {
        let mut pf = NextLinePrefetcher::new(NextLineMode::Always);
        assert_eq!(fetch(&mut pf, FetchEvent::hit(LineAddr(5), None)), [6]);
        assert_eq!(fetch(&mut pf, FetchEvent::miss(LineAddr(5), None)), [6]);
    }

    #[test]
    fn tagged_fires_on_miss_and_first_use() {
        let mut pf = NextLinePrefetcher::new(NextLineMode::Tagged);
        assert_eq!(fetch(&mut pf, FetchEvent::miss(LineAddr(5), None)), [6]);
        let tagged_hit = FetchEvent {
            first_use_of_prefetch: true,
            ..FetchEvent::hit(LineAddr(5), None)
        };
        assert_eq!(fetch(&mut pf, tagged_hit), [6]);
        assert!(fetch(&mut pf, FetchEvent::hit(LineAddr(5), None)).is_empty());
    }

    #[test]
    fn next_n_emits_full_window_in_order() {
        let mut pf = NextNLinePrefetcher::new(4);
        assert_eq!(
            fetch(&mut pf, FetchEvent::miss(LineAddr(10), None)),
            [11, 12, 13, 14]
        );
        assert!(fetch(&mut pf, FetchEvent::hit(LineAddr(10), None)).is_empty());
    }

    #[test]
    fn lookahead_emits_single_distant_line() {
        let mut pf = LookaheadPrefetcher::new(4);
        assert_eq!(fetch(&mut pf, FetchEvent::miss(LineAddr(10), None)), [14]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_distance_panics() {
        NextNLinePrefetcher::new(0);
    }

    #[test]
    fn names_are_descriptive() {
        assert_eq!(
            NextLinePrefetcher::new(NextLineMode::OnMiss).name(),
            "next-line (on miss)"
        );
        assert_eq!(NextNLinePrefetcher::new(4).name(), "next-4-lines (tagged)");
        assert_eq!(NextNLinePrefetcher::new(2).name(), "next-2-lines (tagged)");
    }
}
