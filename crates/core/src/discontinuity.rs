//! The paper's discontinuity prefetcher, paired with a next-N-line
//! sequential prefetcher (Section 4).

use ipsim_types::LineAddr;

use crate::engine::{FetchEvent, PrefetchEngine, PrefetchRequest, PrefetchSource};
use crate::table::DiscontinuityTable;

/// Configuration of a [`DiscontinuityPrefetcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiscontinuityConfig {
    /// Prediction-table slots (paper default: 8192 per core; Figure 10
    /// shows 2048 loses little coverage and even 256 beats next-4-line).
    pub table_entries: usize,
    /// Prefetch-ahead distance N of the paired sequential prefetcher and of
    /// the table probe window (paper default 4; the "discont (2NL)" variant
    /// of Figure 9 uses 2 for higher accuracy at lower timeliness).
    pub ahead: u32,
    /// Confidence gate: a table entry predicts only while its eviction
    /// counter is at least this value, and the counter is decremented when
    /// one of the entry's prefetches is evicted unused. `0` (the paper's
    /// base design) disables gating — entries always predict and the
    /// counter only governs replacement. An extension in the spirit of the
    /// confidence filtering the paper cites from Haga et al.
    pub min_confidence: u8,
}

impl Default for DiscontinuityConfig {
    fn default() -> Self {
        DiscontinuityConfig {
            table_entries: 8192,
            ahead: 4,
            min_confidence: 0,
        }
    }
}

impl DiscontinuityConfig {
    /// The next-2-line variant evaluated in Figure 9 ("discont (2NL)").
    pub fn two_line() -> DiscontinuityConfig {
        DiscontinuityConfig {
            ahead: 2,
            ..DiscontinuityConfig::default()
        }
    }

    /// The confidence-gated extension variant.
    pub fn confidence_gated(threshold: u8) -> DiscontinuityConfig {
        DiscontinuityConfig {
            min_confidence: threshold,
            ..DiscontinuityConfig::default()
        }
    }
}

/// Discontinuity prefetcher + next-N-line tagged sequential prefetcher.
///
/// Behaviour per the paper:
///
/// * **Allocation** — when a fetch that *missed* arrives via a discontinuity
///   (a non-sequential line transition), the transition `prev → line` is a
///   candidate for insertion into the [`DiscontinuityTable`].
/// * **Prediction** — on the sequential prefetcher's trigger (miss or first
///   use of a prefetched line at line `L`), sequential prefetches are
///   emitted for `L+1 ..= L+N`, and the table is probed with `L, L+1, …,
///   L+N` — the probe runs *ahead* of the demand stream so discontinuity
///   targets are requested early enough to cover L2/memory latency. A probe
///   hit at distance `d` with target `T` emits a prefetch for `T` plus the
///   remainder of the prefetch-ahead window `T+1 ..= T+(N-d)`.
/// * **Reinforcement** — when a discontinuity-sourced prefetch proves
///   useful, the predicting entry's eviction counter is incremented,
///   protecting it from replacement.
///
/// The sequential partner removes any need to store sequential transitions
/// in the table, which is what lets the table stay small.
#[derive(Debug, Clone)]
pub struct DiscontinuityPrefetcher {
    table: DiscontinuityTable,
    ahead: u32,
    min_confidence: u8,
    /// Highest line already covered by the sequential prefetch stream.
    /// Sequential re-triggers (tagged first uses while the demand stream
    /// marches through prefetched lines) only extend coverage past this
    /// frontier instead of re-emitting and re-probing the whole window —
    /// that is what "the sequential prefetcher moving ahead of the demand
    /// fetch stream" means, and it is what keeps the request volume (and
    /// thus queue pressure and pollution) bounded.
    frontier: Option<LineAddr>,
}

impl DiscontinuityPrefetcher {
    /// Creates the prefetcher.
    ///
    /// # Panics
    ///
    /// Panics unless `config.table_entries` is a non-zero power of two and
    /// `config.ahead` is non-zero.
    pub fn new(config: DiscontinuityConfig) -> DiscontinuityPrefetcher {
        assert!(config.ahead > 0, "prefetch-ahead distance must be non-zero");
        DiscontinuityPrefetcher {
            table: DiscontinuityTable::new(config.table_entries),
            ahead: config.ahead,
            min_confidence: config.min_confidence,
            frontier: None,
        }
    }

    /// Read-only view of the prediction table (diagnostics / tests).
    pub fn table(&self) -> &DiscontinuityTable {
        &self.table
    }

    /// The prefetch-ahead distance N.
    pub fn ahead(&self) -> u32 {
        self.ahead
    }
}

impl PrefetchEngine for DiscontinuityPrefetcher {
    fn on_fetch(&mut self, ev: &FetchEvent, out: &mut Vec<PrefetchRequest>) {
        // Allocation: discontinuities that cause instruction cache misses.
        if ev.miss && ev.is_discontinuity() {
            if let Some(prev) = ev.prev_line {
                self.table.allocate(prev, ev.line);
            }
        }

        // Sequential window, nearest first — emitted on the tagged trigger
        // (miss or first use of a prefetched line), exactly like the plain
        // next-N-line tagged prefetcher. The queue dedup and the tag
        // probes drop redundant requests cheaply, and the re-emission
        // re-fetches lines that pollution evicted.
        let window_end = ev.line.ahead(self.ahead as u64);
        if ev.miss || ev.first_use_of_prefetch {
            for d in 1..=self.ahead as u64 {
                out.push(PrefetchRequest::sequential(ev.line.ahead(d)));
            }
        }

        // The table probe accompanies the demand stream itself, *on every
        // new-line fetch* — resident code paths still contain upcoming
        // discontinuities whose targets (e.g. thrashed callee entries)
        // need prefetching. Each line is probed once as the stream's
        // frontier advances over it; a jump, return or backward transfer
        // starts a fresh window. Without the frontier gating, the same
        // entries re-fire on every fetch and the prediction volume (each
        // hit emits up to N+1 lines) drowns the queue.
        // "Continuing" also covers short backward hops (loop iterations):
        // re-probing the loop body every iteration would re-emit the same
        // predictions endlessly.
        let covered_span = 4 * self.ahead as u64;
        let probe_from = match self.frontier {
            Some(f) if ev.line.0 <= f.0 && f.0 - ev.line.0 <= covered_span => {
                if f.0 >= window_end.0 {
                    return;
                }
                f.next()
            }
            _ => ev.line,
        };
        self.frontier = Some(window_end);

        let mut probe = probe_from;
        while probe.0 <= window_end.0 {
            if let Some((target, idx)) = self.table.lookup(probe) {
                if self.min_confidence > 0
                    && self.table.confidence(idx).unwrap_or(0) < self.min_confidence
                {
                    probe = probe.next();
                    continue;
                }
                out.push(PrefetchRequest::new(
                    target,
                    PrefetchSource::Discontinuity { table_index: idx },
                ));
                // Remainder of the window past the predicted target:
                // issuing these now (rather than after the prediction is
                // verified) is what keeps the scheme timely against L2
                // misses.
                let remainder = window_end.0 - probe.0;
                for k in 1..=remainder {
                    out.push(PrefetchRequest::sequential(target.ahead(k)));
                }
            }
            probe = probe.next();
        }
    }

    fn on_prefetch_useful(&mut self, _line: LineAddr, source: PrefetchSource) {
        if let PrefetchSource::Discontinuity { table_index } = source {
            self.table.reinforce(table_index);
        }
    }

    fn on_prefetch_useless(&mut self, _line: LineAddr, source: PrefetchSource) {
        if self.min_confidence > 0 {
            if let PrefetchSource::Discontinuity { table_index } = source {
                self.table.weaken(table_index);
            }
        }
    }

    fn name(&self) -> &'static str {
        match self.ahead {
            2 => "discont (2NL)",
            _ => "discontinuity",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fetch(pf: &mut DiscontinuityPrefetcher, ev: FetchEvent) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        pf.on_fetch(&ev, &mut out);
        out
    }

    fn lines(reqs: &[PrefetchRequest]) -> Vec<u64> {
        reqs.iter().map(|r| r.line.0).collect()
    }

    #[test]
    fn miss_without_history_emits_sequential_window() {
        let mut pf = DiscontinuityPrefetcher::new(DiscontinuityConfig::default());
        let out = fetch(&mut pf, FetchEvent::miss(LineAddr(100), Some(LineAddr(99))));
        assert_eq!(lines(&out), [101, 102, 103, 104]);
        assert!(out.iter().all(|r| r.source == PrefetchSource::Sequential));
    }

    #[test]
    fn discontinuity_miss_allocates_and_later_predicts() {
        let mut pf = DiscontinuityPrefetcher::new(DiscontinuityConfig::default());
        // A missing fetch at 900 arriving from 100: allocate 100 -> 900.
        fetch(
            &mut pf,
            FetchEvent::miss(LineAddr(900), Some(LineAddr(100))),
        );
        // Next time the stream misses at line 98, the probe window
        // 98..=102 includes trigger 100: predict 900 and its remainder.
        let out = fetch(&mut pf, FetchEvent::miss(LineAddr(98), Some(LineAddr(97))));
        let ls = lines(&out);
        // Sequential window first.
        assert_eq!(&ls[..4], &[99, 100, 101, 102]);
        // Probe hit at distance d=2 (line 100): target 900 plus remainder 2.
        assert!(ls[4..].starts_with(&[900, 901, 902]), "{ls:?}");
        let disc = &out[4];
        assert!(matches!(disc.source, PrefetchSource::Discontinuity { .. }));
    }

    #[test]
    fn probe_at_distance_zero_emits_full_remainder() {
        let mut pf = DiscontinuityPrefetcher::new(DiscontinuityConfig::default());
        fetch(
            &mut pf,
            FetchEvent::miss(LineAddr(900), Some(LineAddr(100))),
        );
        let out = fetch(&mut pf, FetchEvent::miss(LineAddr(100), Some(LineAddr(99))));
        let ls = lines(&out);
        assert_eq!(ls, [101, 102, 103, 104, 900, 901, 902, 903, 904]);
    }

    #[test]
    fn tagged_hit_triggers_prediction_too() {
        let mut pf = DiscontinuityPrefetcher::new(DiscontinuityConfig::default());
        fetch(
            &mut pf,
            FetchEvent::miss(LineAddr(900), Some(LineAddr(104))),
        );
        let ev = FetchEvent {
            line: LineAddr(104),
            miss: false,
            first_use_of_prefetch: true,
            prev_line: Some(LineAddr(103)),
        };
        let out = fetch(&mut pf, ev);
        assert!(lines(&out).contains(&900));
    }

    #[test]
    fn plain_hits_emit_nothing_and_do_not_allocate() {
        let mut pf = DiscontinuityPrefetcher::new(DiscontinuityConfig::default());
        // A discontinuity that *hits* must not allocate.
        let out = fetch(&mut pf, FetchEvent::hit(LineAddr(900), Some(LineAddr(100))));
        assert!(out.is_empty());
        let out = fetch(&mut pf, FetchEvent::miss(LineAddr(98), Some(LineAddr(97))));
        assert_eq!(lines(&out), [99, 100, 101, 102]);
    }

    #[test]
    fn sequential_miss_does_not_allocate() {
        let mut pf = DiscontinuityPrefetcher::new(DiscontinuityConfig::default());
        fetch(
            &mut pf,
            FetchEvent::miss(LineAddr(101), Some(LineAddr(100))),
        );
        assert_eq!(pf.table().occupancy(), 0);
    }

    #[test]
    fn useful_feedback_reinforces_entry() {
        let mut pf = DiscontinuityPrefetcher::new(DiscontinuityConfig {
            table_entries: 16,
            ahead: 4,
            min_confidence: 0,
        });
        fetch(&mut pf, FetchEvent::miss(LineAddr(900), Some(LineAddr(1))));
        // Wear the entry down with conflicting allocations (17 aliases 1).
        fetch(&mut pf, FetchEvent::miss(LineAddr(700), Some(LineAddr(17))));
        fetch(&mut pf, FetchEvent::miss(LineAddr(700), Some(LineAddr(17))));
        // Reinforce through the feedback path.
        let (_, idx) = pf.table().lookup(LineAddr(1)).unwrap();
        pf.on_prefetch_useful(
            LineAddr(900),
            PrefetchSource::Discontinuity { table_index: idx },
        );
        pf.on_prefetch_useful(
            LineAddr(900),
            PrefetchSource::Discontinuity { table_index: idx },
        );
        // Entry survives three more conflicts (counter back at 3).
        for _ in 0..3 {
            fetch(&mut pf, FetchEvent::miss(LineAddr(700), Some(LineAddr(17))));
        }
        assert!(pf.table().lookup(LineAddr(1)).is_some());
    }

    #[test]
    fn two_line_variant_has_shorter_window() {
        let mut pf = DiscontinuityPrefetcher::new(DiscontinuityConfig::two_line());
        let out = fetch(&mut pf, FetchEvent::miss(LineAddr(100), Some(LineAddr(99))));
        assert_eq!(lines(&out), [101, 102]);
        assert_eq!(pf.name(), "discont (2NL)");
    }

    #[test]
    fn sequential_feedback_is_ignored() {
        let mut pf = DiscontinuityPrefetcher::new(DiscontinuityConfig::default());
        // Must not panic or corrupt anything.
        pf.on_prefetch_useful(LineAddr(5), PrefetchSource::Sequential);
    }
}
