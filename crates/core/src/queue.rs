//! The per-core prefetch queue (Section 4.1 of the paper).

use std::collections::VecDeque;

use ipsim_types::LineAddr;

use crate::engine::PrefetchRequest;

/// Lifecycle state of a queue slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// Awaiting a tag-probe/issue slot.
    Waiting,
    /// Already issued; retained as a record so duplicates can be dropped.
    Issued,
    /// Invalidated by a matching demand fetch; retained as a record.
    Invalid,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    req: PrefetchRequest,
    state: SlotState,
}

/// Counters maintained by the [`PrefetchQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Requests accepted into the queue.
    pub pushed: u64,
    /// Requests dropped because a matching issued/invalidated record
    /// existed.
    pub dropped_record: u64,
    /// Requests that matched a waiting entry and hoisted it to the head.
    pub hoisted: u64,
    /// Waiting prefetches dropped by overflow (oldest first).
    pub dropped_overflow: u64,
    /// Waiting prefetches invalidated by demand fetches.
    pub invalidated: u64,
    /// Prefetches handed to the issue path.
    pub issued: u64,
}

/// The paper's prefetch queue: finite, managed **last-in first-out** so
/// fresh prefetches de-emphasise stale ones, with
///
/// * no duplicates — a request matching a *waiting* entry hoists that entry
///   to the head instead of enqueueing; one matching an *issued* or
///   *invalidated* record is dropped;
/// * demand-fetch invalidation — every demand fetch marks matching waiting
///   entries invalid;
/// * record retention — unused slots keep issued/invalidated line records,
///   extending the dedup horizon;
/// * overflow — when full of waiting entries, the **oldest** waiting
///   prefetch is dropped (records are reclaimed first).
///
/// # Examples
///
/// ```
/// use ipsim_core::{PrefetchQueue, PrefetchRequest};
/// use ipsim_types::LineAddr;
///
/// let mut q = PrefetchQueue::new(32);
/// q.push_batch(&[
///     PrefetchRequest::sequential(LineAddr(1)),
///     PrefetchRequest::sequential(LineAddr(2)),
/// ]);
/// // Batch order is issue-priority order.
/// assert_eq!(q.pop_issue().unwrap().line, LineAddr(1));
/// assert_eq!(q.pop_issue().unwrap().line, LineAddr(2));
/// assert!(q.pop_issue().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct PrefetchQueue {
    /// Front = head (most recent / highest priority).
    slots: VecDeque<Slot>,
    capacity: usize,
    stats: QueueStats,
}

impl PrefetchQueue {
    /// Creates a queue with `capacity` slots (the paper uses 32 per core).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> PrefetchQueue {
        assert!(capacity > 0, "queue capacity must be non-zero");
        PrefetchQueue {
            slots: VecDeque::with_capacity(capacity),
            capacity,
            stats: QueueStats::default(),
        }
    }

    /// Queue statistics.
    pub fn stats(&self) -> &QueueStats {
        &self.stats
    }

    /// Empties the queue — entries, dedup records and statistics — back to
    /// the state of a freshly built queue (run-reuse reset).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.stats = QueueStats::default();
    }

    /// Number of waiting (issuable) entries.
    pub fn waiting(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.state == SlotState::Waiting)
            .count()
    }

    /// The state of the slot holding `line`, if any.
    pub fn slot_state(&self, line: LineAddr) -> Option<SlotState> {
        self.slots
            .iter()
            .find(|s| s.req.line == line)
            .map(|s| s.state)
    }

    /// Pushes one request, applying dedup / hoisting / overflow rules.
    pub fn push(&mut self, req: PrefetchRequest) {
        if let Some(pos) = self.slots.iter().position(|s| s.req.line == req.line) {
            match self.slots[pos].state {
                SlotState::Waiting => {
                    // Hoist the existing entry to the head.
                    let slot = self.slots.remove(pos).expect("position exists");
                    self.slots.push_front(slot);
                    self.stats.hoisted += 1;
                }
                SlotState::Issued | SlotState::Invalid => {
                    self.stats.dropped_record += 1;
                }
            }
            return;
        }
        if self.slots.len() == self.capacity {
            // Reclaim the oldest record first; only drop a real (waiting)
            // prefetch — the oldest — when no record remains.
            if let Some(pos) = self
                .slots
                .iter()
                .rposition(|s| s.state != SlotState::Waiting)
            {
                self.slots.remove(pos);
            } else {
                self.slots.pop_back();
                self.stats.dropped_overflow += 1;
            }
        }
        self.slots.push_front(Slot {
            req,
            state: SlotState::Waiting,
        });
        self.stats.pushed += 1;
    }

    /// Pushes a batch whose order is *issue-priority* order: `batch[0]`
    /// will be issued first (the batch is enqueued back-to-front so LIFO
    /// issue preserves the intended priority).
    pub fn push_batch(&mut self, batch: &[PrefetchRequest]) {
        for req in batch.iter().rev() {
            self.push(*req);
        }
    }

    /// Takes the highest-priority waiting prefetch for issue, leaving an
    /// issued record behind.
    pub fn pop_issue(&mut self) -> Option<PrefetchRequest> {
        let pos = self
            .slots
            .iter()
            .position(|s| s.state == SlotState::Waiting)?;
        self.slots[pos].state = SlotState::Issued;
        self.stats.issued += 1;
        Some(self.slots[pos].req)
    }

    /// A demand fetch of `line` occurred: invalidate matching waiting
    /// entries (the prefetch is now pointless — the miss already happened).
    pub fn on_demand_fetch(&mut self, line: LineAddr) {
        for s in &mut self.slots {
            if s.req.line == line && s.state == SlotState::Waiting {
                s.state = SlotState::Invalid;
                self.stats.invalidated += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::PrefetchSource;

    fn req(l: u64) -> PrefetchRequest {
        PrefetchRequest::sequential(LineAddr(l))
    }

    #[test]
    fn lifo_issue_order_for_separate_pushes() {
        let mut q = PrefetchQueue::new(8);
        q.push(req(1));
        q.push(req(2));
        q.push(req(3));
        // Last in, first out.
        assert_eq!(q.pop_issue().unwrap().line, LineAddr(3));
        assert_eq!(q.pop_issue().unwrap().line, LineAddr(2));
        assert_eq!(q.pop_issue().unwrap().line, LineAddr(1));
        assert!(q.pop_issue().is_none());
    }

    #[test]
    fn batch_preserves_priority_order() {
        let mut q = PrefetchQueue::new(8);
        q.push_batch(&[req(10), req(11), req(12)]);
        assert_eq!(q.pop_issue().unwrap().line, LineAddr(10));
        assert_eq!(q.pop_issue().unwrap().line, LineAddr(11));
        assert_eq!(q.pop_issue().unwrap().line, LineAddr(12));
    }

    #[test]
    fn duplicate_of_waiting_hoists() {
        let mut q = PrefetchQueue::new(8);
        q.push(req(1));
        q.push(req(2));
        q.push(req(1)); // hoist 1 above 2
        assert_eq!(q.pop_issue().unwrap().line, LineAddr(1));
        assert_eq!(q.pop_issue().unwrap().line, LineAddr(2));
        assert_eq!(q.stats().hoisted, 1);
        assert_eq!(q.stats().pushed, 2);
    }

    #[test]
    fn duplicate_of_issued_is_dropped() {
        let mut q = PrefetchQueue::new(8);
        q.push(req(1));
        q.pop_issue();
        q.push(req(1));
        assert!(q.pop_issue().is_none());
        assert_eq!(q.stats().dropped_record, 1);
    }

    #[test]
    fn duplicate_of_invalidated_is_dropped() {
        let mut q = PrefetchQueue::new(8);
        q.push(req(1));
        q.on_demand_fetch(LineAddr(1));
        assert_eq!(q.slot_state(LineAddr(1)), Some(SlotState::Invalid));
        q.push(req(1));
        assert!(q.pop_issue().is_none());
        assert_eq!(q.stats().invalidated, 1);
        assert_eq!(q.stats().dropped_record, 1);
    }

    #[test]
    fn overflow_reclaims_records_before_dropping_waiting() {
        let mut q = PrefetchQueue::new(3);
        q.push(req(1));
        q.pop_issue(); // slot 1 becomes a record
        q.push(req(2));
        q.push(req(3));
        // Queue full: [3, 2, record(1)]. Pushing 4 reclaims the record.
        q.push(req(4));
        assert_eq!(q.stats().dropped_overflow, 0);
        assert!(q.slot_state(LineAddr(1)).is_none());
        // Now full of waiting entries; pushing 5 drops the oldest (2).
        q.push(req(5));
        assert_eq!(q.stats().dropped_overflow, 1);
        assert!(q.slot_state(LineAddr(2)).is_none());
        assert_eq!(q.waiting(), 3);
    }

    #[test]
    fn no_duplicates_invariant() {
        let mut q = PrefetchQueue::new(4);
        for _ in 0..10 {
            q.push(req(7));
        }
        assert_eq!(q.waiting(), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        PrefetchQueue::new(0);
    }

    #[test]
    fn source_metadata_round_trips() {
        let mut q = PrefetchQueue::new(4);
        q.push(PrefetchRequest::new(
            LineAddr(9),
            PrefetchSource::Discontinuity { table_index: 5 },
        ));
        let out = q.pop_issue().unwrap();
        assert_eq!(out.source, PrefetchSource::Discontinuity { table_index: 5 });
    }
}
