//! A multi-target ("Markov") discontinuity predictor — the design point
//! the paper argues *against* (Joseph & Grunwald's Markov prefetching,
//! and the multi-target tables of call-graph prefetching).
//!
//! Structurally identical to the single-target
//! [`DiscontinuityPrefetcher`](crate::DiscontinuityPrefetcher) — same
//! allocation rule, same probe-ahead, same sequential partner — except that
//! each entry stores up to [`MARKOV_WAYS`] targets in MRU order and predicts
//! all of them. The paper's observation is that, at line granularity, most
//! triggers have a single target, so the extra ways mostly waste storage
//! and bandwidth; this implementation exists to let the ablation harness
//! verify exactly that trade-off.

use ipsim_types::LineAddr;

use crate::engine::{FetchEvent, PrefetchEngine, PrefetchRequest, PrefetchSource};

/// Targets stored per entry.
pub const MARKOV_WAYS: usize = 2;

#[derive(Debug, Clone, Copy)]
struct Entry {
    trigger: LineAddr,
    /// Targets in MRU order; `None` in unused ways.
    targets: [Option<LineAddr>; MARKOV_WAYS],
}

/// Multi-target discontinuity predictor with a next-N-line partner.
#[derive(Debug, Clone)]
pub struct MarkovPrefetcher {
    entries: Vec<Option<Entry>>,
    mask: u64,
    ahead: u32,
    frontier: Option<LineAddr>,
}

impl MarkovPrefetcher {
    /// Creates a predictor with `table_entries` slots and prefetch-ahead
    /// distance `ahead`.
    ///
    /// # Panics
    ///
    /// Panics unless `table_entries` is a non-zero power of two and `ahead`
    /// is non-zero.
    pub fn new(table_entries: usize, ahead: u32) -> MarkovPrefetcher {
        assert!(
            table_entries > 0 && table_entries.is_power_of_two(),
            "table entries must be a non-zero power of two"
        );
        assert!(ahead > 0, "prefetch-ahead distance must be non-zero");
        MarkovPrefetcher {
            entries: vec![None; table_entries],
            mask: table_entries as u64 - 1,
            ahead,
            frontier: None,
        }
    }

    #[inline]
    fn index(&self, line: LineAddr) -> usize {
        (line.0 & self.mask) as usize
    }

    fn allocate(&mut self, trigger: LineAddr, target: LineAddr) {
        let idx = self.index(trigger);
        match &mut self.entries[idx] {
            Some(e) if e.trigger == trigger => {
                // Promote the target to MRU, inserting it if new.
                if e.targets[0] == Some(target) {
                    return;
                }
                e.targets[1] = e.targets[0];
                e.targets[0] = Some(target);
            }
            slot => {
                *slot = Some(Entry {
                    trigger,
                    targets: [Some(target), None],
                });
            }
        }
    }
}

impl PrefetchEngine for MarkovPrefetcher {
    fn on_fetch(&mut self, ev: &FetchEvent, out: &mut Vec<PrefetchRequest>) {
        if ev.miss && ev.is_discontinuity() {
            if let Some(prev) = ev.prev_line {
                self.allocate(prev, ev.line);
            }
        }

        let window_end = ev.line.ahead(self.ahead as u64);
        if ev.miss || ev.first_use_of_prefetch {
            for d in 1..=self.ahead as u64 {
                out.push(PrefetchRequest::sequential(ev.line.ahead(d)));
            }
        }

        let covered_span = 4 * self.ahead as u64;
        let probe_from = match self.frontier {
            Some(f) if ev.line.0 <= f.0 && f.0 - ev.line.0 <= covered_span => {
                if f.0 >= window_end.0 {
                    return;
                }
                f.next()
            }
            _ => ev.line,
        };
        self.frontier = Some(window_end);

        let mut probe = probe_from;
        while probe.0 <= window_end.0 {
            let idx = self.index(probe);
            if let Some(e) = &self.entries[idx] {
                if e.trigger == probe {
                    let remainder = window_end.0 - probe.0;
                    for target in e.targets.iter().flatten() {
                        out.push(PrefetchRequest::new(*target, PrefetchSource::Target));
                        for k in 1..=remainder {
                            out.push(PrefetchRequest::sequential(target.ahead(k)));
                        }
                    }
                }
            }
            probe = probe.next();
        }
    }

    fn name(&self) -> &'static str {
        "markov (2-target)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fetch(pf: &mut MarkovPrefetcher, ev: FetchEvent) -> Vec<u64> {
        let mut out = Vec::new();
        pf.on_fetch(&ev, &mut out);
        out.iter().map(|r| r.line.0).collect()
    }

    #[test]
    fn predicts_both_observed_targets() {
        let mut pf = MarkovPrefetcher::new(64, 4);
        // Trigger line 10 was seen jumping to 500 and then to 900.
        fetch(&mut pf, FetchEvent::miss(LineAddr(500), Some(LineAddr(10))));
        fetch(&mut pf, FetchEvent::miss(LineAddr(900), Some(LineAddr(10))));
        // A miss at 10 probes the window [10, 14] and predicts both.
        let lines = fetch(&mut pf, FetchEvent::miss(LineAddr(10), Some(LineAddr(9))));
        assert!(lines.contains(&900), "{lines:?}");
        assert!(lines.contains(&500), "{lines:?}");
    }

    #[test]
    fn third_target_evicts_lru() {
        let mut pf = MarkovPrefetcher::new(64, 4);
        for t in [500u64, 900, 700] {
            fetch(&mut pf, FetchEvent::miss(LineAddr(t), Some(LineAddr(10))));
            // Reset the stream away from the trigger between misses.
            fetch(&mut pf, FetchEvent::hit(LineAddr(2000), Some(LineAddr(t))));
        }
        let lines = fetch(&mut pf, FetchEvent::miss(LineAddr(10), Some(LineAddr(9))));
        assert!(lines.contains(&700));
        assert!(lines.contains(&900));
        assert!(!lines.contains(&500), "LRU target evicted: {lines:?}");
    }

    #[test]
    fn repeated_target_is_not_duplicated() {
        let mut pf = MarkovPrefetcher::new(64, 4);
        fetch(&mut pf, FetchEvent::miss(LineAddr(500), Some(LineAddr(10))));
        fetch(&mut pf, FetchEvent::miss(LineAddr(500), Some(LineAddr(10))));
        let lines = fetch(&mut pf, FetchEvent::miss(LineAddr(10), Some(LineAddr(9))));
        assert_eq!(lines.iter().filter(|&&l| l == 500).count(), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        MarkovPrefetcher::new(100, 4);
    }
}
