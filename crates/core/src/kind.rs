//! A descriptive enum of prefetcher configurations, used by experiments to
//! sweep schemes.

use crate::discontinuity::{DiscontinuityConfig, DiscontinuityPrefetcher};
use crate::engine::{NoPrefetcher, PrefetchEngine};
use crate::markov::MarkovPrefetcher;
use crate::sequential::{
    LookaheadPrefetcher, NextLineMode, NextLinePrefetcher, NextNLinePrefetcher,
};
use crate::target::TargetPrefetcher;
use crate::wrongpath::WrongPathPrefetcher;

/// A prefetcher configuration that can be instantiated per core.
///
/// # Examples
///
/// ```
/// use ipsim_core::PrefetcherKind;
///
/// let engine = PrefetcherKind::discontinuity_default().build();
/// assert_eq!(engine.name(), "discontinuity");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefetcherKind {
    /// No prefetching (baseline).
    None,
    /// Next-line, issued on every fetch.
    NextLineAlways,
    /// Next-line, issued on a miss.
    NextLineOnMiss,
    /// Next-line, tagged.
    NextLineTagged,
    /// Next-N-line, tagged.
    NextNLineTagged {
        /// Prefetch-ahead distance.
        n: u32,
    },
    /// Single-line lookahead at distance N.
    Lookahead {
        /// Lookahead distance.
        n: u32,
    },
    /// The paper's discontinuity prefetcher + next-N-line partner.
    Discontinuity {
        /// Prediction-table entries (power of two).
        table_entries: usize,
        /// Prefetch-ahead distance.
        ahead: u32,
    },
    /// The confidence-gated discontinuity extension: entries predict only
    /// while their counter is at least `min_confidence`, and useless
    /// prefetch evictions weaken the counter.
    DiscontinuityGated {
        /// Prediction-table entries (power of two).
        table_entries: usize,
        /// Prefetch-ahead distance.
        ahead: u32,
        /// Confidence threshold (≥ 1).
        min_confidence: u8,
    },
    /// Classic history-based target prefetcher.
    Target {
        /// Table entries (power of two).
        table_entries: usize,
    },
    /// Wrong-path prefetching (Pierce & Mudge): prefetch the untaken
    /// outcome of conditional branches.
    WrongPath {
        /// Also prefetch the next line on misses.
        next_line: bool,
    },
    /// Multi-target (Markov) discontinuity predictor: like
    /// [`PrefetcherKind::Discontinuity`] but with two targets per entry.
    Markov {
        /// Table entries (power of two).
        table_entries: usize,
        /// Prefetch-ahead distance.
        ahead: u32,
    },
}

impl PrefetcherKind {
    /// The four schemes compared throughout the paper's Figures 5–8.
    pub const PAPER_SCHEMES: [PrefetcherKind; 4] = [
        PrefetcherKind::NextLineOnMiss,
        PrefetcherKind::NextLineTagged,
        PrefetcherKind::NextNLineTagged { n: 4 },
        PrefetcherKind::Discontinuity {
            table_entries: 8192,
            ahead: 4,
        },
    ];

    /// The paper's default discontinuity configuration (8K entries,
    /// next-4-line).
    pub fn discontinuity_default() -> PrefetcherKind {
        PrefetcherKind::Discontinuity {
            table_entries: 8192,
            ahead: 4,
        }
    }

    /// The higher-accuracy next-2-line discontinuity variant of Figure 9.
    pub fn discontinuity_2nl() -> PrefetcherKind {
        PrefetcherKind::Discontinuity {
            table_entries: 8192,
            ahead: 2,
        }
    }

    /// Instantiates a fresh engine of this kind (one per core).
    pub fn build(&self) -> Box<dyn PrefetchEngine> {
        match *self {
            PrefetcherKind::None => Box::new(NoPrefetcher::new()),
            PrefetcherKind::NextLineAlways => {
                Box::new(NextLinePrefetcher::new(NextLineMode::Always))
            }
            PrefetcherKind::NextLineOnMiss => {
                Box::new(NextLinePrefetcher::new(NextLineMode::OnMiss))
            }
            PrefetcherKind::NextLineTagged => {
                Box::new(NextLinePrefetcher::new(NextLineMode::Tagged))
            }
            PrefetcherKind::NextNLineTagged { n } => Box::new(NextNLinePrefetcher::new(n)),
            PrefetcherKind::Lookahead { n } => Box::new(LookaheadPrefetcher::new(n)),
            PrefetcherKind::Discontinuity {
                table_entries,
                ahead,
            } => Box::new(DiscontinuityPrefetcher::new(DiscontinuityConfig {
                table_entries,
                ahead,
                min_confidence: 0,
            })),
            PrefetcherKind::DiscontinuityGated {
                table_entries,
                ahead,
                min_confidence,
            } => Box::new(DiscontinuityPrefetcher::new(DiscontinuityConfig {
                table_entries,
                ahead,
                min_confidence,
            })),
            PrefetcherKind::Target { table_entries } => {
                Box::new(TargetPrefetcher::new(table_entries))
            }
            PrefetcherKind::WrongPath { next_line } => Box::new(if next_line {
                WrongPathPrefetcher::with_next_line()
            } else {
                WrongPathPrefetcher::new()
            }),
            PrefetcherKind::Markov {
                table_entries,
                ahead,
            } => Box::new(MarkovPrefetcher::new(table_entries, ahead)),
        }
    }

    /// Human-readable label matching the paper's legends.
    pub fn label(&self) -> String {
        match *self {
            PrefetcherKind::None => "no prefetch".to_string(),
            PrefetcherKind::NextLineAlways => "next-line (always)".to_string(),
            PrefetcherKind::NextLineOnMiss => "next-line (on miss)".to_string(),
            PrefetcherKind::NextLineTagged => "next-line (tagged)".to_string(),
            PrefetcherKind::NextNLineTagged { n } => format!("next-{n}-lines (tagged)"),
            PrefetcherKind::Lookahead { n } => format!("lookahead-{n}"),
            PrefetcherKind::Discontinuity {
                table_entries,
                ahead,
            } => {
                if ahead == 2 {
                    format!("discont (2NL, {table_entries})")
                } else if table_entries == 8192 {
                    "discontinuity".to_string()
                } else {
                    format!("discontinuity ({table_entries})")
                }
            }
            PrefetcherKind::DiscontinuityGated { min_confidence, .. } => {
                format!("discontinuity (gated >={min_confidence})")
            }
            PrefetcherKind::Target { table_entries } => format!("target ({table_entries})"),
            PrefetcherKind::WrongPath { next_line } => {
                if next_line {
                    "wrong-path + next-line".to_string()
                } else {
                    "wrong-path".to_string()
                }
            }
            PrefetcherKind::Markov {
                table_entries,
                ahead,
            } => format!("markov 2-target ({table_entries}, N{ahead})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds() {
        let kinds = [
            PrefetcherKind::None,
            PrefetcherKind::NextLineAlways,
            PrefetcherKind::NextLineOnMiss,
            PrefetcherKind::NextLineTagged,
            PrefetcherKind::NextNLineTagged { n: 4 },
            PrefetcherKind::Lookahead { n: 4 },
            PrefetcherKind::discontinuity_default(),
            PrefetcherKind::discontinuity_2nl(),
            PrefetcherKind::Target {
                table_entries: 4096,
            },
            PrefetcherKind::WrongPath { next_line: true },
            PrefetcherKind::WrongPath { next_line: false },
            PrefetcherKind::Markov {
                table_entries: 8192,
                ahead: 4,
            },
        ];
        for k in kinds {
            let engine = k.build();
            assert!(!engine.name().is_empty());
            assert!(!k.label().is_empty());
        }
    }

    #[test]
    fn paper_schemes_match_figures() {
        let labels: Vec<String> = PrefetcherKind::PAPER_SCHEMES
            .iter()
            .map(|k| k.label())
            .collect();
        assert_eq!(
            labels,
            [
                "next-line (on miss)",
                "next-line (tagged)",
                "next-4-lines (tagged)",
                "discontinuity",
            ]
        );
    }
}
