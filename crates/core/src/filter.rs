//! The recent-demand-fetch filter (Section 4.1 of the paper).

use ipsim_types::LineAddr;

/// Tracks the most recent demand-fetched lines; prefetch candidates that
/// match are dropped *before* consuming a cache tag-probe slot.
///
/// The paper keeps the last 32 demand fetches per core; with the rest of
/// the filtering pipeline this removes the vast majority of unnecessary
/// prefetch tag accesses, making tag duplication unnecessary.
///
/// # Examples
///
/// ```
/// use ipsim_core::RecentFetchFilter;
/// use ipsim_types::LineAddr;
///
/// let mut f = RecentFetchFilter::new(4);
/// f.record(LineAddr(10));
/// assert!(f.contains(LineAddr(10)));
/// assert!(!f.contains(LineAddr(11)));
/// ```
#[derive(Debug, Clone)]
pub struct RecentFetchFilter {
    ring: Vec<LineAddr>,
    head: usize,
    filled: usize,
}

impl RecentFetchFilter {
    /// Creates a filter remembering the last `capacity` demand fetches.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> RecentFetchFilter {
        assert!(capacity > 0, "filter capacity must be non-zero");
        RecentFetchFilter {
            ring: vec![LineAddr(u64::MAX); capacity],
            head: 0,
            filled: 0,
        }
    }

    /// Records a demand fetch. Consecutive duplicates are collapsed (the
    /// fetch stream revisits its current line constantly).
    pub fn record(&mut self, line: LineAddr) {
        if self.filled > 0 {
            let last = (self.head + self.ring.len() - 1) % self.ring.len();
            if self.ring[last] == line {
                return;
            }
        }
        self.ring[self.head] = line;
        self.head = (self.head + 1) % self.ring.len();
        self.filled = (self.filled + 1).min(self.ring.len());
    }

    /// Forgets every recorded fetch, restoring the state of a freshly
    /// built filter (run-reuse reset).
    pub fn clear(&mut self) {
        self.ring.fill(LineAddr(u64::MAX));
        self.head = 0;
        self.filled = 0;
    }

    /// `true` when `line` was among the recorded recent fetches.
    pub fn contains(&self, line: LineAddr) -> bool {
        // The ring is pre-filled with an unreachable sentinel line address,
        // so scanning every slot is safe before the ring fills.
        line.0 != u64::MAX && self.ring.contains(&line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remembers_up_to_capacity() {
        let mut f = RecentFetchFilter::new(3);
        for l in 1..=3u64 {
            f.record(LineAddr(l));
        }
        assert!(f.contains(LineAddr(1)));
        assert!(f.contains(LineAddr(2)));
        assert!(f.contains(LineAddr(3)));
        f.record(LineAddr(4)); // evicts 1
        assert!(!f.contains(LineAddr(1)));
        assert!(f.contains(LineAddr(4)));
    }

    #[test]
    fn consecutive_duplicates_collapse() {
        let mut f = RecentFetchFilter::new(2);
        f.record(LineAddr(1));
        f.record(LineAddr(1));
        f.record(LineAddr(1));
        f.record(LineAddr(2));
        // 1 was recorded once, so both survive in a 2-entry filter.
        assert!(f.contains(LineAddr(1)));
        assert!(f.contains(LineAddr(2)));
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = RecentFetchFilter::new(4);
        assert!(!f.contains(LineAddr(0)));
        assert!(!f.contains(LineAddr(u64::MAX)));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        RecentFetchFilter::new(0);
    }
}
