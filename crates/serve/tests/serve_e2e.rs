//! End-to-end tests over real sockets: submit → poll → result
//! byte-identity with the batch CLI, dedup/coalescing, backpressure,
//! rate limiting, and drain → restart → recovery.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use ipsim_serve::client::{self, Response};
use ipsim_serve::{start, ServeConfig, ServerHandle, Service};
use ipsim_telemetry::json::Json;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ipsim-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(root: &Path, workers: usize) -> ServeConfig {
    ServeConfig {
        dir: root.join("serve"),
        cache_dir: root.join("cache"),
        trace_dir: None,
        telemetry_root: None,
        workers,
        job_fanout: 1,
        max_queue: 16,
        rate_capacity: 1e9,
        rate_refill: 1e9,
        sync_journal: false,
    }
}

fn boot(config: ServeConfig) -> ServerHandle {
    let service = Service::open(config).unwrap();
    start(service, "127.0.0.1:0").unwrap()
}

fn spec_json(workload: &str, prefetcher: &str) -> String {
    format!(
        "{{\"v\":1,\"runs\":[{{\"config\":\"single_core\",\"workload\":\"{workload}\",\
         \"prefetcher\":\"{prefetcher}\",\"policy\":\"install_both\",\
         \"warm\":2000,\"measure\":5000}}]}}"
    )
}

fn submit(addr: &str, spec: &str) -> Response {
    client::submit_json(addr, "e2e", spec).unwrap()
}

fn field<'a>(json: &'a Json, name: &str) -> &'a str {
    json.get(name).and_then(Json::as_str).unwrap_or("")
}

#[test]
fn http_job_matches_batch_cli_byte_for_byte() {
    let root = tmp("bytes");
    let handle = boot(config(&root, 1));
    let addr = handle.addr.to_string();

    // Liveness first.
    let health = client::request(&addr, "GET", "/v1/healthz", &[], None).unwrap();
    assert_eq!(health.status, 200);
    assert!(health.body.contains("\"ok\":true"));

    // Submit, poll to done, fetch the result.
    let accepted = submit(&addr, &spec_json("db", "nl_tagged"));
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let id = field(&accepted.json().unwrap(), "id").to_string();
    let state = client::wait_terminal(&addr, &id, Duration::from_secs(120)).unwrap();
    assert_eq!(state, "done");

    let result =
        client::request(&addr, "GET", &format!("/v1/jobs/{id}/result"), &[], None).unwrap();
    assert_eq!(result.status, 200, "{}", result.body);
    let result = result.json().unwrap();
    let runs = result.get("results").and_then(Json::as_arr).unwrap();
    assert_eq!(runs.len(), 1);
    assert!(matches!(runs[0].get("ok"), Some(Json::Bool(true))));

    // The served TSV is byte-identical to executing the same spec the way
    // the batch CLI does.
    let direct = ipsim_harness::wire::JobSpec::from_json(&spec_json("db", "nl_tagged"))
        .unwrap()
        .to_run_specs()
        .unwrap()[0]
        .execute();
    assert_eq!(field(&runs[0], "tsv"), direct.to_tsv());

    // The shell-friendly rendering carries the same line.
    let tsv = client::request(
        &addr,
        "GET",
        &format!("/v1/jobs/{id}/result?format=tsv"),
        &[],
        None,
    )
    .unwrap();
    assert_eq!(tsv.status, 200);
    assert!(tsv.body.starts_with("# ipsim-job-result v1\n"));
    assert!(tsv.body.contains(&format!("\tok\t{}\n", direct.to_tsv())));

    // An identical submission is served from the run cache, instantly.
    let dup = submit(&addr, &spec_json("db", "nl_tagged"));
    assert_eq!(dup.status, 200, "{}", dup.body);
    let dup = dup.json().unwrap();
    assert_eq!(field(&dup, "dedup"), "cache");
    assert_eq!(field(&dup, "state"), "done");

    // Unknown jobs and endpoints answer 404.
    let missing = client::request(&addr, "GET", "/v1/jobs/j-999", &[], None).unwrap();
    assert_eq!(missing.status, 404);
    let nowhere = client::request(&addr, "GET", "/v2/nope", &[], None).unwrap();
    assert_eq!(nowhere.status, 404);

    handle.join();
    let _ = std::fs::remove_dir_all(&root);
}

/// The acceptance bar for the prefetcher-zoo bake-off: the table built
/// from a batch-style local sweep and the table built from the *same*
/// specs submitted as one daemon job must match byte for byte — both
/// sides render from their own on-disk telemetry artifacts plus the
/// per-run summaries, never from shared in-process state.
#[test]
fn zoo_bakeoff_job_matches_the_batch_pipeline_byte_for_byte() {
    use ipsim_experiments::bakeoff::{bakeoff_specs, render_bakeoff};
    use ipsim_harness::wire::{JobSpec, WireRun};
    use ipsim_harness::{RunLengths, Summary, TelemetrySink};
    use ipsim_telemetry::TelemetryConfig;

    let root = tmp("bakeoff");
    let specs = bakeoff_specs(RunLengths {
        warm: 2_000,
        measure: 6_000,
    });

    // Batch side: execute every spec locally, staging artifacts the same
    // way the figure harness does.
    let batch_sink = TelemetrySink::at(root.join("batch-telem"), TelemetryConfig::default());
    let batch: Vec<Summary> = specs
        .iter()
        .map(|spec| {
            let mut system = spec.build_system();
            system.enable_telemetry(batch_sink.config().clone());
            let metrics =
                system.run_workload(&spec.workloads, spec.lengths.warm, spec.lengths.measure);
            let run = system.take_telemetry().expect("telemetry enabled");
            batch_sink.write(spec, &run).expect("artifact write");
            Summary::from_metrics(&metrics)
        })
        .collect();
    let mut batch_it = batch.into_iter();
    let batch_table = render_bakeoff(&batch_sink, &specs, move |_| batch_it.next().unwrap())
        .expect("batch bake-off renders");

    // Serve side: the whole sweep as one job, telemetry staged by the
    // daemon's own sink.
    let mut serve_config = config(&root, 2);
    serve_config.telemetry_root = Some(root.join("serve-telem"));
    let handle = boot(serve_config);
    let addr = handle.addr.to_string();

    let job = JobSpec::new(
        specs
            .iter()
            .map(|spec| WireRun::from_run_spec(spec).expect("bake-off specs are wire-expressible"))
            .collect(),
    )
    .unwrap();
    let accepted = submit(&addr, &job.to_json());
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let id = field(&accepted.json().unwrap(), "id").to_string();
    let state = client::wait_terminal(&addr, &id, Duration::from_secs(300)).unwrap();
    assert_eq!(state, "done");

    let result =
        client::request(&addr, "GET", &format!("/v1/jobs/{id}/result"), &[], None).unwrap();
    assert_eq!(result.status, 200, "{}", result.body);
    let result = result.json().unwrap();
    let runs = result.get("results").and_then(Json::as_arr).unwrap();
    assert_eq!(runs.len(), specs.len());
    let served: Vec<Summary> = runs
        .iter()
        .map(|run| {
            assert!(matches!(run.get("ok"), Some(Json::Bool(true))));
            Summary::from_tsv(field(run, "tsv")).expect("served summary parses")
        })
        .collect();

    let serve_sink = TelemetrySink::at(root.join("serve-telem"), TelemetryConfig::default());
    let mut served_it = served.into_iter();
    let serve_table = render_bakeoff(&serve_sink, &specs, move |_| served_it.next().unwrap())
        .expect("served bake-off renders");
    assert_eq!(
        batch_table, serve_table,
        "bake-off tables diverge between batch and daemon pipelines"
    );

    handle.join();
    let _ = std::fs::remove_dir_all(&root);
}

/// `job_fanout` chunks a job's runs with the sweep shard planner and fans
/// each chunk across a pool; the response must still list results in
/// submitted run order with byte-identical TSV lines.
#[test]
fn job_fanout_preserves_result_order_and_bytes() {
    let multi_spec = "{\"v\":1,\"runs\":[\
         {\"config\":\"single_core\",\"workload\":\"db\",\"prefetcher\":\"none\",\
          \"policy\":\"install_both\",\"warm\":2000,\"measure\":5000},\
         {\"config\":\"single_core\",\"workload\":\"web\",\"prefetcher\":\"nl_tagged\",\
          \"policy\":\"install_both\",\"warm\":2000,\"measure\":5000},\
         {\"config\":\"single_core\",\"workload\":\"japp\",\"prefetcher\":\"none\",\
          \"policy\":\"install_both\",\"warm\":2000,\"measure\":5000},\
         {\"config\":\"single_core\",\"workload\":\"tpcw\",\"prefetcher\":\"nl_always\",\
          \"policy\":\"install_both\",\"warm\":2000,\"measure\":5000},\
         {\"config\":\"single_core\",\"workload\":\"mixed\",\"prefetcher\":\"none\",\
          \"policy\":\"install_both\",\"warm\":2000,\"measure\":5000}]}";

    let run_job = |tag: &str, fanout: usize| -> (Vec<String>, PathBuf) {
        let root = tmp(tag);
        let mut cfg = config(&root, 1);
        cfg.job_fanout = fanout;
        let handle = boot(cfg);
        let addr = handle.addr.to_string();
        let accepted = submit(&addr, multi_spec);
        assert_eq!(accepted.status, 202, "{}", accepted.body);
        let id = field(&accepted.json().unwrap(), "id").to_string();
        let state = client::wait_terminal(&addr, &id, Duration::from_secs(300)).unwrap();
        assert_eq!(state, "done");
        let result =
            client::request(&addr, "GET", &format!("/v1/jobs/{id}/result"), &[], None).unwrap();
        assert_eq!(result.status, 200, "{}", result.body);
        let result = result.json().unwrap();
        let runs = result.get("results").and_then(Json::as_arr).unwrap();
        let rows: Vec<String> = runs
            .iter()
            .map(|run| {
                assert!(matches!(run.get("ok"), Some(Json::Bool(true))));
                format!("{}\t{}", field(run, "label"), field(run, "tsv"))
            })
            .collect();
        handle.join();
        (rows, root)
    };

    let (serial, root_a) = run_job("fanout-1", 1);
    let (fanned, root_b) = run_job("fanout-3", 3);
    assert_eq!(serial.len(), 5);
    assert_eq!(serial, fanned, "fan-out changed result order or bytes");
    let _ = std::fs::remove_dir_all(&root_a);
    let _ = std::fs::remove_dir_all(&root_b);
}

#[test]
fn tsv_submission_and_inflight_coalescing() {
    let root = tmp("coalesce");
    // No workers: jobs stay queued, so coalescing is deterministic.
    let handle = boot(config(&root, 0));
    let addr = handle.addr.to_string();

    let body = format!(
        "{}\nsingle_core\tweb\tnl_tagged\tinstall_both\t-\t2000\t5000\n",
        ipsim_harness::wire::TSV_HEADER
    );
    let first = client::request(
        &addr,
        "POST",
        "/v1/jobs",
        &[("Content-Type", "text/tab-separated-values")],
        Some(&body),
    )
    .unwrap();
    assert_eq!(first.status, 202, "{}", first.body);
    let first_id = field(&first.json().unwrap(), "id").to_string();

    // The same spec as JSON coalesces onto the queued job.
    let second = submit(&addr, &spec_json("web", "nl_tagged"));
    assert_eq!(second.status, 200, "{}", second.body);
    let second = second.json().unwrap();
    assert_eq!(field(&second, "id"), first_id);
    assert_eq!(field(&second, "dedup"), "inflight");

    // Progress endpoint shows the queued job.
    let status = client::request(&addr, "GET", &format!("/v1/jobs/{first_id}"), &[], None).unwrap();
    assert_eq!(status.status, 200);
    assert_eq!(field(&status.json().unwrap(), "state"), "queued");

    // Its result is not available yet: 409, not a hang or an empty 200.
    let early = client::request(
        &addr,
        "GET",
        &format!("/v1/jobs/{first_id}/result"),
        &[],
        None,
    )
    .unwrap();
    assert_eq!(early.status, 409);

    // A malformed spec is rejected at submit time.
    let bad = submit(&addr, "{\"v\":1,\"runs\":[{\"bogus\":true}]}");
    assert_eq!(bad.status, 400);

    handle.join();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn queue_overflow_answers_429() {
    let root = tmp("overflow");
    let mut config = config(&root, 0);
    config.max_queue = 2;
    let handle = boot(config);
    let addr = handle.addr.to_string();

    assert_eq!(submit(&addr, &spec_json("db", "none")).status, 202);
    assert_eq!(submit(&addr, &spec_json("web", "none")).status, 202);
    let full = submit(&addr, &spec_json("japp", "none"));
    assert_eq!(full.status, 429, "{}", full.body);
    assert!(full.body.contains("queue full"));

    let stats = client::request(&addr, "GET", "/v1/stats", &[], None).unwrap();
    assert!(
        stats.body.contains("\"rejected_queue_full\":1"),
        "{}",
        stats.body
    );
    assert!(stats.body.contains("\"queue_depth\":2"), "{}", stats.body);

    handle.join();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn rate_limiter_answers_429_per_client() {
    let root = tmp("rate");
    let mut config = config(&root, 0);
    config.rate_capacity = 2.0;
    config.rate_refill = 0.0;
    let handle = boot(config);
    let addr = handle.addr.to_string();

    let post =
        |client_id: &str, spec: &str| client::submit_json(&addr, client_id, spec).unwrap().status;
    assert_eq!(post("a", &spec_json("db", "none")), 202);
    assert_eq!(post("a", &spec_json("web", "none")), 202);
    let limited = client::submit_json(&addr, "a", &spec_json("japp", "none")).unwrap();
    assert_eq!(limited.status, 429, "{}", limited.body);
    assert!(limited.body.contains("rate limited"));
    // A different client is unaffected.
    assert_eq!(post("b", &spec_json("japp", "none")), 202);

    handle.join();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn drain_then_restart_recovers_and_finishes_queued_jobs() {
    let root = tmp("restart");

    // Boot with no workers, queue three jobs, then drain: the daemon
    // stops accepting but the queued jobs stay journaled.
    let first = boot(config(&root, 0));
    let addr = first.addr.to_string();
    let mut ids = Vec::new();
    for (workload, prefetcher) in [("db", "none"), ("web", "nl_tagged"), ("japp", "none")] {
        let accepted = submit(&addr, &spec_json(workload, prefetcher));
        assert_eq!(accepted.status, 202, "{}", accepted.body);
        ids.push(field(&accepted.json().unwrap(), "id").to_string());
    }
    first.shutdown();
    let rejected = client::submit_json(&addr, "e2e", &spec_json("tpcw", "none"));
    if let Ok(response) = rejected {
        assert_eq!(response.status, 503, "{}", response.body);
    }
    first.join();

    // Restart over the same directory with workers: every recovered job
    // must reach a terminal state and keep its id.
    let second = boot(config(&root, 2));
    let addr = second.addr.to_string();
    assert_eq!(
        second
            .service()
            .stats
            .recovered
            .load(std::sync::atomic::Ordering::Relaxed),
        3
    );
    for id in &ids {
        let state = client::wait_terminal(&addr, id, Duration::from_secs(120)).unwrap();
        assert_eq!(state, "done", "recovered job {id}");
    }

    second.join();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn service_is_shared_between_http_and_in_process_views() {
    let root = tmp("shared");
    let handle = boot(config(&root, 0));
    let addr = handle.addr.to_string();
    let service: &Arc<Service> = handle.service();

    assert_eq!(submit(&addr, &spec_json("db", "none")).status, 202);
    assert_eq!(service.queue_len(), 1);
    assert_eq!(service.job_count(), 1);

    handle.join();
    let _ = std::fs::remove_dir_all(&root);
}
