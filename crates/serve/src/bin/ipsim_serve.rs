//! The serving daemon: binds the v1 API, executes jobs until a signal
//! (SIGINT/SIGTERM) begins a graceful drain.

use std::time::Duration;

use ipsim_serve::{start, ServeConfig, Service};

const USAGE: &str = "\
usage: ipsim_serve [options]

  --bind ADDR       listen address (default 127.0.0.1:7791)
  --dir DIR         serve state dir: journal + runlog (default results/serve)
  --cache DIR       run-cache dir shared with the batch CLI (default results/cache)
  --traces DIR      trace-store dir; `none` disables (default results/traces)
  --telemetry DIR   collect per-run telemetry artifacts under DIR (default off)
  --workers N       job-executing worker threads (default: half the cores)
  --fanout N        runs executed concurrently within one job, partitioned
                    by the sweep shard planner (default 1: one at a time);
                    results are byte-identical for any N
  --max-queue N     queued-job bound before 429 (default 64)
  --rate BURST/SEC  per-client token bucket (default 16/4)
  --no-sync         skip the per-append journal fsync (benchmarks only)
  --help            this text

Signals: first SIGINT/SIGTERM drains (finish in-flight runs, keep queued
jobs journaled for the next boot); a second one kills the process.
";

fn main() {
    let mut bind = "127.0.0.1:7791".to_string();
    let mut config = ServeConfig::default_at("results/serve");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{name} needs a value\n\n{USAGE}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--bind" => bind = value("--bind"),
            "--dir" => config.dir = value("--dir").into(),
            "--cache" => config.cache_dir = value("--cache").into(),
            "--traces" => {
                let dir = value("--traces");
                config.trace_dir = (dir != "none").then(|| dir.into());
            }
            "--telemetry" => config.telemetry_root = Some(value("--telemetry").into()),
            "--workers" => config.workers = parse(&value("--workers"), "--workers"),
            "--fanout" => {
                config.job_fanout = parse(&value("--fanout"), "--fanout");
                if config.job_fanout == 0 {
                    eprintln!("--fanout needs a positive integer\n\n{USAGE}");
                    std::process::exit(2);
                }
            }
            "--max-queue" => config.max_queue = parse(&value("--max-queue"), "--max-queue"),
            "--rate" => {
                let spec = value("--rate");
                let Some((burst, rate)) = spec.split_once('/') else {
                    eprintln!("--rate expects BURST/SEC, got `{spec}`\n\n{USAGE}");
                    std::process::exit(2);
                };
                config.rate_capacity = parse::<f64>(burst, "--rate");
                config.rate_refill = parse::<f64>(rate, "--rate");
            }
            "--no-sync" => config.sync_journal = false,
            _ => {
                eprintln!("unknown argument `{arg}`\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    ipsim_signal::install();
    let service = match Service::open(config) {
        Ok(service) => service,
        Err(e) => {
            eprintln!("ipsim_serve: {e}");
            std::process::exit(1);
        }
    };
    let recovered = service
        .stats
        .recovered
        .load(std::sync::atomic::Ordering::Relaxed);
    let handle = match start(service, &bind) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("ipsim_serve: bind {bind}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "ipsim_serve: listening on {} ({} workers, {} jobs recovered)",
        handle.addr,
        handle.service().config.workers,
        recovered
    );

    while !ipsim_signal::triggered() {
        std::thread::sleep(Duration::from_millis(100));
    }
    let queued = handle.service().queue_len();
    eprintln!("ipsim_serve: draining ({queued} queued jobs stay journaled)");
    let state_dir = handle.service().config.dir.clone();
    handle.join();
    // Export the operational span timeline next to the journal — the
    // same Chrome trace_event format the sim telemetry sink writes, so
    // `telemetry_check` validates it and one viewer merges both.
    let span_path = state_dir.join("spans.trace.json");
    match std::fs::File::create(&span_path) {
        Ok(mut file) => {
            if let Err(e) = ipsim_obs::spans().write_chrome_trace(&mut file) {
                eprintln!("warning: writing {}: {e}", span_path.display());
            } else {
                eprintln!("ipsim_serve: spans exported to {}", span_path.display());
            }
        }
        Err(e) => eprintln!("warning: creating {}: {e}", span_path.display()),
    }
    eprintln!("ipsim_serve: drained");
    std::process::exit(130);
}

fn parse<T: std::str::FromStr>(text: &str, flag: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("bad value `{text}` for {flag}\n\n{USAGE}");
        std::process::exit(2);
    })
}
