//! Load generator for the serving daemon: N concurrent clients submit a
//! mixed corpus of job specs (with deliberate duplicates to exercise
//! dedup), poll them to completion, and report throughput plus latency
//! percentiles for both the submit round-trip and end-to-end completion.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ipsim_serve::client::{self, Response};
use ipsim_telemetry::json::Json;

const USAGE: &str = "\
usage: serve_load [options]

  --addr ADDR     daemon address (default 127.0.0.1:7791)
  --clients N     concurrent client threads (default 8)
  --jobs M        jobs submitted per client (default 4)
  --warm N        warm-up instructions per run (default 2000)
  --measure N     measured instructions per run (default 5000)
  --help          this text

Exit code 1 when any submission or job fails.
";

/// The spec corpus: clients cycle through these, so every spec is
/// submitted by several clients — duplicate submissions are the point.
const CORPUS: &[(&str, &str)] = &[
    ("db", "none"),
    ("db", "nl_tagged"),
    ("tpcw", "nl_tagged"),
    ("japp", "disc:4096:4"),
    ("web", "nl_tagged"),
    ("db", "disc:4096:4"),
];

fn main() {
    let mut addr = "127.0.0.1:7791".to_string();
    let mut clients = 8usize;
    let mut jobs = 4usize;
    let mut warm = 2_000u64;
    let mut measure = 5_000u64;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{name} needs a value\n\n{USAGE}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--addr" => addr = value("--addr"),
            "--clients" => clients = parse(&value("--clients"), "--clients"),
            "--jobs" => jobs = parse(&value("--jobs"), "--jobs"),
            "--warm" => warm = parse(&value("--warm"), "--warm"),
            "--measure" => measure = parse(&value("--measure"), "--measure"),
            _ => {
                eprintln!("unknown argument `{arg}`\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    let failures = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let mut submit_ms: Vec<f64> = Vec::new();
    let mut complete_ms: Vec<f64> = Vec::new();

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..clients {
            let addr = addr.clone();
            let failures = Arc::clone(&failures);
            handles.push(scope.spawn(move || {
                let client_id = format!("load-{c}");
                let mut submit_ms = Vec::new();
                let mut complete_ms = Vec::new();
                let mut pending: Vec<(String, Instant)> = Vec::new();
                for j in 0..jobs {
                    let (workload, prefetcher) = CORPUS[(c + j) % CORPUS.len()];
                    let spec = format!(
                        "{{\"v\":1,\"runs\":[{{\"config\":\"single_core\",\
                         \"workload\":\"{workload}\",\"prefetcher\":\"{prefetcher}\",\
                         \"policy\":\"install_both\",\"warm\":{warm},\"measure\":{measure}}}]}}"
                    );
                    let t0 = Instant::now();
                    let response = submit_with_backoff(&addr, &client_id, &spec);
                    submit_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                    match response {
                        Ok(response) if response.status == 200 || response.status == 202 => {
                            match response.json().ok().as_ref().and_then(job_id) {
                                Some(id) => pending.push((id, t0)),
                                None => {
                                    eprintln!("bad submit body: {}", response.body);
                                    failures.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        Ok(response) => {
                            eprintln!("submit: HTTP {} {}", response.status, response.body);
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            eprintln!("submit: {e}");
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                for (id, t0) in pending {
                    match client::wait_terminal(&addr, &id, Duration::from_secs(600)) {
                        Ok(state) => {
                            complete_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                            if state != "done" {
                                eprintln!("job {id} ended `{state}`");
                                failures.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(e) => {
                            eprintln!("job {id}: {e}");
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                (submit_ms, complete_ms)
            }));
        }
        for handle in handles {
            let (s, c) = handle.join().unwrap();
            submit_ms.extend(s);
            complete_ms.extend(c);
        }
    });

    let wall = started.elapsed().as_secs_f64();
    let total = clients * jobs;
    println!("serve_load: {clients} clients x {jobs} jobs against {addr}");
    println!(
        "  wall {:.2}s, {:.1} jobs/s submitted, {} completions observed",
        wall,
        total as f64 / wall.max(1e-9),
        complete_ms.len()
    );
    print_percentiles("submit rtt", &mut submit_ms);
    print_percentiles("completion", &mut complete_ms);
    if let Ok(stats) = client::request(&addr, "GET", "/v1/stats", &[], None) {
        println!("  daemon stats: {}", stats.body);
    }
    // Daemon-side view of the same traffic, scraped from `/v1/metrics`:
    // client percentiles include the network and the poll loop, the
    // daemon's own histograms isolate parse→respond and queue→done.
    match client::request(&addr, "GET", "/v1/metrics", &[], None) {
        Ok(metrics) if metrics.status == 200 => print_daemon_percentiles(&metrics.body),
        Ok(metrics) => eprintln!("warning: /v1/metrics returned HTTP {}", metrics.status),
        Err(e) => eprintln!("warning: /v1/metrics scrape failed: {e}"),
    }
    // Machine-readable line for EXPERIMENTS.md.
    println!(
        "tsv\t{}\t{}\t{:.2}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.0}\t{:.0}\t{:.0}",
        clients,
        total,
        wall,
        total as f64 / wall.max(1e-9),
        percentile(&mut submit_ms, 50.0),
        percentile(&mut submit_ms, 95.0),
        percentile(&mut submit_ms, 99.0),
        percentile(&mut complete_ms, 50.0),
        percentile(&mut complete_ms, 95.0),
        percentile(&mut complete_ms, 99.0),
    );
    if failures.load(Ordering::Relaxed) > 0 {
        eprintln!("serve_load: {} failures", failures.load(Ordering::Relaxed));
        std::process::exit(1);
    }
}

/// Submits, retrying briefly on 429 — the backpressure answer is part of
/// normal operation for a bursty load generator.
fn submit_with_backoff(addr: &str, client_id: &str, spec: &str) -> Result<Response, String> {
    let mut delay = Duration::from_millis(50);
    for _ in 0..50 {
        let response = client::submit_json(addr, client_id, spec)?;
        if response.status != 429 {
            return Ok(response);
        }
        std::thread::sleep(delay);
        delay = (delay * 2).min(Duration::from_secs(1));
    }
    Err("still 429 after 50 retries".to_string())
}

fn job_id(body: &Json) -> Option<String> {
    body.get("id").and_then(Json::as_str).map(str::to_string)
}

/// Prints the daemon's own latency histograms (in ms, to line up with the
/// client-side rows above) from one Prometheus exposition scrape.
fn print_daemon_percentiles(text: &str) {
    let exposition = match ipsim_obs::parse_text(text) {
        Ok(exposition) => exposition,
        Err(e) => {
            eprintln!("warning: /v1/metrics did not parse: {e}");
            return;
        }
    };
    type Row = (
        &'static str,
        &'static str,
        &'static [(&'static str, &'static str)],
    );
    let rows: [Row; 3] = [
        (
            "daemon jobs",
            "ipsim_serve_request_micros",
            &[("endpoint", "jobs")],
        ),
        ("daemon queue", "ipsim_serve_queue_wait_micros", &[]),
        ("daemon exec", "ipsim_serve_job_execute_micros", &[]),
    ];
    for (name, family, want) in rows {
        let buckets = exposition.histogram_buckets(family, want);
        let count = buckets.last().map_or(0.0, |&(_, n)| n);
        if count <= 0.0 {
            continue;
        }
        let ms = |p: f64| ipsim_obs::histogram_percentile(&buckets, p) / 1e3;
        println!(
            "  {name:<11} p50 {:>8.1} ms   p95 {:>8.1} ms   p99 {:>8.1} ms   ({count:.0} samples)",
            ms(50.0),
            ms(95.0),
            ms(99.0),
        );
    }
}

fn print_percentiles(name: &str, samples: &mut [f64]) {
    println!(
        "  {name:<11} p50 {:>8.1} ms   p95 {:>8.1} ms   p99 {:>8.1} ms   ({} samples)",
        percentile(samples, 50.0),
        percentile(samples, 95.0),
        percentile(samples, 99.0),
        samples.len()
    );
}

/// Nearest-rank percentile; 0 for an empty sample set.
fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let rank = ((p / 100.0 * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

fn parse<T: std::str::FromStr>(text: &str, flag: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("bad value `{text}` for {flag}\n\n{USAGE}");
        std::process::exit(2);
    })
}
