//! The serving core: job table, bounded queue, content-addressed dedup,
//! worker loop, and journal-backed recovery.
//!
//! One coarse mutex guards the whole job table (`Inner`); every job's
//! runs execute *outside* the lock, one at a time, so `GET /v1/jobs/{id}`
//! can report `done/total` progress mid-job. Parallelism across jobs
//! comes from running several workers, each claiming whole jobs — the
//! per-run heavy lifting reuses [`ipsim_harness::pool`] unchanged.
//!
//! Dedup happens at two levels, both keyed by content hashes:
//!
//! * **run level** — every run consults the shared [`RunCache`]; a spec
//!   whose runs are all cached completes at submit time without touching
//!   the queue (`"dedup":"cache"`).
//! * **job level** — an identical job already queued or running coalesces
//!   onto it (`"dedup":"inflight"`): the submitter gets the existing job
//!   id and polls it like its own.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use ipsim_harness::progress::{Progress, ProgressMode};
use ipsim_harness::wire::JobSpec;
use ipsim_harness::{pool, runlog, shard};
use ipsim_harness::{RunCache, RunSpec, TelemetrySink, TraceStore};
use ipsim_telemetry::TelemetryConfig;

use crate::journal::{Event, Journal, RunResult};
use crate::metrics::ServeMetrics;
use crate::ratelimit::RateLimiter;

/// Everything configurable about a serving daemon.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Serve state directory (journal, serve runlog).
    pub dir: PathBuf,
    /// Run-cache directory shared with the batch CLI.
    pub cache_dir: PathBuf,
    /// Trace-store directory (`None` disables capture/replay).
    pub trace_dir: Option<PathBuf>,
    /// Telemetry artifact root (`None` disables telemetry collection).
    pub telemetry_root: Option<PathBuf>,
    /// Job-executing worker threads. `0` is allowed — the daemon accepts
    /// and journals jobs but never runs them (used by the recovery and
    /// backpressure tests).
    pub workers: usize,
    /// Runs executed concurrently *within* one claimed job. `1` (the
    /// default) keeps the original one-at-a-time loop; higher values chunk
    /// the job's specs with the sweep shard planner
    /// ([`ipsim_harness::shard::plan`]) — the same content-keyed partition
    /// `all_figures --shards` uses — and fan each chunk across a pool.
    /// Results are reassembled in submitted run order, so responses are
    /// byte-identical for any fan-out.
    pub job_fanout: usize,
    /// Maximum *queued* jobs before submissions get `429`.
    pub max_queue: usize,
    /// Per-client token-bucket burst size.
    pub rate_capacity: f64,
    /// Per-client sustained submissions per second.
    pub rate_refill: f64,
    /// fsync the journal on every append (crash-safe acks). On by
    /// default; only benchmarks should turn it off.
    pub sync_journal: bool,
}

impl ServeConfig {
    /// Defaults rooted at the conventional `results/` layout.
    pub fn default_at(dir: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            dir: dir.into(),
            cache_dir: PathBuf::from("results/cache"),
            trace_dir: Some(PathBuf::from("results/traces")),
            telemetry_root: None,
            workers: std::thread::available_parallelism()
                .map(|n| (n.get() / 2).max(1))
                .unwrap_or(2),
            job_fanout: 1,
            max_queue: 64,
            rate_capacity: 16.0,
            rate_refill: 4.0,
            sync_journal: true,
        }
    }
}

/// Lifecycle of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and journaled, waiting for a worker.
    Queued,
    /// A worker is executing its runs.
    Running,
    /// All runs finished (individual runs may still have `ok = false`).
    Done,
    /// The job could not execute at all.
    Failed,
}

impl JobState {
    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }

    /// Whether the state is terminal.
    pub fn terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed)
    }
}

/// One job as the service tracks it.
#[derive(Debug, Clone)]
pub struct Job {
    /// Job id (`j-<n>`).
    pub id: String,
    /// Content hash over the job's sorted run keys.
    pub jkey: String,
    /// Submitting client.
    pub client: String,
    /// The wire spec as submitted.
    pub spec: JobSpec,
    /// Current state.
    pub state: JobState,
    /// Runs finished so far.
    pub done_runs: usize,
    /// Total runs in the job.
    pub total_runs: usize,
    /// How this job completed at submit time, if it did (`"cache"`).
    pub dedup: Option<&'static str>,
    /// Per-run outcomes (terminal states only).
    pub results: Vec<RunResult>,
    /// Failure reason when `state` is [`JobState::Failed`].
    pub error: Option<String>,
    /// When the job entered the queue, in [`ipsim_obs::spans`]
    /// microseconds (0 for recovered or cache-completed jobs) — the
    /// worker turns it into the queue-wait span and histogram sample.
    pub enqueued_micros: u64,
    /// Id of the submitting request's span (0 when none), so the
    /// worker-side queue-wait/execute spans parent onto it in the
    /// exported timeline.
    pub span: u64,
}

/// Why a submission was not accepted.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The spec did not parse or lower → 400.
    Invalid(String),
    /// The queue is at `max_queue` → 429.
    QueueFull,
    /// The daemon is draining → 503.
    Draining,
    /// The journal append failed → 500; nothing was enqueued.
    Journal(String),
}

/// What a successful submission returned.
#[derive(Debug, Clone)]
pub struct SubmitOutcome {
    /// The job to poll (possibly an existing one).
    pub job_id: String,
    /// Job state right after submission.
    pub state: JobState,
    /// `Some("cache")` (completed instantly from the run cache) or
    /// `Some("inflight")` (coalesced onto an identical active job).
    pub dedup: Option<&'static str>,
}

/// Monotonic service counters, exposed by `GET /v1/stats`.
#[derive(Debug, Default)]
pub struct Stats {
    /// Jobs accepted (including cache-completed; excluding coalesced).
    pub submitted: AtomicU64,
    /// Jobs that reached [`JobState::Done`] via a worker.
    pub completed: AtomicU64,
    /// Jobs that reached [`JobState::Failed`].
    pub failed: AtomicU64,
    /// Submissions completed instantly from the run cache.
    pub dedup_cache: AtomicU64,
    /// Submissions coalesced onto an identical in-flight job.
    pub dedup_inflight: AtomicU64,
    /// Submissions bounced for a full queue.
    pub rejected_queue_full: AtomicU64,
    /// Submissions bounced by the rate limiter.
    pub rejected_rate_limited: AtomicU64,
    /// Jobs re-enqueued from the journal at boot.
    pub recovered: AtomicU64,
    /// Journal lines skipped at boot (torn tail).
    pub journal_skipped: AtomicU64,
}

/// The mutable job table, under one mutex.
#[derive(Debug, Default)]
struct Inner {
    jobs: HashMap<String, Job>,
    /// Queued job ids, FIFO.
    queue: VecDeque<String>,
    /// jkey → job id, for every non-terminal job.
    by_jkey: HashMap<String, String>,
}

/// The serving core shared by the HTTP front end and the workers.
pub struct Service {
    /// The configuration the service booted with.
    pub config: ServeConfig,
    /// Per-client submission rate limiter.
    pub limiter: RateLimiter,
    /// Service counters.
    pub stats: Stats,
    /// Operational metric handles (global-registry backed).
    pub obs: ServeMetrics,
    journal: Journal,
    inner: Mutex<Inner>,
    queue_cv: Condvar,
    next_id: AtomicU64,
    cache: RunCache,
    traces: TraceStore,
    telemetry: Option<TelemetrySink>,
    shutdown: AtomicBool,
}

impl Service {
    /// Boots the service: recovers the journal (re-enqueuing every job
    /// without a terminal event), compacts it, and opens it for append.
    pub fn open(config: ServeConfig) -> Result<Arc<Service>, String> {
        let recovery = Journal::recover(&config.dir);

        // Replay: rebuild the job table in submit order.
        let mut jobs: HashMap<String, Job> = HashMap::new();
        let mut order: Vec<String> = Vec::new();
        let mut max_id = 0u64;
        for event in &recovery.events {
            if let Some(n) = event
                .job()
                .strip_prefix("j-")
                .and_then(|n| n.parse::<u64>().ok())
            {
                max_id = max_id.max(n);
            }
            match event {
                Event::Submit {
                    job,
                    jkey,
                    client,
                    spec,
                } => {
                    order.push(job.clone());
                    jobs.insert(
                        job.clone(),
                        Job {
                            id: job.clone(),
                            jkey: jkey.clone(),
                            client: client.clone(),
                            spec: spec.clone(),
                            state: JobState::Queued,
                            done_runs: 0,
                            total_runs: spec.runs.len(),
                            dedup: None,
                            results: Vec::new(),
                            error: None,
                            enqueued_micros: 0,
                            span: 0,
                        },
                    );
                }
                Event::Done { job, results } => {
                    if let Some(j) = jobs.get_mut(job) {
                        j.state = JobState::Done;
                        j.done_runs = results.len();
                        j.results = results.clone();
                    }
                }
                Event::Failed { job, error } => {
                    if let Some(j) = jobs.get_mut(job) {
                        j.state = JobState::Failed;
                        j.error = Some(error.clone());
                    }
                }
                Event::Start { .. } | Event::Dup { .. } => {}
            }
        }

        // Compact: one submit(+terminal) pair per known job, pending last
        // so replay order equals queue order.
        let mut compacted = Vec::new();
        for id in &order {
            let job = &jobs[id];
            if !job.state.terminal() {
                continue;
            }
            compacted.push(Event::Submit {
                job: job.id.clone(),
                jkey: job.jkey.clone(),
                client: job.client.clone(),
                spec: job.spec.clone(),
            });
            compacted.push(match job.state {
                JobState::Failed => Event::Failed {
                    job: job.id.clone(),
                    error: job.error.clone().unwrap_or_default(),
                },
                _ => Event::Done {
                    job: job.id.clone(),
                    results: job.results.clone(),
                },
            });
        }
        let mut queue = VecDeque::new();
        let mut by_jkey = HashMap::new();
        for id in &order {
            let job = &jobs[id];
            if job.state.terminal() {
                continue;
            }
            compacted.push(Event::Submit {
                job: job.id.clone(),
                jkey: job.jkey.clone(),
                client: job.client.clone(),
                spec: job.spec.clone(),
            });
            queue.push_back(id.clone());
            by_jkey.insert(job.jkey.clone(), id.clone());
        }
        Journal::rewrite(&config.dir, &compacted)
            .map_err(|e| format!("compacting journal: {e}"))?;
        let journal = Journal::open(&config.dir, config.sync_journal)
            .map_err(|e| format!("opening journal: {e}"))?;

        let stats = Stats::default();
        let obs = ServeMetrics::new();
        obs.queue_depth.set(queue.len() as i64);
        stats.recovered.store(queue.len() as u64, Ordering::Relaxed);
        stats
            .journal_skipped
            .store(recovery.skipped_lines, Ordering::Relaxed);

        let traces = match &config.trace_dir {
            Some(dir) => TraceStore::at(dir),
            None => TraceStore::disabled(),
        };
        let telemetry = config
            .telemetry_root
            .as_ref()
            .map(|root| TelemetrySink::at(root, TelemetryConfig::default()));
        Ok(Arc::new(Service {
            limiter: RateLimiter::new(config.rate_capacity, config.rate_refill),
            stats,
            obs,
            journal,
            inner: Mutex::new(Inner {
                jobs,
                queue,
                by_jkey,
            }),
            queue_cv: Condvar::new(),
            next_id: AtomicU64::new(max_id + 1),
            cache: RunCache::at(&config.cache_dir),
            traces,
            telemetry,
            shutdown: AtomicBool::new(false),
            config,
        }))
    }

    /// The job-level content key: FNV-1a over the sorted run cache keys,
    /// so run order inside a spec does not defeat coalescing.
    pub fn job_key(specs: &[RunSpec]) -> String {
        let mut keys: Vec<String> = specs.iter().map(RunSpec::cache_key).collect();
        keys.sort();
        let mut hasher = ipsim_harness::hash::Fnv1a64::new();
        hasher.write(b"jkey-v1");
        for key in &keys {
            hasher.write(b"|");
            hasher.write(key.as_bytes());
        }
        format!("{:016x}", hasher.finish())
    }

    /// Submits one job. See [`SubmitOutcome`] / [`SubmitError`] for the
    /// possible answers; rate limiting is the HTTP layer's job (it knows
    /// the client), everything else is decided here.
    pub fn submit(&self, client: &str, spec: JobSpec) -> Result<SubmitOutcome, SubmitError> {
        if self.shutdown.load(Ordering::SeqCst) {
            self.obs.rejected_draining.inc();
            return Err(SubmitError::Draining);
        }
        let specs = spec.to_run_specs().map_err(SubmitError::Invalid)?;
        let jkey = Service::job_key(&specs);

        let mut inner = self.inner.lock().unwrap();
        // Job-level dedup: coalesce onto an identical active job.
        if let Some(existing) = inner.by_jkey.get(&jkey).cloned() {
            let state = inner.jobs[&existing].state;
            drop(inner);
            self.stats.dedup_inflight.fetch_add(1, Ordering::Relaxed);
            self.obs.dedup_inflight.inc();
            let _ = self.journal.append(&Event::Dup {
                job: existing.clone(),
                kind: "inflight".to_string(),
            });
            return Ok(SubmitOutcome {
                job_id: existing,
                state,
                dedup: Some("inflight"),
            });
        }

        // Run-level dedup: a fully cached job completes at submit time.
        let cached: Option<Vec<RunResult>> = specs
            .iter()
            .map(|s| {
                self.cache.lookup(s).map(|summary| RunResult {
                    key: s.cache_key(),
                    label: s.label(),
                    ok: true,
                    tsv: summary.to_tsv(),
                })
            })
            .collect();
        if let Some(results) = cached {
            let id = self.new_job_id();
            let job = Job {
                id: id.clone(),
                jkey,
                client: client.to_string(),
                spec,
                state: JobState::Done,
                done_runs: results.len(),
                total_runs: results.len(),
                dedup: Some("cache"),
                results: results.clone(),
                error: None,
                enqueued_micros: 0,
                span: 0,
            };
            self.append_or_fail(&Event::Submit {
                job: id.clone(),
                jkey: job.jkey.clone(),
                client: job.client.clone(),
                spec: job.spec.clone(),
            })?;
            let _ = self.journal.append(&Event::Dup {
                job: id.clone(),
                kind: "cache".to_string(),
            });
            self.append_or_fail(&Event::Done {
                job: id.clone(),
                results,
            })?;
            inner.jobs.insert(id.clone(), job);
            drop(inner);
            self.stats.submitted.fetch_add(1, Ordering::Relaxed);
            self.stats.dedup_cache.fetch_add(1, Ordering::Relaxed);
            self.obs.submitted.inc();
            self.obs.dedup_cache.inc();
            return Ok(SubmitOutcome {
                job_id: id,
                state: JobState::Done,
                dedup: Some("cache"),
            });
        }

        // Fresh work: bounded queue, durable ack.
        if inner.queue.len() >= self.config.max_queue {
            self.stats
                .rejected_queue_full
                .fetch_add(1, Ordering::Relaxed);
            self.obs.rejected_queue_full.inc();
            return Err(SubmitError::QueueFull);
        }
        let id = self.new_job_id();
        let spans = ipsim_obs::spans();
        let job = Job {
            id: id.clone(),
            jkey: jkey.clone(),
            client: client.to_string(),
            spec,
            state: JobState::Queued,
            done_runs: 0,
            total_runs: specs.len(),
            dedup: None,
            results: Vec::new(),
            error: None,
            enqueued_micros: spans.now_micros(),
            span: spans.current().unwrap_or(0),
        };
        // Journal first (fsynced): once the client sees the ack, the job
        // survives any crash.
        self.append_or_fail(&Event::Submit {
            job: id.clone(),
            jkey: jkey.clone(),
            client: job.client.clone(),
            spec: job.spec.clone(),
        })?;
        inner.by_jkey.insert(jkey, id.clone());
        inner.jobs.insert(id.clone(), job);
        inner.queue.push_back(id.clone());
        drop(inner);
        self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        self.obs.submitted.inc();
        self.obs.queue_depth.add(1);
        self.queue_cv.notify_one();
        Ok(SubmitOutcome {
            job_id: id,
            state: JobState::Queued,
            dedup: None,
        })
    }

    fn append_or_fail(&self, event: &Event) -> Result<(), SubmitError> {
        self.journal
            .append(event)
            .map_err(|e| SubmitError::Journal(e.to_string()))
    }

    fn new_job_id(&self) -> String {
        format!("j-{}", self.next_id.fetch_add(1, Ordering::SeqCst))
    }

    /// Reads one job under the lock.
    pub fn with_job<R>(&self, id: &str, f: impl FnOnce(&Job) -> R) -> Option<R> {
        let inner = self.inner.lock().unwrap();
        inner.jobs.get(id).map(f)
    }

    /// Queued job count.
    pub fn queue_len(&self) -> usize {
        self.inner.lock().unwrap().queue.len()
    }

    /// Total jobs known (all states).
    pub fn job_count(&self) -> usize {
        self.inner.lock().unwrap().jobs.len()
    }

    /// The telemetry artifact directory for a run key, when the sink is
    /// active and the artifact exists.
    pub fn telemetry_dir(&self, key: &str) -> Option<PathBuf> {
        let sink = self.telemetry.as_ref()?;
        sink.has(key).then(|| sink.dir_for(key))
    }

    /// Flags the service as draining: submissions get 503, workers stop
    /// claiming runs after the one in flight, queued jobs stay journaled
    /// for the next boot.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
    }

    /// Whether a drain is in progress.
    pub fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// One worker: claims queued jobs and executes their runs one at a
    /// time (progress stays observable mid-job; cross-job parallelism
    /// comes from running several workers). Returns when a drain begins.
    pub fn worker_loop(self: &Arc<Service>) {
        loop {
            let claimed = {
                let mut inner = self.inner.lock().unwrap();
                loop {
                    if self.draining() {
                        return;
                    }
                    if let Some(id) = inner.queue.pop_front() {
                        let job = inner.jobs.get_mut(&id).expect("queued job exists");
                        job.state = JobState::Running;
                        break (id, job.spec.clone(), job.enqueued_micros, job.span);
                    }
                    let (guard, _) = self
                        .queue_cv
                        .wait_timeout(inner, Duration::from_millis(250))
                        .unwrap();
                    inner = guard;
                }
            };
            let (id, spec, enqueued, parent) = claimed;
            let spans = ipsim_obs::spans();
            let claimed_at = spans.now_micros();
            self.obs.queue_depth.add(-1);
            if enqueued > 0 {
                let wait = claimed_at.saturating_sub(enqueued);
                self.obs.queue_wait.observe(wait);
                spans.record(
                    "serve.queue_wait",
                    enqueued,
                    wait,
                    (parent > 0).then_some(parent),
                );
            }
            let _ = self.journal.append(&Event::Start { job: id.clone() });
            self.obs.inflight_jobs.add(1);
            self.execute_job(&id, &spec);
            self.obs.inflight_jobs.add(-1);
            let done_at = spans.now_micros();
            self.obs.execute.observe(done_at.saturating_sub(claimed_at));
            spans.record(
                "serve.job_execute",
                claimed_at,
                done_at.saturating_sub(claimed_at),
                (parent > 0).then_some(parent),
            );
        }
    }

    /// Runs one claimed job to completion (or to the drain point).
    fn execute_job(self: &Arc<Service>, id: &str, spec: &JobSpec) {
        let specs = match spec.to_run_specs() {
            Ok(specs) => specs,
            Err(e) => {
                // Validated at submit time; reachable only via a journal
                // hand-edited between boots.
                self.finish_failed(id, &format!("spec no longer lowers: {e}"));
                return;
            }
        };
        // Execution chunks: one spec at a time at the default fan-out
        // (progress stays maximally observable), or the shard planner's
        // content-keyed partition when `job_fanout > 1` — each chunk fans
        // across a pool of `job_fanout` workers. Either way the chunks are
        // a disjoint exact cover of the job's specs, and results are
        // reassembled in submitted order below.
        let fanout = self.config.job_fanout.max(1);
        let chunks: Vec<Vec<RunSpec>> = if fanout == 1 {
            specs.iter().map(|s| vec![s.clone()]).collect()
        } else {
            shard::plan(&specs, fanout)
                .into_iter()
                .filter(|chunk| !chunk.is_empty())
                .collect()
        };
        let mut outcomes: HashMap<String, RunResult> = HashMap::new();
        let mut records = Vec::new();
        for chunk in &chunks {
            if self.draining() {
                // Drain mid-job: no terminal event — the journal still has
                // submit without done, so the next boot re-enqueues this
                // job, and its finished runs replay from the run cache.
                return;
            }
            let progress = Progress::new(ProgressMode::Silent, chunk.len());
            let report = pool::execute(
                chunk,
                fanout.min(chunk.len()),
                &self.cache,
                &self.traces,
                self.telemetry.as_ref(),
                &progress,
            );
            for spec in chunk {
                let key = spec.cache_key();
                let Some(result) = report.results.get(&key) else {
                    // The pool only skips runs on an interrupt.
                    return;
                };
                let run_result = match result {
                    Ok(summary) => RunResult {
                        key: key.clone(),
                        label: spec.label(),
                        ok: true,
                        tsv: summary.to_tsv(),
                    },
                    Err(panic) => RunResult {
                        key: key.clone(),
                        label: spec.label(),
                        ok: false,
                        tsv: panic.clone(),
                    },
                };
                outcomes.insert(key, run_result);
            }
            records.extend(report.records);
            let mut inner = self.inner.lock().unwrap();
            if let Some(job) = inner.jobs.get_mut(id) {
                job.done_runs = outcomes.len().min(job.total_runs);
            }
        }
        // Reassemble in submitted run order: the response must not depend
        // on which chunk a run landed in (duplicate keys share a result).
        let results: Vec<RunResult> = specs
            .iter()
            .map(|spec| {
                outcomes
                    .get(&spec.cache_key())
                    .cloned()
                    .expect("every chunked spec has an outcome")
            })
            .collect();

        // Terminal event first (durable), then the in-memory flip.
        if let Err(e) = self.journal.append(&Event::Done {
            job: id.to_string(),
            results: results.clone(),
        }) {
            self.finish_failed(id, &format!("journal append failed: {e}"));
            return;
        }
        let runlog_path = self.config.dir.join("runlog.tsv");
        if let Err(e) = runlog::append(&runlog_path, 1, &records) {
            eprintln!("warning: serve runlog append failed: {e}");
        }
        let mut inner = self.inner.lock().unwrap();
        let jkey = inner.jobs.get_mut(id).map(|job| {
            job.state = JobState::Done;
            job.done_runs = job.total_runs;
            job.results = results;
            job.jkey.clone()
        });
        if let Some(jkey) = jkey {
            inner.by_jkey.remove(&jkey);
        }
        drop(inner);
        self.stats.completed.fetch_add(1, Ordering::Relaxed);
        self.obs.jobs_done.inc();
    }

    fn finish_failed(&self, id: &str, error: &str) {
        let _ = self.journal.append(&Event::Failed {
            job: id.to_string(),
            error: error.to_string(),
        });
        let mut inner = self.inner.lock().unwrap();
        let jkey = inner.jobs.get_mut(id).map(|job| {
            job.state = JobState::Failed;
            job.error = Some(error.to_string());
            job.jkey.clone()
        });
        if let Some(jkey) = jkey {
            inner.by_jkey.remove(&jkey);
        }
        drop(inner);
        self.stats.failed.fetch_add(1, Ordering::Relaxed);
        self.obs.jobs_failed.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ipsim-state-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn config(tag: &str) -> ServeConfig {
        let root = tmp(tag);
        ServeConfig {
            dir: root.join("serve"),
            cache_dir: root.join("cache"),
            trace_dir: None,
            telemetry_root: None,
            workers: 0,
            job_fanout: 1,
            max_queue: 4,
            rate_capacity: 1e9,
            rate_refill: 1e9,
            sync_journal: false,
        }
    }

    fn tiny_spec(workload: &str) -> JobSpec {
        JobSpec::from_json(&format!(
            "{{\"v\":1,\"runs\":[{{\"config\":\"single_core\",\"workload\":\"{workload}\",\
             \"prefetcher\":\"nl_tagged\",\"policy\":\"install_both\",\
             \"warm\":2000,\"measure\":5000}}]}}"
        ))
        .unwrap()
    }

    #[test]
    fn submit_execute_and_cache_dedup() {
        let config = config("exec");
        let root = config.dir.parent().unwrap().to_path_buf();
        let service = Service::open(config).unwrap();

        let out = service.submit("t", tiny_spec("db")).unwrap();
        assert_eq!(out.state, JobState::Queued);
        assert_eq!(out.dedup, None);

        // An identical submission coalesces while the job is in flight.
        let dup = service.submit("t2", tiny_spec("db")).unwrap();
        assert_eq!(dup.job_id, out.job_id);
        assert_eq!(dup.dedup, Some("inflight"));
        assert_eq!(service.stats.dedup_inflight.load(Ordering::Relaxed), 1);

        // Run the queue dry with an inline worker pass.
        let worker = {
            let service = service.clone();
            std::thread::spawn(move || service.worker_loop())
        };
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        while service
            .with_job(&out.job_id, |j| !j.state.terminal())
            .unwrap()
        {
            assert!(std::time::Instant::now() < deadline, "job never finished");
            std::thread::sleep(Duration::from_millis(10));
        }
        let results = service
            .with_job(&out.job_id, |j| j.results.clone())
            .unwrap();
        assert_eq!(results.len(), 1);
        assert!(results[0].ok);
        // Byte-identity with a direct CLI-style execution of the spec.
        let direct = tiny_spec("db").to_run_specs().unwrap()[0].execute();
        assert_eq!(results[0].tsv, direct.to_tsv());

        // Resubmission now completes instantly from the run cache.
        let cached = service.submit("t3", tiny_spec("db")).unwrap();
        assert_ne!(cached.job_id, out.job_id);
        assert_eq!(cached.dedup, Some("cache"));
        assert_eq!(cached.state, JobState::Done);
        assert_eq!(service.stats.dedup_cache.load(Ordering::Relaxed), 1);

        service.begin_shutdown();
        worker.join().unwrap();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn queue_bound_rejects_with_queue_full() {
        let config = config("bound");
        let root = config.dir.parent().unwrap().to_path_buf();
        let max = config.max_queue;
        let service = Service::open(config).unwrap();
        let workloads = ["db", "tpcw", "japp", "web", "mixed"];
        for workload in workloads.iter().take(max) {
            service.submit("t", tiny_spec(workload)).unwrap();
        }
        let err = service.submit("t", tiny_spec(workloads[max])).unwrap_err();
        assert_eq!(err, SubmitError::QueueFull);
        assert_eq!(service.stats.rejected_queue_full.load(Ordering::Relaxed), 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn restart_recovers_queued_jobs_in_order() {
        let config = config("recover");
        let root = config.dir.parent().unwrap().to_path_buf();
        let service = Service::open(config.clone()).unwrap();
        let a = service.submit("t", tiny_spec("db")).unwrap().job_id;
        let b = service.submit("t", tiny_spec("web")).unwrap().job_id;
        // Simulate kill -9: drop the service without any drain.
        drop(service);

        let service = Service::open(config).unwrap();
        assert_eq!(service.stats.recovered.load(Ordering::Relaxed), 2);
        assert_eq!(service.queue_len(), 2);
        for id in [&a, &b] {
            assert_eq!(
                service.with_job(id, |j| j.state),
                Some(JobState::Queued),
                "{id} not recovered"
            );
        }
        // New ids never collide with recovered ones.
        let c = service.submit("t", tiny_spec("japp")).unwrap().job_id;
        assert_ne!(c, a);
        assert_ne!(c, b);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn draining_rejects_submissions() {
        let config = config("drain");
        let root = config.dir.parent().unwrap().to_path_buf();
        let service = Service::open(config).unwrap();
        service.begin_shutdown();
        assert_eq!(
            service.submit("t", tiny_spec("db")).unwrap_err(),
            SubmitError::Draining
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn job_key_ignores_run_order() {
        let two = JobSpec::from_json(
            "{\"v\":1,\"runs\":[\
             {\"config\":\"single_core\",\"workload\":\"db\",\"prefetcher\":\"none\",\
              \"policy\":\"install_both\",\"warm\":1000,\"measure\":2000},\
             {\"config\":\"single_core\",\"workload\":\"web\",\"prefetcher\":\"none\",\
              \"policy\":\"install_both\",\"warm\":1000,\"measure\":2000}]}",
        )
        .unwrap();
        let mut swapped = two.clone();
        swapped.runs.reverse();
        let a = Service::job_key(&two.to_run_specs().unwrap());
        let b = Service::job_key(&swapped.to_run_specs().unwrap());
        assert_eq!(a, b);
    }
}
