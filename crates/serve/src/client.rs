//! A minimal blocking HTTP client for the v1 API — used by `serve_load`,
//! the integration tests, and anyone scripting against the daemon from
//! Rust without pulling in an HTTP dependency.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use ipsim_telemetry::json::{self, Json};

/// One response: status code and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// The body bytes as UTF-8.
    pub body: String,
}

impl Response {
    /// Parses the body as JSON.
    pub fn json(&self) -> Result<Json, String> {
        json::parse(&self.body).map_err(|e| format!("bad JSON body: {e}"))
    }
}

/// Performs one request against `addr` (e.g. `127.0.0.1:7791`).
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<&str>,
) -> Result<Response, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let mut stream = stream;

    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    if let Some(body) = body {
        head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    head.push_str("\r\n");
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.unwrap_or("").as_bytes()))
        .map_err(|e| format!("send: {e}"))?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("read status: {e}"))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line `{}`", status_line.trim_end()))?;
    // Headers (only Content-Length matters; the server always closes).
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("read headers: {e}"))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }
    let mut body = Vec::new();
    match content_length {
        Some(n) => {
            body.resize(n, 0);
            reader
                .read_exact(&mut body)
                .map_err(|e| format!("read body: {e}"))?;
        }
        None => {
            reader
                .read_to_end(&mut body)
                .map_err(|e| format!("read body: {e}"))?;
        }
    }
    Ok(Response {
        status,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

/// `POST /v1/jobs` with a JSON spec body.
pub fn submit_json(addr: &str, client_id: &str, spec_json: &str) -> Result<Response, String> {
    request(
        addr,
        "POST",
        "/v1/jobs",
        &[
            ("Content-Type", "application/json"),
            ("X-Client-Id", client_id),
        ],
        Some(spec_json),
    )
}

/// Polls `GET /v1/jobs/{id}` until the job is terminal; returns the final
/// state string (`done` / `failed`).
pub fn wait_terminal(addr: &str, id: &str, timeout: Duration) -> Result<String, String> {
    let deadline = Instant::now() + timeout;
    loop {
        let response = request(addr, "GET", &format!("/v1/jobs/{id}"), &[], None)?;
        if response.status != 200 {
            return Err(format!(
                "job {id}: HTTP {} {}",
                response.status, response.body
            ));
        }
        let state = response
            .json()?
            .get("state")
            .and_then(Json::as_str)
            .ok_or("status body missing `state`")?
            .to_string();
        if state == "done" || state == "failed" {
            return Ok(state);
        }
        if Instant::now() > deadline {
            return Err(format!("job {id}: still `{state}` after {timeout:?}"));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}
