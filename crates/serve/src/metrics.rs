//! The daemon's operational metric handles, pre-registered on the
//! process-global [`ipsim_obs`] registry.
//!
//! Registration happens once at [`Service::open`] time so `GET
//! /v1/metrics` exposes every core family — requests, queue depth,
//! dedup, rejections, latency histograms — even before the first byte of
//! traffic, and so hot paths only touch `Arc`-backed atomics, never the
//! registry lock. Family naming follows the workspace convention
//! `ipsim_<subsystem>_<what>_<unit>`.
//!
//! [`Service::open`]: crate::state::Service::open

use ipsim_obs::{Counter, Gauge, Histogram};

/// Normalised endpoint labels, in the order `/v1/stats` reports their
/// latency percentiles. `invalid` covers requests that never parsed.
pub const ENDPOINTS: [&str; 8] = [
    "healthz",
    "stats",
    "metrics",
    "jobs",
    "job_status",
    "job_result",
    "other",
    "invalid",
];

/// All serve-side metric handles. One instance lives on the `Service`.
pub struct ServeMetrics {
    /// `ipsim_serve_requests_total{endpoint}` + latency histogram per
    /// endpoint, indexed like [`ENDPOINTS`].
    requests: Vec<(Counter, Histogram)>,
    /// `ipsim_serve_queue_depth` — jobs waiting for a worker.
    pub queue_depth: Gauge,
    /// `ipsim_serve_inflight_jobs` — jobs a worker is executing.
    pub inflight_jobs: Gauge,
    /// `ipsim_serve_jobs_submitted_total` — accepted submissions.
    pub submitted: Counter,
    /// `ipsim_serve_dedup_total{kind="cache"}`.
    pub dedup_cache: Counter,
    /// `ipsim_serve_dedup_total{kind="inflight"}`.
    pub dedup_inflight: Counter,
    /// `ipsim_serve_rejected_total{reason="queue_full"}`.
    pub rejected_queue_full: Counter,
    /// `ipsim_serve_rejected_total{reason="rate_limited"}`.
    pub rejected_rate_limited: Counter,
    /// `ipsim_serve_rejected_total{reason="draining"}`.
    pub rejected_draining: Counter,
    /// `ipsim_serve_jobs_total{state="done"}`.
    pub jobs_done: Counter,
    /// `ipsim_serve_jobs_total{state="failed"}`.
    pub jobs_failed: Counter,
    /// `ipsim_serve_queue_wait_micros` — enqueue → worker claim.
    pub queue_wait: Histogram,
    /// `ipsim_serve_job_execute_micros` — worker claim → terminal.
    pub execute: Histogram,
}

impl Default for ServeMetrics {
    fn default() -> ServeMetrics {
        ServeMetrics::new()
    }
}

impl ServeMetrics {
    /// Registers every serve family on the global registry.
    pub fn new() -> ServeMetrics {
        let m = ipsim_obs::metrics();
        ServeMetrics {
            requests: ENDPOINTS
                .iter()
                .map(|&endpoint| {
                    (
                        m.counter("ipsim_serve_requests_total", &[("endpoint", endpoint)]),
                        m.histogram("ipsim_serve_request_micros", &[("endpoint", endpoint)]),
                    )
                })
                .collect(),
            queue_depth: m.gauge("ipsim_serve_queue_depth", &[]),
            inflight_jobs: m.gauge("ipsim_serve_inflight_jobs", &[]),
            submitted: m.counter("ipsim_serve_jobs_submitted_total", &[]),
            dedup_cache: m.counter("ipsim_serve_dedup_total", &[("kind", "cache")]),
            dedup_inflight: m.counter("ipsim_serve_dedup_total", &[("kind", "inflight")]),
            rejected_queue_full: m
                .counter("ipsim_serve_rejected_total", &[("reason", "queue_full")]),
            rejected_rate_limited: m
                .counter("ipsim_serve_rejected_total", &[("reason", "rate_limited")]),
            rejected_draining: m.counter("ipsim_serve_rejected_total", &[("reason", "draining")]),
            jobs_done: m.counter("ipsim_serve_jobs_total", &[("state", "done")]),
            jobs_failed: m.counter("ipsim_serve_jobs_total", &[("state", "failed")]),
            queue_wait: m.histogram("ipsim_serve_queue_wait_micros", &[]),
            execute: m.histogram("ipsim_serve_job_execute_micros", &[]),
        }
    }

    /// Counts one finished request and records its wall time.
    pub fn observe_request(&self, endpoint: &str, micros: u64) {
        let idx = ENDPOINTS
            .iter()
            .position(|&e| e == endpoint)
            .unwrap_or(ENDPOINTS.len() - 2); // "other"
        let (counter, histogram) = &self.requests[idx];
        counter.inc();
        histogram.observe(micros);
    }

    /// The latency histogram for one endpoint label, for `/v1/stats`
    /// percentiles.
    pub fn request_histogram(&self, endpoint: &str) -> Option<&Histogram> {
        ENDPOINTS
            .iter()
            .position(|&e| e == endpoint)
            .map(|idx| &self.requests[idx].1)
    }
}
