//! A deliberately small HTTP/1.1 implementation — just enough protocol
//! for a JSON job API over `std::net`, consistent with the workspace's
//! vendored-only dependency policy.
//!
//! Supported: request line + headers + `Content-Length` bodies, bounded
//! sizes, `Connection: close` responses. Not supported (and not needed):
//! chunked transfer, keep-alive, TLS, multipart. Every connection carries
//! one request and is closed after the response — `serve_load` measures
//! this full open→respond→close cycle, which is the honest unit of cost
//! for a poll-style client.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Upper bound on a request body; a job spec at [`MAX_RUNS_PER_JOB`] runs
/// is far below this.
///
/// [`MAX_RUNS_PER_JOB`]: ipsim_harness::wire::MAX_RUNS_PER_JOB
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Path with any `?query` suffix stripped.
    pub path: String,
    /// The raw query string (empty when absent).
    pub query: String,
    /// Headers, keys lowercased, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body (empty when there was none).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header (case-insensitive name).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, or an error message.
    pub fn body_utf8(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|_| "body is not valid UTF-8".to_string())
    }
}

/// Why a request could not be parsed; maps onto a response status.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Malformed request line or headers → 400.
    Bad(String),
    /// Head or body over the size bounds → 413.
    TooLarge(String),
    /// I/O error or premature close; no response possible.
    Io(String),
}

/// Reads one request from the stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ParseError> {
    let mut reader = BufReader::new(stream);
    let mut head = String::new();
    // Request line.
    read_line_bounded(&mut reader, &mut head)?;
    let mut parts = head.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ParseError::Bad("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| ParseError::Bad("request line has no target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| ParseError::Bad("request line has no version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Bad(format!("unsupported version {version}")));
    }
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path.to_string(), query.to_string()),
        None => (target.to_string(), String::new()),
    };

    // Headers.
    let mut headers = Vec::new();
    let mut head_bytes = head.len();
    loop {
        let mut line = String::new();
        read_line_bounded(&mut reader, &mut line)?;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        head_bytes += line.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(ParseError::TooLarge("request head too large".into()));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::Bad(format!("malformed header `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    // Body, if Content-Length says so.
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| ParseError::Bad(format!("bad Content-Length `{v}`")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(ParseError::TooLarge(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| ParseError::Io(format!("reading body: {e}")))?;

    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// Reads one CRLF-terminated line, bounding its length.
fn read_line_bounded<R: BufRead>(reader: &mut R, out: &mut String) -> Result<(), ParseError> {
    let mut taken = reader.take(MAX_HEAD_BYTES as u64 + 1);
    match taken.read_line(out) {
        Ok(0) => Err(ParseError::Io("connection closed mid-request".into())),
        Ok(n) if n > MAX_HEAD_BYTES => Err(ParseError::TooLarge("request line too long".into())),
        Ok(_) => Ok(()),
        Err(e) => Err(ParseError::Io(format!("reading request: {e}"))),
    }
}

/// Writes one response and flushes. `content_type` defaults to JSON.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> io::Result<()> {
    let reason = reason_phrase(status);
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// The standard reason phrase for the statuses this server emits.
fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A `{"error": "..."}` body.
pub fn error_body(message: &str) -> String {
    format!("{{\"error\":\"{}\"}}", json_escape(message))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Round-trips one request through a real socket pair.
    fn parse_via_socket(raw: &[u8]) -> Result<Request, ParseError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = read_request(&mut stream);
        writer.join().unwrap();
        req
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse_via_socket(
            b"POST /v1/jobs?x=1 HTTP/1.1\r\nHost: a\r\nContent-Length: 4\r\n\
              X-Client-Id: c9\r\n\r\nbody",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.header("x-client-id"), Some("c9"));
        assert_eq!(req.header("X-Client-Id"), Some("c9"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse_via_socket(b"GET /v1/healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_garbage_and_oversize() {
        assert!(matches!(
            parse_via_socket(b"NOT-HTTP\r\n\r\n"),
            Err(ParseError::Bad(_))
        ));
        assert!(matches!(
            parse_via_socket(b"POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n"),
            Err(ParseError::TooLarge(_))
        ));
        assert!(matches!(
            parse_via_socket(b"GET / HTTP/2\r\n\r\n"),
            Err(ParseError::Bad(_))
        ));
    }

    #[test]
    fn json_escaping_handles_the_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
