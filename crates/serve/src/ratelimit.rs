//! A per-client token-bucket rate limiter for job submission.
//!
//! Each client (named by the `X-Client-Id` header, falling back to the
//! peer IP) gets a bucket of `capacity` tokens refilled continuously at
//! `refill_per_sec`. A submission costs one token; an empty bucket means
//! `429`. The bucket map is bounded: clients idle long enough to have
//! fully refilled are dropped on the next sweep, so a daemon scanning
//! many one-shot clients does not grow without bound.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Token buckets, keyed by client id.
#[derive(Debug)]
pub struct RateLimiter {
    capacity: f64,
    refill_per_sec: f64,
    started: Instant,
    /// client → (tokens, last-update time in seconds since `started`).
    buckets: Mutex<HashMap<String, (f64, f64)>>,
}

/// Sweep the bucket map when it exceeds this many clients.
const SWEEP_THRESHOLD: usize = 1024;

impl RateLimiter {
    /// A limiter allowing bursts of `capacity` and a sustained
    /// `refill_per_sec` submissions per second per client.
    pub fn new(capacity: f64, refill_per_sec: f64) -> RateLimiter {
        RateLimiter {
            capacity: capacity.max(1.0),
            refill_per_sec: refill_per_sec.max(0.0),
            started: Instant::now(),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Whether `client` may submit now (consumes a token if so).
    pub fn allow(&self, client: &str) -> bool {
        self.allow_at(client, self.started.elapsed().as_secs_f64())
    }

    /// [`RateLimiter::allow`] with an explicit clock, for tests.
    pub fn allow_at(&self, client: &str, now_secs: f64) -> bool {
        let mut buckets = self.buckets.lock().unwrap();
        if buckets.len() > SWEEP_THRESHOLD {
            let (capacity, rate) = (self.capacity, self.refill_per_sec);
            buckets.retain(|_, (tokens, at)| *tokens + (now_secs - *at) * rate < capacity);
        }
        let (tokens, at) = buckets
            .entry(client.to_string())
            .or_insert((self.capacity, now_secs));
        let refilled = (*tokens + (now_secs - *at) * self.refill_per_sec).min(self.capacity);
        *at = now_secs;
        if refilled >= 1.0 {
            *tokens = refilled - 1.0;
            true
        } else {
            *tokens = refilled;
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_refill() {
        let limiter = RateLimiter::new(3.0, 1.0);
        // Burst drains the bucket.
        assert!(limiter.allow_at("a", 0.0));
        assert!(limiter.allow_at("a", 0.0));
        assert!(limiter.allow_at("a", 0.0));
        assert!(!limiter.allow_at("a", 0.0));
        // Refill restores one token per second, capped at capacity.
        assert!(!limiter.allow_at("a", 0.5));
        assert!(limiter.allow_at("a", 1.6));
        assert!(!limiter.allow_at("a", 1.6));
        assert!(limiter.allow_at("a", 100.0));
    }

    #[test]
    fn clients_are_independent() {
        let limiter = RateLimiter::new(1.0, 0.1);
        assert!(limiter.allow_at("a", 0.0));
        assert!(!limiter.allow_at("a", 0.0));
        assert!(limiter.allow_at("b", 0.0));
    }

    #[test]
    fn sweep_drops_fully_refilled_clients() {
        let limiter = RateLimiter::new(2.0, 1.0);
        for i in 0..(SWEEP_THRESHOLD + 10) {
            assert!(limiter.allow_at(&format!("c{i}"), 0.0));
        }
        // Much later every bucket is full again; the sweep empties the map
        // (the probing client is re-inserted by its own call).
        assert!(limiter.allow_at("probe", 1000.0));
        assert!(limiter.buckets.lock().unwrap().len() <= 2);
    }
}
