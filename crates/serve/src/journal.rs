//! The crash-safe, append-only job journal.
//!
//! Every state transition of every job is one JSON line appended to
//! `<dir>/journal.jsonl` and (by default) fsynced before the daemon acks
//! the transition to a client. A `kill -9` at any instant therefore loses
//! at most the line being written — and the recovery scan tolerates a
//! truncated tail, so the surviving prefix fully describes the queue.
//!
//! Events (`v` is the journal schema version, currently 1):
//!
//! ```text
//! {"v":1,"ev":"submit","job":"j-7","jkey":"<16hex>","client":"...","spec":{...}}
//! {"v":1,"ev":"dup","job":"j-7","kind":"inflight"|"cache"}      dedup hit
//! {"v":1,"ev":"start","job":"j-7"}
//! {"v":1,"ev":"done","job":"j-7","results":[{"key":..,"label":..,"ok":..,"tsv":..},..]}
//! {"v":1,"ev":"failed","job":"j-7","error":"..."}
//! ```
//!
//! Recovery replays the journal in order: a `submit` without a terminal
//! `done`/`failed` is re-enqueued (its runs re-execute; completed runs
//! are served instantly by the content-addressed run cache, so recovery
//! never repeats finished work). On startup the journal is *compacted* —
//! rewritten atomically with one `submit`+terminal pair per finished job
//! and the pending submits — so it stays proportional to history that
//! still matters, not to total traffic.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use ipsim_harness::wire::JobSpec;
use ipsim_telemetry::json::{self, Json};

use crate::http::json_escape;

/// Journal schema version.
pub const JOURNAL_VERSION: u32 = 1;

/// Journal file name under the serve directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";

/// One run's recorded outcome inside a terminal `done` event.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Run-cache key.
    pub key: String,
    /// Human-readable spec label.
    pub label: String,
    /// Whether the run produced a summary.
    pub ok: bool,
    /// The summary TSV line (empty when `ok` is false), or the panic
    /// message when the run failed.
    pub tsv: String,
}

impl RunResult {
    fn to_json(&self) -> String {
        format!(
            "{{\"key\":\"{}\",\"label\":\"{}\",\"ok\":{},\"tsv\":\"{}\"}}",
            json_escape(&self.key),
            json_escape(&self.label),
            self.ok,
            json_escape(&self.tsv),
        )
    }

    fn from_json(value: &Json) -> Option<RunResult> {
        Some(RunResult {
            key: value.get("key")?.as_str()?.to_string(),
            label: value.get("label")?.as_str()?.to_string(),
            ok: matches!(value.get("ok")?, Json::Bool(true)),
            tsv: value.get("tsv")?.as_str()?.to_string(),
        })
    }
}

/// One journal event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A job was accepted (spec kept verbatim for recovery).
    Submit {
        /// Job id.
        job: String,
        /// Job-level dedup key.
        jkey: String,
        /// Submitting client id.
        client: String,
        /// The wire spec.
        spec: JobSpec,
    },
    /// A duplicate submission coalesced onto `job`.
    Dup {
        /// The existing job the submission coalesced onto.
        job: String,
        /// `"inflight"` (queued/running job) or `"cache"` (all summaries
        /// already on disk).
        kind: String,
    },
    /// A worker began executing the job.
    Start {
        /// Job id.
        job: String,
    },
    /// The job reached its successful terminal state.
    Done {
        /// Job id.
        job: String,
        /// Per-run outcomes, in spec order.
        results: Vec<RunResult>,
    },
    /// The job failed before producing results.
    Failed {
        /// Job id.
        job: String,
        /// The failure reason.
        error: String,
    },
}

impl Event {
    /// The job id this event concerns.
    pub fn job(&self) -> &str {
        match self {
            Event::Submit { job, .. }
            | Event::Dup { job, .. }
            | Event::Start { job }
            | Event::Done { job, .. }
            | Event::Failed { job, .. } => job,
        }
    }

    /// One JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            Event::Submit {
                job,
                jkey,
                client,
                spec,
            } => format!(
                "{{\"v\":{JOURNAL_VERSION},\"ev\":\"submit\",\"job\":\"{}\",\"jkey\":\"{}\",\
                 \"client\":\"{}\",\"spec\":{}}}",
                json_escape(job),
                json_escape(jkey),
                json_escape(client),
                spec.to_json(),
            ),
            Event::Dup { job, kind } => format!(
                "{{\"v\":{JOURNAL_VERSION},\"ev\":\"dup\",\"job\":\"{}\",\"kind\":\"{}\"}}",
                json_escape(job),
                json_escape(kind),
            ),
            Event::Start { job } => format!(
                "{{\"v\":{JOURNAL_VERSION},\"ev\":\"start\",\"job\":\"{}\"}}",
                json_escape(job),
            ),
            Event::Done { job, results } => {
                let results: Vec<String> = results.iter().map(RunResult::to_json).collect();
                format!(
                    "{{\"v\":{JOURNAL_VERSION},\"ev\":\"done\",\"job\":\"{}\",\"results\":[{}]}}",
                    json_escape(job),
                    results.join(","),
                )
            }
            Event::Failed { job, error } => format!(
                "{{\"v\":{JOURNAL_VERSION},\"ev\":\"failed\",\"job\":\"{}\",\"error\":\"{}\"}}",
                json_escape(job),
                json_escape(error),
            ),
        }
    }

    /// Parses one journal line. `Err` for structurally invalid JSON or an
    /// unknown event shape (the recovery scan skips and counts these).
    pub fn from_json(line: &str) -> Result<Event, String> {
        let value = json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
        match value.get("v").and_then(Json::as_num) {
            Some(v) if v == f64::from(JOURNAL_VERSION) => {}
            _ => return Err("missing or unsupported journal version".to_string()),
        }
        let ev = value
            .get("ev")
            .and_then(Json::as_str)
            .ok_or("missing `ev`")?;
        let job = value
            .get("job")
            .and_then(Json::as_str)
            .ok_or("missing `job`")?
            .to_string();
        match ev {
            "submit" => {
                let jkey = value
                    .get("jkey")
                    .and_then(Json::as_str)
                    .ok_or("submit missing `jkey`")?
                    .to_string();
                let client = value
                    .get("client")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string();
                let spec = value.get("spec").ok_or("submit missing `spec`")?;
                let spec = JobSpec::from_json_value(spec)?;
                Ok(Event::Submit {
                    job,
                    jkey,
                    client,
                    spec,
                })
            }
            "dup" => Ok(Event::Dup {
                job,
                kind: value
                    .get("kind")
                    .and_then(Json::as_str)
                    .unwrap_or("inflight")
                    .to_string(),
            }),
            "start" => Ok(Event::Start { job }),
            "done" => {
                let results = value
                    .get("results")
                    .and_then(Json::as_arr)
                    .ok_or("done missing `results`")?;
                let results = results
                    .iter()
                    .map(|r| RunResult::from_json(r).ok_or_else(|| "malformed result".to_string()))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Event::Done { job, results })
            }
            "failed" => Ok(Event::Failed {
                job,
                error: value
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
            }),
            _ => Err(format!("unknown event `{ev}`")),
        }
    }
}

/// What a recovery scan found.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Every event in the surviving journal prefix, in order.
    pub events: Vec<Event>,
    /// Lines that failed to parse (at most the torn tail of a crashed
    /// write, unless the file was damaged some other way).
    pub skipped_lines: u64,
}

/// The append-only journal writer.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<File>,
    /// Whether to fsync after each append (crash-safe acks; on by
    /// default — turn off only for benchmarks).
    sync: bool,
}

impl Journal {
    /// Opens (creating if needed) the journal under `dir`.
    pub fn open(dir: &Path, sync: bool) -> std::io::Result<Journal> {
        fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Journal {
            path,
            file: Mutex::new(file),
            sync,
        })
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one event durably: a single `write` of the full line, then
    /// (unless disabled) `fdatasync`. Called before the transition is
    /// acked anywhere else.
    pub fn append(&self, event: &Event) -> std::io::Result<()> {
        let mut line = event.to_json();
        line.push('\n');
        let mut file = self.file.lock().unwrap();
        file.write_all(line.as_bytes())?;
        if self.sync {
            file.sync_data()?;
        }
        Ok(())
    }

    /// Reads and parses the journal at `dir`, tolerating a torn tail.
    /// A missing file is an empty recovery, not an error.
    pub fn recover(dir: &Path) -> Recovery {
        let path = dir.join(JOURNAL_FILE);
        let Ok(text) = fs::read_to_string(&path) else {
            return Recovery::default();
        };
        let mut recovery = Recovery::default();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match Event::from_json(line) {
                Ok(event) => recovery.events.push(event),
                Err(_) => recovery.skipped_lines += 1,
            }
        }
        recovery
    }

    /// Atomically replaces the journal under `dir` with `events`
    /// (compaction): write to a temp file, fsync, rename over. Call
    /// *before* [`Journal::open`] — compacting under an open writer
    /// would race.
    pub fn rewrite(dir: &Path, events: &[Event]) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        let tmp = dir.join(format!(".{JOURNAL_FILE}.{}.tmp", std::process::id()));
        let mut body = String::new();
        for event in events {
            body.push_str(&event.to_json());
            body.push('\n');
        }
        let mut file = File::create(&tmp)?;
        file.write_all(body.as_bytes())?;
        file.sync_data()?;
        drop(file);
        fs::rename(&tmp, &path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipsim_harness::wire::WireRun;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ipsim-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_spec() -> JobSpec {
        JobSpec::from_json(
            "{\"v\":1,\"runs\":[{\"config\":\"single_core\",\"workload\":\"db\",\
             \"prefetcher\":\"nl_tagged\",\"policy\":\"install_both\",\
             \"warm\":1000,\"measure\":2000}]}",
        )
        .unwrap()
    }

    fn sample_events() -> Vec<Event> {
        vec![
            Event::Submit {
                job: "j-1".into(),
                jkey: "00ff".into(),
                client: "t".into(),
                spec: sample_spec(),
            },
            Event::Dup {
                job: "j-1".into(),
                kind: "inflight".into(),
            },
            Event::Start { job: "j-1".into() },
            Event::Done {
                job: "j-1".into(),
                results: vec![RunResult {
                    key: "k".into(),
                    label: "1c·DB·tagged \"quoted\"".into(),
                    ok: true,
                    tsv: "1\t2\t3".into(),
                }],
            },
            Event::Failed {
                job: "j-2".into(),
                error: "worker panicked:\nline".into(),
            },
        ]
    }

    #[test]
    fn events_round_trip_through_json() {
        for event in sample_events() {
            let line = event.to_json();
            assert_eq!(Event::from_json(&line), Ok(event), "{line}");
        }
    }

    #[test]
    fn append_recover_round_trips_and_tolerates_torn_tail() {
        let dir = tmp_dir("roundtrip");
        let journal = Journal::open(&dir, true).unwrap();
        let events = sample_events();
        for event in &events {
            journal.append(event).unwrap();
        }
        drop(journal);
        // Simulate a kill -9 mid-append: torn, unterminated half line.
        let path = dir.join(JOURNAL_FILE);
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"{\"v\":1,\"ev\":\"submit\",\"jo").unwrap();
        drop(file);

        let recovery = Journal::recover(&dir);
        assert_eq!(recovery.events, events);
        assert_eq!(recovery.skipped_lines, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rewrite_compacts_atomically() {
        let dir = tmp_dir("rewrite");
        let journal = Journal::open(&dir, false).unwrap();
        for event in sample_events() {
            journal.append(&event).unwrap();
        }
        drop(journal);
        let kept = vec![Event::Start { job: "j-9".into() }];
        Journal::rewrite(&dir, &kept).unwrap();
        let recovery = Journal::recover(&dir);
        assert_eq!(recovery.events, kept);
        assert_eq!(recovery.skipped_lines, 0);
        // No temp litter.
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_journal_recovers_empty() {
        let recovery = Journal::recover(Path::new("/nonexistent/ipsim-journal"));
        assert!(recovery.events.is_empty());
        assert_eq!(recovery.skipped_lines, 0);
    }

    #[test]
    fn wire_run_spec_survives_submit_event() {
        let spec = sample_spec();
        let event = Event::Submit {
            job: "j-1".into(),
            jkey: "k".into(),
            client: String::new(),
            spec: spec.clone(),
        };
        let Event::Submit { spec: back, .. } = Event::from_json(&event.to_json()).unwrap() else {
            panic!("wrong event kind");
        };
        assert_eq!(spec, back);
        let runs: Vec<WireRun> = back.runs;
        assert_eq!(runs[0].workload, "db");
    }
}
