//! `ipsim-serve`: the long-running experiment service.
//!
//! The batch CLI answers "run this sweep now, in this terminal". This
//! crate answers the production question: a daemon that accepts
//! experiment specs over HTTP/JSON, executes them on the shared
//! [`ipsim_harness`] worker pool, dedups identical work (content-
//! addressed at both the run and job level), and survives being killed
//! at any instant via an fsynced append-only journal.
//!
//! Everything is hand-rolled over `std::net` — the workspace's
//! vendored-only dependency policy applies to the service exactly as it
//! does to the simulator.
//!
//! * [`http`] — a bounded, minimal HTTP/1.1 reader/writer.
//! * [`wire`](ipsim_harness::wire) — the versioned job-spec encoding
//!   (lives in the harness so the CLI and daemon share one schema).
//! * [`journal`] — the crash-safe job journal (JSONL + fsync + torn-tail
//!   tolerant recovery + startup compaction).
//! * [`ratelimit`] — per-client token buckets.
//! * [`state`] — job table, bounded queue, dedup/coalescing, workers,
//!   recovery.
//! * [`server`] — the accept loop and the six `/v1` endpoints.
//! * [`metrics`] — the daemon's [`ipsim_obs`] metric handles backing
//!   `GET /v1/metrics` and the request spans.
//! * [`client`] — a tiny blocking client (load generator, tests,
//!   scripting).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod journal;
pub mod metrics;
pub mod ratelimit;
pub mod server;
pub mod state;

pub use journal::{Event, Journal, RunResult};
pub use metrics::ServeMetrics;
pub use ratelimit::RateLimiter;
pub use server::{start, ServerHandle};
pub use state::{Job, JobState, ServeConfig, Service, SubmitError, SubmitOutcome};
