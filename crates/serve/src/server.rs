//! The HTTP front end: a thread-per-connection accept loop routing the
//! five-endpoint v1 API onto [`Service`].
//!
//! ```text
//! POST /v1/jobs              submit a job spec (JSON or TSV body)
//! GET  /v1/jobs/{id}         state + done/total progress
//! GET  /v1/jobs/{id}/result  terminal results (+ ?format=tsv)
//! GET  /v1/healthz           liveness
//! GET  /v1/stats             counters, queue depth, latency percentiles
//! GET  /v1/metrics           Prometheus text exposition (scrapeable)
//! ```
//!
//! Submissions answer `202` (queued), `200` (dedup — completed from the
//! run cache or coalesced onto an in-flight twin), `400` (malformed
//! spec), `429` (queue full or rate-limited, with `Retry-After`), or
//! `503` (draining). Results answer `409` until the job is terminal, so
//! pollers cannot mistake a partial job for a finished one.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ipsim_harness::wire::{JobSpec, TSV_HEADER};
use ipsim_harness::Summary;

use crate::http::{self, error_body, json_escape, ParseError, Request};
use crate::metrics::ENDPOINTS;
use crate::state::{Job, Service, SubmitError};

/// A running server: accept loop + workers, with a handle to drain it.
pub struct ServerHandle {
    /// The bound address (useful with `:0` binds in tests).
    pub addr: SocketAddr,
    service: Arc<Service>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The shared service, for in-process inspection.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Begins a graceful drain: stop accepting, reject new submissions
    /// with 503, let each worker finish the run it has in flight.
    pub fn shutdown(&self) {
        self.service.begin_shutdown();
    }

    /// Drains and waits for the accept loop and all workers to exit.
    pub fn join(mut self) {
        self.service.begin_shutdown();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Binds `bind_addr` (e.g. `127.0.0.1:0`) and starts the accept loop and
/// the configured worker threads.
pub fn start(service: Arc<Service>, bind_addr: &str) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(bind_addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let workers = (0..service.config.workers)
        .map(|_| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || service.worker_loop())
        })
        .collect();

    let accept = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || accept_loop(&listener, &service))
    };

    Ok(ServerHandle {
        addr,
        service,
        accept: Some(accept),
        workers,
    })
}

/// Accepts until a drain begins. Nonblocking + poll so the drain flag is
/// noticed promptly without needing a wake-up connection.
fn accept_loop(listener: &TcpListener, service: &Arc<Service>) {
    loop {
        if service.draining() {
            return;
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                let service = Arc::clone(service);
                std::thread::spawn(move || handle_connection(stream, peer, &service));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Serves one connection: one request, one response, close. The whole
/// exchange is a `serve.request` span with `serve.parse` /
/// `serve.route` / `serve.respond` children, and lands one sample in
/// `ipsim_serve_request_micros{endpoint}`.
fn handle_connection(mut stream: TcpStream, peer: SocketAddr, service: &Arc<Service>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let spans = ipsim_obs::spans();
    let request_span = spans.span("serve.request");
    let started = spans.now_micros();
    let parsed = {
        let _parse = spans.span("serve.parse");
        http::read_request(&mut stream)
    };
    let (endpoint, status, body) = match parsed {
        Ok(request) => {
            let endpoint = endpoint_name(&request);
            let (status, body) = {
                let _route = spans.span("serve.route");
                route(&request, peer, service)
            };
            (endpoint, status, body)
        }
        Err(ParseError::Bad(e)) => ("invalid", 400, error_body(&e)),
        Err(ParseError::TooLarge(e)) => ("invalid", 413, error_body(&e)),
        Err(ParseError::Io(_)) => {
            drop(request_span);
            service
                .obs
                .observe_request("invalid", spans.now_micros().saturating_sub(started));
            return;
        }
    };
    {
        let _respond = spans.span("serve.respond");
        respond(&mut stream, status, endpoint, &body);
    }
    drop(request_span);
    service
        .obs
        .observe_request(endpoint, spans.now_micros().saturating_sub(started));
}

/// The normalised endpoint label for metrics — one of
/// [`ENDPOINTS`](crate::metrics::ENDPOINTS).
fn endpoint_name(request: &Request) -> &'static str {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["v1", "healthz"]) => "healthz",
        ("GET", ["v1", "stats"]) => "stats",
        ("GET", ["v1", "metrics"]) => "metrics",
        ("POST", ["v1", "jobs"]) => "jobs",
        ("GET", ["v1", "jobs", _]) => "job_status",
        ("GET", ["v1", "jobs", _, "result"]) => "job_result",
        _ => "other",
    }
}

fn respond(stream: &mut TcpStream, status: u16, endpoint: &str, body: &str) {
    let extra: &[(&str, &str)] = if status == 429 {
        &[("Retry-After", "1")]
    } else {
        &[]
    };
    let content_type = if endpoint == "metrics" && status == 200 {
        "text/plain; version=0.0.4; charset=utf-8"
    } else {
        "application/json"
    };
    let _ = http::write_response(stream, status, content_type, extra, body);
}

/// Routes one request to its endpoint.
fn route(request: &Request, peer: SocketAddr, service: &Arc<Service>) -> (u16, String) {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["v1", "healthz"]) => (
            200,
            format!(
                "{{\"ok\":true,\"service\":\"ipsim-serve\",\"v\":1,\"draining\":{}}}",
                service.draining()
            ),
        ),
        ("GET", ["v1", "stats"]) => (200, stats_body(service)),
        ("GET", ["v1", "metrics"]) => (200, ipsim_obs::metrics().render_prometheus()),
        ("POST", ["v1", "jobs"]) => submit(request, peer, service),
        ("GET", ["v1", "jobs", id]) => match service.with_job(id, status_body) {
            Some(body) => (200, body),
            None => (404, error_body(&format!("no job `{id}`"))),
        },
        ("GET", ["v1", "jobs", id, "result"]) => result(request, id, service),
        ("POST" | "GET", _) => (404, error_body("no such endpoint")),
        _ => (405, error_body("method not allowed")),
    }
}

/// `POST /v1/jobs`: rate-limit, decode, hand to the service.
fn submit(request: &Request, peer: SocketAddr, service: &Arc<Service>) -> (u16, String) {
    let client = request
        .header("x-client-id")
        .map(str::to_string)
        .unwrap_or_else(|| peer.ip().to_string());
    if !service.limiter.allow(&client) {
        service
            .stats
            .rejected_rate_limited
            .fetch_add(1, Ordering::Relaxed);
        service.obs.rejected_rate_limited.inc();
        return (429, error_body("rate limited"));
    }
    let body = match request.body_utf8() {
        Ok(body) => body,
        Err(e) => return (400, error_body(&e)),
    };
    let is_tsv = request
        .header("content-type")
        .is_some_and(|t| t.contains("tab-separated"))
        || body.trim_start().starts_with(TSV_HEADER);
    let spec = if is_tsv {
        JobSpec::from_tsv(body)
    } else {
        JobSpec::from_json(body)
    };
    let spec = match spec {
        Ok(spec) => spec,
        Err(e) => return (400, error_body(&e)),
    };
    match service.submit(&client, spec) {
        Ok(outcome) => {
            let dedup = outcome
                .dedup
                .map_or("null".to_string(), |d| format!("\"{d}\""));
            let status = if outcome.dedup.is_some() { 200 } else { 202 };
            (
                status,
                format!(
                    "{{\"id\":\"{}\",\"state\":\"{}\",\"dedup\":{}}}",
                    json_escape(&outcome.job_id),
                    outcome.state.as_str(),
                    dedup
                ),
            )
        }
        Err(SubmitError::Invalid(e)) => (400, error_body(&e)),
        Err(SubmitError::QueueFull) => (429, error_body("queue full")),
        Err(SubmitError::Draining) => (503, error_body("draining")),
        Err(SubmitError::Journal(e)) => (500, error_body(&format!("journal: {e}"))),
    }
}

/// `GET /v1/jobs/{id}`: the progress body.
fn status_body(job: &Job) -> String {
    format!(
        "{{\"id\":\"{}\",\"state\":\"{}\",\"done\":{},\"total\":{},\"dedup\":{}}}",
        json_escape(&job.id),
        job.state.as_str(),
        job.done_runs,
        job.total_runs,
        job.dedup.map_or("null".to_string(), |d| format!("\"{d}\"")),
    )
}

/// `GET /v1/jobs/{id}/result`: terminal results, JSON by default or
/// `?format=tsv` for a shell-friendly table.
fn result(request: &Request, id: &str, service: &Arc<Service>) -> (u16, String) {
    let Some(job) = service.with_job(id, Job::clone) else {
        return (404, error_body(&format!("no job `{id}`")));
    };
    if !job.state.terminal() {
        return (
            409,
            error_body(&format!(
                "job is {} ({}/{} runs) — poll until done",
                job.state.as_str(),
                job.done_runs,
                job.total_runs
            )),
        );
    }
    if request.query.split('&').any(|kv| kv == "format=tsv") {
        let mut body = String::from("# ipsim-job-result v1\n");
        for run in &job.results {
            body.push_str(&format!(
                "{}\t{}\t{}\n",
                run.key,
                if run.ok { "ok" } else { "failed" },
                run.tsv
            ));
        }
        return (200, body);
    }
    let runs: Vec<String> = job
        .results
        .iter()
        .map(|run| {
            let summary = run.ok.then(|| Summary::from_tsv(&run.tsv)).flatten();
            let telemetry = service
                .telemetry_dir(&run.key)
                .map_or("null".to_string(), |dir| {
                    format!("\"{}\"", json_escape(&dir.display().to_string()))
                });
            format!(
                "{{\"key\":\"{}\",\"label\":\"{}\",\"ok\":{},\"ipc\":{},\"l1i_mpi\":{},\
                 \"tsv\":\"{}\",\"telemetry\":{}}}",
                json_escape(&run.key),
                json_escape(&run.label),
                run.ok,
                summary.as_ref().map_or(0.0, |s| s.ipc),
                summary.as_ref().map_or(0.0, |s| s.l1i_mpi),
                json_escape(&run.tsv),
                telemetry,
            )
        })
        .collect();
    let error = job
        .error
        .as_deref()
        .map_or("null".to_string(), |e| format!("\"{}\"", json_escape(e)));
    (
        200,
        format!(
            "{{\"id\":\"{}\",\"state\":\"{}\",\"error\":{},\"results\":[{}]}}",
            json_escape(&job.id),
            job.state.as_str(),
            error,
            runs.join(","),
        ),
    )
}

/// `GET /v1/stats`: counters + live gauges + per-endpoint latency
/// percentiles (daemon-side, from the obs histograms — only endpoints
/// that have served at least one request appear).
fn stats_body(service: &Arc<Service>) -> String {
    let s = &service.stats;
    let latency: Vec<String> = ENDPOINTS
        .iter()
        .filter_map(|&endpoint| {
            let hist = service.obs.request_histogram(endpoint)?;
            let snap = hist.snapshot();
            if snap.count == 0 {
                return None;
            }
            Some(format!(
                "\"{endpoint}\":{{\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                snap.count,
                snap.percentile(50.0),
                snap.percentile(90.0),
                snap.percentile(99.0),
            ))
        })
        .collect();
    format!(
        "{{\"submitted\":{},\"completed\":{},\"failed\":{},\
         \"dedup_cache\":{},\"dedup_inflight\":{},\
         \"rejected_queue_full\":{},\"rejected_rate_limited\":{},\
         \"recovered\":{},\"journal_skipped\":{},\
         \"queue_depth\":{},\"jobs\":{},\"workers\":{},\"draining\":{},\
         \"latency_micros\":{{{}}}}}",
        s.submitted.load(Ordering::Relaxed),
        s.completed.load(Ordering::Relaxed),
        s.failed.load(Ordering::Relaxed),
        s.dedup_cache.load(Ordering::Relaxed),
        s.dedup_inflight.load(Ordering::Relaxed),
        s.rejected_queue_full.load(Ordering::Relaxed),
        s.rejected_rate_limited.load(Ordering::Relaxed),
        s.recovered.load(Ordering::Relaxed),
        s.journal_skipped.load(Ordering::Relaxed),
        service.queue_len(),
        service.job_count(),
        service.config.workers,
        service.draining(),
        latency.join(","),
    )
}
