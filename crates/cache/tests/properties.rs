//! Property-based tests: the set-associative cache must agree with a naive
//! reference model under arbitrary operation sequences.

use std::collections::VecDeque;

use ipsim_cache::{Access, FillKind, SetAssocCache};
use ipsim_types::{CacheConfig, LineAddr};
use proptest::prelude::*;

/// A trivially correct reference: per-set VecDeque in LRU order.
struct RefCache {
    sets: Vec<VecDeque<u64>>,
    ways: usize,
    mask: u64,
}

impl RefCache {
    fn new(sets: usize, ways: usize) -> RefCache {
        RefCache {
            sets: vec![VecDeque::new(); sets],
            ways,
            mask: sets as u64 - 1,
        }
    }

    fn set(&mut self, line: u64) -> &mut VecDeque<u64> {
        &mut self.sets[(line & self.mask) as usize]
    }

    fn access(&mut self, line: u64) -> bool {
        let set = self.set(line);
        if let Some(pos) = set.iter().position(|&l| l == line) {
            let v = set.remove(pos).unwrap();
            set.push_front(v);
            true
        } else {
            false
        }
    }

    /// Fills `line`, returning the evicted LRU line if the set was full —
    /// the old `Vec`-based `Set` semantics the flat lanes must reproduce.
    fn fill(&mut self, line: u64) -> Option<u64> {
        let ways = self.ways;
        let set = self.set(line);
        if let Some(pos) = set.iter().position(|&l| l == line) {
            let v = set.remove(pos).unwrap();
            set.push_front(v);
            return None;
        }
        let victim = if set.len() == ways {
            set.pop_back()
        } else {
            None
        };
        set.push_front(line);
        victim
    }

    fn resident_sorted(&self) -> Vec<u64> {
        let mut all: Vec<u64> = self.sets.iter().flatten().copied().collect();
        all.sort_unstable();
        all
    }

    fn probe(&mut self, line: u64) -> bool {
        let set = self.set(line);
        set.iter().any(|&l| l == line)
    }
}

#[derive(Debug, Clone)]
enum Op {
    Access(u64),
    Fill(u64, bool),
    Probe(u64),
    Invalidate(u64),
}

fn op_strategy(max_line: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..max_line).prop_map(Op::Access),
        ((0..max_line), any::<bool>()).prop_map(|(l, p)| Op::Fill(l, p)),
        (0..max_line).prop_map(Op::Probe),
        (0..max_line).prop_map(Op::Invalidate),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Hits, misses, probes and residency always agree with the reference
    /// model, for every operation order.
    #[test]
    fn cache_matches_reference_model(ops in prop::collection::vec(op_strategy(64), 1..400)) {
        // 4 sets x 2 ways.
        let mut dut = SetAssocCache::new(CacheConfig::new(512, 2, 64).unwrap());
        let mut re = RefCache::new(4, 2);
        for op in ops {
            match op {
                Op::Access(l) => {
                    let hit = dut.access(LineAddr(l)).is_hit();
                    prop_assert_eq!(hit, re.access(l), "access {}", l);
                }
                Op::Fill(l, p) => {
                    let kind = if p { FillKind::Prefetch } else { FillKind::Demand };
                    // The victim must be the exact line the list-LRU
                    // reference evicts — not just "some line of the set".
                    // This is what makes stamp-based LRU provably
                    // order-equivalent to the old `Vec`-based `Set`.
                    let victim = dut.fill(LineAddr(l), kind).map(|v| v.line.0);
                    prop_assert_eq!(victim, re.fill(l), "fill {} victim", l);
                }
                Op::Probe(l) => {
                    prop_assert_eq!(dut.probe(LineAddr(l)), re.probe(l), "probe {}", l);
                }
                Op::Invalidate(l) => {
                    dut.invalidate(LineAddr(l));
                    let set = re.set(l);
                    if let Some(pos) = set.iter().position(|&x| x == l) {
                        set.remove(pos);
                    }
                }
            }
            prop_assert!(dut.resident_lines() <= 8);
        }
        // Same resident population at the end, not merely the same count.
        let mut dut_lines: Vec<u64> = dut.iter_lines().map(|l| l.0).collect();
        dut_lines.sort_unstable();
        prop_assert_eq!(dut_lines, re.resident_sorted());
    }

    /// Pure fill/touch streams (no invalidations) drive every set through
    /// full-capacity churn; the eviction *sequence* must match the
    /// reference model exactly, element for element.
    #[test]
    fn eviction_sequence_matches_reference(stream in prop::collection::vec(0u64..48, 1..600)) {
        let mut dut = SetAssocCache::new(CacheConfig::new(512, 2, 64).unwrap());
        let mut re = RefCache::new(4, 2);
        let mut dut_evictions = Vec::new();
        let mut ref_evictions = Vec::new();
        for (i, &l) in stream.iter().enumerate() {
            if i % 3 == 0 {
                // Interleave demand accesses so LRU promotion order matters.
                dut.access(LineAddr(l));
                re.access(l);
            } else if let Some(v) = dut.fill(LineAddr(l), FillKind::Demand) {
                dut_evictions.push(v.line.0);
                ref_evictions.push(re.fill(l).expect("reference also evicts"));
            } else {
                prop_assert_eq!(re.fill(l), None, "reference evicted but cache did not");
            }
        }
        prop_assert_eq!(dut_evictions, ref_evictions);
    }

    /// A prefetched line reports first-use exactly once, whatever happens
    /// around it, as long as it stays resident.
    #[test]
    fn first_use_reported_exactly_once(lines in prop::collection::vec(0u64..8, 1..50)) {
        // Fully associative enough to avoid evicting line 100.
        let mut c = SetAssocCache::new(CacheConfig::new(4096, 8, 64).unwrap());
        c.fill(LineAddr(100), FillKind::Prefetch);
        let mut first_uses = 0;
        for &l in &lines {
            c.access(LineAddr(l));
        }
        for _ in 0..3 {
            if let Access::Hit { first_use_of_prefetch: true } = c.access(LineAddr(100)) {
                first_uses += 1;
            }
        }
        prop_assert_eq!(first_uses, 1);
    }

    /// Statistics identities: misses <= accesses; every eviction implies the
    /// cache was full at that set; fills = resident + evictions + invalidated.
    #[test]
    fn stats_identities_hold(ops in prop::collection::vec(op_strategy(32), 1..300)) {
        let mut c = SetAssocCache::new(CacheConfig::new(512, 2, 64).unwrap());
        let mut invalidated = 0u64;
        for op in ops {
            match op {
                Op::Access(l) => { c.access(LineAddr(l)); }
                Op::Fill(l, p) => {
                    let kind = if p { FillKind::Prefetch } else { FillKind::Demand };
                    c.fill(LineAddr(l), kind);
                }
                Op::Probe(l) => { c.probe(LineAddr(l)); }
                Op::Invalidate(l) => {
                    if c.invalidate(LineAddr(l)).is_some() {
                        invalidated += 1;
                    }
                }
            }
        }
        let s = *c.stats();
        prop_assert!(s.misses <= s.accesses);
        let installed = s.demand_fills + s.prefetch_fills;
        prop_assert_eq!(
            installed,
            c.resident_lines() as u64 + s.evictions + invalidated
        );
    }
}
