//! Property-based tests for the MSHR file.

use ipsim_cache::Mshr;
use ipsim_types::LineAddr;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64, bool),
    Merge(u64),
    Retire(u64),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        ((0u64..16), (1u64..500), any::<bool>()).prop_map(|(l, t, p)| Op::Insert(l, t, p)),
        (0u64..16).prop_map(Op::Merge),
        (0u64..600).prop_map(Op::Retire),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Capacity is never exceeded, no duplicate lines coexist, retire only
    /// returns completed fills, and every inserted fill eventually retires
    /// exactly once.
    #[test]
    fn mshr_lifecycle_invariants(ops in prop::collection::vec(op(), 1..200)) {
        let mut mshr = Mshr::new(4);
        let mut inserted = 0u64;
        let mut retired = 0u64;
        for op in ops {
            match op {
                Op::Insert(line, ready, prefetch) => {
                    let before_full = mshr.is_full();
                    let had = mshr.lookup(LineAddr(line)).is_some();
                    let ok = mshr.insert(LineAddr(line), ready, prefetch);
                    prop_assert_eq!(ok, !before_full && !had);
                    if ok {
                        inserted += 1;
                    }
                }
                Op::Merge(line) => {
                    let present = mshr.lookup(LineAddr(line)).is_some();
                    let merged = mshr.merge_demand(LineAddr(line));
                    prop_assert_eq!(merged.is_some(), present);
                    if present {
                        prop_assert!(mshr.lookup(LineAddr(line)).unwrap().demand_merged);
                    }
                }
                Op::Retire(now) => {
                    let done = mshr.retire_ready(now);
                    for e in &done {
                        prop_assert!(e.ready_at <= now, "retired too early");
                        prop_assert!(mshr.lookup(e.line).is_none());
                    }
                    retired += done.len() as u64;
                }
            }
            prop_assert!(mshr.len() <= 4);
            if let Some(next) = mshr.next_ready_at() {
                prop_assert!(!mshr.is_empty());
                prop_assert!(next >= 1);
            } else {
                prop_assert!(mshr.is_empty());
            }
        }
        // Drain the rest: total retired equals total inserted.
        retired += mshr.retire_ready(u64::MAX).len() as u64;
        prop_assert_eq!(retired, inserted);
    }
}
