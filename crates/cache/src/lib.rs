//! Set-associative cache models with prefetch-aware bookkeeping.
//!
//! This crate provides the cache substrate for the `ipsim` simulator:
//!
//! * [`SetAssocCache`] — an LRU set-associative cache operating on
//!   [`LineAddr`](ipsim_types::LineAddr)s, tracking per-line `prefetched`,
//!   `used` and `dirty` flags. The flags implement the paper's *prefetch
//!   tagging* (a hit on a not-yet-used prefetched line triggers further
//!   sequential prefetches) and its *selective L2 install* policy (a
//!   prefetched line is installed into the L2 on L1I eviction only if it was
//!   actually used).
//! * [`Mshr`] — miss-status-holding registers: the set of in-flight line
//!   fills with their completion times, so demand fetches can merge with
//!   outstanding prefetches and observe partial latencies.
//! * [`InstallPolicy`] — where instruction-prefetch fills are installed
//!   (both levels, or L1-only until proven useful).
//!
//! # Examples
//!
//! ```
//! use ipsim_cache::{Access, FillKind, SetAssocCache};
//! use ipsim_types::{CacheConfig, LineAddr};
//!
//! let mut l1i = SetAssocCache::new(CacheConfig::default_l1());
//! assert_eq!(l1i.access(LineAddr(7)), Access::Miss);
//! l1i.fill(LineAddr(7), FillKind::Prefetch);
//! assert_eq!(
//!     l1i.access(LineAddr(7)),
//!     Access::Hit { first_use_of_prefetch: true }
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod mshr;
mod policy;
mod set;
mod stats;

pub use cache::{Access, Evicted, FillKind, SetAssocCache};
pub use mshr::{Mshr, MshrEntry};
pub use policy::InstallPolicy;
pub use stats::CacheStats;
