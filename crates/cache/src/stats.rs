//! Cache access statistics.

/// Counters accumulated by a [`SetAssocCache`](crate::SetAssocCache).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Demand accesses (reads + writes).
    pub accesses: u64,
    /// Demand accesses that missed.
    pub misses: u64,
    /// Lines installed by demand fills.
    pub demand_fills: u64,
    /// Lines installed by prefetch fills.
    pub prefetch_fills: u64,
    /// Fills that found the line already resident.
    pub redundant_fills: u64,
    /// Lines evicted to make room for a fill.
    pub evictions: u64,
    /// Evictions of prefetched lines that were never demand-referenced.
    pub useless_prefetch_evictions: u64,
    /// Evictions of prefetched lines that *were* demand-referenced (the
    /// telemetry `evict_used` population; with `useless_prefetch_evictions`
    /// it partitions every prefetched-line eviction).
    pub useful_prefetch_evictions: u64,
    /// First demand references to prefetched lines (prefetch proved useful).
    pub prefetch_first_uses: u64,
}

impl CacheStats {
    /// Miss ratio over demand accesses (0 when there were none).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.misses += other.misses;
        self.demand_fills += other.demand_fills;
        self.prefetch_fills += other.prefetch_fills;
        self.redundant_fills += other.redundant_fills;
        self.evictions += other.evictions;
        self.useless_prefetch_evictions += other.useless_prefetch_evictions;
        self.useful_prefetch_evictions += other.useful_prefetch_evictions;
        self.prefetch_first_uses += other.prefetch_first_uses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_ratio_handles_zero() {
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
        let s = CacheStats {
            accesses: 4,
            misses: 1,
            ..CacheStats::default()
        };
        assert_eq!(s.miss_ratio(), 0.25);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = CacheStats {
            accesses: 1,
            misses: 1,
            ..CacheStats::default()
        };
        let b = CacheStats {
            accesses: 9,
            misses: 2,
            prefetch_first_uses: 3,
            ..CacheStats::default()
        };
        a.merge(&b);
        assert_eq!(a.accesses, 10);
        assert_eq!(a.misses, 3);
        assert_eq!(a.prefetch_first_uses, 3);
    }
}
