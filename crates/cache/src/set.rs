//! A single cache set with true-LRU replacement.

use ipsim_types::LineAddr;

/// One resident cache line's bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Entry {
    /// Full line address (we store the whole line address instead of a tag;
    /// the set index is implied by the container).
    pub line: LineAddr,
    /// Filled by a prefetch (any level) rather than a demand miss.
    pub prefetched: bool,
    /// Demand-referenced since it was filled.
    pub used: bool,
    /// Written since it was filled.
    pub dirty: bool,
}

/// A cache set: a small vector of entries kept in LRU order
/// (index 0 = most recently used, last = least recently used).
#[derive(Debug, Clone)]
pub(crate) struct Set {
    entries: Vec<Entry>,
    ways: usize,
}

impl Set {
    pub(crate) fn new(ways: usize) -> Set {
        Set {
            entries: Vec::with_capacity(ways),
            ways,
        }
    }

    /// Finds `line` without touching LRU order.
    pub(crate) fn peek(&self, line: LineAddr) -> Option<&Entry> {
        self.entries.iter().find(|e| e.line == line)
    }

    /// Finds `line` and promotes it to MRU, returning a mutable reference.
    pub(crate) fn touch(&mut self, line: LineAddr) -> Option<&mut Entry> {
        let pos = self.entries.iter().position(|e| e.line == line)?;
        let entry = self.entries.remove(pos);
        self.entries.insert(0, entry);
        Some(&mut self.entries[0])
    }

    /// Inserts `entry` at MRU, evicting the LRU entry if the set is full.
    /// Must not be called when `entry.line` is already resident.
    pub(crate) fn insert(&mut self, entry: Entry) -> Option<Entry> {
        debug_assert!(
            self.peek(entry.line).is_none(),
            "inserting already-resident line {}",
            entry.line
        );
        let victim = if self.entries.len() == self.ways {
            self.entries.pop()
        } else {
            None
        };
        self.entries.insert(0, entry);
        victim
    }

    /// Removes `line` if resident.
    pub(crate) fn invalidate(&mut self, line: LineAddr) -> Option<Entry> {
        let pos = self.entries.iter().position(|e| e.line == line)?;
        Some(self.entries.remove(pos))
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = &Entry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(l: u64) -> Entry {
        Entry {
            line: LineAddr(l),
            prefetched: false,
            used: false,
            dirty: false,
        }
    }

    #[test]
    fn insert_until_full_then_evict_lru() {
        let mut s = Set::new(2);
        assert_eq!(s.insert(entry(1)), None);
        assert_eq!(s.insert(entry(2)), None);
        // 2 is MRU, 1 is LRU; inserting 3 evicts 1.
        let v = s.insert(entry(3)).unwrap();
        assert_eq!(v.line, LineAddr(1));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn touch_promotes_to_mru() {
        let mut s = Set::new(2);
        s.insert(entry(1));
        s.insert(entry(2));
        s.touch(LineAddr(1)).unwrap();
        // Now 2 is LRU.
        let v = s.insert(entry(3)).unwrap();
        assert_eq!(v.line, LineAddr(2));
    }

    #[test]
    fn peek_does_not_promote() {
        let mut s = Set::new(2);
        s.insert(entry(1));
        s.insert(entry(2));
        assert!(s.peek(LineAddr(1)).is_some());
        let v = s.insert(entry(3)).unwrap();
        assert_eq!(v.line, LineAddr(1), "peek must not promote");
    }

    #[test]
    fn invalidate_removes() {
        let mut s = Set::new(4);
        s.insert(entry(1));
        s.insert(entry(2));
        assert!(s.invalidate(LineAddr(1)).is_some());
        assert!(s.peek(LineAddr(1)).is_none());
        assert!(s.invalidate(LineAddr(1)).is_none());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn direct_mapped_set_replaces_immediately() {
        let mut s = Set::new(1);
        s.insert(entry(1));
        let v = s.insert(entry(2)).unwrap();
        assert_eq!(v.line, LineAddr(1));
    }
}
