//! Flat, data-oriented storage for a cache's sets.
//!
//! Instead of one `Vec<Entry>` per set (a pointer chase per access plus
//! `remove`/`insert(0)` memmoves to maintain list-order LRU), every set in
//! the cache lives in three contiguous lanes sized `n_sets * ways`:
//!
//! * `lines`  — full line addresses ([`INVALID_LINE`] marks an empty way),
//! * `flags`  — per-line bookkeeping bits (prefetched / used / dirty),
//! * `stamps` — LRU stamps from one monotonically increasing counter.
//!
//! A set is the slice `[set * ways, set * ways + ways)` of each lane. Hits
//! promote by writing a fresh stamp (one store, no data movement); the
//! eviction victim is the minimum stamp. Because every insert and every
//! promotion takes a unique, strictly increasing stamp, stamp order is
//! exactly the recency order the old list maintained — the victim choice
//! (and therefore every simulated figure) is bit-for-bit unchanged, which
//! `tests/properties.rs` proves against a list-based reference model.

use ipsim_types::LineAddr;

/// Sentinel marking an empty way. Real line addresses come from realistic
/// PC/target ranges and never reach `u64::MAX` (the recent-fetch filter in
/// `ipsim-core` relies on the same convention).
pub(crate) const INVALID_LINE: LineAddr = LineAddr(u64::MAX);

/// Line was brought in by a prefetch (any level) rather than a demand miss.
pub(crate) const FLAG_PREFETCHED: u8 = 1 << 0;
/// Line was demand-referenced since it was filled.
pub(crate) const FLAG_USED: u8 = 1 << 1;
/// Line was written since it was filled.
pub(crate) const FLAG_DIRTY: u8 = 1 << 2;

/// Where a fill should go, from one fused scan of the set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FillSlot {
    /// The line is already resident at this slot (redundant fill).
    Resident(usize),
    /// The set has a free way at this slot.
    Vacant(usize),
    /// The set is full; this slot holds the LRU victim.
    Evict(usize),
}

/// All sets of one cache, stored as struct-of-arrays lanes.
#[derive(Debug, Clone)]
pub(crate) struct FlatSets {
    lines: Box<[LineAddr]>,
    flags: Box<[u8]>,
    stamps: Box<[u64]>,
    ways: usize,
    next_stamp: u64,
}

impl FlatSets {
    pub(crate) fn new(n_sets: usize, ways: usize) -> FlatSets {
        let slots = n_sets * ways;
        FlatSets {
            lines: vec![INVALID_LINE; slots].into_boxed_slice(),
            flags: vec![0u8; slots].into_boxed_slice(),
            stamps: vec![0u64; slots].into_boxed_slice(),
            ways,
            next_stamp: 1,
        }
    }

    /// The line resident at `slot` ([`INVALID_LINE`] if the way is empty).
    #[inline]
    pub(crate) fn line(&self, slot: usize) -> LineAddr {
        self.lines[slot]
    }

    /// The flag bits of the line at `slot`.
    #[inline]
    pub(crate) fn flags(&self, slot: usize) -> u8 {
        self.flags[slot]
    }

    /// Overwrites the flag bits of the line at `slot`.
    #[inline]
    pub(crate) fn set_flags(&mut self, slot: usize, flags: u8) {
        self.flags[slot] = flags;
    }

    /// Finds `line` in `set` without touching LRU order (tag probe).
    ///
    /// Compares every way's tag in one pass with no early exit: a line is
    /// resident in at most one way, so the match mask has at most one bit
    /// set. The ubiquitous 4-way geometry (every cache and TLB preset)
    /// gets a fixed-shape compare tree — four independent compares OR-ed
    /// into a mask, no loop, no loop-carried select; other widths take
    /// the equivalent scan.
    #[inline]
    pub(crate) fn find(&self, set: usize, line: LineAddr) -> Option<usize> {
        let base = set * self.ways;
        let lane = &self.lines[base..base + self.ways];
        if let &[a, b, c, d] = lane {
            let mask = usize::from(a == line)
                | usize::from(b == line) << 1
                | usize::from(c == line) << 2
                | usize::from(d == line) << 3;
            return (mask != 0).then(|| base + mask.trailing_zeros() as usize);
        }
        let mut mask = 0usize;
        for (w, &resident) in lane.iter().enumerate() {
            mask |= usize::from(resident == line) << w;
        }
        (mask != 0).then(|| base + mask.trailing_zeros() as usize)
    }

    /// Empties every set and restarts the LRU stamp counter — exactly the
    /// state of a freshly built [`FlatSets`], with the lane allocations
    /// kept.
    pub(crate) fn clear(&mut self) {
        self.lines.fill(INVALID_LINE);
        self.flags.fill(0);
        self.stamps.fill(0);
        self.next_stamp = 1;
    }

    /// Finds `line` in `set` and promotes it to MRU, returning its slot.
    #[inline]
    pub(crate) fn touch(&mut self, set: usize, line: LineAddr) -> Option<usize> {
        let slot = self.find(set, line)?;
        self.promote(slot);
        Some(slot)
    }

    /// Stamps `slot` as the most recently used way of its set.
    #[inline]
    pub(crate) fn promote(&mut self, slot: usize) {
        self.stamps[slot] = self.next_stamp;
        self.next_stamp += 1;
    }

    /// One fused scan deciding where a fill of `line` lands: resident hit,
    /// first vacant way, or the minimum-stamp (LRU) victim.
    #[inline]
    pub(crate) fn locate_for_fill(&self, set: usize, line: LineAddr) -> FillSlot {
        let base = set * self.ways;
        let mut vacant = usize::MAX;
        let mut lru_slot = base;
        let mut lru_stamp = u64::MAX;
        for slot in base..base + self.ways {
            let resident = self.lines[slot];
            if resident == line {
                return FillSlot::Resident(slot);
            }
            if resident == INVALID_LINE {
                if vacant == usize::MAX {
                    vacant = slot;
                }
            } else if self.stamps[slot] < lru_stamp {
                lru_stamp = self.stamps[slot];
                lru_slot = slot;
            }
        }
        if vacant != usize::MAX {
            FillSlot::Vacant(vacant)
        } else {
            FillSlot::Evict(lru_slot)
        }
    }

    /// Writes `line` with `flags` into `slot` and stamps it MRU. The
    /// previous occupant (if any) is simply overwritten — the caller reads
    /// victim state out of the lanes first.
    #[inline]
    pub(crate) fn install(&mut self, slot: usize, line: LineAddr, flags: u8) {
        debug_assert_ne!(line, INVALID_LINE, "installing the sentinel line");
        self.lines[slot] = line;
        self.flags[slot] = flags;
        self.promote(slot);
    }

    /// Removes `line` from `set` if resident, returning its flag bits.
    pub(crate) fn invalidate(&mut self, set: usize, line: LineAddr) -> Option<u8> {
        let slot = self.find(set, line)?;
        let flags = self.flags[slot];
        self.lines[slot] = INVALID_LINE;
        self.flags[slot] = 0;
        self.stamps[slot] = 0;
        Some(flags)
    }

    /// Number of resident lines across all sets.
    pub(crate) fn resident(&self) -> usize {
        self.lines.iter().filter(|&&l| l != INVALID_LINE).count()
    }

    /// Iterates all resident lines with their flags (diagnostics / tests).
    pub(crate) fn iter_resident(&self) -> impl Iterator<Item = (LineAddr, u8)> + '_ {
        self.lines
            .iter()
            .zip(self.flags.iter())
            .filter(|(&l, _)| l != INVALID_LINE)
            .map(|(&l, &f)| (l, f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fills `line` into set 0 the way the cache does, returning the
    /// evicted line (if any).
    fn insert(s: &mut FlatSets, line: u64) -> Option<LineAddr> {
        match s.locate_for_fill(0, LineAddr(line)) {
            FillSlot::Resident(_) => panic!("line {line} already resident"),
            FillSlot::Vacant(slot) => {
                s.install(slot, LineAddr(line), 0);
                None
            }
            FillSlot::Evict(slot) => {
                let victim = s.line(slot);
                s.install(slot, LineAddr(line), 0);
                Some(victim)
            }
        }
    }

    #[test]
    fn insert_until_full_then_evict_lru() {
        let mut s = FlatSets::new(1, 2);
        assert_eq!(insert(&mut s, 1), None);
        assert_eq!(insert(&mut s, 2), None);
        // 2 is MRU, 1 is LRU; inserting 3 evicts 1.
        assert_eq!(insert(&mut s, 3), Some(LineAddr(1)));
        assert_eq!(s.resident(), 2);
    }

    #[test]
    fn touch_promotes_to_mru() {
        let mut s = FlatSets::new(1, 2);
        insert(&mut s, 1);
        insert(&mut s, 2);
        s.touch(0, LineAddr(1)).unwrap();
        // Now 2 is LRU.
        assert_eq!(insert(&mut s, 3), Some(LineAddr(2)));
    }

    #[test]
    fn find_does_not_promote() {
        let mut s = FlatSets::new(1, 2);
        insert(&mut s, 1);
        insert(&mut s, 2);
        assert!(s.find(0, LineAddr(1)).is_some());
        assert_eq!(
            insert(&mut s, 3),
            Some(LineAddr(1)),
            "find must not promote"
        );
    }

    #[test]
    fn invalidate_removes_and_frees_the_way() {
        let mut s = FlatSets::new(1, 4);
        insert(&mut s, 1);
        insert(&mut s, 2);
        assert!(s.invalidate(0, LineAddr(1)).is_some());
        assert!(s.find(0, LineAddr(1)).is_none());
        assert!(s.invalidate(0, LineAddr(1)).is_none());
        assert_eq!(s.resident(), 1);
        // The freed way is reused without evicting anyone.
        assert_eq!(insert(&mut s, 3), None);
    }

    #[test]
    fn direct_mapped_set_replaces_immediately() {
        let mut s = FlatSets::new(1, 1);
        insert(&mut s, 1);
        assert_eq!(insert(&mut s, 2), Some(LineAddr(1)));
    }

    #[test]
    fn flags_round_trip() {
        let mut s = FlatSets::new(1, 2);
        let slot = match s.locate_for_fill(0, LineAddr(7)) {
            FillSlot::Vacant(slot) => slot,
            _ => unreachable!(),
        };
        s.install(slot, LineAddr(7), FLAG_PREFETCHED);
        assert_eq!(s.flags(slot), FLAG_PREFETCHED);
        s.set_flags(slot, FLAG_PREFETCHED | FLAG_USED | FLAG_DIRTY);
        assert_eq!(s.invalidate(0, LineAddr(7)), Some(0b111));
    }
}
