//! Prefetch-install policies (Section 7 of the paper).

/// Where instruction-prefetch fills are installed in the hierarchy.
///
/// The paper shows that installing speculative instruction prefetches into
/// the shared L2 evicts useful *data* lines, inflating the L2 data miss rate
/// by up to ~1.35× and erasing much of the prefetch benefit on a CMP
/// (Figures 6–7). Its fix — [`InstallPolicy::BypassL2UntilUseful`] — installs
/// prefetches only in the L1 instruction cache; when a prefetched line is
/// later evicted from the L1I, it is installed into the L2 *iff* it was
/// actually used (Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InstallPolicy {
    /// Conventional behaviour: prefetch fills are installed into both the
    /// L1I and the L2 (the polluting regime of Figures 6–7).
    #[default]
    InstallBoth,
    /// The paper's proposal: prefetch fills bypass the L2 and are installed
    /// into it only on L1I eviction of a line whose `used` flag is set.
    BypassL2UntilUseful,
}

impl InstallPolicy {
    /// `true` when a prefetch fill should be installed into the L2
    /// immediately.
    pub fn installs_prefetch_in_l2(self) -> bool {
        matches!(self, InstallPolicy::InstallBoth)
    }

    /// `true` when a used prefetched line should be installed into the L2
    /// when evicted from the L1I.
    pub fn installs_on_useful_eviction(self) -> bool {
        matches!(self, InstallPolicy::BypassL2UntilUseful)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_are_mutually_exclusive() {
        assert!(InstallPolicy::InstallBoth.installs_prefetch_in_l2());
        assert!(!InstallPolicy::InstallBoth.installs_on_useful_eviction());
        assert!(!InstallPolicy::BypassL2UntilUseful.installs_prefetch_in_l2());
        assert!(InstallPolicy::BypassL2UntilUseful.installs_on_useful_eviction());
    }

    #[test]
    fn default_is_conventional() {
        assert_eq!(InstallPolicy::default(), InstallPolicy::InstallBoth);
    }
}
