//! The set-associative cache model.

use ipsim_types::{CacheConfig, LineAddr};

use crate::set::{FillSlot, FlatSets, FLAG_DIRTY, FLAG_PREFETCHED, FLAG_USED};
use crate::stats::CacheStats;

/// Result of a demand access to a [`SetAssocCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The line was resident.
    Hit {
        /// `true` when the line was brought in by a prefetch and this is the
        /// first demand reference to it — the trigger condition for *tagged*
        /// sequential prefetching and the moment a prefetch becomes
        /// "useful" for accuracy accounting.
        first_use_of_prefetch: bool,
    },
    /// The line was not resident.
    Miss,
}

impl Access {
    /// `true` for any hit.
    pub fn is_hit(self) -> bool {
        matches!(self, Access::Hit { .. })
    }
}

/// Who is installing a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillKind {
    /// Fill triggered by a demand miss.
    Demand,
    /// Fill triggered by a prefetcher.
    Prefetch,
}

/// A line evicted by a fill, with the flags needed by the paper's selective
/// L2-install policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The evicted line.
    pub line: LineAddr,
    /// It was originally brought in by a prefetch.
    pub prefetched: bool,
    /// It was demand-referenced while resident.
    pub used: bool,
    /// It was written while resident.
    pub dirty: bool,
}

impl Evicted {
    #[inline]
    fn from_lanes(line: LineAddr, flags: u8) -> Evicted {
        Evicted {
            line,
            prefetched: flags & FLAG_PREFETCHED != 0,
            used: flags & FLAG_USED != 0,
            dirty: flags & FLAG_DIRTY != 0,
        }
    }
}

/// An LRU set-associative cache over line addresses.
///
/// The cache stores no data — only presence and per-line flags — which is all
/// a trace-driven simulator needs. Storage is three flat lanes (lines, flags,
/// LRU stamps) covering every set contiguously; see [`crate::set`] for the
/// layout and the argument that stamp order reproduces list-LRU exactly.
/// See the crate docs for an example.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    sets: FlatSets,
    set_mask: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> SetAssocCache {
        let n_sets = config.sets() as usize;
        SetAssocCache {
            config,
            sets: FlatSets::new(n_sets, config.assoc() as usize),
            set_mask: n_sets as u64 - 1,
            stats: CacheStats::default(),
        }
    }

    /// This cache's geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Access statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the statistics (e.g. at the end of cache warm-up) without
    /// touching cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Empties the cache and zeroes its statistics, keeping the lane
    /// allocations — the state of a freshly built cache of the same
    /// geometry (the run-reuse seam relies on this equivalence).
    pub fn clear(&mut self) {
        self.sets.clear();
        self.stats = CacheStats::default();
    }

    #[inline]
    fn set_index(&self, line: LineAddr) -> usize {
        (line.0 & self.set_mask) as usize
    }

    /// A demand read access: updates LRU and the `used` flag, and counts in
    /// the statistics.
    pub fn access(&mut self, line: LineAddr) -> Access {
        self.access_inner(line, false)
    }

    /// A demand write access (stores): like [`SetAssocCache::access`] but
    /// also sets the `dirty` flag on a hit.
    pub fn access_write(&mut self, line: LineAddr) -> Access {
        self.access_inner(line, true)
    }

    /// A demand read access that only goes through on a hit.
    ///
    /// On a hit this is exactly [`SetAssocCache::access`]'s hit arm —
    /// counted, LRU-promoted, `used`-flagged — returning the
    /// first-use-of-prefetch bit. On a miss it returns `None` having
    /// changed *nothing* (no counters, no LRU), so the caller can fall
    /// back to the full [`SetAssocCache::access`] path and the miss is
    /// counted exactly once. The CPU core's express fetch path uses this
    /// to try the overwhelmingly common resident-line transition without
    /// committing to the slow path first.
    #[inline]
    pub fn probe_demand_hit(&mut self, line: LineAddr) -> Option<bool> {
        let idx = self.set_index(line);
        let slot = self.sets.touch(idx, line)?;
        self.stats.accesses += 1;
        let flags = self.sets.flags(slot);
        let first_use = flags & (FLAG_PREFETCHED | FLAG_USED) == FLAG_PREFETCHED;
        self.sets.set_flags(slot, flags | FLAG_USED);
        if first_use {
            self.stats.prefetch_first_uses += 1;
        }
        Some(first_use)
    }

    fn access_inner(&mut self, line: LineAddr, write: bool) -> Access {
        self.stats.accesses += 1;
        let idx = self.set_index(line);
        match self.sets.touch(idx, line) {
            Some(slot) => {
                let flags = self.sets.flags(slot);
                let first_use = flags & (FLAG_PREFETCHED | FLAG_USED) == FLAG_PREFETCHED;
                let mut updated = flags | FLAG_USED;
                if write {
                    updated |= FLAG_DIRTY;
                }
                self.sets.set_flags(slot, updated);
                if first_use {
                    self.stats.prefetch_first_uses += 1;
                }
                Access::Hit {
                    first_use_of_prefetch: first_use,
                }
            }
            None => {
                self.stats.misses += 1;
                Access::Miss
            }
        }
    }

    /// A demand access fused with the fill that a miss would trigger: one
    /// scan of the set classifies the line and, when absent and
    /// `fill_on_miss` is given, installs it over the set's LRU victim.
    ///
    /// Equivalent to [`SetAssocCache::access`] (or
    /// [`SetAssocCache::access_write`] when `write`) followed on a miss by
    /// [`SetAssocCache::fill`] — but in a single pass over the set's lanes,
    /// which matters for the L2: its lane arrays exceed the host's caches,
    /// so every extra pass over a cold set costs real memory latency. A
    /// write that misses installs the line already dirty, matching the
    /// write-allocate-then-dirty sequence of the unfused calls. With
    /// `fill_on_miss: None` a miss leaves the set untouched (the probe
    /// behaviour of a plain access).
    pub fn access_and_fill(
        &mut self,
        line: LineAddr,
        write: bool,
        fill_on_miss: Option<FillKind>,
    ) -> (Access, Option<Evicted>) {
        self.stats.accesses += 1;
        let idx = self.set_index(line);
        match self.sets.locate_for_fill(idx, line) {
            FillSlot::Resident(slot) => {
                self.sets.promote(slot);
                let flags = self.sets.flags(slot);
                let first_use = flags & (FLAG_PREFETCHED | FLAG_USED) == FLAG_PREFETCHED;
                let mut updated = flags | FLAG_USED;
                if write {
                    updated |= FLAG_DIRTY;
                }
                self.sets.set_flags(slot, updated);
                if first_use {
                    self.stats.prefetch_first_uses += 1;
                }
                (
                    Access::Hit {
                        first_use_of_prefetch: first_use,
                    },
                    None,
                )
            }
            FillSlot::Vacant(slot) => {
                self.stats.misses += 1;
                let Some(kind) = fill_on_miss else {
                    return (Access::Miss, None);
                };
                self.count_fill(kind);
                self.sets
                    .install(slot, line, Self::miss_fill_flags(kind, write));
                (Access::Miss, None)
            }
            FillSlot::Evict(slot) => {
                self.stats.misses += 1;
                let Some(kind) = fill_on_miss else {
                    return (Access::Miss, None);
                };
                self.count_fill(kind);
                let victim = Evicted::from_lanes(self.sets.line(slot), self.sets.flags(slot));
                self.stats.evictions += 1;
                if victim.prefetched {
                    if victim.used {
                        self.stats.useful_prefetch_evictions += 1;
                    } else {
                        self.stats.useless_prefetch_evictions += 1;
                    }
                }
                self.sets
                    .install(slot, line, Self::miss_fill_flags(kind, write));
                (Access::Miss, Some(victim))
            }
        }
    }

    #[inline]
    fn miss_fill_flags(kind: FillKind, write: bool) -> u8 {
        let mut flags = Self::fill_flags(kind);
        if write {
            flags |= FLAG_USED | FLAG_DIRTY;
        }
        flags
    }

    /// A tag probe that does not disturb LRU order or statistics — what the
    /// prefetcher's filtered tag inspections do.
    #[inline]
    pub fn probe(&self, line: LineAddr) -> bool {
        self.sets.find(self.set_index(line), line).is_some()
    }

    /// Installs `line`, evicting the set's LRU entry when the set is full.
    ///
    /// A [`FillKind::Prefetch`] fill marks the line `prefetched` and not yet
    /// `used`; a [`FillKind::Demand`] fill marks it `used` immediately.
    /// Filling an already-resident line only promotes it (this happens when
    /// a fill completes after a duplicate was installed; it is counted in
    /// [`CacheStats::redundant_fills`]).
    pub fn fill(&mut self, line: LineAddr, kind: FillKind) -> Option<Evicted> {
        let idx = self.set_index(line);
        // One fused scan classifies the fill; the old code paid a `peek`
        // scan followed by a `touch` or `insert` scan of the same set.
        match self.sets.locate_for_fill(idx, line) {
            FillSlot::Resident(slot) => {
                self.stats.redundant_fills += 1;
                // Promote, and upgrade a resident prefetched line to demand
                // on a demand fill (the demand stream has caught up with it).
                self.sets.promote(slot);
                if kind == FillKind::Demand {
                    let flags = self.sets.flags(slot);
                    self.sets.set_flags(slot, flags | FLAG_USED);
                }
                None
            }
            FillSlot::Vacant(slot) => {
                self.count_fill(kind);
                self.sets.install(slot, line, Self::fill_flags(kind));
                None
            }
            FillSlot::Evict(slot) => {
                self.count_fill(kind);
                let victim = Evicted::from_lanes(self.sets.line(slot), self.sets.flags(slot));
                self.stats.evictions += 1;
                if victim.prefetched {
                    if victim.used {
                        self.stats.useful_prefetch_evictions += 1;
                    } else {
                        self.stats.useless_prefetch_evictions += 1;
                    }
                }
                self.sets.install(slot, line, Self::fill_flags(kind));
                Some(victim)
            }
        }
    }

    #[inline]
    fn count_fill(&mut self, kind: FillKind) {
        match kind {
            FillKind::Demand => self.stats.demand_fills += 1,
            FillKind::Prefetch => self.stats.prefetch_fills += 1,
        }
    }

    #[inline]
    fn fill_flags(kind: FillKind) -> u8 {
        match kind {
            FillKind::Demand => FLAG_USED,
            FillKind::Prefetch => FLAG_PREFETCHED,
        }
    }

    /// Removes `line` if resident, returning its flags.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<Evicted> {
        let idx = self.set_index(line);
        self.sets
            .invalidate(idx, line)
            .map(|flags| Evicted::from_lanes(line, flags))
    }

    /// Number of currently resident lines.
    pub fn resident_lines(&self) -> usize {
        self.sets.resident()
    }

    /// Iterates all resident lines (diagnostics / tests).
    pub fn iter_lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.sets.iter_resident().map(|(line, _)| line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipsim_types::CacheConfig;

    fn tiny() -> SetAssocCache {
        // 4 sets x 2 ways x 64B = 512B.
        SetAssocCache::new(CacheConfig::new(512, 2, 64).unwrap())
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert_eq!(c.access(LineAddr(5)), Access::Miss);
        assert!(c.fill(LineAddr(5), FillKind::Demand).is_none());
        assert_eq!(
            c.access(LineAddr(5)),
            Access::Hit {
                first_use_of_prefetch: false
            }
        );
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn prefetch_fill_reports_first_use_once() {
        let mut c = tiny();
        c.fill(LineAddr(5), FillKind::Prefetch);
        assert_eq!(
            c.access(LineAddr(5)),
            Access::Hit {
                first_use_of_prefetch: true
            }
        );
        assert_eq!(
            c.access(LineAddr(5)),
            Access::Hit {
                first_use_of_prefetch: false
            }
        );
        assert_eq!(c.stats().prefetch_first_uses, 1);
    }

    #[test]
    fn eviction_reports_prefetch_usefulness() {
        let mut c = tiny();
        // Set 0 holds lines with line.0 % 4 == 0.
        c.fill(LineAddr(0), FillKind::Prefetch);
        c.fill(LineAddr(4), FillKind::Demand);
        // Line 0 untouched: evicting it flags a useless prefetch.
        let v = c.fill(LineAddr(8), FillKind::Demand).unwrap();
        assert_eq!(v.line, LineAddr(0));
        assert!(v.prefetched);
        assert!(!v.used);
        assert_eq!(c.stats().useless_prefetch_evictions, 1);
    }

    #[test]
    fn used_prefetched_line_evicts_as_useful() {
        let mut c = tiny();
        c.fill(LineAddr(0), FillKind::Prefetch);
        c.access(LineAddr(0));
        c.fill(LineAddr(4), FillKind::Demand);
        c.access(LineAddr(4)); // line 0 is LRU
        let v = c.fill(LineAddr(8), FillKind::Demand).unwrap();
        assert_eq!(v.line, LineAddr(0));
        assert!(v.prefetched && v.used);
        assert_eq!(c.stats().useless_prefetch_evictions, 0);
        assert_eq!(c.stats().useful_prefetch_evictions, 1);
    }

    #[test]
    fn probe_does_not_affect_lru_or_stats() {
        let mut c = tiny();
        c.fill(LineAddr(0), FillKind::Demand);
        c.fill(LineAddr(4), FillKind::Demand);
        assert!(c.probe(LineAddr(0)));
        assert!(!c.probe(LineAddr(8)));
        assert_eq!(c.stats().accesses, 0);
        // 0 must still be LRU.
        let v = c.fill(LineAddr(8), FillKind::Demand).unwrap();
        assert_eq!(v.line, LineAddr(0));
    }

    #[test]
    fn redundant_fill_is_counted_not_duplicated() {
        let mut c = tiny();
        c.fill(LineAddr(0), FillKind::Demand);
        c.fill(LineAddr(0), FillKind::Prefetch);
        assert_eq!(c.resident_lines(), 1);
        assert_eq!(c.stats().redundant_fills, 1);
    }

    #[test]
    fn demand_refill_of_prefetched_line_marks_used() {
        let mut c = tiny();
        c.fill(LineAddr(0), FillKind::Prefetch);
        c.fill(LineAddr(0), FillKind::Demand);
        c.fill(LineAddr(4), FillKind::Demand);
        c.access(LineAddr(4));
        c.access(LineAddr(0));
        c.fill(LineAddr(8), FillKind::Demand); // evicts 4
        let v = c.fill(LineAddr(12), FillKind::Demand).unwrap();
        assert_eq!(v.line, LineAddr(0));
        assert!(v.used, "demand fill upgraded the line to used");
    }

    #[test]
    fn write_sets_dirty() {
        let mut c = tiny();
        c.fill(LineAddr(0), FillKind::Demand);
        c.access_write(LineAddr(0));
        let v = c.invalidate(LineAddr(0)).unwrap();
        assert!(v.dirty);
    }

    #[test]
    fn set_mapping_is_modulo_sets() {
        let mut c = tiny(); // 4 sets, 2 ways
                            // These all map to set 1.
        for l in [1u64, 5, 9] {
            c.fill(LineAddr(l), FillKind::Demand);
        }
        assert_eq!(c.resident_lines(), 2);
        assert!(!c.probe(LineAddr(1)), "LRU of set 1 was evicted");
        assert!(c.probe(LineAddr(5)));
        assert!(c.probe(LineAddr(9)));
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = tiny();
        for l in 0..1000u64 {
            c.fill(LineAddr(l), FillKind::Demand);
        }
        assert!(c.resident_lines() <= 8);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = tiny();
        c.fill(LineAddr(0), FillKind::Demand);
        c.access(LineAddr(0));
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        assert!(c.probe(LineAddr(0)));
    }

    #[test]
    fn clear_restores_fresh_state() {
        let mut c = tiny();
        for l in 0..100u64 {
            c.fill(LineAddr(l), FillKind::Demand);
            c.access(LineAddr(l));
        }
        c.clear();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.stats().accesses, 0);
        // LRU behaviour restarts identically to a fresh cache: fill a set
        // past capacity and check the first insert is the victim.
        let mut fresh = tiny();
        for cache in [&mut c, &mut fresh] {
            for l in [0u64, 4, 8] {
                cache.fill(LineAddr(l), FillKind::Demand);
            }
        }
        assert_eq!(c.iter_lines().collect::<Vec<_>>().len(), 2);
        assert_eq!(c.probe(LineAddr(0)), fresh.probe(LineAddr(0)));
        assert_eq!(c.probe(LineAddr(4)), fresh.probe(LineAddr(4)));
        assert_eq!(c.probe(LineAddr(8)), fresh.probe(LineAddr(8)));
    }
}
