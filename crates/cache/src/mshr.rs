//! Miss-status-holding registers: in-flight line fills with completion times.

use ipsim_types::{Cycle, LineAddr};

/// One outstanding fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrEntry {
    /// The line being fetched.
    pub line: LineAddr,
    /// Cycle at which the fill completes.
    pub ready_at: Cycle,
    /// The fill was initiated by a prefetch.
    pub prefetch: bool,
    /// A demand access arrived while the fill was in flight. For a prefetch
    /// this means the prefetch was *late but useful*.
    pub demand_merged: bool,
}

/// A bounded set of outstanding fills.
///
/// Capacity models the hardware MSHR count: when full, new misses must stall
/// (demand) or be dropped (prefetch). Lookups are linear — MSHR files are
/// small (8–32 entries) so this is both faithful and fast.
///
/// # Examples
///
/// ```
/// use ipsim_cache::Mshr;
/// use ipsim_types::LineAddr;
///
/// let mut mshr = Mshr::new(2);
/// assert!(mshr.insert(LineAddr(1), 400, true));
/// assert!(mshr.insert(LineAddr(2), 420, false));
/// assert!(!mshr.insert(LineAddr(3), 500, false), "full");
///
/// mshr.merge_demand(LineAddr(1));
/// let done = mshr.retire_ready(410);
/// assert_eq!(done.len(), 1);
/// assert!(done[0].prefetch && done[0].demand_merged);
/// ```
#[derive(Debug, Clone)]
pub struct Mshr {
    entries: Vec<MshrEntry>,
    capacity: usize,
    /// Earliest `ready_at` among `entries` (`Cycle::MAX` when empty),
    /// maintained on insert/retire so the per-access retirement check in
    /// the simulation loop is one comparison instead of a scan.
    next_ready: Cycle,
}

impl Mshr {
    /// Creates an empty MSHR file with room for `capacity` outstanding
    /// fills.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Mshr {
        assert!(capacity > 0, "MSHR capacity must be non-zero");
        Mshr {
            entries: Vec::with_capacity(capacity),
            capacity,
            next_ready: Cycle::MAX,
        }
    }

    /// Discards every in-flight fill, restoring the state of a freshly
    /// built file (the run-reuse reset; allocation kept).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.next_ready = Cycle::MAX;
    }

    /// The entry for `line`, if a fill is in flight.
    pub fn lookup(&self, line: LineAddr) -> Option<&MshrEntry> {
        self.entries.iter().find(|e| e.line == line)
    }

    /// Registers a new in-flight fill. Returns `false` (and does nothing)
    /// when the file is full or the line already has an entry.
    pub fn insert(&mut self, line: LineAddr, ready_at: Cycle, prefetch: bool) -> bool {
        if self.entries.len() >= self.capacity || self.lookup(line).is_some() {
            return false;
        }
        self.entries.push(MshrEntry {
            line,
            ready_at,
            prefetch,
            demand_merged: !prefetch,
        });
        self.next_ready = self.next_ready.min(ready_at);
        true
    }

    /// Marks that a demand access merged into the in-flight fill for
    /// `line`. Returns the fill's completion time if present.
    pub fn merge_demand(&mut self, line: LineAddr) -> Option<Cycle> {
        let e = self.entries.iter_mut().find(|e| e.line == line)?;
        e.demand_merged = true;
        Some(e.ready_at)
    }

    /// Removes and returns every fill that has completed by `now`.
    pub fn retire_ready(&mut self, now: Cycle) -> Vec<MshrEntry> {
        let mut done = Vec::new();
        self.retire_ready_into(now, &mut done);
        done
    }

    /// Like [`Mshr::retire_ready`], but appends into a caller-owned buffer
    /// — the hot simulation loop reuses one buffer per core so retiring
    /// fills never allocates.
    pub fn retire_ready_into(&mut self, now: Cycle, done: &mut Vec<MshrEntry>) {
        if now < self.next_ready {
            return;
        }
        let mut remaining_min = Cycle::MAX;
        self.entries.retain(|e| {
            if e.ready_at <= now {
                done.push(*e);
                false
            } else {
                remaining_min = remaining_min.min(e.ready_at);
                true
            }
        });
        self.next_ready = remaining_min;
    }

    /// Number of outstanding fills.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` when no further fill can be registered.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Earliest completion time among outstanding fills.
    pub fn next_ready_at(&self) -> Option<Cycle> {
        (self.next_ready != Cycle::MAX).then_some(self.next_ready)
    }

    /// `true` when no outstanding fill has completed by `now` — the O(1)
    /// common case the simulation loop checks before draining.
    #[inline]
    pub fn none_ready(&self, now: Cycle) -> bool {
        now < self.next_ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_respects_capacity_and_dedup() {
        let mut m = Mshr::new(2);
        assert!(m.insert(LineAddr(1), 10, false));
        assert!(!m.insert(LineAddr(1), 20, false), "duplicate line");
        assert!(m.insert(LineAddr(2), 10, false));
        assert!(m.is_full());
        assert!(!m.insert(LineAddr(3), 10, false));
    }

    #[test]
    fn retire_ready_removes_only_completed() {
        let mut m = Mshr::new(4);
        m.insert(LineAddr(1), 10, false);
        m.insert(LineAddr(2), 20, true);
        let done = m.retire_ready(15);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].line, LineAddr(1));
        assert_eq!(m.len(), 1);
        assert_eq!(m.next_ready_at(), Some(20));
    }

    #[test]
    fn demand_merge_flags_prefetch_useful() {
        let mut m = Mshr::new(2);
        m.insert(LineAddr(5), 100, true);
        assert!(!m.lookup(LineAddr(5)).unwrap().demand_merged);
        assert_eq!(m.merge_demand(LineAddr(5)), Some(100));
        assert!(m.lookup(LineAddr(5)).unwrap().demand_merged);
        assert_eq!(m.merge_demand(LineAddr(9)), None);
    }

    #[test]
    fn demand_insert_starts_merged() {
        let mut m = Mshr::new(1);
        m.insert(LineAddr(5), 100, false);
        assert!(m.lookup(LineAddr(5)).unwrap().demand_merged);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        Mshr::new(0);
    }
}
