//! The stream-buffer next-line baseline: a handful of miss-allocated
//! trackers, each following one sequential fetch stream and keeping
//! `degree` lines of headroom ahead of it.

use ipsim_core::{FetchEvent, PrefetchSource};
use ipsim_types::LineAddr;

use crate::prefetcher::Prefetcher;
use crate::sink::RequestSink;

#[derive(Debug, Clone, Copy)]
struct Tracker {
    /// Last demand line observed on this stream.
    last: LineAddr,
    /// Next line to prefetch (everything below is already requested).
    head: u64,
    /// LRU stamp for replacement.
    stamp: u64,
}

/// Classic stream prefetcher: allocate a tracker on a miss, advance it on
/// sequential hits, prefetch up to `degree` lines ahead of the stream.
#[derive(Debug)]
pub struct StreamPrefetcher {
    trackers: Vec<Tracker>,
    max_streams: usize,
    degree: u32,
    clock: u64,
}

impl StreamPrefetcher {
    /// A prefetcher with `max_streams` trackers and `degree` lines of
    /// headroom per stream.
    pub fn new(max_streams: usize, degree: u32) -> StreamPrefetcher {
        StreamPrefetcher {
            trackers: Vec::with_capacity(max_streams),
            max_streams: max_streams.max(1),
            degree: degree.max(1),
            clock: 0,
        }
    }

    /// Emits prefetches for tracker `i` so its headroom again reaches
    /// `degree` lines past `last`.
    fn top_up(&mut self, i: usize, sink: &mut RequestSink) {
        let t = &mut self.trackers[i];
        let goal = t.last.0 + 1 + self.degree as u64;
        let mut next = t.head.max(t.last.0 + 1);
        while next < goal {
            if !sink.push(LineAddr(next), PrefetchSource::Sequential) {
                break;
            }
            next += 1;
        }
        t.head = next;
    }
}

impl Prefetcher for StreamPrefetcher {
    fn on_fetch(&mut self, ev: &FetchEvent, sink: &mut RequestSink) {
        self.clock += 1;
        // A fetch continues a stream when it lands on the tracker's line
        // or the next one.
        let hit = self
            .trackers
            .iter()
            .position(|t| ev.line == t.last || ev.line.is_sequential_after(t.last));
        if let Some(i) = hit {
            self.trackers[i].last = ev.line;
            self.trackers[i].stamp = self.clock;
            self.top_up(i, sink);
            return;
        }
        if !ev.miss {
            return;
        }
        // Allocate (or steal the LRU tracker) on a miss outside every
        // stream.
        let t = Tracker {
            last: ev.line,
            head: ev.line.0 + 1,
            stamp: self.clock,
        };
        let i = if self.trackers.len() < self.max_streams {
            self.trackers.push(t);
            self.trackers.len() - 1
        } else {
            let lru = self
                .trackers
                .iter()
                .enumerate()
                .min_by_key(|(_, t)| t.stamp)
                .map(|(i, _)| i)
                .unwrap_or(0);
            self.trackers[lru] = t;
            lru
        };
        self.top_up(i, sink);
    }

    fn name(&self) -> &str {
        "stream"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(pf: &mut StreamPrefetcher, ev: FetchEvent) -> Vec<u64> {
        let mut out = Vec::new();
        let mut sink = RequestSink::new(&mut out, 0, usize::MAX);
        pf.on_fetch(&ev, &mut sink);
        sink.finish();
        out.iter().map(|r| r.line.0).collect()
    }

    #[test]
    fn allocates_on_miss_and_advances_on_sequential_hits() {
        let mut pf = StreamPrefetcher::new(2, 3);
        assert_eq!(
            drive(&mut pf, FetchEvent::miss(LineAddr(100), None)),
            [101, 102, 103]
        );
        // Advancing one line extends the headroom by exactly one.
        assert_eq!(
            drive(&mut pf, FetchEvent::hit(LineAddr(101), Some(LineAddr(100)))),
            [104]
        );
        // A re-fetch of the same line adds nothing.
        assert_eq!(
            drive(&mut pf, FetchEvent::hit(LineAddr(101), Some(LineAddr(101)))),
            Vec::<u64>::new()
        );
    }

    #[test]
    fn lru_tracker_is_stolen_when_full() {
        let mut pf = StreamPrefetcher::new(1, 2);
        drive(&mut pf, FetchEvent::miss(LineAddr(100), None));
        // A distant miss steals the only tracker and restarts there.
        assert_eq!(
            drive(
                &mut pf,
                FetchEvent::miss(LineAddr(500), Some(LineAddr(100)))
            ),
            [501, 502]
        );
    }

    #[test]
    fn hits_outside_any_stream_emit_nothing() {
        let mut pf = StreamPrefetcher::new(2, 2);
        drive(&mut pf, FetchEvent::miss(LineAddr(100), None));
        assert_eq!(
            drive(&mut pf, FetchEvent::hit(LineAddr(900), Some(LineAddr(100)))),
            Vec::<u64>::new()
        );
    }
}
