//! Program-map traversal prefetching (after arXiv 2406.06738): learn the
//! program's block graph — basic-block start lines, their sequential body
//! lengths, and up to two control-flow successors each — then, on every
//! miss or discontinuity, *traverse* the map several edges ahead of the
//! fetch stream, prefetching block bodies and successor blocks along the
//! way.
//!
//! Edges carry 2-bit confidence counters reinforced through the shadow
//! feedback loop: a useful prefetch strengthens the edge that produced it
//! (via its `Discontinuity { table_index }` source), an unused eviction
//! weakens it, and edges that decay to zero stop being traversed.

use ipsim_core::{FetchEvent, PrefetchSource};
use ipsim_types::LineAddr;

use crate::prefetcher::Prefetcher;
use crate::sink::RequestSink;

/// Successor ways per block-graph node.
const WAYS: u32 = 2;
/// Confidence ceiling (2-bit saturating counters).
const CONF_MAX: u8 = 3;
/// Initial confidence of a freshly learned edge.
const CONF_INIT: u8 = 1;
/// Longest sequential body recorded per block, in lines.
const MAX_BODY: u8 = 32;

#[derive(Debug, Clone, Copy)]
struct Edge {
    target: LineAddr,
    conf: u8,
}

#[derive(Debug, Clone, Copy)]
struct Node {
    /// Block-start line this node describes.
    line: LineAddr,
    /// Sequential lines observed after `line` before the block's
    /// discontinuity.
    body: u8,
    succ: [Option<Edge>; WAYS as usize],
}

/// Block-graph traversal prefetcher.
#[derive(Debug)]
pub struct ProgramMapPrefetcher {
    nodes: Vec<Option<Node>>,
    mask: usize,
    depth: u32,
    degree: usize,
    /// Start line of the block currently being fetched.
    block_start: Option<LineAddr>,
}

impl ProgramMapPrefetcher {
    /// A prefetcher with a `nodes`-entry block-graph table, traversing
    /// `depth` edges ahead and emitting at most `degree` prefetches per
    /// trigger.
    pub fn new(nodes: usize, depth: u32, degree: usize) -> ProgramMapPrefetcher {
        let entries = nodes.next_power_of_two().max(1);
        ProgramMapPrefetcher {
            nodes: vec![None; entries],
            mask: entries - 1,
            depth: depth.max(1),
            degree: degree.max(1),
            block_start: None,
        }
    }

    fn index(&self, line: LineAddr) -> usize {
        (line.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & self.mask
    }

    fn node_mut(&mut self, line: LineAddr) -> &mut Node {
        let idx = self.index(line);
        let slot = &mut self.nodes[idx];
        match slot {
            Some(n) if n.line == line => {}
            _ => {
                // Direct-mapped: a tag conflict evicts the old block.
                *slot = Some(Node {
                    line,
                    body: 0,
                    succ: [None; WAYS as usize],
                });
            }
        }
        slot.as_mut().unwrap()
    }

    fn lookup(&self, line: LineAddr) -> Option<(usize, Node)> {
        let idx = self.index(line);
        self.nodes[idx].filter(|n| n.line == line).map(|n| (idx, n))
    }

    /// Learns the edge `from → to` and the body length of `from`'s block.
    fn learn(&mut self, block_start: LineAddr, exit: LineAddr, to: LineAddr) {
        // The exit must lie within a plausible block body after the
        // tracked start; anything else means the tracker lost the stream
        // (e.g. after a reset) and would poison the node.
        if exit.0 < block_start.0 || exit.0 - block_start.0 > MAX_BODY as u64 {
            return;
        }
        let body = (exit.0 - block_start.0) as u8;
        let node = self.node_mut(block_start);
        node.body = node.body.max(body);
        // Known edge: reinforce. Otherwise take an empty way, or replace
        // the weakest one.
        if let Some(e) = node.succ.iter_mut().flatten().find(|e| e.target == to) {
            e.conf = (e.conf + 1).min(CONF_MAX);
            return;
        }
        let way = match node.succ.iter().position(|s| s.is_none()) {
            Some(w) => w,
            None => {
                let weakest = node
                    .succ
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.map(|e| e.conf).unwrap_or(0))
                    .map(|(w, _)| w)
                    .unwrap_or(0);
                if node.succ[weakest].map(|e| e.conf).unwrap_or(0) > CONF_INIT {
                    return; // Both ways are established; don't thrash.
                }
                weakest
            }
        };
        node.succ[way] = Some(Edge {
            target: to,
            conf: CONF_INIT,
        });
    }

    /// Breadth-first traversal of the block graph from `from`, emitting
    /// block bodies (sequential class) and successor block starts
    /// (discontinuity class, tagged with the edge's table index for
    /// confidence feedback).
    fn traverse(&self, from: LineAddr, sink: &mut RequestSink) {
        let mut budget = self.degree;
        let mut frontier: Vec<(LineAddr, u32)> = vec![(from, 0)];
        let mut visited: Vec<LineAddr> = vec![from];
        while let Some((line, d)) = frontier.pop() {
            let Some((idx, node)) = self.lookup(line) else {
                continue;
            };
            for k in 1..=node.body as u64 {
                if budget == 0 || !sink.push(line.ahead(k), PrefetchSource::Sequential) {
                    return;
                }
                budget -= 1;
            }
            if d >= self.depth {
                continue;
            }
            for (way, edge) in node.succ.iter().enumerate() {
                let Some(edge) = edge else { continue };
                if edge.conf == 0 || visited.contains(&edge.target) {
                    continue;
                }
                visited.push(edge.target);
                let table_index = (idx as u32) * WAYS + way as u32;
                if budget == 0
                    || !sink.push(edge.target, PrefetchSource::Discontinuity { table_index })
                {
                    return;
                }
                budget -= 1;
                frontier.push((edge.target, d + 1));
            }
        }
    }

    fn edge_mut(&mut self, table_index: u32) -> Option<&mut Edge> {
        let idx = (table_index / WAYS) as usize;
        let way = (table_index % WAYS) as usize;
        self.nodes.get_mut(idx)?.as_mut()?.succ[way].as_mut()
    }
}

impl Prefetcher for ProgramMapPrefetcher {
    fn on_fetch(&mut self, ev: &FetchEvent, sink: &mut RequestSink) {
        // Train: a discontinuity closes the current block and records the
        // control-flow edge that left it.
        if ev.is_discontinuity() {
            if let (Some(start), Some(exit)) = (self.block_start, ev.prev_line) {
                self.learn(start, exit, ev.line);
            }
            self.block_start = Some(ev.line);
        } else if self.block_start.is_none() {
            self.block_start = Some(ev.line);
        }
        // Predict: traverse the map ahead of misses and taken edges.
        if ev.miss || ev.is_discontinuity() {
            self.traverse(ev.line, sink);
        }
    }

    fn on_useful(&mut self, _line: LineAddr, source: PrefetchSource, _late: bool) {
        if let PrefetchSource::Discontinuity { table_index } = source {
            if let Some(e) = self.edge_mut(table_index) {
                e.conf = (e.conf + 1).min(CONF_MAX);
            }
        }
    }

    fn on_evict(&mut self, _line: LineAddr, source: PrefetchSource, used: bool) {
        if used {
            return;
        }
        if let PrefetchSource::Discontinuity { table_index } = source {
            if let Some(e) = self.edge_mut(table_index) {
                e.conf = e.conf.saturating_sub(1);
            }
        }
    }

    fn name(&self) -> &str {
        "pmap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(pf: &mut ProgramMapPrefetcher, line: u64, prev: Option<u64>, miss: bool) -> Vec<u64> {
        let mut out = Vec::new();
        let mut sink = RequestSink::new(&mut out, 0, usize::MAX);
        let ev = FetchEvent {
            line: LineAddr(line),
            miss,
            first_use_of_prefetch: false,
            prev_line: prev.map(LineAddr),
        };
        pf.on_fetch(&ev, &mut sink);
        sink.finish();
        out.iter().map(|r| r.line.0).collect()
    }

    /// Walks blocks 100→(101,102)→200→(201)→300 twice; the second lap the
    /// map is learned and a miss at 100 traverses two edges ahead.
    fn train_two_blocks(pf: &mut ProgramMapPrefetcher) {
        for _ in 0..2 {
            drive(pf, 100, Some(300), true);
            drive(pf, 101, Some(100), false);
            drive(pf, 102, Some(101), false);
            drive(pf, 200, Some(102), true);
            drive(pf, 201, Some(200), false);
            drive(pf, 300, Some(201), true);
        }
    }

    #[test]
    fn traverses_learned_blocks_depth_first_of_the_graph() {
        let mut pf = ProgramMapPrefetcher::new(256, 3, 16);
        train_two_blocks(&mut pf);
        let got = drive(&mut pf, 100, Some(300), true);
        // Body of 100 (101,102), edge to 200, body of 200 (201), edge to
        // 300 — two edges ahead of the demand stream.
        assert!(got.contains(&101) && got.contains(&102), "{got:?}");
        assert!(got.contains(&200), "{got:?}");
        assert!(got.contains(&201), "{got:?}");
        assert!(got.contains(&300), "{got:?}");
    }

    #[test]
    fn depth_limits_the_traversal() {
        let mut pf = ProgramMapPrefetcher::new(256, 1, 16);
        train_two_blocks(&mut pf);
        let got = drive(&mut pf, 100, Some(300), true);
        assert!(got.contains(&200), "one edge is within depth: {got:?}");
        assert!(!got.contains(&300), "two edges exceeds depth=1: {got:?}");
    }

    #[test]
    fn unused_evictions_decay_edges_to_silence() {
        let mut pf = ProgramMapPrefetcher::new(256, 3, 16);
        train_two_blocks(&mut pf);
        let got = drive(&mut pf, 100, Some(300), true);
        assert!(got.contains(&200));
        // Find the edge's table index from the emitted source and decay it.
        let mut out = Vec::new();
        let mut sink = RequestSink::new(&mut out, 0, usize::MAX);
        pf.traverse(LineAddr(100), &mut sink);
        sink.finish();
        let src = out
            .iter()
            .find(|r| r.line.0 == 200)
            .map(|r| r.source)
            .unwrap();
        for _ in 0..4 {
            pf.on_evict(LineAddr(200), src, false);
        }
        let got = drive(&mut pf, 100, Some(300), true);
        assert!(
            !got.contains(&200),
            "decayed edge must stop being traversed: {got:?}"
        );
        // Usefulness feedback revives it.
        pf.on_useful(LineAddr(200), src, false);
        let got = drive(&mut pf, 100, Some(300), true);
        assert!(got.contains(&200), "{got:?}");
    }

    #[test]
    fn hits_inside_a_block_emit_nothing() {
        let mut pf = ProgramMapPrefetcher::new(256, 3, 16);
        train_two_blocks(&mut pf);
        assert!(drive(&mut pf, 101, Some(100), false).is_empty());
    }
}
