//! Rival schemes implemented natively on the [`Prefetcher`](crate::Prefetcher)
//! trait, evaluated head-to-head against the paper's mechanisms in the
//! bake-off:
//!
//! * [`StreamPrefetcher`] — the classic stream-buffer next-line baseline;
//! * [`ManaPrefetcher`] — a MANA-style spatial-region scheme (Ansari et
//!   al., arXiv 2102.01764): region footprints in a chained metadata
//!   table;
//! * [`ProgramMapPrefetcher`] — program-map traversal (arXiv 2406.06738):
//!   walks a learned block graph several control-flow edges ahead of the
//!   fetch stream.

mod mana;
mod pmap;
mod stream;

pub use mana::ManaPrefetcher;
pub use pmap::ProgramMapPrefetcher;
pub use stream::StreamPrefetcher;
