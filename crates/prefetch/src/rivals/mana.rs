//! A MANA-style spatial-region instruction prefetcher (after Ansari et
//! al., arXiv 2102.01764, simplified to line granularity).
//!
//! The fetch stream is divided into aligned *spatial regions* of
//! `region_lines` lines. While the front end stays inside a region the
//! prefetcher records which of its lines were touched (the *footprint*
//! bitmap); when the stream leaves, the finished footprint is committed
//! to a direct-mapped metadata table and chained to the region the stream
//! entered next. Re-entering a recorded region replays its footprint
//! (sequential-class requests) and follows the chain one hop to replay
//! the successor region's footprint too (target-class requests) — the
//! "metadata chaining" that lets MANA run ahead of the fetch stream.

use ipsim_core::{FetchEvent, PrefetchSource};
use ipsim_types::LineAddr;

use crate::prefetcher::Prefetcher;
use crate::sink::RequestSink;

#[derive(Debug, Clone, Copy)]
struct Region {
    /// Aligned base line of the region.
    base: LineAddr,
    /// Bit `i` set ⇔ line `base + i` was fetched during a visit.
    footprint: u64,
    /// Region the stream entered after leaving this one.
    next: Option<LineAddr>,
}

/// Spatial-region + chained-metadata-table prefetcher.
#[derive(Debug)]
pub struct ManaPrefetcher {
    table: Vec<Option<Region>>,
    mask: usize,
    /// Lines per region (power of two, ≤ 64 so a footprint fits in u64).
    region_lines: u64,
    degree: usize,
    /// Region currently being recorded.
    current: Option<(LineAddr, u64)>,
}

impl ManaPrefetcher {
    /// A prefetcher with `regions` metadata entries over regions of
    /// `region_lines` lines, emitting at most `degree` prefetches per
    /// region entry.
    pub fn new(regions: usize, region_lines: u64, degree: usize) -> ManaPrefetcher {
        let entries = regions.next_power_of_two().max(1);
        assert!(
            region_lines.is_power_of_two() && region_lines <= 64,
            "region_lines must be a power of two <= 64"
        );
        ManaPrefetcher {
            table: vec![None; entries],
            mask: entries - 1,
            region_lines,
            degree: degree.max(1),
            current: None,
        }
    }

    fn base_of(&self, line: LineAddr) -> LineAddr {
        LineAddr(line.0 & !(self.region_lines - 1))
    }

    fn index(&self, base: LineAddr) -> usize {
        let region_id = base.0 / self.region_lines;
        (region_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & self.mask
    }

    fn lookup(&self, base: LineAddr) -> Option<Region> {
        self.table[self.index(base)].filter(|r| r.base == base)
    }

    /// Commits the finished footprint of `base`, chaining it to the region
    /// the stream entered (`next`). A revisit merges its footprint into
    /// the stored one; a tag conflict evicts the old region.
    fn commit(&mut self, base: LineAddr, footprint: u64, next: LineAddr) {
        let idx = self.index(base);
        match &mut self.table[idx] {
            Some(r) if r.base == base => {
                r.footprint |= footprint;
                r.next = Some(next);
            }
            slot => {
                *slot = Some(Region {
                    base,
                    footprint,
                    next: Some(next),
                });
            }
        }
    }

    /// Replays `region`'s footprint (minus the demand line), spending
    /// `budget`; returns `false` once the budget or the sink's own degree
    /// cap is exhausted.
    fn replay(
        &self,
        region: &Region,
        skip: Option<LineAddr>,
        source: PrefetchSource,
        budget: &mut usize,
        sink: &mut RequestSink,
    ) -> bool {
        for bit in 0..self.region_lines {
            if region.footprint & (1 << bit) == 0 {
                continue;
            }
            let line = LineAddr(region.base.0 + bit);
            if Some(line) == skip {
                continue;
            }
            if *budget == 0 || !sink.push(line, source) {
                return false;
            }
            *budget -= 1;
        }
        true
    }
}

impl Prefetcher for ManaPrefetcher {
    fn on_fetch(&mut self, ev: &FetchEvent, sink: &mut RequestSink) {
        let base = self.base_of(ev.line);
        let entered = match self.current {
            Some((cur_base, _)) => cur_base != base,
            None => true,
        };
        if entered {
            // Commit the region the stream just left, chained to here.
            if let Some((prev_base, footprint)) = self.current.take() {
                self.commit(prev_base, footprint, base);
            }
            self.current = Some((base, 0));
            // Replay this region's recorded footprint, then chase the
            // chain one hop so the successor region is in flight before
            // the stream reaches it.
            if let Some(region) = self.lookup(base) {
                let mut budget = self.degree;
                if self.replay(
                    &region,
                    Some(ev.line),
                    PrefetchSource::Sequential,
                    &mut budget,
                    sink,
                ) {
                    if let Some(next) = region.next.and_then(|n| self.lookup(n)) {
                        self.replay(&next, None, PrefetchSource::Target, &mut budget, sink);
                    }
                }
            }
        }
        if let Some((_, footprint)) = &mut self.current {
            *footprint |= 1 << (ev.line.0 & (self.region_lines - 1));
        }
    }

    fn name(&self) -> &str {
        "mana"
    }

    // Usefulness feedback is implicit: footprints only ever record demand
    // fetches, so a wrong prediction can persist only until the region's
    // next recorded visit overwrites the chain.
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(pf: &mut ManaPrefetcher, line: u64, prev: Option<u64>) -> Vec<(u64, PrefetchSource)> {
        let mut out = Vec::new();
        let mut sink = RequestSink::new(&mut out, 0, usize::MAX);
        pf.on_fetch(
            &FetchEvent::miss(LineAddr(line), prev.map(LineAddr)),
            &mut sink,
        );
        sink.finish();
        out.iter().map(|r| (r.line.0, r.source)).collect()
    }

    #[test]
    fn replays_recorded_footprint_on_reentry() {
        let mut pf = ManaPrefetcher::new(64, 8, 8);
        // Visit region [0..8): touch 0, 2, 5. Then leave to region 16.
        drive(&mut pf, 0, None);
        drive(&mut pf, 2, Some(0));
        drive(&mut pf, 5, Some(2));
        drive(&mut pf, 16, Some(5));
        // Re-enter at line 0: the other footprint lines replay
        // (sequential class), then the chain hops into the recorded
        // successor region (target class).
        let got = drive(&mut pf, 0, Some(16));
        assert_eq!(
            got,
            [
                (2, PrefetchSource::Sequential),
                (5, PrefetchSource::Sequential),
                (16, PrefetchSource::Target),
            ]
        );
    }

    #[test]
    fn chains_into_the_successor_region() {
        let mut pf = ManaPrefetcher::new(64, 8, 8);
        // Region 0 {0,1} → region 16 {16,17} → region 32.
        drive(&mut pf, 0, None);
        drive(&mut pf, 1, Some(0));
        drive(&mut pf, 16, Some(1));
        drive(&mut pf, 17, Some(16));
        drive(&mut pf, 32, Some(17));
        // Re-entering region 0 replays {1} and chases into region 16.
        let got = drive(&mut pf, 0, Some(32));
        assert_eq!(
            got,
            [
                (1, PrefetchSource::Sequential),
                (16, PrefetchSource::Target),
                (17, PrefetchSource::Target),
            ]
        );
    }

    #[test]
    fn degree_caps_the_replay() {
        let mut pf = ManaPrefetcher::new(64, 8, 2);
        for l in 0..8 {
            drive(&mut pf, l, l.checked_sub(1));
        }
        drive(&mut pf, 100, Some(7));
        let got = drive(&mut pf, 0, Some(100));
        assert_eq!(got.len(), 2, "degree=2 must cap the 7-line replay");
    }

    #[test]
    fn unknown_region_emits_nothing() {
        let mut pf = ManaPrefetcher::new(64, 8, 8);
        assert!(drive(&mut pf, 1000, None).is_empty());
    }
}
