//! The zoo-facing prefetcher interface and the adapter that lifts the
//! paper's [`PrefetchEngine`] implementations onto it.

use ipsim_core::{FetchEvent, PrefetchEngine, PrefetchRequest, PrefetchSource};
use ipsim_types::LineAddr;

use crate::sink::RequestSink;

/// A prefetch scheme living in a [`Zoo`](crate::Zoo).
///
/// Like [`PrefetchEngine`], a scheme is a pure, deterministic policy state
/// machine — it owns no caches and models no timing — but it observes the
/// full line lifecycle (fetch, fill, first use, eviction) and emits
/// requests through a [`RequestSink`] that tags them with the scheme's
/// zoo slot and enforces its per-event degree. The sink tagging is what
/// makes shadow attribution exact: every request a scheme emits carries
/// its slot through the issue queue, the MSHRs and the cache, so
/// usefulness lands on the right scheme even with several running side by
/// side.
pub trait Prefetcher: std::fmt::Debug {
    /// Observes one demand line fetch and emits any generated prefetch
    /// requests (most important first, or via explicit sink priorities).
    fn on_fetch(&mut self, ev: &FetchEvent, sink: &mut RequestSink);

    /// Observes a conditional branch: `alternate` is the line of the path
    /// *not* taken this time. Most schemes ignore it.
    fn on_cond_branch(&mut self, alternate: LineAddr, sink: &mut RequestSink) {
        let _ = (alternate, sink);
    }

    /// Lifecycle: a prefetch this scheme issued completed and its line was
    /// installed in the instruction cache.
    fn on_fill(&mut self, line: LineAddr, source: PrefetchSource) {
        let _ = (line, source);
    }

    /// Lifecycle: a prefetch this scheme issued was demand-referenced for
    /// the first time (`late` when the demand arrived while it was still
    /// in flight). Table-based schemes reinforce the responsible entry
    /// here via `source`.
    fn on_useful(&mut self, line: LineAddr, source: PrefetchSource, late: bool) {
        let _ = (line, source, late);
    }

    /// Lifecycle: a line this scheme prefetched left the cache. `used` is
    /// `false` for the pure-waste case (never demand-referenced), which
    /// table-based schemes use to weaken the responsible entry.
    fn on_evict(&mut self, line: LineAddr, source: PrefetchSource, used: bool) {
        let _ = (line, source, used);
    }

    /// Short scheme name for reports and the bake-off table.
    fn name(&self) -> &str;
}

/// Adapter lifting a legacy [`PrefetchEngine`] (the paper's mechanisms and
/// baselines in `ipsim-core`) onto the [`Prefetcher`] trait.
///
/// Emission is a straight relay; feedback routing preserves the legacy
/// contract exactly — [`Prefetcher::on_useful`] forwards to
/// [`PrefetchEngine::on_prefetch_useful`] and only an *unused* eviction
/// forwards to [`PrefetchEngine::on_prefetch_useless`] — so a zoo with a
/// single wrapped engine reinforces its tables identically to the same
/// engine driven directly by the core (pinned by the equivalence tests in
/// `ipsim-experiments`).
#[derive(Debug)]
pub struct LegacyScheme {
    inner: Box<dyn PrefetchEngine>,
    scratch: Vec<PrefetchRequest>,
}

impl LegacyScheme {
    /// Wraps a legacy engine.
    pub fn new(inner: Box<dyn PrefetchEngine>) -> LegacyScheme {
        LegacyScheme {
            inner,
            scratch: Vec::new(),
        }
    }

    fn relay(&mut self, sink: &mut RequestSink) {
        for req in self.scratch.drain(..) {
            sink.push(req.line, req.source);
        }
    }
}

impl Prefetcher for LegacyScheme {
    fn on_fetch(&mut self, ev: &FetchEvent, sink: &mut RequestSink) {
        self.scratch.clear();
        self.inner.on_fetch(ev, &mut self.scratch);
        self.relay(sink);
    }

    fn on_cond_branch(&mut self, alternate: LineAddr, sink: &mut RequestSink) {
        self.scratch.clear();
        self.inner.on_cond_branch(alternate, &mut self.scratch);
        self.relay(sink);
    }

    fn on_useful(&mut self, line: LineAddr, source: PrefetchSource, _late: bool) {
        self.inner.on_prefetch_useful(line, source);
    }

    fn on_evict(&mut self, line: LineAddr, source: PrefetchSource, used: bool) {
        if !used {
            self.inner.on_prefetch_useless(line, source);
        }
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipsim_core::PrefetcherKind;

    #[test]
    fn legacy_relay_preserves_requests_and_tags_scheme() {
        let mut direct = PrefetcherKind::NextNLineTagged { n: 4 }.build();
        let mut wrapped = LegacyScheme::new(PrefetcherKind::NextNLineTagged { n: 4 }.build());
        let ev = FetchEvent::miss(LineAddr(100), None);

        let mut want = Vec::new();
        direct.on_fetch(&ev, &mut want);

        let mut got = Vec::new();
        let mut sink = RequestSink::new(&mut got, 5, usize::MAX);
        wrapped.on_fetch(&ev, &mut sink);
        sink.finish();

        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.line, w.line);
            assert_eq!(g.source, w.source);
            assert_eq!(g.scheme, 5);
        }
        assert_eq!(wrapped.name(), direct.name());
    }
}
