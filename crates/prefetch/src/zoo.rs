//! The multi-prefetcher engine: runs several [`Prefetcher`] schemes side
//! by side in one core and attributes every line's lifecycle to the
//! scheme that issued it.

use ipsim_core::{FetchEvent, PrefetchEngine, PrefetchRequest, PrefetchSource};
use ipsim_types::LineAddr;

use crate::prefetcher::Prefetcher;
use crate::shadow::ShadowTable;
use crate::sink::RequestSink;
use crate::stats::SchemeCounters;

/// Maximum schemes a zoo can host. Slots are `u8` on the wire
/// ([`PrefetchRequest::scheme`]); eight is far past any realistic
/// side-by-side study and keeps per-event fan-out bounded.
pub const MAX_SCHEMES: usize = 8;

#[derive(Debug)]
struct Member {
    /// Canonical spec string (e.g. `disc:ahead=2`) — stable across runs,
    /// used as the row key in telemetry artifacts.
    label: String,
    prefetcher: Box<dyn Prefetcher>,
    /// Per-event emission cap handed to the member's [`RequestSink`].
    degree: usize,
    counters: SchemeCounters,
}

/// A [`PrefetchEngine`] multiplexing up to [`MAX_SCHEMES`] prefetchers.
///
/// Emission: each front-end event is shown to every member in slot order;
/// each member emits through its own scheme-tagged, degree-capped sink, so
/// the batch handed to the issue queue interleaves schemes in slot
/// priority order (slot 0 first).
///
/// Attribution: when the memory system accepts a request, the zoo records
/// `line → slot` in a bounded [`ShadowTable`] at exactly the point the
/// core records its own `line → source` attribution, and removes it at
/// exactly the eviction point where the core reclaims its attribution.
/// The two tables therefore hold the same key set at every instant, which
/// is what makes the per-scheme counters sum to the core's aggregate
/// prefetch statistics — the invariant the attribution property tests
/// pin.
#[derive(Debug)]
pub struct Zoo {
    members: Vec<Member>,
    shadow: ShadowTable<u8>,
}

impl Zoo {
    /// An empty zoo whose shadow table holds up to `max_live`
    /// simultaneous attributions (the owning core's `l1i_lines + mshrs`
    /// bound).
    pub fn new(max_live: usize) -> Zoo {
        Zoo {
            members: Vec::new(),
            shadow: ShadowTable::with_bound(max_live, 0),
        }
    }

    /// Adds a scheme in the next slot. `label` is the canonical spec
    /// string; `degree` caps the scheme's emissions per event.
    ///
    /// # Panics
    ///
    /// Panics when the zoo is full ([`MAX_SCHEMES`]).
    pub fn add(
        &mut self,
        label: impl Into<String>,
        prefetcher: Box<dyn Prefetcher>,
        degree: usize,
    ) {
        assert!(
            self.members.len() < MAX_SCHEMES,
            "zoo is full ({MAX_SCHEMES} schemes)"
        );
        self.members.push(Member {
            label: label.into(),
            prefetcher,
            degree,
            counters: SchemeCounters::default(),
        });
    }

    /// Number of registered schemes.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when no scheme is registered.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Canonical labels in slot order.
    pub fn labels(&self) -> Vec<String> {
        self.members.iter().map(|m| m.label.clone()).collect()
    }

    /// Per-scheme windowed counters, `(label, counters)` in slot order.
    pub fn scheme_stats(&self) -> Vec<(String, SchemeCounters)> {
        self.members
            .iter()
            .map(|m| (m.label.clone(), m.counters))
            .collect()
    }

    /// Live shadow attributions (lines currently credited to a scheme).
    pub fn live_attributions(&self) -> usize {
        self.shadow.len()
    }

    fn member_mut(&mut self, slot: u8) -> Option<&mut Member> {
        self.members.get_mut(slot as usize)
    }
}

impl PrefetchEngine for Zoo {
    fn on_fetch(&mut self, ev: &FetchEvent, out: &mut Vec<PrefetchRequest>) {
        for (slot, m) in self.members.iter_mut().enumerate() {
            let mut sink = RequestSink::new(out, slot as u8, m.degree);
            m.prefetcher.on_fetch(ev, &mut sink);
            let (emitted, capped) = sink.finish();
            m.counters.generated += emitted;
            m.counters.degree_capped += capped;
        }
    }

    fn on_cond_branch(&mut self, alternate: LineAddr, out: &mut Vec<PrefetchRequest>) {
        for (slot, m) in self.members.iter_mut().enumerate() {
            let mut sink = RequestSink::new(out, slot as u8, m.degree);
            m.prefetcher.on_cond_branch(alternate, &mut sink);
            let (emitted, capped) = sink.finish();
            m.counters.generated += emitted;
            m.counters.degree_capped += capped;
        }
    }

    fn on_prefetch_issued(&mut self, req: &PrefetchRequest) {
        self.shadow.insert(req.line, req.scheme);
        if let Some(m) = self.member_mut(req.scheme) {
            m.counters.issued += 1;
        }
    }

    fn on_prefetch_fill(&mut self, line: LineAddr, source: PrefetchSource) {
        if let Some(slot) = self.shadow.get(line) {
            if let Some(m) = self.member_mut(slot) {
                m.counters.filled += 1;
                m.prefetcher.on_fill(line, source);
            }
        }
    }

    fn on_prefetch_first_use(&mut self, line: LineAddr, source: PrefetchSource, late: bool) {
        if let Some(slot) = self.shadow.get(line) {
            if let Some(m) = self.member_mut(slot) {
                m.counters.useful += 1;
                if late {
                    m.counters.late += 1;
                }
                m.prefetcher.on_useful(line, source, late);
            }
        }
    }

    fn on_prefetch_evicted(&mut self, line: LineAddr, source: PrefetchSource, used: bool) {
        if let Some(slot) = self.shadow.remove(line) {
            if let Some(m) = self.member_mut(slot) {
                if used {
                    m.counters.evicted_used += 1;
                } else {
                    m.counters.evicted_unused += 1;
                }
                m.prefetcher.on_evict(line, source, used);
            }
        }
    }

    fn wants_lifecycle_hooks(&self) -> bool {
        true
    }

    fn reset_window_stats(&mut self) {
        // Counters restart at the measurement-window boundary; shadow
        // attributions persist, mirroring how the core resets `pf_stats`
        // but keeps `pf_sources` (a line prefetched during warmup is still
        // attributable when it gets used or evicted during measurement).
        for m in &mut self.members {
            m.counters.reset();
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn name(&self) -> &'static str {
        "zoo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefetcher::LegacyScheme;
    use ipsim_core::PrefetcherKind;

    fn two_scheme_zoo() -> Zoo {
        let mut zoo = Zoo::new(64);
        zoo.add(
            "nl",
            Box::new(LegacyScheme::new(PrefetcherKind::NextLineTagged.build())),
            usize::MAX,
        );
        zoo.add(
            "nnl:n=2",
            Box::new(LegacyScheme::new(
                PrefetcherKind::NextNLineTagged { n: 2 }.build(),
            )),
            usize::MAX,
        );
        zoo
    }

    #[test]
    fn emission_interleaves_slots_in_order() {
        let mut zoo = two_scheme_zoo();
        let mut out = Vec::new();
        zoo.on_fetch(&FetchEvent::miss(LineAddr(100), None), &mut out);
        // Slot 0 (next-line) then slot 1 (next-2-line).
        let tagged: Vec<(u64, u8)> = out.iter().map(|r| (r.line.0, r.scheme)).collect();
        assert_eq!(tagged, [(101, 0), (101, 1), (102, 1)]);
        let stats = zoo.scheme_stats();
        assert_eq!(stats[0].1.generated, 1);
        assert_eq!(stats[1].1.generated, 2);
    }

    #[test]
    fn lifecycle_counters_follow_shadow_attribution() {
        let mut zoo = two_scheme_zoo();
        let line = LineAddr(101);
        let src = PrefetchSource::Sequential;
        zoo.on_prefetch_issued(&PrefetchRequest::new(line, src).with_scheme(1));
        assert_eq!(zoo.live_attributions(), 1);
        zoo.on_prefetch_fill(line, src);
        zoo.on_prefetch_first_use(line, src, true);
        zoo.on_prefetch_evicted(line, src, true);
        assert_eq!(zoo.live_attributions(), 0);
        let s = zoo.scheme_stats();
        assert_eq!(s[0].1, SchemeCounters::default(), "slot 0 untouched");
        let c = s[1].1;
        assert_eq!(
            (c.issued, c.filled, c.useful, c.late, c.evicted_used),
            (1, 1, 1, 1, 1)
        );
        assert_eq!(c.evicted_unused, 0);
    }

    #[test]
    fn window_reset_clears_counters_but_keeps_attributions() {
        let mut zoo = two_scheme_zoo();
        let line = LineAddr(200);
        zoo.on_prefetch_issued(&PrefetchRequest::sequential(line));
        zoo.reset_window_stats();
        assert_eq!(zoo.scheme_stats()[0].1, SchemeCounters::default());
        assert_eq!(zoo.live_attributions(), 1, "attribution must survive");
        // The surviving attribution still classifies the later eviction.
        zoo.on_prefetch_evicted(line, PrefetchSource::Sequential, false);
        assert_eq!(zoo.scheme_stats()[0].1.evicted_unused, 1);
    }

    #[test]
    fn degree_cap_counts_dropped_requests() {
        let mut zoo = Zoo::new(16);
        zoo.add(
            "nnl:n=4",
            Box::new(LegacyScheme::new(
                PrefetcherKind::NextNLineTagged { n: 4 }.build(),
            )),
            2,
        );
        let mut out = Vec::new();
        zoo.on_fetch(&FetchEvent::miss(LineAddr(10), None), &mut out);
        assert_eq!(out.len(), 2);
        let c = zoo.scheme_stats()[0].1;
        assert_eq!((c.generated, c.degree_capped), (2, 2));
    }

    #[test]
    #[should_panic(expected = "zoo is full")]
    fn zoo_rejects_more_than_max_schemes() {
        let mut zoo = Zoo::new(16);
        for i in 0..=MAX_SCHEMES {
            zoo.add(
                format!("none#{i}"),
                Box::new(LegacyScheme::new(PrefetcherKind::None.build())),
                usize::MAX,
            );
        }
    }
}
