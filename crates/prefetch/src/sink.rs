//! The emission side of the [`Prefetcher`](crate::Prefetcher) trait: a
//! scheme-tagged, degree-capped request collector.

use ipsim_core::{PrefetchRequest, PrefetchSource};
use ipsim_types::LineAddr;

/// Collects the prefetch requests one scheme emits for one front-end
/// event.
///
/// The sink tags every request with the issuing scheme's zoo slot (for
/// shadow attribution), enforces the scheme's *degree* — the maximum
/// number of requests it may emit per event — and supports explicit
/// priorities: the batch is handed to the issue queue most-important
/// first, so a scheme that knows some requests matter more can say so
/// instead of relying on push order.
#[derive(Debug)]
pub struct RequestSink<'a> {
    out: &'a mut Vec<PrefetchRequest>,
    priorities: Vec<u8>,
    scheme: u8,
    degree: usize,
    start: usize,
    emitted: usize,
    capped: u64,
    prioritized: bool,
}

/// Priority given to requests pushed without an explicit one.
pub const DEFAULT_PRIORITY: u8 = 128;

impl<'a> RequestSink<'a> {
    /// A sink appending to `out`, tagging with zoo slot `scheme`, allowing
    /// at most `degree` requests for this event.
    pub fn new(out: &'a mut Vec<PrefetchRequest>, scheme: u8, degree: usize) -> RequestSink<'a> {
        let start = out.len();
        RequestSink {
            out,
            priorities: Vec::new(),
            scheme,
            degree,
            start,
            emitted: 0,
            capped: 0,
            prioritized: false,
        }
    }

    /// Emits a request at [`DEFAULT_PRIORITY`]. Returns `false` (and drops
    /// the request) once the scheme's degree for this event is exhausted.
    pub fn push(&mut self, line: LineAddr, source: PrefetchSource) -> bool {
        self.push_with_priority(line, source, DEFAULT_PRIORITY)
    }

    /// Emits a request with an explicit priority (255 = most important).
    /// Equal priorities preserve push order.
    pub fn push_with_priority(
        &mut self,
        line: LineAddr,
        source: PrefetchSource,
        priority: u8,
    ) -> bool {
        if self.emitted >= self.degree {
            self.capped += 1;
            return false;
        }
        self.out
            .push(PrefetchRequest::new(line, source).with_scheme(self.scheme));
        self.priorities.push(priority);
        if priority != DEFAULT_PRIORITY {
            self.prioritized = true;
        }
        self.emitted += 1;
        true
    }

    /// Requests emitted so far for this event.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Remaining degree budget for this event.
    pub fn remaining(&self) -> usize {
        self.degree - self.emitted
    }

    /// Finishes the batch: orders it most-important first (stable, so
    /// push order breaks ties and the common all-default case is a no-op)
    /// and returns `(emitted, capped)` — requests kept and requests
    /// dropped by the degree cap.
    pub fn finish(self) -> (u64, u64) {
        if self.prioritized {
            let batch = &mut self.out[self.start..];
            let mut keyed: Vec<(u8, usize)> = self
                .priorities
                .iter()
                .enumerate()
                .map(|(i, &p)| (p, i))
                .collect();
            // Descending priority, ascending push index within a priority.
            keyed.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            let reordered: Vec<PrefetchRequest> = keyed.iter().map(|&(_, i)| batch[i]).collect();
            batch.copy_from_slice(&reordered);
        }
        (self.emitted as u64, self.capped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(out: &[PrefetchRequest]) -> Vec<u64> {
        out.iter().map(|r| r.line.0).collect()
    }

    #[test]
    fn tags_scheme_and_preserves_push_order() {
        let mut out = Vec::new();
        let mut sink = RequestSink::new(&mut out, 3, 8);
        assert!(sink.push(LineAddr(1), PrefetchSource::Sequential));
        assert!(sink.push(LineAddr(2), PrefetchSource::Target));
        assert_eq!(sink.finish(), (2, 0));
        assert_eq!(lines(&out), [1, 2]);
        assert!(out.iter().all(|r| r.scheme == 3));
        assert_eq!(out[1].source, PrefetchSource::Target);
    }

    #[test]
    fn degree_cap_drops_excess() {
        let mut out = Vec::new();
        let mut sink = RequestSink::new(&mut out, 0, 2);
        assert!(sink.push(LineAddr(1), PrefetchSource::Sequential));
        assert!(sink.push(LineAddr(2), PrefetchSource::Sequential));
        assert_eq!(sink.remaining(), 0);
        assert!(!sink.push(LineAddr(3), PrefetchSource::Sequential));
        assert_eq!(sink.finish(), (2, 1));
        assert_eq!(lines(&out), [1, 2]);
    }

    #[test]
    fn priorities_order_most_important_first() {
        let mut out = Vec::new();
        let mut sink = RequestSink::new(&mut out, 0, 8);
        sink.push_with_priority(LineAddr(1), PrefetchSource::Sequential, 10);
        sink.push_with_priority(LineAddr(2), PrefetchSource::Sequential, 200);
        sink.push_with_priority(LineAddr(3), PrefetchSource::Sequential, 200);
        sink.push(LineAddr(4), PrefetchSource::Sequential);
        sink.finish();
        // 200s first (stable: 2 before 3), then the default (128), then 10.
        assert_eq!(lines(&out), [2, 3, 4, 1]);
    }

    #[test]
    fn sink_appends_after_existing_requests() {
        let mut out = vec![PrefetchRequest::sequential(LineAddr(99))];
        let mut sink = RequestSink::new(&mut out, 1, 4);
        sink.push_with_priority(LineAddr(1), PrefetchSource::Sequential, 1);
        sink.push_with_priority(LineAddr(2), PrefetchSource::Sequential, 9);
        sink.finish();
        // Reordering is confined to this sink's batch.
        assert_eq!(lines(&out), [99, 2, 1]);
    }
}
