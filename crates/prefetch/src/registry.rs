//! The string-keyed scheme registry: every prefetcher in the zoo is
//! constructed from a `name[:knob=value,…]` spec, validated against the
//! scheme's declared knobs, and carries a canonical string form that is
//! stable enough to live in run cache keys and the serve wire codec.

use std::fmt;

use ipsim_core::PrefetcherKind;

use crate::prefetcher::{LegacyScheme, Prefetcher};
use crate::rivals::{ManaPrefetcher, ProgramMapPrefetcher, StreamPrefetcher};
use crate::zoo::{Zoo, MAX_SCHEMES};

/// One integer knob a scheme accepts.
#[derive(Debug, Clone, Copy)]
pub struct KnobDef {
    /// Knob name as written in specs.
    pub name: &'static str,
    /// Value used when the spec does not set the knob.
    pub default: u64,
    /// Smallest accepted value.
    pub min: u64,
    /// Largest accepted value.
    pub max: u64,
    /// The value must additionally be a power of two.
    pub pow2: bool,
    /// One-line description for docs and error messages.
    pub doc: &'static str,
}

/// A scheme constructed by the registry: the policy plus the per-event
/// degree its zoo sink enforces.
pub struct BuiltScheme {
    /// The policy state machine.
    pub prefetcher: Box<dyn Prefetcher>,
    /// Per-event emission cap (`usize::MAX` = the scheme self-limits).
    pub degree: usize,
}

/// A registered scheme: name, documentation, knobs, constructor.
pub struct SchemeDef {
    /// Registry key as written in specs (e.g. `"disc"`).
    pub name: &'static str,
    /// One-line description for the README zoo table.
    pub doc: &'static str,
    /// Accepted knobs; anything else in a spec is rejected.
    pub knobs: &'static [KnobDef],
    build: fn(&ResolvedKnobs) -> BuiltScheme,
}

/// A spec's knobs after validation: every declared knob present, either
/// explicitly set or at its default.
#[derive(Debug, Clone)]
pub struct ResolvedKnobs {
    vals: Vec<(&'static str, u64)>,
}

impl ResolvedKnobs {
    /// The value of a declared knob.
    ///
    /// # Panics
    ///
    /// Panics on a knob name the scheme never declared — a registry bug,
    /// not an input error (specs are validated before resolution).
    pub fn get(&self, name: &str) -> u64 {
        self.vals
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("scheme constructor read undeclared knob {name:?}"))
    }
}

/// Why a prefetcher spec was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The scheme name is not in the registry.
    UnknownScheme(String),
    /// The scheme does not declare this knob.
    UnknownKnob {
        /// Scheme being configured.
        scheme: String,
        /// Offending knob name.
        knob: String,
    },
    /// A knob value failed range / power-of-two validation.
    BadKnobValue {
        /// Scheme being configured.
        scheme: String,
        /// Offending knob name.
        knob: String,
        /// The rejected value as written.
        value: String,
        /// What the knob accepts.
        expected: String,
    },
    /// The spec string is not `name[:knob=value,…]`.
    BadSyntax(String),
    /// A zoo spec listed no schemes or more than [`MAX_SCHEMES`].
    BadZooSize(usize),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnknownScheme(name) => {
                write!(f, "unknown prefetcher scheme {name:?} (see registry())")
            }
            SpecError::UnknownKnob { scheme, knob } => {
                write!(f, "scheme {scheme:?} has no knob {knob:?}")
            }
            SpecError::BadKnobValue {
                scheme,
                knob,
                value,
                expected,
            } => write!(
                f,
                "bad value {value:?} for {scheme}:{knob} (expected {expected})"
            ),
            SpecError::BadSyntax(spec) => {
                write!(
                    f,
                    "bad prefetcher spec {spec:?} (want name[:knob=value,...])"
                )
            }
            SpecError::BadZooSize(n) => {
                write!(f, "zoo must have 1..={MAX_SCHEMES} schemes, got {n}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

const fn knob(
    name: &'static str,
    default: u64,
    min: u64,
    max: u64,
    pow2: bool,
    doc: &'static str,
) -> KnobDef {
    KnobDef {
        name,
        default,
        min,
        max,
        pow2,
        doc,
    }
}

fn legacy(kind: PrefetcherKind) -> BuiltScheme {
    BuiltScheme {
        prefetcher: Box::new(LegacyScheme::new(kind.build())),
        degree: usize::MAX,
    }
}

/// Every registered scheme, in presentation order: the paper's mechanisms
/// and legacy baselines first, then the rival schemes implemented
/// natively on the [`Prefetcher`] trait.
pub fn registry() -> &'static [SchemeDef] {
    &REGISTRY
}

static REGISTRY: [SchemeDef; 11] = [
    SchemeDef {
        name: "none",
        doc: "no prefetching (baseline)",
        knobs: &[],
        build: |_| legacy(PrefetcherKind::None),
    },
    SchemeDef {
        name: "nl",
        doc: "next-line prefetcher (paper baseline)",
        knobs: &[knob(
            "mode",
            2,
            0,
            2,
            false,
            "trigger: 0=always, 1=on miss, 2=tagged",
        )],
        build: |k| {
            legacy(match k.get("mode") {
                0 => PrefetcherKind::NextLineAlways,
                1 => PrefetcherKind::NextLineOnMiss,
                _ => PrefetcherKind::NextLineTagged,
            })
        },
    },
    SchemeDef {
        name: "nnl",
        doc: "next-N-line tagged sequential prefetcher (paper baseline)",
        knobs: &[knob(
            "n",
            4,
            1,
            64,
            false,
            "prefetch-ahead distance in lines",
        )],
        build: |k| {
            legacy(PrefetcherKind::NextNLineTagged {
                n: k.get("n") as u32,
            })
        },
    },
    SchemeDef {
        name: "lookahead",
        doc: "single-line lookahead at distance N",
        knobs: &[knob("n", 4, 1, 64, false, "lookahead distance in lines")],
        build: |k| {
            legacy(PrefetcherKind::Lookahead {
                n: k.get("n") as u32,
            })
        },
    },
    SchemeDef {
        name: "disc",
        doc: "the paper's discontinuity prefetcher + next-N-line partner",
        knobs: &[
            knob(
                "table_entries",
                8192,
                64,
                1 << 20,
                true,
                "prediction-table entries",
            ),
            knob(
                "ahead",
                4,
                1,
                64,
                false,
                "sequential prefetch-ahead distance",
            ),
            knob(
                "min_confidence",
                0,
                0,
                3,
                false,
                "confidence gate (0 = ungated)",
            ),
        ],
        build: |k| {
            let table_entries = k.get("table_entries") as usize;
            let ahead = k.get("ahead") as u32;
            let min_confidence = k.get("min_confidence") as u8;
            legacy(if min_confidence > 0 {
                PrefetcherKind::DiscontinuityGated {
                    table_entries,
                    ahead,
                    min_confidence,
                }
            } else {
                PrefetcherKind::Discontinuity {
                    table_entries,
                    ahead,
                }
            })
        },
    },
    SchemeDef {
        name: "target",
        doc: "classic history-based target prefetcher (Smith & Hsu)",
        knobs: &[knob(
            "table_entries",
            4096,
            64,
            1 << 20,
            true,
            "target-table entries",
        )],
        build: |k| {
            legacy(PrefetcherKind::Target {
                table_entries: k.get("table_entries") as usize,
            })
        },
    },
    SchemeDef {
        name: "wrong_path",
        doc: "wrong-path prefetching (Pierce & Mudge)",
        knobs: &[knob(
            "next_line",
            1,
            0,
            1,
            false,
            "also prefetch the next line on misses",
        )],
        build: |k| {
            legacy(PrefetcherKind::WrongPath {
                next_line: k.get("next_line") != 0,
            })
        },
    },
    SchemeDef {
        name: "markov",
        doc: "multi-target (Markov) discontinuity predictor",
        knobs: &[
            knob(
                "table_entries",
                8192,
                64,
                1 << 20,
                true,
                "predictor-table entries",
            ),
            knob(
                "ahead",
                4,
                1,
                64,
                false,
                "sequential prefetch-ahead distance",
            ),
        ],
        build: |k| {
            legacy(PrefetcherKind::Markov {
                table_entries: k.get("table_entries") as usize,
                ahead: k.get("ahead") as u32,
            })
        },
    },
    SchemeDef {
        name: "stream",
        doc: "rival: stream-buffer next-line baseline with miss-allocated trackers",
        knobs: &[
            knob("streams", 4, 1, 16, false, "concurrent stream trackers"),
            knob(
                "degree",
                4,
                1,
                16,
                false,
                "lines prefetched ahead of a stream head",
            ),
        ],
        build: |k| BuiltScheme {
            prefetcher: Box::new(StreamPrefetcher::new(
                k.get("streams") as usize,
                k.get("degree") as u32,
            )),
            degree: k.get("degree") as usize,
        },
    },
    SchemeDef {
        name: "mana",
        doc: "rival: MANA-style spatial-region footprints with chained metadata table",
        knobs: &[
            knob("regions", 1024, 64, 1 << 16, true, "metadata-table entries"),
            knob(
                "region_lines",
                8,
                2,
                64,
                true,
                "lines per spatial region (footprint width)",
            ),
            knob("degree", 8, 1, 32, false, "max prefetches per trigger"),
        ],
        build: |k| BuiltScheme {
            prefetcher: Box::new(ManaPrefetcher::new(
                k.get("regions") as usize,
                k.get("region_lines"),
                k.get("degree") as usize,
            )),
            degree: k.get("degree") as usize,
        },
    },
    SchemeDef {
        name: "pmap",
        doc: "rival: program-map traversal over a learned block graph",
        knobs: &[
            knob(
                "nodes",
                4096,
                64,
                1 << 18,
                true,
                "block-graph node-table entries",
            ),
            knob("depth", 3, 1, 8, false, "traversal depth in graph edges"),
            knob("degree", 8, 1, 32, false, "max prefetches per fetch event"),
        ],
        build: |k| BuiltScheme {
            prefetcher: Box::new(ProgramMapPrefetcher::new(
                k.get("nodes") as usize,
                k.get("depth") as u32,
                k.get("degree") as usize,
            )),
            degree: k.get("degree") as usize,
        },
    },
];

/// Looks up a scheme definition by registry key.
pub fn find_scheme(name: &str) -> Option<&'static SchemeDef> {
    REGISTRY.iter().find(|d| d.name == name)
}

/// One validated `name[:knob=value,…]` prefetcher spec.
///
/// Knobs hold only the values the spec set explicitly (sorted by name),
/// so the canonical form — and everything derived from it, run cache keys
/// included — does not shift when a scheme grows a new knob with a
/// default.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PrefetcherSpec {
    name: String,
    knobs: Vec<(String, u64)>,
}

impl PrefetcherSpec {
    /// Parses and validates one spec against the registry.
    pub fn parse(spec: &str) -> Result<PrefetcherSpec, SpecError> {
        let (name, knob_str) = match spec.split_once(':') {
            Some((n, k)) => (n, Some(k)),
            None => (spec, None),
        };
        if name.is_empty() {
            return Err(SpecError::BadSyntax(spec.to_string()));
        }
        let def = find_scheme(name).ok_or_else(|| SpecError::UnknownScheme(name.to_string()))?;
        let mut knobs: Vec<(String, u64)> = Vec::new();
        if let Some(knob_str) = knob_str {
            for pair in knob_str.split(',') {
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| SpecError::BadSyntax(spec.to_string()))?;
                let kd = def.knobs.iter().find(|kd| kd.name == k).ok_or_else(|| {
                    SpecError::UnknownKnob {
                        scheme: name.to_string(),
                        knob: k.to_string(),
                    }
                })?;
                let bad = |expected: String| SpecError::BadKnobValue {
                    scheme: name.to_string(),
                    knob: k.to_string(),
                    value: v.to_string(),
                    expected,
                };
                let value: u64 = v
                    .parse()
                    .map_err(|_| bad("an unsigned integer".to_string()))?;
                if value < kd.min || value > kd.max {
                    return Err(bad(format!("{}..={}", kd.min, kd.max)));
                }
                if kd.pow2 && !value.is_power_of_two() {
                    return Err(bad("a power of two".to_string()));
                }
                if knobs.iter().any(|(existing, _)| existing == k) {
                    return Err(SpecError::BadSyntax(spec.to_string()));
                }
                knobs.push((k.to_string(), value));
            }
        }
        knobs.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(PrefetcherSpec {
            name: name.to_string(),
            knobs,
        })
    }

    /// Registry key of the scheme.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Explicitly-set knobs, sorted by name.
    pub fn knobs(&self) -> &[(String, u64)] {
        &self.knobs
    }

    /// The canonical string form: `name` or `name:k=v,…` with knobs
    /// sorted. Parsing the canonical form yields an equal spec.
    pub fn canonical(&self) -> String {
        if self.knobs.is_empty() {
            self.name.clone()
        } else {
            let knobs: Vec<String> = self.knobs.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("{}:{}", self.name, knobs.join(","))
        }
    }

    fn resolve(&self) -> ResolvedKnobs {
        let def = find_scheme(&self.name).expect("validated at parse time");
        let vals = def
            .knobs
            .iter()
            .map(|kd| {
                let set = self
                    .knobs
                    .iter()
                    .find(|(k, _)| k == kd.name)
                    .map(|(_, v)| *v);
                (kd.name, set.unwrap_or(kd.default))
            })
            .collect();
        ResolvedKnobs { vals }
    }

    /// Constructs the scheme. Infallible: validation happened at parse.
    pub fn build(&self) -> BuiltScheme {
        let def = find_scheme(&self.name).expect("validated at parse time");
        (def.build)(&self.resolve())
    }
}

impl fmt::Display for PrefetcherSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

/// A validated zoo configuration: an ordered list of schemes to run side
/// by side. Construction validates everything, so [`ZooPlan::build`] is
/// infallible — the harness can build one zoo per core after config
/// checks are done.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ZooPlan {
    specs: Vec<PrefetcherSpec>,
}

impl ZooPlan {
    /// Parses a `+`-joined list of specs, e.g. `disc+stream:degree=2`.
    pub fn parse(plan: &str) -> Result<ZooPlan, SpecError> {
        let specs = plan
            .split('+')
            .map(PrefetcherSpec::parse)
            .collect::<Result<Vec<_>, _>>()?;
        ZooPlan::from_specs(specs)
    }

    /// Builds a plan from already-parsed specs.
    pub fn from_specs(specs: Vec<PrefetcherSpec>) -> Result<ZooPlan, SpecError> {
        if specs.is_empty() || specs.len() > MAX_SCHEMES {
            return Err(SpecError::BadZooSize(specs.len()));
        }
        Ok(ZooPlan { specs })
    }

    /// The schemes, in slot order.
    pub fn specs(&self) -> &[PrefetcherSpec] {
        &self.specs
    }

    /// Canonical `+`-joined form; round-trips through [`ZooPlan::parse`].
    pub fn canonical(&self) -> String {
        let parts: Vec<String> = self.specs.iter().map(|s| s.canonical()).collect();
        parts.join("+")
    }

    /// Instantiates a fresh [`Zoo`] (one per core) whose shadow table
    /// holds `max_live` simultaneous attributions.
    pub fn build(&self, max_live: usize) -> Zoo {
        let mut zoo = Zoo::new(max_live);
        for spec in &self.specs {
            let built = spec.build();
            zoo.add(spec.canonical(), built.prefetcher, built.degree);
        }
        zoo
    }
}

impl fmt::Display for ZooPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_scheme_builds_with_defaults() {
        for def in registry() {
            let spec = PrefetcherSpec::parse(def.name).unwrap();
            let built = spec.build();
            assert!(!built.prefetcher.name().is_empty(), "{}", def.name);
            assert!(built.degree >= 1, "{}", def.name);
            assert!(!def.doc.is_empty());
        }
        assert!(registry().len() >= 6, "the zoo must cover >=6 schemes");
    }

    #[test]
    fn registry_names_are_unique() {
        for (i, a) in REGISTRY.iter().enumerate() {
            for b in &REGISTRY[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn canonical_form_round_trips_and_sorts_knobs() {
        let spec = PrefetcherSpec::parse("disc:min_confidence=2,ahead=2").unwrap();
        assert_eq!(spec.canonical(), "disc:ahead=2,min_confidence=2");
        assert_eq!(PrefetcherSpec::parse(&spec.canonical()).unwrap(), spec);
        // Defaults stay implicit.
        assert_eq!(PrefetcherSpec::parse("disc").unwrap().canonical(), "disc");
    }

    #[test]
    fn validation_rejects_bad_specs() {
        assert!(matches!(
            PrefetcherSpec::parse("warp_drive"),
            Err(SpecError::UnknownScheme(_))
        ));
        assert!(matches!(
            PrefetcherSpec::parse("disc:warp=1"),
            Err(SpecError::UnknownKnob { .. })
        ));
        assert!(matches!(
            PrefetcherSpec::parse("disc:ahead=0"),
            Err(SpecError::BadKnobValue { .. })
        ));
        assert!(matches!(
            PrefetcherSpec::parse("disc:table_entries=100"),
            Err(SpecError::BadKnobValue { .. })
        ));
        assert!(matches!(
            PrefetcherSpec::parse("disc:ahead=x"),
            Err(SpecError::BadKnobValue { .. })
        ));
        assert!(matches!(
            PrefetcherSpec::parse("disc:ahead=2,ahead=3"),
            Err(SpecError::BadSyntax(_))
        ));
        assert!(matches!(
            PrefetcherSpec::parse(""),
            Err(SpecError::BadSyntax(_))
        ));
        assert!(matches!(
            PrefetcherSpec::parse("disc:ahead"),
            Err(SpecError::BadSyntax(_))
        ));
    }

    #[test]
    fn zoo_plan_round_trips_and_builds() {
        let plan = ZooPlan::parse("nl+disc:ahead=2+stream:degree=2").unwrap();
        assert_eq!(plan.canonical(), "nl+disc:ahead=2+stream:degree=2");
        assert_eq!(ZooPlan::parse(&plan.canonical()).unwrap(), plan);
        let zoo = plan.build(128);
        assert_eq!(zoo.len(), 3);
        assert_eq!(zoo.labels(), ["nl", "disc:ahead=2", "stream:degree=2"]);
    }

    #[test]
    fn zoo_plan_size_is_bounded() {
        assert!(ZooPlan::parse("").is_err());
        let too_many = ["none"; MAX_SCHEMES + 1].join("+");
        assert!(matches!(
            ZooPlan::parse(&too_many),
            Err(SpecError::BadZooSize(_))
        ));
        // Exactly MAX_SCHEMES is fine (duplicates are legal: slots, not
        // names, identify members).
        let full = ["none"; MAX_SCHEMES].join("+");
        assert_eq!(ZooPlan::parse(&full).unwrap().build(16).len(), MAX_SCHEMES);
    }

    #[test]
    fn spec_errors_render_helpfully() {
        let err = PrefetcherSpec::parse("disc:table_entries=100").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("table_entries"), "{msg}");
        assert!(msg.contains("power of two"), "{msg}");
    }
}
