//! Per-scheme shadow-attribution counters.

/// Windowed lifecycle counters for one zoo member.
///
/// Counted at the same hot-path points as the core's aggregate
/// `PrefetchStats`, keyed by the shadow attribution each line carries, so
/// per-scheme rows always sum to the aggregates the telemetry validator
/// checks (the property tests in `tests/` pin this invariant).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchemeCounters {
    /// Requests the scheme emitted into its sink (pre-filter, pre-queue).
    pub generated: u64,
    /// Requests dropped by the scheme's own degree cap.
    pub degree_capped: u64,
    /// Requests accepted by the memory system (MSHR allocated).
    pub issued: u64,
    /// Prefetched lines that completed and were installed in the L1I.
    pub filled: u64,
    /// Prefetched lines demand-referenced for the first time.
    pub useful: u64,
    /// Subset of `useful` where the demand fetch arrived while the
    /// prefetch was still in flight (late — it covered the miss only
    /// partially).
    pub late: u64,
    /// Attributed lines evicted after being demand-referenced.
    pub evicted_used: u64,
    /// Attributed lines evicted without ever being demand-referenced
    /// (pure waste).
    pub evicted_unused: u64,
}

impl SchemeCounters {
    /// Accuracy: useful / issued (1.0 when nothing was issued).
    pub fn accuracy(&self) -> f64 {
        if self.issued == 0 {
            1.0
        } else {
            self.useful as f64 / self.issued as f64
        }
    }

    /// Share of useful prefetches that were late (0.0 when none useful).
    pub fn late_fraction(&self) -> f64 {
        if self.useful == 0 {
            0.0
        } else {
            self.late as f64 / self.useful as f64
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = SchemeCounters::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_denominators() {
        let mut c = SchemeCounters::default();
        assert_eq!(c.accuracy(), 1.0);
        assert_eq!(c.late_fraction(), 0.0);
        c.issued = 10;
        c.useful = 4;
        c.late = 1;
        assert_eq!(c.accuracy(), 0.4);
        assert_eq!(c.late_fraction(), 0.25);
        c.reset();
        assert_eq!(c, SchemeCounters::default());
    }
}
