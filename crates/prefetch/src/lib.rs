//! The pluggable prefetcher zoo: a scheme registry, a multi-prefetcher
//! engine with exact shadow attribution, and rival schemes evaluated
//! head-to-head against the paper's mechanisms.
//!
//! The crate sits between `ipsim-core` (pure prefetch policies and the
//! [`PrefetchEngine`](ipsim_core::PrefetchEngine) interface the CPU
//! drives) and `ipsim-cpu` (timing): it adds
//!
//! * [`Prefetcher`] — the zoo-facing scheme trait: full line lifecycle
//!   (fetch / fill / first use / evict) in, degree-capped prioritised
//!   requests out through a [`RequestSink`];
//! * [`Zoo`] — a `PrefetchEngine` multiplexing up to
//!   [`MAX_SCHEMES`] schemes side by side in one core, with a bounded
//!   [`ShadowTable`] attributing every in-flight and resident line to the
//!   issuing scheme so accuracy / coverage / timeliness are tracked per
//!   scheme ([`SchemeCounters`]) even when several run at once;
//! * the string-keyed [`registry`]: every scheme is constructed from a
//!   validated `name[:knob=value,…]` spec ([`PrefetcherSpec`]), and a
//!   `+`-joined [`ZooPlan`] configures a whole zoo — the canonical forms
//!   are stable and live in run cache keys and the serve wire codec;
//! * [`LegacyScheme`] — the adapter that lifts the paper's engines onto
//!   the trait with byte-identical behavior (pinned by equivalence
//!   tests), plus three rival schemes implemented natively:
//!   [`StreamPrefetcher`], [`ManaPrefetcher`] (arXiv 2102.01764) and
//!   [`ProgramMapPrefetcher`] (arXiv 2406.06738).
//!
//! # Examples
//!
//! Configure a two-scheme zoo from a spec string and drive it by hand:
//!
//! ```
//! use ipsim_core::{FetchEvent, PrefetchEngine};
//! use ipsim_prefetch::ZooPlan;
//! use ipsim_types::LineAddr;
//!
//! let plan = ZooPlan::parse("nl+disc:ahead=2").unwrap();
//! let mut zoo = plan.build(128);
//! let mut out = Vec::new();
//! zoo.on_fetch(&FetchEvent::miss(LineAddr(100), None), &mut out);
//! // Slot 0 (next-line) and slot 1 (discontinuity's sequential partner)
//! // both want line 101; the scheme tag tells them apart.
//! assert_eq!(out[0].scheme, 0);
//! assert!(out[1..].iter().all(|r| r.scheme == 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod prefetcher;
mod registry;
mod rivals;
mod shadow;
mod sink;
mod stats;
mod zoo;

pub use prefetcher::{LegacyScheme, Prefetcher};
pub use registry::{
    find_scheme, registry, BuiltScheme, KnobDef, PrefetcherSpec, ResolvedKnobs, SchemeDef,
    SpecError, ZooPlan,
};
pub use rivals::{ManaPrefetcher, ProgramMapPrefetcher, StreamPrefetcher};
pub use shadow::ShadowTable;
pub use sink::{RequestSink, DEFAULT_PRIORITY};
pub use stats::SchemeCounters;
pub use zoo::{Zoo, MAX_SCHEMES};
