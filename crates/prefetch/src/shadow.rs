//! Bounded open-addressed table attributing in-flight and resident
//! prefetched lines to per-line metadata (the generating
//! [`PrefetchSource`](ipsim_core::PrefetchSource), a zoo scheme slot, …).
//!
//! The CPU crate used to keep its line→source mapping in a `HashMap`:
//! correct, but it allocates (and SipHashes) on the hottest prefetch
//! paths, and its capacity is unbounded even though the key set provably
//! is not — an attribution exists only while its line is in the
//! instruction MSHR or resident in the L1I, so at most
//! `l1i_lines + mshr_entries` entries can be live at once.
//!
//! This table exploits that bound: a fixed power-of-two slot array sized
//! at 2× the worst case (≤50% load factor), multiplicative hashing, linear
//! probing with backward-shift deletion (no tombstones), and an epoch
//! counter so `clear` is O(1) without touching the lanes. After
//! construction it never allocates. The bound doubles as a leak detector:
//! if an attribution were ever *not* reclaimed when its line left the
//! L1I/MSHR, the table would eventually overflow and panic instead of
//! silently growing the way a `HashMap` would.

use ipsim_types::LineAddr;

/// Sentinel marking an empty slot within the current epoch.
const EMPTY: LineAddr = LineAddr(u64::MAX);

/// Fixed-capacity open-addressed map from line address to a small `Copy`
/// attribution value.
#[derive(Debug)]
pub struct ShadowTable<V: Copy> {
    lines: Box<[LineAddr]>,
    values: Box<[V]>,
    epochs: Box<[u32]>,
    mask: usize,
    epoch: u32,
    len: usize,
}

impl<V: Copy> ShadowTable<V> {
    /// A table guaranteed to hold `max_live` simultaneous attributions.
    /// Capacity is the next power of two of `2 * max_live`, keeping the
    /// load factor at or below 50%. `fill` initialises the value lanes
    /// (never observable — empty slots are tracked via the epoch lane).
    pub fn with_bound(max_live: usize, fill: V) -> ShadowTable<V> {
        let capacity = (2 * max_live.max(1)).next_power_of_two();
        ShadowTable {
            lines: vec![EMPTY; capacity].into_boxed_slice(),
            values: vec![fill; capacity].into_boxed_slice(),
            epochs: vec![0u32; capacity].into_boxed_slice(),
            mask: capacity - 1,
            epoch: 0,
            len: 0,
        }
    }

    /// Live attributions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no attribution is live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slots (fixed at construction).
    pub fn capacity(&self) -> usize {
        self.lines.len()
    }

    /// Drops every attribution in O(1) by advancing the epoch; slots from
    /// older epochs read as empty and are reused by later inserts.
    pub fn clear(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        self.len = 0;
        if self.epoch == 0 {
            // One lap of the u32 epoch space: scrub so stale slots from
            // exactly 2^32 epochs ago cannot read as current.
            self.lines.fill(EMPTY);
        }
    }

    #[inline]
    fn ideal(&self, line: LineAddr) -> usize {
        // Fibonacci multiplicative hash: line addresses are low-entropy in
        // the low bits (sequential streams), so mix before masking.
        (line.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & self.mask
    }

    #[inline]
    fn is_empty_slot(&self, slot: usize) -> bool {
        self.epochs[slot] != self.epoch || self.lines[slot] == EMPTY
    }

    #[inline]
    fn find(&self, line: LineAddr) -> Option<usize> {
        let mut slot = self.ideal(line);
        loop {
            if self.is_empty_slot(slot) {
                return None;
            }
            if self.lines[slot] == line {
                return Some(slot);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Inserts (or overwrites) the attribution for `line`.
    pub fn insert(&mut self, line: LineAddr, value: V) {
        debug_assert_ne!(line, EMPTY, "attributing the sentinel line");
        assert!(
            self.len < self.capacity(),
            "shadow-attribution table overflow: the liveness bound was \
             violated (attribution leak)"
        );
        let mut slot = self.ideal(line);
        loop {
            if self.is_empty_slot(slot) {
                self.lines[slot] = line;
                self.values[slot] = value;
                self.epochs[slot] = self.epoch;
                self.len += 1;
                return;
            }
            if self.lines[slot] == line {
                self.values[slot] = value;
                return;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Looks up the attribution for `line` without removing it. Used on
    /// first demand use, where the attribution must survive until the
    /// line leaves the L1I so its eviction can still be classified.
    pub fn get(&self, line: LineAddr) -> Option<V> {
        self.find(line).map(|slot| self.values[slot])
    }

    /// Removes and returns the attribution for `line`, if present.
    ///
    /// Uses backward-shift deletion: members of the probe cluster after the
    /// hole slide back if their ideal slot precedes the hole, so probe
    /// chains stay contiguous without tombstones.
    pub fn remove(&mut self, line: LineAddr) -> Option<V> {
        let mut hole = self.find(line)?;
        let value = self.values[hole];
        self.len -= 1;
        let mut probe = hole;
        loop {
            probe = (probe + 1) & self.mask;
            if self.is_empty_slot(probe) {
                break;
            }
            let ideal = self.ideal(self.lines[probe]);
            // `probe` may fill the hole iff its probe walk from `ideal`
            // passes through the hole (cyclic distance comparison).
            if (probe.wrapping_sub(ideal) & self.mask) >= (probe.wrapping_sub(hole) & self.mask) {
                self.lines[hole] = self.lines[probe];
                self.values[hole] = self.values[probe];
                self.epochs[hole] = self.epoch;
                hole = probe;
            }
        }
        self.lines[hole] = EMPTY;
        Some(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn insert_remove_round_trip() {
        let mut t = ShadowTable::with_bound(8, 0u32);
        t.insert(LineAddr(10), 1);
        t.insert(LineAddr(20), 2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.remove(LineAddr(10)), Some(1));
        assert_eq!(t.remove(LineAddr(10)), None);
        assert_eq!(t.remove(LineAddr(20)), Some(2));
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
    }

    #[test]
    fn get_does_not_remove() {
        let mut t = ShadowTable::with_bound(8, 0u32);
        t.insert(LineAddr(10), 1);
        assert_eq!(t.get(LineAddr(10)), Some(1));
        assert_eq!(t.get(LineAddr(11)), None);
        assert_eq!(t.len(), 1, "get must not disturb occupancy");
        assert_eq!(t.remove(LineAddr(10)), Some(1));
    }

    #[test]
    fn insert_overwrites_existing_line() {
        let mut t = ShadowTable::with_bound(8, 0u32);
        t.insert(LineAddr(10), 1);
        t.insert(LineAddr(10), 9);
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(LineAddr(10)), Some(9));
    }

    #[test]
    fn clear_is_epoch_based() {
        let mut t = ShadowTable::with_bound(8, 0u32);
        for l in 0..8u64 {
            t.insert(LineAddr(l), l as u32);
        }
        t.clear();
        assert_eq!(t.len(), 0);
        for l in 0..8u64 {
            assert_eq!(t.remove(LineAddr(l)), None, "line {l} survived clear");
        }
        // Slots from the old epoch are reusable.
        t.insert(LineAddr(3), 7);
        assert_eq!(t.remove(LineAddr(3)), Some(7));
    }

    #[test]
    #[should_panic(expected = "shadow-attribution table overflow")]
    fn overflow_panics_instead_of_growing() {
        let mut t = ShadowTable::with_bound(2, 0u32);
        for l in 0..=t.capacity() as u64 {
            t.insert(LineAddr(l), 0);
        }
    }

    /// Backward-shift deletion keeps probe chains intact under arbitrary
    /// colliding insert/remove interleavings: the table must always agree
    /// with a `HashMap` reference.
    #[test]
    fn matches_hashmap_reference_under_churn() {
        let mut t = ShadowTable::with_bound(32, 0u32);
        let mut re: HashMap<u64, u32> = HashMap::new();
        // Deterministic pseudo-random walk; keys deliberately span many
        // multiples of the capacity so probe clusters form.
        let mut x = 0x12345678u64;
        for step in 0..10_000u32 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = x % 96;
            if step % 3 == 0 || re.len() >= 32 {
                assert_eq!(t.remove(LineAddr(key)), re.remove(&key), "remove {key}");
            } else {
                t.insert(LineAddr(key), step);
                re.insert(key, step);
            }
            assert_eq!(t.len(), re.len());
        }
        for (&key, &want) in &re {
            assert_eq!(t.remove(LineAddr(key)), Some(want), "final drain {key}");
        }
        assert_eq!(t.len(), 0);
    }
}
