//! The deterministic worker pool: unique runs fan out across hand-rolled
//! `std::thread` workers (no runtime dependencies).
//!
//! Determinism argument: each simulation is single-threaded and fully
//! seeded, every [`RunSpec`] in a batch is unique (the scheduler dedups by
//! cache key before calling [`execute`]), and results are collected into
//! per-job slots by index. Replay feeds a core the same stream live
//! generation would (enforced by the stream integration test), so the
//! trace store affects only wall time too. Worker count and trace
//! availability therefore never change results — which the determinism
//! integration test pins down.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::cache::RunCache;
use crate::progress::Progress;
use crate::runlog::RunRecord;
use crate::spec::RunSpec;
use crate::summary::Summary;
use crate::telemetry::TelemetrySink;
use crate::traces::{RunSource, SystemSlot, TraceStore};

/// Outcome of executing one batch of unique specs.
pub struct ExecReport {
    /// Result per cache key: the summary, or the panic message of a run
    /// that died.
    pub results: HashMap<String, Result<Summary, String>>,
    /// One record per *completed* spec, in input order. Shorter than the
    /// input only when the batch was interrupted.
    pub records: Vec<RunRecord>,
    /// Wall time of the whole batch.
    pub wall: Duration,
    /// Whether a shutdown signal cut the batch short ([`ipsim_signal`]):
    /// in-flight runs were completed, unclaimed runs were never started.
    pub interrupted: bool,
}

/// A job's result slot: filled exactly once by the worker that claims it.
type JobSlot = Mutex<Option<(Result<Summary, String>, RunRecord)>>;

/// Runs every spec (assumed unique) across `workers` threads, consulting
/// and updating `cache`, and capturing/replaying instruction streams
/// through `traces`. With a `telemetry` sink, every run additionally
/// collects telemetry and writes a per-run artifact — a run whose
/// artifact is missing bypasses the run cache so there is something to
/// write. Panicking simulations are contained: they mark their own spec
/// failed and the batch continues.
///
/// When a shutdown signal arrives ([`ipsim_signal::triggered`]), workers
/// finish the run they have claimed — summaries land in the cache as
/// usual — but claim no further runs; the report carries a record for
/// every completed run and `interrupted = true`, so the caller can flush
/// the runlog tail before exiting.
pub fn execute(
    specs: &[RunSpec],
    workers: usize,
    cache: &RunCache,
    traces: &TraceStore,
    telemetry: Option<&TelemetrySink>,
    progress: &Progress,
) -> ExecReport {
    let started = Instant::now();
    let n = specs.len();
    let slots: Vec<JobSlot> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = workers.clamp(1, n.max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // One reusable simulator per worker: consecutive runs over
                // the same system configuration reset in place instead of
                // re-allocating. A panicking run abandons the slot's
                // system, so the next run builds fresh.
                let mut slot = SystemSlot::new();
                loop {
                    if ipsim_signal::triggered() {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let outcome = run_one(&specs[i], cache, traces, telemetry, &mut slot);
                    progress.on_run(&outcome.1);
                    *slots[i].lock().unwrap() = Some(outcome);
                }
            });
        }
    });

    let mut results = HashMap::with_capacity(n);
    let mut records = Vec::with_capacity(n);
    let mut completed = 0usize;
    for slot in slots {
        // On an interrupted batch, claimed-but-unfinished indices never
        // existed (claiming and running are one step) — only unclaimed
        // slots are empty.
        if let Some((result, record)) = slot.into_inner().unwrap() {
            results.insert(record.key.clone(), result);
            records.push(record);
            completed += 1;
        }
    }
    let interrupted = completed < n;
    if interrupted {
        debug_assert!(
            ipsim_signal::triggered(),
            "a slot can only be empty after an interrupt"
        );
    }
    ExecReport {
        results,
        records,
        wall: started.elapsed(),
        interrupted,
    }
}

/// Executes one spec: cache lookup, else simulate through the trace store
/// (containing panics), store the summary, and — when a telemetry sink is
/// active — write the run's artifact. A cache hit is only taken when the
/// sink already has this run's artifact (or there is no sink): summaries
/// are cacheable, telemetry is not.
fn run_one(
    spec: &RunSpec,
    cache: &RunCache,
    traces: &TraceStore,
    telemetry: Option<&TelemetrySink>,
    slot: &mut SystemSlot,
) -> (Result<Summary, String>, RunRecord) {
    let _run_span = ipsim_obs::spans().span("harness.run");
    let t0 = Instant::now();
    let key = spec.cache_key();
    let label = spec.label();
    let need_artifact = telemetry.is_some_and(|sink| !sink.has(&key));
    if !need_artifact {
        if let Some(summary) = cache.lookup(spec) {
            let l1i_mpi = summary.l1i_mpi;
            let record = RunRecord {
                key,
                label,
                source: RunSource::Cache,
                ok: true,
                wall_s: t0.elapsed().as_secs_f64(),
                sim_instructions: 0,
                mips: 0.0,
                sim_mips: 0.0,
                sim_s: 0.0,
                decode_mips: 0.0,
                l1i_mpi,
                iv_mpki: 0.0,
                telemetry_events: 0,
            };
            crate::obs::obs()
                .run_wall
                .observe((record.wall_s * 1e6) as u64);
            return (Ok(summary), record);
        }
    }
    let config = telemetry.map(|sink| sink.config().clone());
    let run = catch_unwind(AssertUnwindSafe(|| {
        traces.execute_in(spec, config.as_ref(), slot)
    }))
    .map_err(|panic| panic_message(&*panic));
    let (result, source, sim_mips, sim_s, decode_mips, collected) = match run {
        Ok(run) => (
            Ok(run.summary),
            run.source,
            run.sim_mips,
            run.sim_seconds,
            run.decode_mips,
            run.telemetry,
        ),
        Err(e) => (Err(e), RunSource::Live, 0.0, 0.0, 0.0, None),
    };
    if let Ok(summary) = &result {
        cache.store(spec, summary);
    }
    let (mut iv_mpki, mut telemetry_events) = (0.0, 0);
    if let (Some(sink), Some(collected)) = (telemetry, &collected) {
        iv_mpki = collected.last_interval_l1i_mpki().unwrap_or(0.0);
        telemetry_events = collected.total_events() as u64;
        if let Err(e) = sink.write(spec, collected) {
            eprintln!("warning: could not write telemetry artifact for {key}: {e}");
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let sim_instructions =
        (spec.lengths.warm + spec.lengths.measure) * u64::from(spec.config.n_cores);
    let record = RunRecord {
        key,
        label,
        source,
        ok: result.is_ok(),
        wall_s,
        sim_instructions,
        mips: if wall_s > 0.0 {
            sim_instructions as f64 / 1e6 / wall_s
        } else {
            0.0
        },
        sim_mips,
        sim_s,
        decode_mips,
        l1i_mpi: result.as_ref().map(|s| s.l1i_mpi).unwrap_or(0.0),
        iv_mpki,
        telemetry_events,
    };
    // Kernel-boundary distributions: one observation per executed run, so
    // sim-MIPS percentiles are recoverable from a metrics snapshot.
    let obs = crate::obs::obs();
    obs.run_wall.observe((wall_s * 1e6) as u64);
    if record.sim_mips > 0.0 {
        obs.sim_mips.observe(record.sim_mips.round() as u64);
    }
    if record.decode_mips > 0.0 {
        obs.decode_mips.observe(record.decode_mips.round() as u64);
    }
    (result, record)
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "panicked with a non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progress::ProgressMode;
    use crate::RunLengths;
    use ipsim_cpu::WorkloadSet;
    use ipsim_trace::Workload;
    use ipsim_types::SystemConfig;

    fn tiny_specs() -> Vec<RunSpec> {
        let lengths = RunLengths {
            warm: 2_000,
            measure: 5_000,
        };
        Workload::ALL
            .iter()
            .map(|w| {
                RunSpec::new(
                    SystemConfig::single_core(),
                    WorkloadSet::homogeneous(*w),
                    lengths,
                )
            })
            .collect()
    }

    fn tmp_cache(tag: &str) -> RunCache {
        let dir =
            std::env::temp_dir().join(format!("ipsim-pool-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        RunCache::at(dir)
    }

    #[test]
    fn pool_results_are_independent_of_worker_count() {
        let specs = tiny_specs();
        let cache1 = tmp_cache("w1");
        let cache4 = tmp_cache("w4");
        let traces = TraceStore::disabled();
        let p = Progress::new(ProgressMode::Silent, specs.len());
        let serial = execute(&specs, 1, &cache1, &traces, None, &p);
        let p = Progress::new(ProgressMode::Silent, specs.len());
        let parallel = execute(&specs, 4, &cache4, &traces, None, &p);
        for spec in &specs {
            let key = spec.cache_key();
            assert_eq!(
                serial.results[&key].as_ref().unwrap(),
                parallel.results[&key].as_ref().unwrap(),
                "worker count changed the result of {}",
                spec.label()
            );
        }
        assert_eq!(cache1.misses(), specs.len() as u64);
        assert_eq!(cache4.misses(), specs.len() as u64);
        let _ = std::fs::remove_dir_all(cache1.dir());
        let _ = std::fs::remove_dir_all(cache4.dir());
    }

    #[test]
    fn second_batch_is_served_from_cache() {
        let specs = tiny_specs();
        let cache = tmp_cache("rerun");
        let traces = TraceStore::disabled();
        let p = Progress::new(ProgressMode::Silent, specs.len());
        let cold = execute(&specs, 2, &cache, &traces, None, &p);
        assert!(cold.records.iter().all(|r| !r.cached() && r.ok));
        assert!(cold
            .records
            .iter()
            .all(|r| r.source == RunSource::Live && r.mips > 0.0));
        let p = Progress::new(ProgressMode::Silent, specs.len());
        let warm = execute(&specs, 2, &cache, &traces, None, &p);
        assert!(warm
            .records
            .iter()
            .all(|r| r.cached() && r.source == RunSource::Cache && r.ok));
        for spec in &specs {
            let key = spec.cache_key();
            assert_eq!(
                cold.results[&key].as_ref().unwrap(),
                warm.results[&key].as_ref().unwrap()
            );
        }
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn records_preserve_input_order() {
        let specs = tiny_specs();
        let cache = tmp_cache("order");
        let traces = TraceStore::disabled();
        let p = Progress::new(ProgressMode::Silent, specs.len());
        let report = execute(&specs, 3, &cache, &traces, None, &p);
        let got: Vec<String> = report.records.iter().map(|r| r.key.clone()).collect();
        let want: Vec<String> = specs.iter().map(|s| s.cache_key()).collect();
        assert_eq!(got, want);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn telemetry_bypasses_cache_until_the_artifact_exists() {
        use ipsim_telemetry::TelemetryConfig;

        let spec = RunSpec::new(
            SystemConfig::single_core(),
            WorkloadSet::homogeneous(Workload::Db),
            RunLengths {
                warm: 2_000,
                measure: 5_000,
            },
        )
        .prefetcher(ipsim_core::PrefetcherKind::NextLineTagged);
        let key = spec.cache_key();
        let specs = vec![spec];
        let cache = tmp_cache("telem");
        let traces = TraceStore::disabled();
        let root = std::env::temp_dir().join(format!("ipsim-pool-telem-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let sink = TelemetrySink::at(&root, TelemetryConfig::default());

        // Cold: simulated, artifact written, record carries event count.
        let p = Progress::new(ProgressMode::Silent, 1);
        let first = execute(&specs, 1, &cache, &traces, Some(&sink), &p);
        assert_eq!(first.records[0].source, RunSource::Live);
        assert!(first.records[0].telemetry_events > 0);
        assert!(first.records[0].l1i_mpi > 0.0);
        assert!(sink.has(&key));

        // Artifact present: the warm cache may serve the summary.
        let p = Progress::new(ProgressMode::Silent, 1);
        let second = execute(&specs, 1, &cache, &traces, Some(&sink), &p);
        assert!(second.records[0].cached());
        assert!(second.records[0].l1i_mpi > 0.0, "cache hits report l1i_mpi");

        // Artifact deleted: the cache is bypassed so it can be rewritten.
        let _ = std::fs::remove_dir_all(sink.dir_for(&key));
        let p = Progress::new(ProgressMode::Silent, 1);
        let third = execute(&specs, 1, &cache, &traces, Some(&sink), &p);
        assert!(!third.records[0].cached());
        assert!(sink.has(&key));
        assert_eq!(
            first.results[&key].as_ref().unwrap(),
            third.results[&key].as_ref().unwrap(),
            "telemetry re-run changed the result"
        );

        let _ = std::fs::remove_dir_all(&root);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn trace_store_marks_capture_and_replay_sources() {
        let specs = tiny_specs();
        let dir = std::env::temp_dir().join(format!("ipsim-pool-traces-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache_a = tmp_cache("tr-a");
        let cache_b = tmp_cache("tr-b");
        let traces = TraceStore::at(&dir);
        let p = Progress::new(ProgressMode::Silent, specs.len());
        let first = execute(&specs, 2, &cache_a, &traces, None, &p);
        assert!(first.records.iter().all(|r| r.source == RunSource::Capture));
        // Fresh cache forces re-simulation; streams come from the store.
        let p = Progress::new(ProgressMode::Silent, specs.len());
        let second = execute(&specs, 2, &cache_b, &traces, None, &p);
        assert!(second.records.iter().all(|r| r.source == RunSource::Replay));
        for spec in &specs {
            let key = spec.cache_key();
            assert_eq!(
                first.results[&key].as_ref().unwrap(),
                second.results[&key].as_ref().unwrap(),
                "replay changed the result of {}",
                spec.label()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(cache_a.dir());
        let _ = std::fs::remove_dir_all(cache_b.dir());
    }
}
