//! The deterministic worker pool: unique runs fan out across hand-rolled
//! `std::thread` workers (no runtime dependencies).
//!
//! Determinism argument: each simulation is single-threaded and fully
//! seeded, every [`RunSpec`] in a batch is unique (the scheduler dedups by
//! cache key before calling [`execute`]), and results are collected into
//! per-job slots by index. Worker count therefore affects only wall time —
//! never results — which the determinism integration test pins down.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::cache::RunCache;
use crate::progress::Progress;
use crate::runlog::RunRecord;
use crate::spec::RunSpec;
use crate::summary::Summary;

/// Outcome of executing one batch of unique specs.
pub struct ExecReport {
    /// Result per cache key: the summary, or the panic message of a run
    /// that died.
    pub results: HashMap<String, Result<Summary, String>>,
    /// One record per spec, in input order.
    pub records: Vec<RunRecord>,
    /// Wall time of the whole batch.
    pub wall: Duration,
}

/// Runs every spec (assumed unique) across `workers` threads, consulting
/// and updating `cache`. Panicking simulations are contained: they mark
/// their own spec failed and the batch continues.
pub fn execute(
    specs: &[RunSpec],
    workers: usize,
    cache: &RunCache,
    progress: &Progress,
) -> ExecReport {
    let started = Instant::now();
    let n = specs.len();
    let slots: Vec<Mutex<Option<(Result<Summary, String>, RunRecord)>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = workers.clamp(1, n.max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let outcome = run_one(&specs[i], cache);
                progress.on_run(&outcome.1);
                *slots[i].lock().unwrap() = Some(outcome);
            });
        }
    });

    let mut results = HashMap::with_capacity(n);
    let mut records = Vec::with_capacity(n);
    for slot in slots {
        let (result, record) = slot
            .into_inner()
            .unwrap()
            .expect("every job index was claimed by a worker");
        results.insert(record.key.clone(), result);
        records.push(record);
    }
    ExecReport {
        results,
        records,
        wall: started.elapsed(),
    }
}

/// Executes one spec: cache lookup, else simulate (containing panics) and
/// store.
fn run_one(spec: &RunSpec, cache: &RunCache) -> (Result<Summary, String>, RunRecord) {
    let t0 = Instant::now();
    let key = spec.cache_key();
    let label = spec.label();
    if let Some(summary) = cache.lookup(spec) {
        let record = RunRecord {
            key,
            label,
            cached: true,
            ok: true,
            wall_s: t0.elapsed().as_secs_f64(),
            sim_instructions: 0,
            mips: 0.0,
        };
        return (Ok(summary), record);
    }
    let result = catch_unwind(AssertUnwindSafe(|| spec.execute()))
        .map_err(|panic| panic_message(&*panic));
    if let Ok(summary) = &result {
        cache.store(spec, summary);
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let sim_instructions =
        (spec.lengths.warm + spec.lengths.measure) * u64::from(spec.config.n_cores);
    let record = RunRecord {
        key,
        label,
        cached: false,
        ok: result.is_ok(),
        wall_s,
        sim_instructions,
        mips: if wall_s > 0.0 {
            sim_instructions as f64 / 1e6 / wall_s
        } else {
            0.0
        },
    };
    (result, record)
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "panicked with a non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progress::ProgressMode;
    use crate::RunLengths;
    use ipsim_cpu::WorkloadSet;
    use ipsim_trace::Workload;
    use ipsim_types::SystemConfig;

    fn tiny_specs() -> Vec<RunSpec> {
        let lengths = RunLengths {
            warm: 2_000,
            measure: 5_000,
        };
        Workload::ALL
            .iter()
            .map(|w| {
                RunSpec::new(
                    SystemConfig::single_core(),
                    WorkloadSet::homogeneous(*w),
                    lengths,
                )
            })
            .collect()
    }

    fn tmp_cache(tag: &str) -> RunCache {
        let dir = std::env::temp_dir().join(format!("ipsim-pool-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        RunCache::at(dir)
    }

    #[test]
    fn pool_results_are_independent_of_worker_count() {
        let specs = tiny_specs();
        let cache1 = tmp_cache("w1");
        let cache4 = tmp_cache("w4");
        let p = Progress::new(ProgressMode::Silent, specs.len());
        let serial = execute(&specs, 1, &cache1, &p);
        let p = Progress::new(ProgressMode::Silent, specs.len());
        let parallel = execute(&specs, 4, &cache4, &p);
        for spec in &specs {
            let key = spec.cache_key();
            assert_eq!(
                serial.results[&key].as_ref().unwrap(),
                parallel.results[&key].as_ref().unwrap(),
                "worker count changed the result of {}",
                spec.label()
            );
        }
        assert_eq!(cache1.misses(), specs.len() as u64);
        assert_eq!(cache4.misses(), specs.len() as u64);
        let _ = std::fs::remove_dir_all(cache1.dir());
        let _ = std::fs::remove_dir_all(cache4.dir());
    }

    #[test]
    fn second_batch_is_served_from_cache() {
        let specs = tiny_specs();
        let cache = tmp_cache("rerun");
        let p = Progress::new(ProgressMode::Silent, specs.len());
        let cold = execute(&specs, 2, &cache, &p);
        assert!(cold.records.iter().all(|r| !r.cached && r.ok));
        assert!(cold.records.iter().all(|r| r.mips > 0.0));
        let p = Progress::new(ProgressMode::Silent, specs.len());
        let warm = execute(&specs, 2, &cache, &p);
        assert!(warm.records.iter().all(|r| r.cached && r.ok));
        for spec in &specs {
            let key = spec.cache_key();
            assert_eq!(
                cold.results[&key].as_ref().unwrap(),
                warm.results[&key].as_ref().unwrap()
            );
        }
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn records_preserve_input_order() {
        let specs = tiny_specs();
        let cache = tmp_cache("order");
        let p = Progress::new(ProgressMode::Silent, specs.len());
        let report = execute(&specs, 3, &cache, &p);
        let got: Vec<String> = report.records.iter().map(|r| r.key.clone()).collect();
        let want: Vec<String> = specs.iter().map(|s| s.cache_key()).collect();
        assert_eq!(got, want);
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}
