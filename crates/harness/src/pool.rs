//! The deterministic worker pool: unique runs fan out across hand-rolled
//! `std::thread` workers (no runtime dependencies).
//!
//! Determinism argument: each simulation is single-threaded and fully
//! seeded, every [`RunSpec`] in a batch is unique (the scheduler dedups by
//! cache key before calling [`execute`]), and results are collected into
//! per-job slots by index. Replay feeds a core the same stream live
//! generation would (enforced by the stream integration test), so the
//! trace store affects only wall time too. Worker count and trace
//! availability therefore never change results — which the determinism
//! integration test pins down.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::cache::RunCache;
use crate::progress::Progress;
use crate::runlog::RunRecord;
use crate::spec::RunSpec;
use crate::summary::Summary;
use crate::traces::{RunSource, TraceStore};

/// Outcome of executing one batch of unique specs.
pub struct ExecReport {
    /// Result per cache key: the summary, or the panic message of a run
    /// that died.
    pub results: HashMap<String, Result<Summary, String>>,
    /// One record per spec, in input order.
    pub records: Vec<RunRecord>,
    /// Wall time of the whole batch.
    pub wall: Duration,
}

/// A job's result slot: filled exactly once by the worker that claims it.
type JobSlot = Mutex<Option<(Result<Summary, String>, RunRecord)>>;

/// Runs every spec (assumed unique) across `workers` threads, consulting
/// and updating `cache`, and capturing/replaying instruction streams
/// through `traces`. Panicking simulations are contained: they mark their
/// own spec failed and the batch continues.
pub fn execute(
    specs: &[RunSpec],
    workers: usize,
    cache: &RunCache,
    traces: &TraceStore,
    progress: &Progress,
) -> ExecReport {
    let started = Instant::now();
    let n = specs.len();
    let slots: Vec<JobSlot> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = workers.clamp(1, n.max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let outcome = run_one(&specs[i], cache, traces);
                progress.on_run(&outcome.1);
                *slots[i].lock().unwrap() = Some(outcome);
            });
        }
    });

    let mut results = HashMap::with_capacity(n);
    let mut records = Vec::with_capacity(n);
    for slot in slots {
        let (result, record) = slot
            .into_inner()
            .unwrap()
            .expect("every job index was claimed by a worker");
        results.insert(record.key.clone(), result);
        records.push(record);
    }
    ExecReport {
        results,
        records,
        wall: started.elapsed(),
    }
}

/// Executes one spec: cache lookup, else simulate through the trace store
/// (containing panics) and store the summary.
fn run_one(
    spec: &RunSpec,
    cache: &RunCache,
    traces: &TraceStore,
) -> (Result<Summary, String>, RunRecord) {
    let t0 = Instant::now();
    let key = spec.cache_key();
    let label = spec.label();
    if let Some(summary) = cache.lookup(spec) {
        let record = RunRecord {
            key,
            label,
            source: RunSource::Cache,
            ok: true,
            wall_s: t0.elapsed().as_secs_f64(),
            sim_instructions: 0,
            mips: 0.0,
            sim_mips: 0.0,
            decode_mips: 0.0,
        };
        return (Ok(summary), record);
    }
    let run = catch_unwind(AssertUnwindSafe(|| traces.execute(spec)))
        .map_err(|panic| panic_message(&*panic));
    let (result, source, sim_mips, decode_mips) = match run {
        Ok(run) => (Ok(run.summary), run.source, run.sim_mips, run.decode_mips),
        Err(e) => (Err(e), RunSource::Live, 0.0, 0.0),
    };
    if let Ok(summary) = &result {
        cache.store(spec, summary);
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let sim_instructions =
        (spec.lengths.warm + spec.lengths.measure) * u64::from(spec.config.n_cores);
    let record = RunRecord {
        key,
        label,
        source,
        ok: result.is_ok(),
        wall_s,
        sim_instructions,
        mips: if wall_s > 0.0 {
            sim_instructions as f64 / 1e6 / wall_s
        } else {
            0.0
        },
        sim_mips,
        decode_mips,
    };
    (result, record)
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "panicked with a non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progress::ProgressMode;
    use crate::RunLengths;
    use ipsim_cpu::WorkloadSet;
    use ipsim_trace::Workload;
    use ipsim_types::SystemConfig;

    fn tiny_specs() -> Vec<RunSpec> {
        let lengths = RunLengths {
            warm: 2_000,
            measure: 5_000,
        };
        Workload::ALL
            .iter()
            .map(|w| {
                RunSpec::new(
                    SystemConfig::single_core(),
                    WorkloadSet::homogeneous(*w),
                    lengths,
                )
            })
            .collect()
    }

    fn tmp_cache(tag: &str) -> RunCache {
        let dir =
            std::env::temp_dir().join(format!("ipsim-pool-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        RunCache::at(dir)
    }

    #[test]
    fn pool_results_are_independent_of_worker_count() {
        let specs = tiny_specs();
        let cache1 = tmp_cache("w1");
        let cache4 = tmp_cache("w4");
        let traces = TraceStore::disabled();
        let p = Progress::new(ProgressMode::Silent, specs.len());
        let serial = execute(&specs, 1, &cache1, &traces, &p);
        let p = Progress::new(ProgressMode::Silent, specs.len());
        let parallel = execute(&specs, 4, &cache4, &traces, &p);
        for spec in &specs {
            let key = spec.cache_key();
            assert_eq!(
                serial.results[&key].as_ref().unwrap(),
                parallel.results[&key].as_ref().unwrap(),
                "worker count changed the result of {}",
                spec.label()
            );
        }
        assert_eq!(cache1.misses(), specs.len() as u64);
        assert_eq!(cache4.misses(), specs.len() as u64);
        let _ = std::fs::remove_dir_all(cache1.dir());
        let _ = std::fs::remove_dir_all(cache4.dir());
    }

    #[test]
    fn second_batch_is_served_from_cache() {
        let specs = tiny_specs();
        let cache = tmp_cache("rerun");
        let traces = TraceStore::disabled();
        let p = Progress::new(ProgressMode::Silent, specs.len());
        let cold = execute(&specs, 2, &cache, &traces, &p);
        assert!(cold.records.iter().all(|r| !r.cached() && r.ok));
        assert!(cold
            .records
            .iter()
            .all(|r| r.source == RunSource::Live && r.mips > 0.0));
        let p = Progress::new(ProgressMode::Silent, specs.len());
        let warm = execute(&specs, 2, &cache, &traces, &p);
        assert!(warm
            .records
            .iter()
            .all(|r| r.cached() && r.source == RunSource::Cache && r.ok));
        for spec in &specs {
            let key = spec.cache_key();
            assert_eq!(
                cold.results[&key].as_ref().unwrap(),
                warm.results[&key].as_ref().unwrap()
            );
        }
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn records_preserve_input_order() {
        let specs = tiny_specs();
        let cache = tmp_cache("order");
        let traces = TraceStore::disabled();
        let p = Progress::new(ProgressMode::Silent, specs.len());
        let report = execute(&specs, 3, &cache, &traces, &p);
        let got: Vec<String> = report.records.iter().map(|r| r.key.clone()).collect();
        let want: Vec<String> = specs.iter().map(|s| s.cache_key()).collect();
        assert_eq!(got, want);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn trace_store_marks_capture_and_replay_sources() {
        let specs = tiny_specs();
        let dir = std::env::temp_dir().join(format!("ipsim-pool-traces-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache_a = tmp_cache("tr-a");
        let cache_b = tmp_cache("tr-b");
        let traces = TraceStore::at(&dir);
        let p = Progress::new(ProgressMode::Silent, specs.len());
        let first = execute(&specs, 2, &cache_a, &traces, &p);
        assert!(first.records.iter().all(|r| r.source == RunSource::Capture));
        // Fresh cache forces re-simulation; streams come from the store.
        let p = Progress::new(ProgressMode::Silent, specs.len());
        let second = execute(&specs, 2, &cache_b, &traces, &p);
        assert!(second.records.iter().all(|r| r.source == RunSource::Replay));
        for spec in &specs {
            let key = spec.cache_key();
            assert_eq!(
                first.results[&key].as_ref().unwrap(),
                second.results[&key].as_ref().unwrap(),
                "replay changed the result of {}",
                spec.label()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(cache_a.dir());
        let _ = std::fs::remove_dir_all(cache_b.dir());
    }
}
