//! Run-level observability: per-run records and the persistent
//! `results/runlog.tsv` appended by every harness invocation.
//!
//! The run log makes simulator performance a first-class, tracked output:
//! each executed configuration contributes one row with its wall time and
//! simulated-MIPS throughput, so a PR that slows the simulator down shows
//! up as a drop in MIPS between log sections rather than as a vague "the
//! sweep felt slower".
//!
//! Schema v2 added stream provenance: a `source` column saying where the
//! run's instruction stream came from (`cache` | `live` | `capture` |
//! `replay`) and a `dec_mips` column with the pure trace-decode throughput
//! of replay runs — together they make the capture-once/replay-many
//! speedup measurable straight from the log.
//!
//! Schema v3 adds `sim_mips`: kernel-only throughput over the timed
//! measure window, excluding system construction, warm-up, trace
//! validation and capture I/O. `mips` (whole-run wall time) answers "how
//! fast is a sweep"; `sim_mips` answers "how fast is the simulation
//! kernel" — the number the bench snapshot tracks, now visible per run.
//!
//! Schema v4 adds the telemetry columns: `l1i_mpi` (the run's headline
//! L1I misses per instruction, so miss-rate anomalies are greppable from
//! the log without opening result files), `iv_mpki` (the *last interval's*
//! L1I misses per 1 000 instructions when telemetry sampled the run — a
//! quick end-of-window vs whole-window comparison), and `telem` (lifecycle
//! events written to the run's artifact; 0 when telemetry was off).
//! A log with an older header found on disk is rotated to
//! `<path>.v<N>.bak` (its own version) rather than mixed or clobbered.
//!
//! Schema v5 adds `sim_s`: wall seconds inside the timed measure window —
//! the denominator of `sim_mips`. With it, sweep-level aggregate kernel
//! throughput is computable from the log (Σ(sim_mips·sim_s) / Σ sim_s), so
//! per-run rates can be weighted by how long each run actually simulated
//! instead of averaged naively.

use std::fs::OpenOptions;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::traces::RunSource;

/// First line of a fresh run log.
pub const RUNLOG_SCHEMA: &str = "# ipsim-runlog v5";

/// Default run-log path, relative to the working directory.
pub const DEFAULT_RUNLOG: &str = "results/runlog.tsv";

/// Environment variable overriding the run-log path.
pub const RUNLOG_ENV: &str = "IPSIM_RUNLOG";

/// The run-log path from `$IPSIM_RUNLOG`, or the default if unset.
pub fn runlog_path_from_env() -> PathBuf {
    match std::env::var_os(RUNLOG_ENV) {
        Some(p) if !p.is_empty() => PathBuf::from(p),
        _ => PathBuf::from(DEFAULT_RUNLOG),
    }
}

/// What happened to one scheduled run.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Stable cache key of the spec.
    pub key: String,
    /// Human-readable spec tag.
    pub label: String,
    /// Where the result (and instruction stream) came from.
    pub source: RunSource,
    /// Whether the run produced a summary (false = simulation panicked).
    pub ok: bool,
    /// Wall-clock seconds spent on this run (lookup or simulation).
    pub wall_s: f64,
    /// Instructions simulated (warm + measured, all cores); 0 if cached.
    pub sim_instructions: u64,
    /// Simulated millions of instructions per wall second; 0 if cached.
    pub mips: f64,
    /// Kernel-only throughput (million instructions per host second over
    /// the timed measure window, overhead around the simulation loop
    /// excluded); 0 if cached.
    pub sim_mips: f64,
    /// Wall seconds inside the timed measure window (the denominator of
    /// `sim_mips`); 0 if cached.
    pub sim_s: f64,
    /// Trace-decode throughput (million ops/s) measured while validating
    /// this run's stored streams; 0 unless the run replayed.
    pub decode_mips: f64,
    /// L1I misses per instruction from the run's summary (cache hits
    /// report it too — the summary is what the cache stores).
    pub l1i_mpi: f64,
    /// The final sampling interval's L1I misses per 1 000 instructions;
    /// 0 when telemetry was off or fewer than two samples landed.
    pub iv_mpki: f64,
    /// Lifecycle events written to this run's telemetry artifact; 0 when
    /// telemetry was off.
    pub telemetry_events: u64,
}

impl RunRecord {
    /// Whether the result came from the on-disk run cache.
    pub fn cached(&self) -> bool {
        self.source == RunSource::Cache
    }
}

/// Appends `records` to the run log at `path`, creating it (with a schema
/// header) if missing. A log whose first line is an older schema is
/// rotated aside first, so every surviving log file is internally
/// consistent. One call appends one batch atomically enough for a log: a
/// single buffered write.
pub fn append(path: &Path, workers: usize, records: &[RunRecord]) -> io::Result<()> {
    append_tagged(path, workers, None, records)
}

/// [`append`] with a batch tag: a `# batch <tag>` comment line is written
/// immediately before the rows, attributing them to their producer.
/// Sharded sweeps tag each shard's batch (`shard 1/4`), so shard
/// utilization is reconstructable from the log (`sweep_report` parses
/// these markers); comment lines keep the v5 row schema untouched, so
/// every existing parser still works.
pub fn append_tagged(
    path: &Path,
    workers: usize,
    tag: Option<&str>,
    records: &[RunRecord],
) -> io::Result<()> {
    if records.is_empty() {
        return Ok(());
    }
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    rotate_old_schema(path);
    let mut file = OpenOptions::new().create(true).append(true).open(path)?;
    let mut out = String::new();
    if file.metadata()?.len() == 0 {
        out.push_str(RUNLOG_SCHEMA);
        out.push('\n');
        out.push_str(
            "# ts\tworkers\tsource\tok\twall_s\tsim_minstr\tmips\tsim_mips\tsim_s\tdec_mips\t\
             l1i_mpi\tiv_mpki\ttelem\tkey\tlabel\n",
        );
    }
    if let Some(tag) = tag {
        debug_assert!(
            !tag.contains('\n') && !tag.contains('\r'),
            "batch tags are single-line"
        );
        out.push_str(&format!("# batch {tag}\n"));
    }
    let ts = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    for r in records {
        out.push_str(&format!(
            "{ts}\t{workers}\t{}\t{}\t{:.3}\t{:.2}\t{:.2}\t{:.2}\t{:.4}\t{:.2}\t{:.5}\t{:.2}\t{}\t{}\t{}\n",
            r.source.as_str(),
            u8::from(r.ok),
            r.wall_s,
            r.sim_instructions as f64 / 1e6,
            r.mips,
            r.sim_mips,
            r.sim_s,
            r.decode_mips,
            r.l1i_mpi,
            r.iv_mpki,
            r.telemetry_events,
            r.key,
            r.label,
        ));
    }
    file.write_all(out.as_bytes())
}

/// Moves a log whose header is not the current schema to `<path>.v<N>.bak`
/// — the suffix names the *old* log's version, parsed from its header, so
/// successive schema bumps never clobber each other's backups. A header
/// that is not an `# ipsim-runlog vN` line at all falls back to `.v1.bak`
/// (the v1 header predates the version line). Best effort; an unreadable
/// file is left for `append` to surface.
fn rotate_old_schema(path: &Path) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    let first = text.lines().next().unwrap_or("");
    if first == RUNLOG_SCHEMA || text.is_empty() {
        return;
    }
    let old_version = first
        .strip_prefix("# ipsim-runlog v")
        .and_then(|v| v.trim().parse::<u32>().ok())
        .unwrap_or(1);
    let mut backup = path.as_os_str().to_owned();
    backup.push(format!(".v{old_version}.bak"));
    let _ = std::fs::rename(path, PathBuf::from(backup));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(source: RunSource) -> RunRecord {
        RunRecord {
            key: "deadbeefdeadbeef".into(),
            label: "1c·DB·none".into(),
            source,
            ok: true,
            wall_s: 1.25,
            sim_instructions: 30_000_000,
            mips: 24.0,
            sim_mips: 31.5,
            sim_s: 0.635,
            decode_mips: 0.0,
            l1i_mpi: 0.0221,
            iv_mpki: 18.5,
            telemetry_events: 1_234,
        }
    }

    #[test]
    fn appends_header_once_and_rows_every_time() {
        let path =
            std::env::temp_dir().join(format!("ipsim-runlog-test-{}.tsv", std::process::id()));
        let _ = std::fs::remove_file(&path);
        append(&path, 4, &[record(RunSource::Live)]).unwrap();
        append(&path, 1, &[record(RunSource::Replay)]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], RUNLOG_SCHEMA);
        assert!(lines[1].starts_with("# ts\t"));
        assert_eq!(lines.len(), 4, "schema + columns + two rows");
        assert!(lines[2].contains("\tdeadbeefdeadbeef\t"));
        assert!(lines[2].contains("\tlive\t"));
        assert!(lines[3].contains("\treplay\t"));
        assert_eq!(lines[2].split('\t').count(), 15);
        assert!(lines[2].contains("\t31.50\t"), "sim_mips column present");
        assert!(lines[2].contains("\t0.6350\t"), "sim_s column present");
        assert!(lines[2].contains("\t0.02210\t"), "l1i_mpi column present");
        assert!(lines[2].contains("\t18.50\t"), "iv_mpki column present");
        assert!(lines[2].contains("\t1234\t"), "telem column present");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tagged_batches_write_a_batch_marker_before_their_rows() {
        let path =
            std::env::temp_dir().join(format!("ipsim-runlog-tagged-{}.tsv", std::process::id()));
        let _ = std::fs::remove_file(&path);
        append_tagged(&path, 1, Some("shard 1/4"), &[record(RunSource::Live)]).unwrap();
        append_tagged(&path, 1, None, &[record(RunSource::Cache)]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[2], "# batch shard 1/4");
        assert!(lines[3].contains("\tlive\t"));
        assert!(
            lines[4].contains("\tcache\t"),
            "untagged batch has no marker"
        );
        assert_eq!(text.lines().filter(|l| l.starts_with("# batch")).count(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_batches_do_not_create_files() {
        let path =
            std::env::temp_dir().join(format!("ipsim-runlog-empty-{}.tsv", std::process::id()));
        let _ = std::fs::remove_file(&path);
        append(&path, 1, &[]).unwrap();
        assert!(!path.exists());
    }

    fn bak(path: &Path, suffix: &str) -> PathBuf {
        let mut s = path.as_os_str().to_owned();
        s.push(suffix);
        PathBuf::from(s)
    }

    #[test]
    fn old_schema_logs_are_rotated_not_mixed() {
        let path =
            std::env::temp_dir().join(format!("ipsim-runlog-rotate-{}.tsv", std::process::id()));
        let backup = bak(&path, ".v2.bak");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&backup);
        std::fs::write(&path, "# ipsim-runlog v2\n# ts\t...\n1\t2\n").unwrap();
        append(&path, 2, &[record(RunSource::Capture)]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with(RUNLOG_SCHEMA));
        assert!(text.contains("\tcapture\t"));
        let old = std::fs::read_to_string(&backup).unwrap();
        assert!(old.starts_with("# ipsim-runlog v2"));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&backup);
    }

    #[test]
    fn rotation_suffix_tracks_the_old_logs_version() {
        let path =
            std::env::temp_dir().join(format!("ipsim-runlog-rotate-v1-{}.tsv", std::process::id()));
        let v1_backup = bak(&path, ".v1.bak");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&v1_backup);
        // A v1 log, and an unversioned header (pre-dates the version line):
        // both land in .v1.bak.
        std::fs::write(&path, "# ipsim-runlog v1\nrow\n").unwrap();
        append(&path, 1, &[record(RunSource::Live)]).unwrap();
        assert!(std::fs::read_to_string(&v1_backup)
            .unwrap()
            .starts_with("# ipsim-runlog v1"));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&v1_backup);

        std::fs::write(&path, "wall_s\tmips\n1.0\t2.0\n").unwrap();
        append(&path, 1, &[record(RunSource::Live)]).unwrap();
        assert!(std::fs::read_to_string(&v1_backup)
            .unwrap()
            .starts_with("wall_s"));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&v1_backup);
    }
}
