//! `ipsim-harness`: deterministic experiment orchestration.
//!
//! This crate turns the figure binaries from "13 sequential processes, each
//! re-running shared configurations" into one scheduled sweep:
//!
//! * [`spec::RunSpec`] names one simulation; its [`spec::RunSpec::cache_key`]
//!   is a toolchain-stable FNV-1a hash ([`hash`]) of every
//!   result-determining field.
//! * [`figure::Figure`] defines a figure as a render function over an
//!   executor; the same function both *enumerates* the runs it needs and
//!   *renders* from their results, so job lists cannot drift.
//! * [`sweep::run_sweep`] collects all figures' jobs, dedups globally by
//!   cache key, fans the unique runs across a hand-rolled [`pool`] of
//!   `std::thread` workers (zero runtime dependencies), and renders each
//!   figure sequentially — output is byte-identical for any worker count.
//! * [`cache::RunCache`] persists summaries with schema-versioned headers,
//!   atomic writes, and quarantine-and-rerun for corrupt entries.
//! * [`traces::TraceStore`] captures each workload's instruction stream to
//!   disk once (`ipsim-stream` format) and replays it for every other
//!   configuration sharing it, with CRC-validated files, quarantine-and-
//!   fall-back for corrupt traces, and captains-first scheduling so a
//!   sweep generates each stream exactly once.
//! * [`runlog`] and [`progress`] provide run-level observability: per-run
//!   wall time, simulated MIPS, stream provenance (`cache` / `live` /
//!   `capture` / `replay`) and trace-decode throughput, cache hit/miss
//!   counters, and a live `N/M runs, ETA` stderr line.
//! * [`shard::ShardSpec`] partitions any sweep's run set deterministically
//!   by content-addressed cache key into N process shards
//!   ([`sweep::run_shard`]); shards coordinate only through the shared run
//!   cache, so results merge for free and work is never duplicated.
//! * [`manifest::FigureManifest`] records each figure's render fingerprint
//!   (FNV-1a over name, renderer version and sorted input keys) plus its
//!   output hash, so warm sweeps skip byte-identical re-renders — and the
//!   runs feeding them — entirely.
//! * [`telemetry::TelemetrySink`] turns each executed run's collected
//!   telemetry (`ipsim-telemetry`) into an on-disk artifact directory
//!   keyed by the run-cache hash: JSONL lifecycle events, a Chrome
//!   `trace_event` timeline, the interval time series, and the
//!   per-component summary `sim_report` aggregates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod cache;
pub mod figure;
pub mod hash;
pub mod manifest;
pub mod obs;
pub mod pool;
pub mod progress;
pub mod runlog;
pub mod shard;
pub mod spec;
pub mod summary;
pub mod sweep;
pub mod telemetry;
pub mod traces;
pub mod wire;

pub use args::HarnessArgs;
pub use cache::RunCache;
pub use figure::{Executor, Figure, RenderFn};
pub use manifest::FigureManifest;
pub use progress::ProgressMode;
pub use shard::ShardSpec;
pub use spec::RunSpec;
pub use summary::Summary;
pub use sweep::{run_shard, run_sweep, FigureReport, ShardReport, SweepOptions, SweepReport};
pub use telemetry::TelemetrySink;
pub use traces::{RunSource, SystemSlot, TraceStore};
pub use wire::{JobSpec, WireRun};

/// Run-length configuration shared by every experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLengths {
    /// Warm-up instructions per core (caches and predictors fill; not
    /// measured).
    pub warm: u64,
    /// Measured instructions per core.
    pub measure: u64,
}

impl RunLengths {
    /// The default experiment windows.
    pub fn full() -> RunLengths {
        RunLengths {
            warm: 10_000_000,
            measure: 20_000_000,
        }
    }

    /// Fast smoke-run windows.
    pub fn quick() -> RunLengths {
        RunLengths {
            warm: 2_000_000,
            measure: 4_000_000,
        }
    }

    /// Parses process arguments: `--quick` selects [`RunLengths::quick`].
    pub fn from_args() -> RunLengths {
        if std::env::args().any(|a| a == "--quick") {
            RunLengths::quick()
        } else {
            RunLengths::full()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_shorter_than_full() {
        assert!(RunLengths::quick().measure < RunLengths::full().measure);
    }
}
