//! The harness's operational metric handles on the process-global
//! [`ipsim_obs`] registry.
//!
//! One lazily-initialised bundle of pre-registered handles: hot paths
//! (cache probes, per-run accounting) touch only `Arc`-backed atomics,
//! never the registry lock. Family naming follows the workspace
//! convention `ipsim_<subsystem>_<what>_<unit>`; the `ipsim_kernel_*`
//! families sit at the kernel boundary — one observation per executed
//! run — so sim-MIPS distributions (p50/p90/p99) are recoverable from a
//! metrics snapshot without re-parsing the runlog.

use std::sync::OnceLock;

use ipsim_obs::{Counter, Histogram};

/// Pre-registered harness metric handles. Obtain via [`obs`].
pub struct HarnessMetrics {
    /// `ipsim_harness_cache_probe_total{outcome="hit"}`.
    pub cache_hit: Counter,
    /// `ipsim_harness_cache_probe_total{outcome="miss"}`.
    pub cache_miss: Counter,
    /// `ipsim_harness_cache_probe_total{outcome="quarantined"}` — corrupt
    /// entries moved aside. Counted *in addition* to the miss the same
    /// probe reports.
    pub cache_quarantined: Counter,
    /// `ipsim_harness_run_wall_micros` — end-to-end wall time of one
    /// pool run (cache hits included; they are the sub-millisecond mode).
    pub run_wall: Histogram,
    /// `ipsim_kernel_sim_mips` — simulated instructions per kernel
    /// wall-second, one observation per executed (non-cached) run.
    pub sim_mips: Histogram,
    /// `ipsim_kernel_decode_mips` — trace decode throughput, one
    /// observation per executed run that decoded a stream.
    pub decode_mips: Histogram,
}

/// The process-wide harness metrics, registered on first use.
pub fn obs() -> &'static HarnessMetrics {
    static OBS: OnceLock<HarnessMetrics> = OnceLock::new();
    OBS.get_or_init(|| {
        let m = ipsim_obs::metrics();
        HarnessMetrics {
            cache_hit: m.counter("ipsim_harness_cache_probe_total", &[("outcome", "hit")]),
            cache_miss: m.counter("ipsim_harness_cache_probe_total", &[("outcome", "miss")]),
            cache_quarantined: m.counter(
                "ipsim_harness_cache_probe_total",
                &[("outcome", "quarantined")],
            ),
            run_wall: m.histogram("ipsim_harness_run_wall_micros", &[]),
            sim_mips: m.histogram("ipsim_kernel_sim_mips", &[]),
            decode_mips: m.histogram("ipsim_kernel_decode_mips", &[]),
        }
    })
}
