//! Per-run telemetry artifacts: each executed run writes its collected
//! telemetry next to the run log, keyed by the run-cache hash.
//!
//! One run's artifact is a directory under the telemetry root (default
//! `results/telemetry/`, overridable via [`TELEMETRY_DIR_ENV`]):
//!
//! ```text
//! results/telemetry/<cache_key>/
//!     events.jsonl      lifecycle event trace (schema ipsim-telemetry-v1)
//!     trace.json        Chrome trace_event timeline (chrome://tracing)
//!     series.tsv        interval time series, one row per (core, sample)
//!     pf_summary.tsv    exact per-component event counts, cores summed
//!     zoo.tsv           per-scheme shadow attribution (zoo runs only)
//!     meta.tsv          run identity + artifact inventory — written last
//! ```
//!
//! Hardening mirrors the run cache and trace store: artifacts are staged
//! in a pid-suffixed temp directory and renamed into place, and
//! [`META_FILE`] is written last inside the stage so its presence marks a
//! complete artifact ([`TelemetrySink::has`]). An interrupted run
//! therefore never leaves a plausible-looking artifact, and a re-run
//! regenerates it from scratch.

use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use ipsim_telemetry::sink;
use ipsim_telemetry::{TelemetryConfig, TelemetryRun};

use crate::spec::RunSpec;

/// Environment variable overriding the telemetry artifact root.
pub const TELEMETRY_DIR_ENV: &str = "IPSIM_TELEMETRY_DIR";

/// Default telemetry artifact root, relative to the working directory.
pub const DEFAULT_TELEMETRY_DIR: &str = "results/telemetry";

/// The completion marker, written last: an artifact directory without it
/// is incomplete and gets regenerated.
pub const META_FILE: &str = "meta.tsv";

/// Per-scheme shadow-attribution artifact, present only for zoo runs.
pub const ZOO_FILE: &str = "zoo.tsv";

/// Writes per-run telemetry artifacts under one root directory.
///
/// All methods take `&self` (the written counter is atomic), so one sink
/// is shared across the worker pool like the run cache and trace store.
#[derive(Debug)]
pub struct TelemetrySink {
    root: PathBuf,
    config: TelemetryConfig,
    written: AtomicU64,
}

impl TelemetrySink {
    /// A sink rooted at `root`, collecting per `config`.
    pub fn at(root: impl Into<PathBuf>, config: TelemetryConfig) -> TelemetrySink {
        TelemetrySink {
            root: root.into(),
            config,
            written: AtomicU64::new(0),
        }
    }

    /// A sink rooted at `$IPSIM_TELEMETRY_DIR`, or [`DEFAULT_TELEMETRY_DIR`]
    /// if unset.
    pub fn from_env(config: TelemetryConfig) -> TelemetrySink {
        match std::env::var_os(TELEMETRY_DIR_ENV) {
            Some(dir) if !dir.is_empty() => TelemetrySink::at(PathBuf::from(dir), config),
            _ => TelemetrySink::at(DEFAULT_TELEMETRY_DIR, config),
        }
    }

    /// The collection config every run should use.
    pub fn config(&self) -> &TelemetryConfig {
        &self.config
    }

    /// The artifact root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Artifacts written by this instance.
    pub fn written(&self) -> u64 {
        self.written.load(Ordering::Relaxed)
    }

    /// The artifact directory for a run-cache key.
    pub fn dir_for(&self, key: &str) -> PathBuf {
        self.root.join(key)
    }

    /// Whether a *complete* artifact (meta marker present) exists for a
    /// run-cache key. A run with an artifact on disk may serve its summary
    /// from the run cache; one without must simulate so the artifact can
    /// be written.
    pub fn has(&self, key: &str) -> bool {
        self.dir_for(key).join(META_FILE).is_file()
    }

    /// Writes one run's artifact set atomically: stage into a temp
    /// directory (meta marker last), then rename into place. A concurrent
    /// writer losing the rename race discards its stage — the artifacts
    /// are deterministic, so either copy is correct.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; the caller treats a failed artifact as a
    /// warning, never a failed run.
    pub fn write(&self, spec: &RunSpec, run: &TelemetryRun) -> io::Result<PathBuf> {
        let key = spec.cache_key();
        let stage = self.root.join(format!(".{key}.{}.tmp", std::process::id()));
        let _ = fs::remove_dir_all(&stage);
        fs::create_dir_all(&stage)?;
        let result = self.stage_artifacts(&stage, spec, &key, run);
        if result.is_err() {
            let _ = fs::remove_dir_all(&stage);
            result?;
        }
        let dest = self.dir_for(&key);
        let _ = fs::remove_dir_all(&dest);
        if fs::rename(&stage, &dest).is_err() {
            // Lost the race (or the destination reappeared): keep the
            // existing artifact, drop the stage.
            let _ = fs::remove_dir_all(&stage);
        }
        self.written.fetch_add(1, Ordering::Relaxed);
        Ok(dest)
    }

    /// Writes every artifact file into `stage`, the meta marker last.
    fn stage_artifacts(
        &self,
        stage: &Path,
        spec: &RunSpec,
        key: &str,
        run: &TelemetryRun,
    ) -> io::Result<()> {
        let file = |name: &str| -> io::Result<BufWriter<File>> {
            Ok(BufWriter::new(File::create(stage.join(name))?))
        };
        let mut events = file("events.jsonl")?;
        sink::write_events_jsonl(&mut events, run)?;
        events.flush()?;
        let mut chrome = file("trace.json")?;
        sink::write_chrome_trace(&mut chrome, run)?;
        chrome.flush()?;
        let mut series = file("series.tsv")?;
        sink::write_series_tsv(&mut series, &run.samples)?;
        series.flush()?;
        let mut summary = file("pf_summary.tsv")?;
        sink::write_component_summary_tsv(&mut summary, run)?;
        summary.flush()?;
        if !run.zoo.is_empty() {
            let mut zoo = file(ZOO_FILE)?;
            sink::write_zoo_tsv(&mut zoo, &run.zoo)?;
            zoo.flush()?;
        }

        let mut meta = file(META_FILE)?;
        writeln!(meta, "key\t{key}")?;
        writeln!(meta, "label\t{}", spec.label())?;
        writeln!(meta, "schema\t{}", sink::JSONL_SCHEMA)?;
        writeln!(meta, "interval\t{}", run.interval)?;
        writeln!(meta, "cores\t{}", run.cores.len())?;
        writeln!(meta, "events\t{}", run.total_events())?;
        writeln!(meta, "dropped\t{}", run.total_dropped())?;
        writeln!(meta, "samples\t{}", run.samples.len())?;
        if let Some(plan) = &spec.zoo {
            writeln!(meta, "zoo\t{}", plan.canonical())?;
            writeln!(meta, "zoo_rows\t{}", run.zoo.len())?;
        }
        meta.flush()
    }
}

/// Reads an artifact's `meta.tsv` into `(field, value)` pairs; `None` if
/// the marker is missing or unreadable.
pub fn read_meta(dir: &Path) -> Option<Vec<(String, String)>> {
    let text = fs::read_to_string(dir.join(META_FILE)).ok()?;
    let mut out = Vec::new();
    for line in text.lines() {
        let (field, value) = line.split_once('\t')?;
        out.push((field.to_string(), value.to_string()));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunLengths;
    use ipsim_cpu::WorkloadSet;
    use ipsim_trace::Workload;
    use ipsim_types::SystemConfig;

    fn spec() -> RunSpec {
        RunSpec::new(
            SystemConfig::single_core(),
            WorkloadSet::homogeneous(Workload::Db),
            RunLengths {
                warm: 1_000,
                measure: 3_000,
            },
        )
        .prefetcher(ipsim_core::PrefetcherKind::NextLineTagged)
    }

    #[test]
    fn artifacts_are_complete_validated_and_marked() {
        let root =
            std::env::temp_dir().join(format!("ipsim-telemetry-sink-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let sink_ = TelemetrySink::at(
            &root,
            TelemetryConfig {
                interval: 500,
                max_events_per_core: 4_096,
            },
        );
        let spec = spec();
        assert!(!sink_.has(&spec.cache_key()));

        let run = TraceRun::collect(&spec, sink_.config());
        let dir = sink_.write(&spec, &run).unwrap();
        assert!(sink_.has(&spec.cache_key()));
        assert_eq!(sink_.written(), 1);

        // Every artifact passes its own format's validator.
        let events = fs::read_to_string(dir.join("events.jsonl")).unwrap();
        let parsed = sink::parse_events_jsonl(&events).unwrap();
        assert!(parsed.total_events() > 0);
        let chrome = fs::read_to_string(dir.join("trace.json")).unwrap();
        assert!(sink::validate_chrome_trace(&chrome).unwrap() > 0);
        let series = fs::read_to_string(dir.join("series.tsv")).unwrap();
        assert!(!sink::parse_series_tsv(&series).unwrap().is_empty());
        let summary = fs::read_to_string(dir.join("pf_summary.tsv")).unwrap();
        assert!(!sink::parse_component_summary_tsv(&summary)
            .unwrap()
            .is_empty());

        let meta = read_meta(&dir).unwrap();
        let get = |f: &str| {
            meta.iter()
                .find(|(field, _)| field == f)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert_eq!(get("key"), spec.cache_key());
        assert_eq!(get("interval"), "500");
        assert_eq!(get("events"), parsed.total_events().to_string());

        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn zoo_runs_add_a_zoo_artifact() {
        let root = std::env::temp_dir().join(format!("ipsim-zoo-sink-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let sink_ = TelemetrySink::at(
            &root,
            TelemetryConfig {
                interval: 500,
                max_events_per_core: 4_096,
            },
        );
        let plain = spec();
        let zoo_spec = spec().zoo(ipsim_prefetch::ZooPlan::parse("nl+disc").unwrap());

        let plain_dir = sink_
            .write(&plain, &TraceRun::collect(&plain, sink_.config()))
            .unwrap();
        assert!(
            !plain_dir.join(ZOO_FILE).exists(),
            "non-zoo runs have no zoo artifact"
        );

        let run = TraceRun::collect(&zoo_spec, sink_.config());
        let dir = sink_.write(&zoo_spec, &run).unwrap();
        let text = fs::read_to_string(dir.join(ZOO_FILE)).unwrap();
        let rows = sink::parse_zoo_tsv(&text).unwrap();
        assert_eq!(rows, run.zoo);
        assert_eq!(rows.len(), 2, "one row per scheme on the single core");
        let meta = read_meta(&dir).unwrap();
        assert!(meta.contains(&("zoo".to_string(), "nl+disc".to_string())));

        let _ = fs::remove_dir_all(&root);
    }

    /// Test-local helper running one spec with telemetry.
    struct TraceRun;
    impl TraceRun {
        fn collect(spec: &RunSpec, config: &TelemetryConfig) -> TelemetryRun {
            let mut system = spec.build_system();
            system.enable_telemetry(config.clone());
            let _ = system.run_workload(&spec.workloads, spec.lengths.warm, spec.lengths.measure);
            system.take_telemetry().unwrap()
        }
    }
}
