//! Hand-rolled argument parsing shared by every figure binary.

use crate::RunLengths;

/// Usage text printed on parse errors and `--help`.
pub const USAGE: &str = "\
usage: <figure-binary> [--quick] [--jobs N] [--figures figNN,figNN,...] [--no-traces]
                       [--telemetry]

  --quick          ~5x shorter warm-up/measurement windows (smoke runs)
  --jobs N, -j N   worker threads for the run pool
                   (default: the machine's available parallelism)
  --figures LIST   comma-separated figure subset (all_figures only)
  --no-traces      disable instruction-stream capture/replay (every run
                   generates its stream live; see also IPSIM_TRACE_DIR)
  --telemetry      collect interval samples and prefetch lifecycle events,
                   writing per-run artifacts under results/telemetry/
                   (see also IPSIM_TELEMETRY_DIR); results are unchanged
  --help           this text
";

/// Parsed harness arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessArgs {
    /// Warm-up / measurement windows.
    pub lengths: RunLengths,
    /// Worker threads.
    pub workers: usize,
    /// Figure-subset filter (`all_figures` only).
    pub figures: Option<Vec<String>>,
    /// Whether to capture/replay instruction streams (`--no-traces`
    /// disables).
    pub traces: bool,
    /// Whether to collect telemetry and write per-run artifacts
    /// (`--telemetry` enables).
    pub telemetry: bool,
}

impl HarnessArgs {
    /// Parses an argument list (without the program name).
    pub fn parse<I, S>(args: I) -> Result<HarnessArgs, String>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut out = HarnessArgs {
            lengths: RunLengths::full(),
            workers: default_workers(),
            figures: None,
            traces: true,
            telemetry: false,
        };
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let arg = arg.as_ref();
            match arg {
                "--quick" => out.lengths = RunLengths::quick(),
                "--no-traces" => out.traces = false,
                "--telemetry" => out.telemetry = true,
                "--jobs" | "-j" => {
                    let v = args
                        .next()
                        .ok_or_else(|| format!("{arg} needs a value\n\n{USAGE}"))?;
                    out.workers = parse_workers(v.as_ref())?;
                }
                "--figures" => {
                    let v = args
                        .next()
                        .ok_or_else(|| format!("{arg} needs a value\n\n{USAGE}"))?;
                    out.figures = Some(parse_figures(v.as_ref()));
                }
                "--help" | "-h" => return Err(USAGE.to_string()),
                _ => {
                    if let Some(v) = arg.strip_prefix("--jobs=") {
                        out.workers = parse_workers(v)?;
                    } else if let Some(v) = arg.strip_prefix("--figures=") {
                        out.figures = Some(parse_figures(v));
                    } else {
                        return Err(format!("unknown argument `{arg}`\n\n{USAGE}"));
                    }
                }
            }
        }
        Ok(out)
    }

    /// Parses the process arguments, exiting with the usage text on error.
    /// `--help` prints the usage to stdout and exits 0.
    pub fn from_env_or_exit() -> HarnessArgs {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        if argv.iter().any(|a| a == "--help" || a == "-h") {
            println!("{USAGE}");
            std::process::exit(0);
        }
        match HarnessArgs::parse(&argv) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }
}

/// One worker per available hardware thread by default; the pool clamps to
/// the job count anyway.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn parse_workers(v: &str) -> Result<usize, String> {
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "--jobs needs a positive integer, got `{v}`\n\n{USAGE}"
        )),
    }
}

fn parse_figures(v: &str) -> Vec<String> {
    v.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_flags() {
        let d = HarnessArgs::parse(Vec::<String>::new()).unwrap();
        assert_eq!(d.lengths, RunLengths::full());
        assert!(d.workers >= 1);
        assert!(d.figures.is_none());
        assert!(d.traces);

        let t = HarnessArgs::parse(["--no-traces"]).unwrap();
        assert!(!t.traces);
        assert!(!t.telemetry);

        let tm = HarnessArgs::parse(["--telemetry"]).unwrap();
        assert!(tm.telemetry);

        let a = HarnessArgs::parse(["--quick", "--jobs", "4"]).unwrap();
        assert_eq!(a.lengths, RunLengths::quick());
        assert_eq!(a.workers, 4);

        let b = HarnessArgs::parse(["--jobs=8", "--figures=fig01, fig05"]).unwrap();
        assert_eq!(b.workers, 8);
        assert_eq!(
            b.figures,
            Some(vec!["fig01".to_string(), "fig05".to_string()])
        );

        let c = HarnessArgs::parse(["-j", "2"]).unwrap();
        assert_eq!(c.workers, 2);
    }

    #[test]
    fn errors_carry_usage() {
        for bad in [
            &["--jobs", "0"][..],
            &["--jobs", "x"],
            &["--wat"],
            &["--jobs"],
        ] {
            let err = HarnessArgs::parse(bad.iter().copied()).unwrap_err();
            assert!(err.contains("usage:"), "{err}");
        }
    }
}
