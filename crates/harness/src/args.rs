//! Hand-rolled argument parsing shared by every figure binary.

use crate::shard::{self, ShardSpec};
use crate::RunLengths;

/// Usage text printed on parse errors and `--help`.
pub const USAGE: &str = "\
usage: <figure-binary> [--quick] [--jobs N] [--figures figNN,figNN,...] [--no-traces]
                       [--telemetry] [--shards N] [--force]

  --quick          ~5x shorter warm-up/measurement windows (smoke runs)
  --jobs N, -j N   worker threads for the run pool
                   (default: the machine's available parallelism)
  --figures LIST   comma-separated figure subset (all_figures only)
  --no-traces      disable instruction-stream capture/replay (every run
                   generates its stream live; see also IPSIM_TRACE_DIR)
  --telemetry      collect interval samples and prefetch lifecycle events,
                   writing per-run artifacts under results/telemetry/
                   (see also IPSIM_TELEMETRY_DIR); results are unchanged
  --shards N       split the sweep's run set over N processes partitioned
                   by cache key (all_figures only; default $IPSIM_SHARDS
                   or 1); results and figures are byte-identical for any N
  --force          re-render every figure, bypassing the incremental
                   manifest (results/figures/manifest.tsv)
  --shard-exec I/N internal: execute shard I of N and exit (spawned by
                   --shards; not for interactive use)
  --help           this text

  IPSIM_RUN_LENGTHS=WARM/MEASURE overrides the windows (beats --quick);
  the smoke hook CI and tests use to sweep with tiny instruction counts
";

/// Parsed harness arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessArgs {
    /// Warm-up / measurement windows.
    pub lengths: RunLengths,
    /// Worker threads.
    pub workers: usize,
    /// Figure-subset filter (`all_figures` only).
    pub figures: Option<Vec<String>>,
    /// Whether to capture/replay instruction streams (`--no-traces`
    /// disables).
    pub traces: bool,
    /// Whether to collect telemetry and write per-run artifacts
    /// (`--telemetry` enables).
    pub telemetry: bool,
    /// Process-shard count from `--shards`; `None` when the flag is
    /// absent (callers fall back to `$IPSIM_SHARDS`, then 1 — see
    /// [`HarnessArgs::resolve_shards`]).
    pub shards: Option<usize>,
    /// Re-render every figure, bypassing the incremental manifest
    /// (`--force`).
    pub force: bool,
    /// Internal shard-child mode (`--shard-exec I/N`): execute shard I of
    /// N and exit without rendering. Set only on processes spawned by a
    /// `--shards` parent.
    pub shard_exec: Option<ShardSpec>,
}

impl HarnessArgs {
    /// Parses an argument list (without the program name).
    pub fn parse<I, S>(args: I) -> Result<HarnessArgs, String>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut out = HarnessArgs {
            lengths: RunLengths::full(),
            workers: default_workers(),
            figures: None,
            traces: true,
            telemetry: false,
            shards: None,
            force: false,
            shard_exec: None,
        };
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let arg = arg.as_ref();
            match arg {
                "--quick" => out.lengths = RunLengths::quick(),
                "--no-traces" => out.traces = false,
                "--telemetry" => out.telemetry = true,
                "--force" => out.force = true,
                "--jobs" | "-j" => {
                    let v = args
                        .next()
                        .ok_or_else(|| format!("{arg} needs a value\n\n{USAGE}"))?;
                    out.workers = parse_workers(v.as_ref())?;
                }
                "--figures" => {
                    let v = args
                        .next()
                        .ok_or_else(|| format!("{arg} needs a value\n\n{USAGE}"))?;
                    out.figures = Some(parse_figures(v.as_ref()));
                }
                "--shards" => {
                    let v = args
                        .next()
                        .ok_or_else(|| format!("{arg} needs a value\n\n{USAGE}"))?;
                    out.shards = Some(parse_shards(v.as_ref())?);
                }
                "--shard-exec" => {
                    let v = args
                        .next()
                        .ok_or_else(|| format!("{arg} needs a value\n\n{USAGE}"))?;
                    out.shard_exec =
                        Some(ShardSpec::parse(v.as_ref()).map_err(|e| format!("{e}\n\n{USAGE}"))?);
                }
                "--help" | "-h" => return Err(USAGE.to_string()),
                _ => {
                    if let Some(v) = arg.strip_prefix("--jobs=") {
                        out.workers = parse_workers(v)?;
                    } else if let Some(v) = arg.strip_prefix("--figures=") {
                        out.figures = Some(parse_figures(v));
                    } else if let Some(v) = arg.strip_prefix("--shards=") {
                        out.shards = Some(parse_shards(v)?);
                    } else if let Some(v) = arg.strip_prefix("--shard-exec=") {
                        out.shard_exec =
                            Some(ShardSpec::parse(v).map_err(|e| format!("{e}\n\n{USAGE}"))?);
                    } else {
                        return Err(format!("unknown argument `{arg}`\n\n{USAGE}"));
                    }
                }
            }
        }
        Ok(out)
    }

    /// The effective shard count: `--shards` beats `$IPSIM_SHARDS` beats 1.
    /// A malformed environment value is an error (a typo must not silently
    /// serialise the sweep).
    pub fn resolve_shards(&self) -> Result<usize, String> {
        if let Some(n) = self.shards {
            return Ok(n);
        }
        Ok(shard::shards_from_env()?.unwrap_or(1))
    }

    /// The argument vector a `--shards` parent passes to the child process
    /// executing `shard`: the parent's own sweep-shaping flags (lengths,
    /// workers, figure subset, traces, telemetry, force) plus
    /// `--shard-exec I/N`. The child re-derives the identical job set and
    /// executes only the shard it owns.
    pub fn child_args(&self, shard: ShardSpec) -> Vec<String> {
        let mut argv = Vec::new();
        if self.lengths == RunLengths::quick() {
            argv.push("--quick".to_string());
        }
        argv.push("--jobs".to_string());
        argv.push(self.workers.to_string());
        if let Some(figures) = &self.figures {
            argv.push("--figures".to_string());
            argv.push(figures.join(","));
        }
        if !self.traces {
            argv.push("--no-traces".to_string());
        }
        if self.telemetry {
            argv.push("--telemetry".to_string());
        }
        if self.force {
            argv.push("--force".to_string());
        }
        argv.push("--shard-exec".to_string());
        argv.push(shard.to_string());
        argv
    }

    /// Parses the process arguments, exiting with the usage text on error.
    /// `--help` prints the usage to stdout and exits 0.
    ///
    /// `$IPSIM_RUN_LENGTHS` (format `WARM/MEASURE`, instruction counts)
    /// overrides the windows last, beating `--quick`. Shard children
    /// inherit the variable, so every process of a sharded sweep agrees
    /// on the run set. This is the hook CI smoke sweeps and tests use to
    /// drive the real binaries with tiny windows.
    pub fn from_env_or_exit() -> HarnessArgs {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        if argv.iter().any(|a| a == "--help" || a == "-h") {
            println!("{USAGE}");
            std::process::exit(0);
        }
        let mut args = match HarnessArgs::parse(&argv) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        };
        match lengths_from_env() {
            Ok(Some(lengths)) => args.lengths = lengths,
            Ok(None) => {}
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
        args
    }
}

/// Environment variable overriding the run windows (`WARM/MEASURE`
/// instruction counts) for every figure binary; see
/// [`HarnessArgs::from_env_or_exit`].
pub const LENGTHS_ENV: &str = "IPSIM_RUN_LENGTHS";

/// Parses a `WARM/MEASURE` lengths spec (e.g. `10000/20000`).
pub fn parse_lengths_spec(raw: &str) -> Result<RunLengths, String> {
    let err = || {
        format!(
            "{LENGTHS_ENV} must be WARM/MEASURE instruction counts \
             (e.g. 10000/20000), got `{raw}`"
        )
    };
    let (warm, measure) = raw.split_once('/').ok_or_else(err)?;
    let warm: u64 = warm.trim().parse().map_err(|_| err())?;
    let measure: u64 = measure.trim().parse().map_err(|_| err())?;
    if measure == 0 {
        return Err(err());
    }
    Ok(RunLengths { warm, measure })
}

/// The run-lengths override from `$IPSIM_RUN_LENGTHS`, if set and
/// non-empty. A malformed value is an error: a typo must not silently
/// run a multi-hour full-window sweep.
pub fn lengths_from_env() -> Result<Option<RunLengths>, String> {
    let Some(raw) = std::env::var_os(LENGTHS_ENV) else {
        return Ok(None);
    };
    let raw = raw.to_string_lossy();
    if raw.is_empty() {
        return Ok(None);
    }
    parse_lengths_spec(&raw).map(Some)
}

/// One worker per available hardware thread by default; the pool clamps to
/// the job count anyway.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn parse_workers(v: &str) -> Result<usize, String> {
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "--jobs needs a positive integer, got `{v}`\n\n{USAGE}"
        )),
    }
}

fn parse_shards(v: &str) -> Result<usize, String> {
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "--shards needs a positive integer, got `{v}`\n\n{USAGE}"
        )),
    }
}

fn parse_figures(v: &str) -> Vec<String> {
    v.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_flags() {
        let d = HarnessArgs::parse(Vec::<String>::new()).unwrap();
        assert_eq!(d.lengths, RunLengths::full());
        assert!(d.workers >= 1);
        assert!(d.figures.is_none());
        assert!(d.traces);

        let t = HarnessArgs::parse(["--no-traces"]).unwrap();
        assert!(!t.traces);
        assert!(!t.telemetry);

        let tm = HarnessArgs::parse(["--telemetry"]).unwrap();
        assert!(tm.telemetry);

        let a = HarnessArgs::parse(["--quick", "--jobs", "4"]).unwrap();
        assert_eq!(a.lengths, RunLengths::quick());
        assert_eq!(a.workers, 4);

        let b = HarnessArgs::parse(["--jobs=8", "--figures=fig01, fig05"]).unwrap();
        assert_eq!(b.workers, 8);
        assert_eq!(
            b.figures,
            Some(vec!["fig01".to_string(), "fig05".to_string()])
        );

        let c = HarnessArgs::parse(["-j", "2"]).unwrap();
        assert_eq!(c.workers, 2);
    }

    #[test]
    fn shard_flags_parse_in_both_forms() {
        let d = HarnessArgs::parse(Vec::<String>::new()).unwrap();
        assert_eq!(d.shards, None);
        assert!(!d.force);
        assert_eq!(d.shard_exec, None);

        let a = HarnessArgs::parse(["--shards", "4", "--force"]).unwrap();
        assert_eq!(a.shards, Some(4));
        assert!(a.force);

        let b = HarnessArgs::parse(["--shards=7"]).unwrap();
        assert_eq!(b.shards, Some(7));

        let c = HarnessArgs::parse(["--shard-exec", "2/4"]).unwrap();
        assert_eq!(c.shard_exec, Some(ShardSpec { index: 2, count: 4 }));
        let e = HarnessArgs::parse(["--shard-exec=0/2"]).unwrap();
        assert_eq!(e.shard_exec, Some(ShardSpec { index: 0, count: 2 }));
    }

    #[test]
    fn child_args_replicate_the_parents_sweep_shape() {
        let parent = HarnessArgs::parse([
            "--quick",
            "--jobs",
            "3",
            "--figures",
            "fig01,fig05",
            "--no-traces",
            "--telemetry",
            "--force",
            "--shards",
            "4",
        ])
        .unwrap();
        let argv = parent.child_args(ShardSpec { index: 2, count: 4 });
        // A child parses back to the same sweep shape, minus the shard
        // driver flags, plus its own shard identity.
        let child = HarnessArgs::parse(&argv).unwrap();
        assert_eq!(child.lengths, parent.lengths);
        assert_eq!(child.workers, parent.workers);
        assert_eq!(child.figures, parent.figures);
        assert_eq!(child.traces, parent.traces);
        assert_eq!(child.telemetry, parent.telemetry);
        assert_eq!(child.force, parent.force);
        assert_eq!(child.shards, None, "children must not re-spawn shards");
        assert_eq!(child.shard_exec, Some(ShardSpec { index: 2, count: 4 }));

        // Defaults stay defaults: a plain parent spawns a minimal child.
        let plain = HarnessArgs::parse(["--shards", "2"]).unwrap();
        let argv = plain.child_args(ShardSpec { index: 1, count: 2 });
        assert!(!argv.contains(&"--quick".to_string()));
        assert!(!argv.contains(&"--force".to_string()));
        assert!(argv
            .windows(2)
            .any(|w| w[0] == "--shard-exec" && w[1] == "1/2"));
    }

    #[test]
    fn lengths_specs_parse_and_reject() {
        let l = parse_lengths_spec("10000/20000").unwrap();
        assert_eq!(l.warm, 10_000);
        assert_eq!(l.measure, 20_000);
        let zero_warm = parse_lengths_spec("0/500").unwrap();
        assert_eq!(zero_warm.warm, 0);
        for bad in ["", "10000", "10000/", "/20000", "a/b", "1000/0"] {
            assert!(parse_lengths_spec(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn errors_carry_usage() {
        for bad in [
            &["--jobs", "0"][..],
            &["--jobs", "x"],
            &["--wat"],
            &["--jobs"],
            &["--shards", "0"],
            &["--shards", "x"],
            &["--shards"],
            &["--shard-exec", "4/4"],
            &["--shard-exec", "nope"],
        ] {
            let err = HarnessArgs::parse(bad.iter().copied()).unwrap_err();
            assert!(err.contains("usage:"), "{err}");
        }
    }
}
