//! Live sweep progress on stderr: `N/M runs, ETA`.
//!
//! Progress goes to **stderr** so it never contaminates figure output or
//! the `results/*.txt` files. On a terminal it renders as a single
//! carriage-return-updated line; when stderr is redirected (CI logs) it
//! falls back to one plain line per completed run, so logs stay greppable.

use std::io::{IsTerminal, Write};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::runlog::RunRecord;

/// How progress should be reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgressMode {
    /// Live line if stderr is a terminal, plain lines otherwise.
    Auto,
    /// Single `\r`-updated status line.
    Live,
    /// One line per completed run.
    Plain,
    /// No output (tests).
    Silent,
}

/// Thread-safe progress meter shared by the worker pool.
pub struct Progress {
    mode: ProgressMode,
    total: usize,
    // Line prefix identifying the producer when several processes share
    // one stderr (sharded sweeps: `s1/4`); empty for ordinary sweeps.
    tag: String,
    done: AtomicUsize,
    cached: AtomicU64,
    started: Instant,
    // Sweep-aggregate kernel throughput: Σ measured M-instrs and Σ kernel
    // seconds across executed runs, so `finish` can report total measured
    // work over total kernel time (not an unweighted mean of per-run
    // rates, which short runs would skew).
    kernel: Mutex<(f64, f64)>,
    // Serialises stderr writes so live-line updates never interleave.
    write_lock: Mutex<()>,
}

impl Progress {
    /// A meter for `total` runs.
    pub fn new(mode: ProgressMode, total: usize) -> Progress {
        Progress::with_tag(mode, total, None)
    }

    /// A meter whose lines carry a `[tag]` prefix — shard children use
    /// their shard identity so interleaved multi-process output stays
    /// attributable. A tagged meter never uses the `\r` live line (shards
    /// sharing a terminal would fight over it): `Auto`/`Live` resolve to
    /// `Plain`.
    pub fn with_tag(mode: ProgressMode, total: usize, tag: Option<&str>) -> Progress {
        let mode = match (mode, tag) {
            (ProgressMode::Silent, _) => ProgressMode::Silent,
            (_, Some(_)) => ProgressMode::Plain,
            (ProgressMode::Auto, None) => {
                if std::io::stderr().is_terminal() {
                    ProgressMode::Live
                } else {
                    ProgressMode::Plain
                }
            }
            (other, None) => other,
        };
        Progress {
            mode,
            total,
            tag: tag.map(|t| format!("[{t}] ")).unwrap_or_default(),
            done: AtomicUsize::new(0),
            cached: AtomicU64::new(0),
            started: Instant::now(),
            kernel: Mutex::new((0.0, 0.0)),
            write_lock: Mutex::new(()),
        }
    }

    /// Records one completed run and updates the display.
    pub fn on_run(&self, record: &RunRecord) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if record.cached() {
            self.cached.fetch_add(1, Ordering::Relaxed);
        }
        if record.sim_s > 0.0 {
            let mut kernel = self.kernel.lock().unwrap();
            kernel.0 += record.sim_mips * record.sim_s;
            kernel.1 += record.sim_s;
        }
        if self.mode == ProgressMode::Silent {
            return;
        }
        let cached = self.cached.load(Ordering::Relaxed);
        let eta = self.eta_secs(done);
        let _guard = self.write_lock.lock().unwrap();
        let mut err = std::io::stderr().lock();
        match self.mode {
            ProgressMode::Live => {
                let _ = write!(
                    err,
                    "\r[{done}/{total}] runs · {cached} cached · last {label} {wall:.1}s{perf} · ETA {eta}   ",
                    total = self.total,
                    label = record.label,
                    wall = record.wall_s,
                    perf = perf_suffix(record),
                    eta = fmt_eta(eta),
                );
            }
            ProgressMode::Plain => {
                let what = if record.cached() {
                    "cached".to_string()
                } else if record.ok {
                    format!(
                        "{} {:.1}s ({:.1} MIPS{})",
                        record.source.as_str(),
                        record.wall_s,
                        record.mips,
                        perf_suffix(record),
                    )
                } else {
                    "FAILED".to_string()
                };
                let _ = writeln!(
                    err,
                    "{tag}[{done}/{total}] {label}: {what} · ETA {eta}",
                    tag = self.tag,
                    total = self.total,
                    label = record.label,
                    eta = fmt_eta(eta),
                );
            }
            ProgressMode::Auto | ProgressMode::Silent => unreachable!("mode resolved in new()"),
        }
    }

    /// Sweep-aggregate kernel throughput: total measured instructions over
    /// total kernel seconds across every executed (non-cached) run so far.
    /// `None` until at least one run simulated.
    pub fn aggregate_sim_mips(&self) -> Option<f64> {
        let kernel = self.kernel.lock().unwrap();
        (kernel.1 > 0.0).then(|| kernel.0 / kernel.1)
    }

    /// Ends the display (terminates the live line) and, when any run
    /// actually simulated, reports the sweep-aggregate kernel throughput.
    pub fn finish(&self) {
        if self.mode == ProgressMode::Silent {
            return;
        }
        let _guard = self.write_lock.lock().unwrap();
        let mut err = std::io::stderr().lock();
        if self.mode == ProgressMode::Live {
            let _ = writeln!(err);
        }
        let kernel = self.kernel.lock().unwrap();
        if kernel.1 > 0.0 {
            let _ = writeln!(
                err,
                "{}sweep kernel: {:.1} sim-MIPS aggregate over {:.1}s simulated",
                self.tag,
                kernel.0 / kernel.1,
                kernel.1,
            );
        }
    }

    /// Naive ETA: average pace so far times work remaining. Cache hits make
    /// this an overestimate that corrects itself within a few runs.
    fn eta_secs(&self, done: usize) -> u64 {
        if done == 0 || done >= self.total {
            return 0;
        }
        let elapsed = self.started.elapsed().as_secs_f64();
        (elapsed / done as f64 * (self.total - done) as f64).round() as u64
    }
}

/// Per-run performance detail appended to progress lines: kernel-only
/// throughput (`sim_mips`, added to the run log in v3 but previously
/// never displayed) and — when telemetry sampled the run — the last
/// interval's live L1I miss rate. Empty for cache hits and failures.
fn perf_suffix(record: &RunRecord) -> String {
    let mut out = String::new();
    if record.sim_mips > 0.0 {
        out.push_str(&format!(" · {:.1} sim-MIPS", record.sim_mips));
    }
    if record.iv_mpki > 0.0 {
        out.push_str(&format!(" · i$ {:.1}m/KI", record.iv_mpki));
    }
    out
}

/// `73s` below two minutes, `m:ss` above.
fn fmt_eta(secs: u64) -> String {
    if secs < 120 {
        format!("{secs}s")
    } else {
        format!("{}:{:02}", secs / 60, secs % 60)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_suffix_shows_sim_mips_and_interval_miss_rate() {
        let mut rec = RunRecord {
            key: "k".into(),
            label: "l".into(),
            source: crate::traces::RunSource::Live,
            ok: true,
            wall_s: 1.0,
            sim_instructions: 1,
            mips: 1.0,
            sim_mips: 0.0,
            sim_s: 0.0,
            decode_mips: 0.0,
            l1i_mpi: 0.0,
            iv_mpki: 0.0,
            telemetry_events: 0,
        };
        assert_eq!(perf_suffix(&rec), "");
        rec.sim_mips = 42.25;
        assert_eq!(perf_suffix(&rec), " · 42.2 sim-MIPS");
        rec.iv_mpki = 18.04;
        assert_eq!(perf_suffix(&rec), " · 42.2 sim-MIPS · i$ 18.0m/KI");
    }

    #[test]
    fn eta_formatting() {
        assert_eq!(fmt_eta(0), "0s");
        assert_eq!(fmt_eta(119), "119s");
        assert_eq!(fmt_eta(120), "2:00");
        assert_eq!(fmt_eta(3599), "59:59");
    }

    #[test]
    fn silent_mode_counts_without_printing() {
        let p = Progress::new(ProgressMode::Silent, 2);
        let rec = RunRecord {
            key: "k".into(),
            label: "l".into(),
            source: crate::traces::RunSource::Cache,
            ok: true,
            wall_s: 0.0,
            sim_instructions: 0,
            mips: 0.0,
            sim_mips: 0.0,
            sim_s: 0.0,
            decode_mips: 0.0,
            l1i_mpi: 0.0,
            iv_mpki: 0.0,
            telemetry_events: 0,
        };
        p.on_run(&rec);
        p.on_run(&rec);
        p.finish();
        assert_eq!(p.done.load(Ordering::Relaxed), 2);
        assert_eq!(p.cached.load(Ordering::Relaxed), 2);
        assert_eq!(p.aggregate_sim_mips(), None, "cache hits don't aggregate");
    }

    /// The aggregate is instruction-weighted: a long slow run dominates a
    /// short fast one, matching "total work over total time".
    #[test]
    fn aggregate_sim_mips_weights_by_kernel_seconds() {
        let p = Progress::new(ProgressMode::Silent, 2);
        let mut rec = RunRecord {
            key: "k".into(),
            label: "l".into(),
            source: crate::traces::RunSource::Live,
            ok: true,
            wall_s: 1.0,
            sim_instructions: 1,
            mips: 1.0,
            sim_mips: 100.0,
            sim_s: 1.0,
            decode_mips: 0.0,
            l1i_mpi: 0.0,
            iv_mpki: 0.0,
            telemetry_events: 0,
        };
        p.on_run(&rec);
        rec.sim_mips = 10.0;
        rec.sim_s = 9.0;
        p.on_run(&rec);
        // 100 M-instr in 1 s + 90 M-instr in 9 s = 190 M-instr / 10 s.
        let agg = p.aggregate_sim_mips().unwrap();
        assert!((agg - 19.0).abs() < 1e-9, "{agg}");
    }
}
