//! A hand-rolled FNV-1a 64-bit hash for stable, toolchain-independent
//! cache keys.
//!
//! `std::collections::hash_map::DefaultHasher` documents its algorithm as
//! unspecified and free to change between releases, which silently
//! invalidates every entry in `results/cache/` on a toolchain bump. FNV-1a
//! is fixed for all time, trivial to implement, and plenty for cache-key
//! purposes (keys are content descriptors, not adversarial input).

/// Incremental FNV-1a 64-bit hasher.
#[derive(Debug, Clone)]
pub struct Fnv1a64 {
    state: u64,
}

/// FNV-1a 64-bit offset basis.
const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv1a64 {
    /// A hasher in its initial state.
    pub fn new() -> Fnv1a64 {
        Fnv1a64 {
            state: OFFSET_BASIS,
        }
    }

    /// Absorbs `bytes`.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(PRIME);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a64 {
    fn default() -> Fnv1a64 {
        Fnv1a64::new()
    }
}

/// One-shot FNV-1a of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a64::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published FNV-1a test vectors — the algorithm must never drift,
    /// that is the whole point of using it.
    #[test]
    fn matches_published_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = Fnv1a64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }
}
