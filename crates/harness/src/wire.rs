//! A serde-free, versioned wire encoding for experiment specs.
//!
//! [`RunSpec`] is a rich in-process type (it owns a full `SystemConfig`);
//! the serving path needs something a *client* can author: a small,
//! stable, human-writable description of a run or sweep. [`WireRun`] is
//! that description — a config preset plus the knobs the paper's design
//! space actually sweeps (workload, prefetcher, install policy, limit
//! spec, run windows) — and [`JobSpec`] is a batch of them.
//!
//! Two encodings share one schema version (`ipsim-jobspec v2`):
//!
//! * **JSON** (the HTTP wire format), read back with the hand-rolled
//!   parser from `ipsim-telemetry` — no serde, per the workspace's
//!   vendored-only dependency policy:
//!
//! ```json
//! {"v":2,"runs":[{"config":"cmp4","workload":"mixed",
//!                 "prefetcher":"disc:8192:4","policy":"bypass",
//!                 "warm":2000000,"measure":4000000}]}
//! ```
//!
//! * **TSV** (one run per line, shell-friendly, submitted with
//!   `Content-Type: text/tab-separated-values`):
//!
//! ```text
//! # ipsim-jobspec-tsv v1
//! cmp4<TAB>mixed<TAB>disc:8192:4<TAB>bypass<TAB>-<TAB>2000000<TAB>4000000
//! ```
//!
//! The prefetcher column is a compact text form shared by both encodings
//! (see [`prefetcher_to_wire`]); `limit` is `-` or any `+`-joined subset
//! of `seq`, `br`, `call`. Every decoder is strict: unknown fields,
//! unknown presets and non-integral numbers are errors, not guesses —
//! a daemon must reject malformed jobs at submit time, not discover them
//! mid-queue.
//!
//! **v2** extends v1 in two backward-compatible ways. The JSON
//! `prefetcher` field became *optional* (absent means `none`), and both
//! encodings accept a `zoo:` prefetcher form carrying a registry plan —
//! `zoo:nl+disc:ahead=2` runs the zoo of those schemes with shadow
//! attribution (see `ipsim-prefetch`). Every v1 payload decodes
//! unchanged; a v1-versioned JSON payload that smuggles a `zoo:` form is
//! rejected, since a v1 producer could never have written one.

use ipsim_cache::InstallPolicy;
use ipsim_core::PrefetcherKind;
use ipsim_cpu::{LimitSpec, WorkloadSet};
use ipsim_prefetch::ZooPlan;
use ipsim_telemetry::json::{self, Json};
use ipsim_trace::Workload;
use ipsim_types::SystemConfig;

use crate::spec::RunSpec;
use crate::RunLengths;

/// Wire-schema version written by every JSON encoder.
pub const WIRE_VERSION: u32 = 2;

/// Oldest wire-schema version decoders still accept.
pub const MIN_WIRE_VERSION: u32 = 1;

/// Header line of the TSV encoding.
pub const TSV_HEADER: &str = "# ipsim-jobspec-tsv v2";

/// The v1 TSV header, still accepted on decode.
pub const TSV_HEADER_V1: &str = "# ipsim-jobspec-tsv v1";

/// Maximum runs accepted in one job spec (a submit-time sanity bound; a
/// bigger sweep is many jobs).
pub const MAX_RUNS_PER_JOB: usize = 256;

/// The system-config presets a wire spec can name.
///
/// `cmpN` (N = 2..=16) builds the paper's CMP memory system with N cores;
/// `cmp4` is the paper's default and `single_core` the uniprocessor
/// baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigPreset {
    /// Core count; 1 selects the single-core memory system.
    pub n_cores: u32,
}

impl ConfigPreset {
    /// Parses `single_core` | `cmp4` | `cmpN`.
    pub fn parse(name: &str) -> Result<ConfigPreset, String> {
        match name {
            "single_core" => Ok(ConfigPreset { n_cores: 1 }),
            _ => {
                let n = name
                    .strip_prefix("cmp")
                    .and_then(|n| n.parse::<u32>().ok())
                    .filter(|n| (2..=16).contains(n))
                    .ok_or_else(|| {
                        format!("unknown config preset `{name}` (expected single_core|cmp2..cmp16)")
                    })?;
                Ok(ConfigPreset { n_cores: n })
            }
        }
    }

    /// The canonical wire name.
    pub fn name(&self) -> String {
        if self.n_cores == 1 {
            "single_core".to_string()
        } else {
            format!("cmp{}", self.n_cores)
        }
    }

    /// Builds the concrete system configuration.
    pub fn to_config(self) -> SystemConfig {
        if self.n_cores == 1 {
            SystemConfig::single_core()
        } else {
            let mut config = SystemConfig::cmp4();
            config.n_cores = self.n_cores;
            config
        }
    }

    /// Recognises a `SystemConfig` produced by [`ConfigPreset::to_config`]
    /// (the encode direction). `None` for configs that did not come from a
    /// preset — those are not wire-expressible.
    pub fn from_config(config: &SystemConfig) -> Option<ConfigPreset> {
        let preset = ConfigPreset {
            n_cores: config.n_cores,
        };
        if &preset.to_config() == config {
            Some(preset)
        } else {
            None
        }
    }
}

/// One wire-expressible run: a config preset plus the swept knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRun {
    /// System preset.
    pub config: ConfigPreset,
    /// Workload name (`db`|`tpcw`|`japp`|`web`|`mixed`).
    pub workload: String,
    /// Per-core prefetcher (ignored when `zoo` is set).
    pub prefetcher: PrefetcherKind,
    /// Optional prefetcher-zoo plan (the `zoo:` wire form, v2+).
    pub zoo: Option<ZooPlan>,
    /// L2 install policy.
    pub policy: InstallPolicy,
    /// Optional limit-study spec.
    pub limit: Option<LimitSpec>,
    /// Warm-up instructions per core.
    pub warm: u64,
    /// Measured instructions per core.
    pub measure: u64,
}

impl WireRun {
    /// Lowers to the executable in-process spec.
    pub fn to_run_spec(&self) -> Result<RunSpec, String> {
        let workloads = parse_workload_set(&self.workload)?;
        let lengths = RunLengths {
            warm: self.warm,
            measure: self.measure,
        };
        let mut spec = RunSpec::new(self.config.to_config(), workloads, lengths)
            .prefetcher(self.prefetcher)
            .policy(self.policy);
        if let Some(plan) = &self.zoo {
            spec = spec.zoo(plan.clone());
        }
        if let Some(limit) = self.limit {
            spec = spec.limit(limit);
        }
        Ok(spec)
    }

    /// Lifts an in-process spec back onto the wire. `None` when the spec
    /// uses a non-preset config or non-default workload seeds (such specs
    /// exist only inside the process and cannot be re-submitted).
    pub fn from_run_spec(spec: &RunSpec) -> Option<WireRun> {
        let config = ConfigPreset::from_config(&spec.config)?;
        let default = WorkloadSet::homogeneous(Workload::Db);
        if spec.workloads.program_seed != default.program_seed
            || spec.workloads.walker_seed != default.walker_seed
        {
            return None;
        }
        let workload = if spec.workloads.per_core.len() == 1 {
            workload_wire_name(spec.workloads.per_core[0]).to_string()
        } else if spec.workloads == WorkloadSet::mixed() {
            "mixed".to_string()
        } else {
            return None;
        };
        Some(WireRun {
            config,
            workload,
            prefetcher: spec.prefetcher,
            zoo: spec.zoo.clone(),
            policy: spec.policy,
            limit: spec.limit,
            warm: spec.lengths.warm,
            measure: spec.lengths.measure,
        })
    }

    /// The prefetcher column value: the zoo form when a plan is set,
    /// else the compact [`prefetcher_to_wire`] form.
    fn prefetcher_column(&self) -> String {
        match &self.zoo {
            Some(plan) => format!("zoo:{}", plan.canonical()),
            None => prefetcher_to_wire(self.prefetcher),
        }
    }

    /// One JSON object (no surrounding whitespace).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"config\":\"{}\",\"workload\":\"{}\",\"prefetcher\":\"{}\",\"policy\":\"{}\"",
            self.config.name(),
            self.workload,
            self.prefetcher_column(),
            policy_to_wire(self.policy),
        );
        if let Some(limit) = self.limit {
            out.push_str(&format!(",\"limit\":\"{}\"", limit_to_wire(limit)));
        }
        out.push_str(&format!(
            ",\"warm\":{},\"measure\":{}}}",
            self.warm, self.measure
        ));
        out
    }

    /// One TSV line (no trailing newline).
    pub fn to_tsv(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}",
            self.config.name(),
            self.workload,
            self.prefetcher_column(),
            policy_to_wire(self.policy),
            self.limit.map_or_else(|| "-".to_string(), limit_to_wire),
            self.warm,
            self.measure,
        )
    }

    /// Parses one TSV line.
    pub fn from_tsv(line: &str) -> Result<WireRun, String> {
        let parts: Vec<&str> = line.trim_end().split('\t').collect();
        if parts.len() != 7 {
            return Err(format!(
                "expected 7 tab-separated fields (config workload prefetcher policy limit warm measure), got {}",
                parts.len()
            ));
        }
        let (prefetcher, zoo) = prefetcher_column_from_wire(parts[2])?;
        Ok(WireRun {
            config: ConfigPreset::parse(parts[0])?,
            workload: parse_workload_name(parts[1])?,
            prefetcher,
            zoo,
            policy: policy_from_wire(parts[3])?,
            limit: limit_from_wire(parts[4])?,
            warm: parse_window(parts[5], "warm")?,
            measure: parse_window(parts[6], "measure")?,
        })
    }

    /// Parses one JSON object (already parsed into a [`Json`] value).
    pub fn from_json_value(value: &Json) -> Result<WireRun, String> {
        let Json::Obj(fields) = value else {
            return Err("each run must be a JSON object".to_string());
        };
        for (key, _) in fields {
            if !matches!(
                key.as_str(),
                "config" | "workload" | "prefetcher" | "policy" | "limit" | "warm" | "measure"
            ) {
                return Err(format!("unknown run field `{key}`"));
            }
        }
        let str_field = |name: &str| -> Result<&str, String> {
            value
                .get(name)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("run field `{name}` must be a string"))
        };
        let int_field = |name: &str| -> Result<u64, String> {
            let n = value
                .get(name)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("run field `{name}` must be a number"))?;
            if n.fract() != 0.0 || !(0.0..=9e15).contains(&n) {
                return Err(format!("run field `{name}` must be a non-negative integer"));
            }
            Ok(n as u64)
        };
        let limit = match value.get("limit") {
            None | Some(Json::Null) => None,
            Some(Json::Str(s)) => limit_from_wire(s)?,
            Some(_) => return Err("run field `limit` must be a string".to_string()),
        };
        // v2: `prefetcher` is optional; absent means no prefetcher.
        let (prefetcher, zoo) = match value.get("prefetcher") {
            None | Some(Json::Null) => (PrefetcherKind::None, None),
            Some(Json::Str(s)) => prefetcher_column_from_wire(s)?,
            Some(_) => return Err("run field `prefetcher` must be a string".to_string()),
        };
        Ok(WireRun {
            config: ConfigPreset::parse(str_field("config")?)?,
            workload: parse_workload_name(str_field("workload")?)?,
            prefetcher,
            zoo,
            policy: policy_from_wire(str_field("policy")?)?,
            limit,
            warm: int_field("warm")?,
            measure: int_field("measure")?,
        })
    }
}

/// A batch of wire runs: the unit of submission (`POST /v1/jobs`).
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The runs, in submission order.
    pub runs: Vec<WireRun>,
}

impl JobSpec {
    /// Wraps runs, enforcing the per-job bounds.
    pub fn new(runs: Vec<WireRun>) -> Result<JobSpec, String> {
        if runs.is_empty() {
            return Err("a job needs at least one run".to_string());
        }
        if runs.len() > MAX_RUNS_PER_JOB {
            return Err(format!(
                "a job is limited to {MAX_RUNS_PER_JOB} runs, got {}",
                runs.len()
            ));
        }
        Ok(JobSpec { runs })
    }

    /// The canonical JSON document.
    pub fn to_json(&self) -> String {
        let runs: Vec<String> = self.runs.iter().map(WireRun::to_json).collect();
        format!("{{\"v\":{WIRE_VERSION},\"runs\":[{}]}}", runs.join(","))
    }

    /// The TSV document (header + one line per run).
    pub fn to_tsv(&self) -> String {
        let mut out = String::from(TSV_HEADER);
        out.push('\n');
        for run in &self.runs {
            out.push_str(&run.to_tsv());
            out.push('\n');
        }
        out
    }

    /// Parses a JSON document.
    pub fn from_json(text: &str) -> Result<JobSpec, String> {
        let value = json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        JobSpec::from_json_value(&value)
    }

    /// Parses an already-parsed JSON value (used when the spec is nested
    /// inside another document, e.g. a journal record).
    pub fn from_json_value(value: &Json) -> Result<JobSpec, String> {
        let Json::Obj(fields) = value else {
            return Err("job spec must be a JSON object".to_string());
        };
        for (key, _) in fields {
            if !matches!(key.as_str(), "v" | "runs") {
                return Err(format!("unknown job field `{key}`"));
            }
        }
        let version = match value.get("v").and_then(Json::as_num) {
            Some(v) if (f64::from(MIN_WIRE_VERSION)..=f64::from(WIRE_VERSION)).contains(&v) => {
                v as u32
            }
            Some(v) => return Err(format!("unsupported job-spec version {v}")),
            None => return Err("job spec must carry a numeric `v` field".to_string()),
        };
        let runs = value
            .get("runs")
            .and_then(Json::as_arr)
            .ok_or_else(|| "job spec must carry a `runs` array".to_string())?;
        let runs = runs
            .iter()
            .map(WireRun::from_json_value)
            .collect::<Result<Vec<_>, _>>()?;
        reject_v2_features(version, &runs)?;
        JobSpec::new(runs)
    }

    /// Parses a TSV document (header line required; both the current and
    /// the v1 header are accepted).
    pub fn from_tsv(text: &str) -> Result<JobSpec, String> {
        let mut lines = text.lines();
        let version = match lines.next().map(str::trim_end) {
            Some(TSV_HEADER) => WIRE_VERSION,
            Some(TSV_HEADER_V1) => 1,
            _ => return Err(format!("first line must be `{TSV_HEADER}`")),
        };
        let runs = lines
            .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
            .map(WireRun::from_tsv)
            .collect::<Result<Vec<_>, _>>()?;
        reject_v2_features(version, &runs)?;
        JobSpec::new(runs)
    }

    /// Lowers every run to an executable [`RunSpec`].
    pub fn to_run_specs(&self) -> Result<Vec<RunSpec>, String> {
        self.runs.iter().map(WireRun::to_run_spec).collect()
    }
}

/// Rejects runs using v2-only wire features under a v1 version tag: a
/// v1 producer could never have written them, so their presence means a
/// mislabelled payload, not an old one.
fn reject_v2_features(version: u32, runs: &[WireRun]) -> Result<(), String> {
    if version < 2 {
        if let Some(run) = runs.iter().find(|r| r.zoo.is_some()) {
            return Err(format!(
                "`zoo:` prefetchers need job-spec v2, got v{version} (run {})",
                run.to_tsv()
            ));
        }
    }
    Ok(())
}

/// Parses the full prefetcher column: either a compact
/// [`prefetcher_from_wire`] form or a `zoo:` plan.
fn prefetcher_column_from_wire(text: &str) -> Result<(PrefetcherKind, Option<ZooPlan>), String> {
    match text.strip_prefix("zoo:") {
        Some(plan) => {
            let plan = ZooPlan::parse(plan).map_err(|e| format!("zoo prefetcher: {e}"))?;
            Ok((PrefetcherKind::None, Some(plan)))
        }
        None => Ok((prefetcher_from_wire(text)?, None)),
    }
}

/// The compact prefetcher text form, shared by both encodings:
///
/// `none` | `nl_always` | `nl_miss` | `nl_tagged` | `nnl:N` |
/// `lookahead:N` | `disc:T:A` | `disc_gated:T:A:C` | `target:T` |
/// `wrong_path` | `wrong_path+nl` | `markov:T:A`
pub fn prefetcher_to_wire(kind: PrefetcherKind) -> String {
    match kind {
        PrefetcherKind::None => "none".to_string(),
        PrefetcherKind::NextLineAlways => "nl_always".to_string(),
        PrefetcherKind::NextLineOnMiss => "nl_miss".to_string(),
        PrefetcherKind::NextLineTagged => "nl_tagged".to_string(),
        PrefetcherKind::NextNLineTagged { n } => format!("nnl:{n}"),
        PrefetcherKind::Lookahead { n } => format!("lookahead:{n}"),
        PrefetcherKind::Discontinuity {
            table_entries,
            ahead,
        } => format!("disc:{table_entries}:{ahead}"),
        PrefetcherKind::DiscontinuityGated {
            table_entries,
            ahead,
            min_confidence,
        } => format!("disc_gated:{table_entries}:{ahead}:{min_confidence}"),
        PrefetcherKind::Target { table_entries } => format!("target:{table_entries}"),
        PrefetcherKind::WrongPath { next_line } => if next_line {
            "wrong_path+nl"
        } else {
            "wrong_path"
        }
        .to_string(),
        PrefetcherKind::Markov {
            table_entries,
            ahead,
        } => format!("markov:{table_entries}:{ahead}"),
    }
}

/// Parses the compact prefetcher form (see [`prefetcher_to_wire`]).
pub fn prefetcher_from_wire(text: &str) -> Result<PrefetcherKind, String> {
    let mut parts = text.split(':');
    let head = parts.next().unwrap_or("");
    let args: Vec<&str> = parts.collect();
    let arity = |n: usize| -> Result<(), String> {
        if args.len() == n {
            Ok(())
        } else {
            Err(format!(
                "prefetcher `{head}` takes {n} `:`-argument(s), got {}",
                args.len()
            ))
        }
    };
    let num = |i: usize, what: &str| -> Result<u64, String> {
        args[i]
            .parse::<u64>()
            .ok()
            .filter(|v| *v >= 1)
            .ok_or_else(|| format!("prefetcher `{head}`: {what} must be a positive integer"))
    };
    match head {
        "none" => {
            arity(0)?;
            Ok(PrefetcherKind::None)
        }
        "nl_always" => {
            arity(0)?;
            Ok(PrefetcherKind::NextLineAlways)
        }
        "nl_miss" => {
            arity(0)?;
            Ok(PrefetcherKind::NextLineOnMiss)
        }
        "nl_tagged" => {
            arity(0)?;
            Ok(PrefetcherKind::NextLineTagged)
        }
        "nnl" => {
            arity(1)?;
            Ok(PrefetcherKind::NextNLineTagged {
                n: num(0, "distance")? as u32,
            })
        }
        "lookahead" => {
            arity(1)?;
            Ok(PrefetcherKind::Lookahead {
                n: num(0, "distance")? as u32,
            })
        }
        "disc" => {
            arity(2)?;
            Ok(PrefetcherKind::Discontinuity {
                table_entries: num(0, "table entries")? as usize,
                ahead: num(1, "ahead")? as u32,
            })
        }
        "disc_gated" => {
            arity(3)?;
            Ok(PrefetcherKind::DiscontinuityGated {
                table_entries: num(0, "table entries")? as usize,
                ahead: num(1, "ahead")? as u32,
                min_confidence: num(2, "confidence")?.min(255) as u8,
            })
        }
        "target" => {
            arity(1)?;
            Ok(PrefetcherKind::Target {
                table_entries: num(0, "table entries")? as usize,
            })
        }
        "wrong_path" => {
            arity(0)?;
            Ok(PrefetcherKind::WrongPath { next_line: false })
        }
        "wrong_path+nl" => {
            arity(0)?;
            Ok(PrefetcherKind::WrongPath { next_line: true })
        }
        "markov" => {
            arity(2)?;
            Ok(PrefetcherKind::Markov {
                table_entries: num(0, "table entries")? as usize,
                ahead: num(1, "ahead")? as u32,
            })
        }
        _ => Err(format!("unknown prefetcher `{text}`")),
    }
}

/// `install_both` | `bypass`.
pub fn policy_to_wire(policy: InstallPolicy) -> &'static str {
    match policy {
        InstallPolicy::InstallBoth => "install_both",
        InstallPolicy::BypassL2UntilUseful => "bypass",
    }
}

/// Parses [`policy_to_wire`]'s output.
pub fn policy_from_wire(text: &str) -> Result<InstallPolicy, String> {
    match text {
        "install_both" => Ok(InstallPolicy::InstallBoth),
        "bypass" => Ok(InstallPolicy::BypassL2UntilUseful),
        _ => Err(format!(
            "unknown policy `{text}` (expected install_both|bypass)"
        )),
    }
}

/// `-` for no limit, else a `+`-joined subset of `seq`, `br`, `call`.
pub fn limit_to_wire(limit: LimitSpec) -> String {
    let mut parts = Vec::new();
    if limit.sequential {
        parts.push("seq");
    }
    if limit.branch {
        parts.push("br");
    }
    if limit.function_call {
        parts.push("call");
    }
    if parts.is_empty() {
        "-".to_string()
    } else {
        parts.join("+")
    }
}

/// Parses [`limit_to_wire`]'s output; `-` and the empty set give `None`.
pub fn limit_from_wire(text: &str) -> Result<Option<LimitSpec>, String> {
    if text == "-" {
        return Ok(None);
    }
    let mut limit = LimitSpec {
        sequential: false,
        branch: false,
        function_call: false,
    };
    for part in text.split('+') {
        match part {
            "seq" => limit.sequential = true,
            "br" => limit.branch = true,
            "call" => limit.function_call = true,
            _ => {
                return Err(format!(
                    "unknown limit component `{part}` (expected seq|br|call, `+`-joined, or `-`)"
                ))
            }
        }
    }
    Ok(Some(limit))
}

/// The wire name of one workload.
fn workload_wire_name(w: Workload) -> &'static str {
    match w {
        Workload::Db => "db",
        Workload::TpcW => "tpcw",
        Workload::JApp => "japp",
        Workload::Web => "web",
    }
}

/// Validates and canonicalises a workload name.
fn parse_workload_name(text: &str) -> Result<String, String> {
    match text {
        "db" | "tpcw" | "japp" | "web" | "mixed" => Ok(text.to_string()),
        _ => Err(format!(
            "unknown workload `{text}` (expected db|tpcw|japp|web|mixed)"
        )),
    }
}

/// Builds the workload set a canonical name denotes.
fn parse_workload_set(name: &str) -> Result<WorkloadSet, String> {
    Ok(match name {
        "db" => WorkloadSet::homogeneous(Workload::Db),
        "tpcw" => WorkloadSet::homogeneous(Workload::TpcW),
        "japp" => WorkloadSet::homogeneous(Workload::JApp),
        "web" => WorkloadSet::homogeneous(Workload::Web),
        "mixed" => WorkloadSet::mixed(),
        _ => return Err(format!("unknown workload `{name}`")),
    })
}

/// Parses a run window, bounding it so a malicious submit cannot queue a
/// multi-year simulation (the full paper windows are 10M/20M).
fn parse_window(text: &str, what: &str) -> Result<u64, String> {
    const MAX_WINDOW: u64 = 1_000_000_000;
    let v = text
        .parse::<u64>()
        .map_err(|_| format!("{what} must be a non-negative integer"))?;
    if v > MAX_WINDOW {
        return Err(format!("{what} must be at most {MAX_WINDOW}"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_runs() -> Vec<WireRun> {
        vec![
            WireRun {
                config: ConfigPreset { n_cores: 1 },
                workload: "db".to_string(),
                prefetcher: PrefetcherKind::None,
                zoo: None,
                policy: InstallPolicy::InstallBoth,
                limit: None,
                warm: 1000,
                measure: 2000,
            },
            WireRun {
                config: ConfigPreset { n_cores: 4 },
                workload: "mixed".to_string(),
                prefetcher: PrefetcherKind::Discontinuity {
                    table_entries: 8192,
                    ahead: 4,
                },
                zoo: None,
                policy: InstallPolicy::BypassL2UntilUseful,
                limit: Some(LimitSpec {
                    sequential: true,
                    branch: false,
                    function_call: true,
                }),
                warm: 5000,
                measure: 10000,
            },
            WireRun {
                config: ConfigPreset { n_cores: 1 },
                workload: "web".to_string(),
                prefetcher: PrefetcherKind::None,
                zoo: Some(ZooPlan::parse("nl+disc:ahead=2+mana").unwrap()),
                policy: InstallPolicy::InstallBoth,
                limit: None,
                warm: 1000,
                measure: 2000,
            },
        ]
    }

    #[test]
    fn json_round_trips() {
        let spec = JobSpec::new(sample_runs()).unwrap();
        let text = spec.to_json();
        let back = JobSpec::from_json(&text).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn tsv_round_trips() {
        let spec = JobSpec::new(sample_runs()).unwrap();
        let text = spec.to_tsv();
        let back = JobSpec::from_tsv(&text).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn every_prefetcher_kind_round_trips() {
        let kinds = [
            PrefetcherKind::None,
            PrefetcherKind::NextLineAlways,
            PrefetcherKind::NextLineOnMiss,
            PrefetcherKind::NextLineTagged,
            PrefetcherKind::NextNLineTagged { n: 4 },
            PrefetcherKind::Lookahead { n: 7 },
            PrefetcherKind::Discontinuity {
                table_entries: 8192,
                ahead: 4,
            },
            PrefetcherKind::DiscontinuityGated {
                table_entries: 1024,
                ahead: 2,
                min_confidence: 3,
            },
            PrefetcherKind::Target {
                table_entries: 2048,
            },
            PrefetcherKind::WrongPath { next_line: false },
            PrefetcherKind::WrongPath { next_line: true },
            PrefetcherKind::Markov {
                table_entries: 4096,
                ahead: 2,
            },
        ];
        for kind in kinds {
            let wire = prefetcher_to_wire(kind);
            assert_eq!(prefetcher_from_wire(&wire), Ok(kind), "{wire}");
        }
    }

    #[test]
    fn run_spec_round_trips_through_the_wire() {
        for wire in sample_runs() {
            let spec = wire.to_run_spec().unwrap();
            let back = WireRun::from_run_spec(&spec).unwrap();
            assert_eq!(wire, back);
            // Same cache key after a full wire round trip: the serving
            // dedup layer depends on this.
            assert_eq!(spec.cache_key(), back.to_run_spec().unwrap().cache_key());
        }
    }

    #[test]
    fn v1_payloads_still_decode() {
        // A JSON document exactly as a v1 producer would have written it.
        let v1 = "{\"v\":1,\"runs\":[{\"config\":\"cmp4\",\"workload\":\"mixed\",\
                  \"prefetcher\":\"disc:8192:4\",\"policy\":\"bypass\",\
                  \"warm\":5000,\"measure\":10000}]}";
        let spec = JobSpec::from_json(v1).unwrap();
        assert_eq!(spec.runs[0].zoo, None);
        assert_eq!(
            spec.runs[0].prefetcher,
            PrefetcherKind::Discontinuity {
                table_entries: 8192,
                ahead: 4
            }
        );
        // A v1 TSV document under the old header.
        let tsv = format!("{TSV_HEADER_V1}\ncmp4\tdb\tnone\tinstall_both\t-\t1\t2\n");
        assert_eq!(JobSpec::from_tsv(&tsv).unwrap().runs.len(), 1);
    }

    #[test]
    fn prefetcher_field_is_optional_in_v2() {
        let spec = JobSpec::from_json(
            "{\"v\":2,\"runs\":[{\"config\":\"single_core\",\"workload\":\"db\",\
             \"policy\":\"install_both\",\"warm\":10,\"measure\":20}]}",
        )
        .unwrap();
        assert_eq!(spec.runs[0].prefetcher, PrefetcherKind::None);
        assert_eq!(spec.runs[0].zoo, None);
    }

    #[test]
    fn zoo_plans_ride_the_wire_canonically() {
        let spec = JobSpec::new(sample_runs()).unwrap();
        let json = spec.to_json();
        assert!(json.contains("\"zoo:nl+disc:ahead=2+mana\""), "{json}");
        assert_eq!(JobSpec::from_json(&json).unwrap(), spec);
        let run_spec = spec.runs[2].to_run_spec().unwrap();
        assert_eq!(
            run_spec.zoo,
            Some(ZooPlan::parse("nl+disc:ahead=2+mana").unwrap())
        );
        // Non-canonical knob order canonicalises on decode → same key.
        let (_, messy) = prefetcher_column_from_wire("zoo:nl+disc:ahead=2+mana:degree=8").unwrap();
        assert_eq!(messy.unwrap().canonical(), "nl+disc:ahead=2+mana:degree=8");
    }

    #[test]
    fn zoo_forms_are_rejected_under_v1() {
        let v1_json = "{\"v\":1,\"runs\":[{\"config\":\"single_core\",\"workload\":\"db\",\
                       \"prefetcher\":\"zoo:nl+disc\",\"policy\":\"install_both\",\
                       \"warm\":10,\"measure\":20}]}";
        let err = JobSpec::from_json(v1_json).unwrap_err();
        assert!(err.contains("need job-spec v2"), "{err}");
        let v1_tsv =
            format!("{TSV_HEADER_V1}\nsingle_core\tdb\tzoo:nl+disc\tinstall_both\t-\t10\t20\n");
        assert!(JobSpec::from_tsv(&v1_tsv).is_err());
    }

    #[test]
    fn decoders_are_strict() {
        assert!(JobSpec::from_json("{}").is_err());
        assert!(JobSpec::from_json("{\"v\":1,\"runs\":[]}").is_err());
        assert!(JobSpec::from_json("{\"v\":3,\"runs\":[{}]}").is_err());
        assert!(JobSpec::from_json("{\"v\":2,\"runs\":[{}]}").is_err());
        // Zoo plans are validated against the scheme registry on decode.
        assert!(prefetcher_column_from_wire("zoo:warp").is_err());
        assert!(prefetcher_column_from_wire("zoo:nl:mode=9").is_err());
        assert!(prefetcher_column_from_wire("zoo:").is_err());
        assert!(JobSpec::from_json("{\"v\":1,\"runs\":[{\"config\":\"cmp4\"}]}").is_err());
        // Unknown fields are rejected, not ignored.
        let mut ok = JobSpec::new(sample_runs()).unwrap().to_json();
        ok = ok.replacen("\"config\"", "\"confg\"", 1);
        assert!(JobSpec::from_json(&ok).is_err());
        // Absurd windows are rejected at the door.
        assert!(WireRun::from_tsv("cmp4\tdb\tnone\tinstall_both\t-\t1\t9999999999999").is_err());
        // Bad TSV header.
        assert!(JobSpec::from_tsv("cmp4\tdb\tnone\tinstall_both\t-\t1\t2\n").is_err());
        assert!(prefetcher_from_wire("disc:8192").is_err());
        assert!(prefetcher_from_wire("warp").is_err());
        assert!(policy_from_wire("both").is_err());
        assert!(limit_from_wire("seq+wat").is_err());
    }

    #[test]
    fn preset_names_round_trip() {
        for name in ["single_core", "cmp2", "cmp4", "cmp16"] {
            let preset = ConfigPreset::parse(name).unwrap();
            assert_eq!(preset.name(), name);
            assert_eq!(ConfigPreset::from_config(&preset.to_config()), Some(preset));
        }
        assert!(ConfigPreset::parse("cmp1").is_err());
        assert!(ConfigPreset::parse("cmp17").is_err());
        assert!(ConfigPreset::parse("mega").is_err());
    }
}
