//! The sweep orchestrator: collect every figure's jobs, dedup globally,
//! execute once across the pool, then render and report per figure.
//!
//! With the trace store enabled, execution is two-phased: for each
//! distinct instruction stream ([`RunSpec::trace_key`]) the first spec
//! needing it — its *captain* — runs in phase one and captures the stream
//! to disk; every other spec sharing it runs in phase two and replays.
//! Walker generation therefore happens once per workload stream per
//! sweep, no matter how many configurations share it.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::time::Duration;

use ipsim_telemetry::TelemetryConfig;

use crate::cache::RunCache;
use crate::figure::Figure;
use crate::pool::{self, ExecReport};
use crate::progress::{Progress, ProgressMode};
use crate::runlog;
use crate::spec::RunSpec;
use crate::summary::Summary;
use crate::telemetry::TelemetrySink;
use crate::traces::TraceStore;
use crate::RunLengths;

/// How a sweep should run.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Warm-up / measurement windows passed to every figure.
    pub lengths: RunLengths,
    /// Worker threads for the pool.
    pub workers: usize,
    /// When set, each figure's output is also written to
    /// `<dir>/<name>.txt`.
    pub results_dir: Option<PathBuf>,
    /// Cache directory; `None` uses `$IPSIM_CACHE_DIR` / the default.
    pub cache_dir: Option<PathBuf>,
    /// Run-log path; `None` uses `$IPSIM_RUNLOG` / the default.
    pub runlog: Option<PathBuf>,
    /// Trace-store directory; `None` uses `$IPSIM_TRACE_DIR` / the
    /// default. Ignored when `traces` is false.
    pub trace_dir: Option<PathBuf>,
    /// Whether to capture/replay instruction streams at all.
    pub traces: bool,
    /// When set, every executed run collects telemetry with this config
    /// and writes a per-run artifact directory (see [`TelemetrySink`]).
    /// Telemetry never affects summaries, figures or cache keys.
    pub telemetry: Option<TelemetryConfig>,
    /// Telemetry artifact root; `None` uses `$IPSIM_TELEMETRY_DIR` / the
    /// default. Ignored when `telemetry` is `None`.
    pub telemetry_dir: Option<PathBuf>,
    /// Progress reporting mode.
    pub progress: ProgressMode,
}

impl SweepOptions {
    /// Defaults for interactive use: env-resolved cache, run log and trace
    /// store, auto progress, no result files.
    pub fn new(lengths: RunLengths, workers: usize) -> SweepOptions {
        SweepOptions {
            lengths,
            workers,
            results_dir: None,
            cache_dir: None,
            runlog: None,
            trace_dir: None,
            traces: true,
            telemetry: None,
            telemetry_dir: None,
            progress: ProgressMode::Auto,
        }
    }

    /// The trace store these options select.
    fn trace_store(&self) -> TraceStore {
        if !self.traces {
            return TraceStore::disabled();
        }
        match &self.trace_dir {
            Some(dir) => TraceStore::at(dir.clone()),
            None => TraceStore::from_env(),
        }
    }

    /// The telemetry sink these options select, if any.
    fn telemetry_sink(&self) -> Option<TelemetrySink> {
        let config = self.telemetry.clone()?;
        Some(match &self.telemetry_dir {
            Some(dir) => TelemetrySink::at(dir.clone(), config),
            None => TelemetrySink::from_env(config),
        })
    }
}

/// One figure's outcome within a sweep.
#[derive(Debug)]
pub struct FigureReport {
    /// Figure name (`fig01`…).
    pub name: &'static str,
    /// Figure title.
    pub title: &'static str,
    /// Rendered output, or the failure reason.
    pub outcome: Result<String, String>,
}

/// Everything a sweep did, for reporting and tests.
#[derive(Debug)]
pub struct SweepReport {
    /// Per-figure outcomes, in input order.
    pub figures: Vec<FigureReport>,
    /// Jobs requested across all figures, before dedup.
    pub total_jobs: usize,
    /// Unique jobs after global dedup by cache key.
    pub unique_jobs: usize,
    /// Disk-cache hits.
    pub cache_hits: u64,
    /// Disk-cache misses (simulated this sweep).
    pub cache_misses: u64,
    /// Corrupt cache entries quarantined.
    pub quarantined: u64,
    /// Workload streams captured to the trace store.
    pub traces_captured: u64,
    /// Runs whose instruction streams were replayed from the trace store.
    pub traces_replayed: u64,
    /// Corrupt trace files quarantined.
    pub traces_quarantined: u64,
    /// Telemetry artifact directories written this sweep.
    pub telemetry_written: u64,
    /// Sweep-aggregate kernel throughput: total measured instructions over
    /// total kernel seconds across executed runs (`None` when everything
    /// came from the cache). Weighted by per-run kernel seconds, so long
    /// runs count proportionally.
    pub aggregate_sim_mips: Option<f64>,
    /// Wall time of the execution phase.
    pub wall: Duration,
    /// Whether a shutdown signal (Ctrl-C / SIGTERM) cut execution short.
    /// In-flight runs were completed and the runlog tail was flushed;
    /// figures whose runs are incomplete report errors rather than
    /// rendering from partial data. Callers should exit with code 130.
    pub interrupted: bool,
}

impl SweepReport {
    /// Whether every figure rendered successfully.
    pub fn all_ok(&self) -> bool {
        self.figures.iter().all(|f| f.outcome.is_ok())
    }
}

/// Runs `figures` end to end: enumerate, dedup, execute, render, persist.
///
/// Figure failures (enumeration panic, simulation panic, render panic) are
/// contained per figure; the sweep always completes and the report carries
/// each failure. Worker count never affects any rendered byte.
pub fn run_sweep(figures: &[Figure], opts: &SweepOptions) -> SweepReport {
    // Phase 1: enumerate every figure's jobs.
    let planned: Vec<Result<Vec<RunSpec>, String>> =
        figures.iter().map(|f| f.jobs(opts.lengths)).collect();
    let total_jobs: usize = planned.iter().map(|p| p.as_ref().map_or(0, Vec::len)).sum();

    // Phase 2: global dedup by cache key, preserving first-seen order so
    // scheduling (and thus the progress display) is deterministic.
    let mut seen = HashSet::new();
    let mut unique: Vec<RunSpec> = Vec::new();
    for spec in planned.iter().flatten().flatten() {
        if seen.insert(spec.cache_key()) {
            unique.push(spec.clone());
        }
    }

    // Phase 3: execute unique runs across the pool, captains first (see
    // module docs) so every stream is captured before anyone replays it.
    let cache = match &opts.cache_dir {
        Some(dir) => RunCache::at(dir.clone()),
        None => RunCache::from_env(),
    };
    let traces = opts.trace_store();
    let telemetry = opts.telemetry_sink();
    let progress = Progress::new(opts.progress, unique.len());
    let exec = execute_phased(
        &unique,
        opts.workers,
        &cache,
        &traces,
        telemetry.as_ref(),
        &progress,
    );
    progress.finish();

    // Phase 4: observability — append to the run log. Failure to log is
    // not failure to sweep.
    let runlog_path = opts
        .runlog
        .clone()
        .unwrap_or_else(runlog::runlog_path_from_env);
    if let Err(e) = runlog::append(&runlog_path, opts.workers, &exec.records) {
        eprintln!("warning: could not append {}: {e}", runlog_path.display());
    }

    // Phase 5: render each figure sequentially and persist its output.
    let interrupted = exec.interrupted;
    let resolve = |spec: &RunSpec| -> Result<Summary, String> {
        match exec.results.get(&spec.cache_key()) {
            Some(Ok(summary)) => Ok(summary.clone()),
            Some(Err(e)) => Err(format!("run `{}` failed: {e}", spec.label())),
            None if interrupted => Err(format!(
                "run `{}` was skipped: sweep interrupted",
                spec.label()
            )),
            None => Err(format!(
                "run `{}` was never scheduled (nondeterministic job enumeration?)",
                spec.label()
            )),
        }
    };
    let mut reports = Vec::with_capacity(figures.len());
    for (figure, plan) in figures.iter().zip(planned) {
        let outcome = match plan {
            Err(e) => Err(e),
            Ok(_) => figure.output(opts.lengths, &resolve),
        };
        if let (Some(dir), Ok(text)) = (&opts.results_dir, &outcome) {
            let path = dir.join(format!("{}.txt", figure.name));
            let write =
                std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, text.as_bytes()));
            if let Err(e) = write {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
        reports.push(FigureReport {
            name: figure.name,
            title: figure.title,
            outcome,
        });
    }

    SweepReport {
        figures: reports,
        total_jobs,
        unique_jobs: unique.len(),
        cache_hits: cache.hits(),
        cache_misses: cache.misses(),
        quarantined: cache.quarantined(),
        traces_captured: traces.captured(),
        traces_replayed: traces.replayed(),
        traces_quarantined: traces.quarantined(),
        telemetry_written: telemetry.as_ref().map_or(0, TelemetrySink::written),
        aggregate_sim_mips: progress.aggregate_sim_mips(),
        wall: exec.wall,
        interrupted,
    }
}

/// Executes `unique` with captains-first scheduling when the trace store
/// is live: the first spec per trace key runs (and captures) in phase
/// one, the rest replay in phase two. Records are re-ordered to match the
/// input, so phasing is invisible everywhere downstream.
fn execute_phased(
    unique: &[RunSpec],
    workers: usize,
    cache: &RunCache,
    traces: &TraceStore,
    telemetry: Option<&TelemetrySink>,
    progress: &Progress,
) -> ExecReport {
    let mut captains: Vec<RunSpec> = Vec::new();
    let mut followers: Vec<RunSpec> = Vec::new();
    if traces.enabled() {
        let mut streams = HashSet::new();
        for spec in unique {
            if streams.insert(spec.trace_key()) {
                captains.push(spec.clone());
            } else {
                followers.push(spec.clone());
            }
        }
    }
    if followers.is_empty() {
        // Every spec has its own stream (or the store is off): no phasing.
        return pool::execute(unique, workers, cache, traces, telemetry, progress);
    }
    let first = pool::execute(&captains, workers, cache, traces, telemetry, progress);
    let second = if first.interrupted {
        // Don't start the replay phase after an interrupt; its specs are
        // simply never claimed.
        ExecReport {
            results: HashMap::new(),
            records: Vec::new(),
            wall: Duration::ZERO,
            interrupted: true,
        }
    } else {
        pool::execute(&followers, workers, cache, traces, telemetry, progress)
    };

    let interrupted = first.interrupted || second.interrupted;
    let mut results = first.results;
    results.extend(second.results);
    // Restore input order (first.records ++ second.records is phase
    // order). An interrupted batch is missing the unclaimed specs'
    // records; everything completed is preserved.
    let mut by_key: HashMap<String, crate::runlog::RunRecord> = first
        .records
        .into_iter()
        .chain(second.records)
        .map(|r| (r.key.clone(), r))
        .collect();
    let records: Vec<crate::runlog::RunRecord> = unique
        .iter()
        .filter_map(|spec| by_key.remove(&spec.cache_key()))
        .collect();
    debug_assert!(interrupted || records.len() == unique.len());
    ExecReport {
        results,
        records,
        wall: first.wall + second.wall,
        interrupted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure::Executor;
    use ipsim_cpu::WorkloadSet;
    use ipsim_trace::Workload;
    use ipsim_types::SystemConfig;

    fn render_a(lengths: RunLengths, x: &mut Executor) -> String {
        let spec = RunSpec::new(
            SystemConfig::single_core(),
            WorkloadSet::homogeneous(Workload::Db),
            lengths,
        );
        format!("a {}\n", x(&spec).instructions)
    }

    /// Shares render_a's single job, adds one of its own.
    fn render_b(lengths: RunLengths, x: &mut Executor) -> String {
        let shared = RunSpec::new(
            SystemConfig::single_core(),
            WorkloadSet::homogeneous(Workload::Db),
            lengths,
        );
        let own = RunSpec::new(
            SystemConfig::single_core(),
            WorkloadSet::homogeneous(Workload::Web),
            lengths,
        );
        format!("b {} {}\n", x(&shared).instructions, x(&own).instructions)
    }

    fn render_broken(_: RunLengths, _: &mut Executor) -> String {
        panic!("deliberately broken figure");
    }

    fn opts(tag: &str) -> SweepOptions {
        let base = std::env::temp_dir().join(format!("ipsim-sweep-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        SweepOptions {
            lengths: RunLengths {
                warm: 1_000,
                measure: 2_000,
            },
            workers: 2,
            results_dir: Some(base.join("results")),
            cache_dir: Some(base.join("cache")),
            runlog: Some(base.join("runlog.tsv")),
            trace_dir: Some(base.join("traces")),
            traces: true,
            telemetry: None,
            telemetry_dir: Some(base.join("telemetry")),
            progress: ProgressMode::Silent,
        }
    }

    const FIGS: [Figure; 3] = [
        Figure {
            name: "figa",
            title: "figure a",
            render: render_a,
        },
        Figure {
            name: "figb",
            title: "figure b",
            render: render_b,
        },
        Figure {
            name: "figx",
            title: "broken figure",
            render: render_broken,
        },
    ];

    #[test]
    fn sweep_dedups_contains_failures_and_persists() {
        let opts = opts("main");
        let report = run_sweep(&FIGS, &opts);

        // 3 jobs requested, 2 unique (figa's job is shared with figb).
        assert_eq!(report.total_jobs, 3);
        assert_eq!(report.unique_jobs, 2);
        assert_eq!(report.cache_misses, 2);

        // Two distinct workload streams, both captured, neither replayed
        // (the two unique specs run different workloads).
        assert_eq!(report.traces_captured, 2);
        assert_eq!(report.traces_replayed, 0);
        assert_eq!(report.traces_quarantined, 0);
        assert!(
            report.aggregate_sim_mips.is_some_and(|m| m > 0.0),
            "executed sweeps report aggregate kernel throughput"
        );

        // The broken figure failed; the others still rendered.
        assert!(!report.all_ok());
        assert!(report.figures[0].outcome.is_ok());
        assert!(report.figures[1].outcome.is_ok());
        let err = report.figures[2].outcome.as_ref().unwrap_err();
        assert!(err.contains("deliberately broken"), "{err}");

        // Outputs were written for successful figures only.
        let dir = opts.results_dir.as_ref().unwrap();
        assert!(dir.join("figa.txt").exists());
        assert!(dir.join("figb.txt").exists());
        assert!(!dir.join("figx.txt").exists());

        // The run log recorded both unique runs with their sources.
        let log = std::fs::read_to_string(opts.runlog.as_ref().unwrap()).unwrap();
        assert_eq!(log.lines().filter(|l| !l.starts_with('#')).count(), 2);
        assert_eq!(log.lines().filter(|l| l.contains("\tcapture\t")).count(), 2);

        // A second sweep over the same cache is all hits; cache hits
        // short-circuit the trace store entirely.
        let report2 = run_sweep(&FIGS, &opts);
        assert_eq!(report2.cache_hits, 2);
        assert_eq!(report2.cache_misses, 0);
        assert_eq!(report2.traces_captured, 0);
        assert_eq!(report2.traces_replayed, 0);
        assert_eq!(
            report2.aggregate_sim_mips, None,
            "all-cached sweeps simulated nothing"
        );

        let _ = std::fs::remove_dir_all(dir.parent().unwrap());
    }

    #[test]
    fn telemetry_sweeps_write_artifacts_and_match_plain_sweeps() {
        let plain_opts = opts("telem-plain");
        let plain = run_sweep(&FIGS[..2], &plain_opts);
        assert!(plain.all_ok());
        assert_eq!(plain.telemetry_written, 0);

        let mut telem_opts = opts("telem-on");
        telem_opts.telemetry = Some(TelemetryConfig {
            interval: 500,
            max_events_per_core: 4_096,
        });
        let report = run_sweep(&FIGS[..2], &telem_opts);
        assert!(report.all_ok());
        assert_eq!(report.telemetry_written, 2, "one artifact per unique run");

        // Figure bytes are identical with telemetry on.
        for (a, b) in plain.figures.iter().zip(&report.figures) {
            assert_eq!(a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
        }

        // Artifacts landed under the telemetry root with complete markers.
        let root = telem_opts.telemetry_dir.as_ref().unwrap();
        let dirs: Vec<_> = std::fs::read_dir(root)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        assert_eq!(dirs.len(), 2);
        for dir in &dirs {
            assert!(dir.join(crate::telemetry::META_FILE).is_file());
            assert!(dir.join("events.jsonl").is_file());
            assert!(dir.join("trace.json").is_file());
            assert!(dir.join("series.tsv").is_file());
            assert!(dir.join("pf_summary.tsv").is_file());
        }

        // A repeat sweep finds every artifact in place: all cache hits,
        // nothing rewritten.
        let repeat = run_sweep(&FIGS[..2], &telem_opts);
        assert_eq!(repeat.cache_hits, 2);
        assert_eq!(repeat.telemetry_written, 0);

        let _ = std::fs::remove_dir_all(root.parent().unwrap());
        let _ = std::fs::remove_dir_all(plain_opts.results_dir.as_ref().unwrap().parent().unwrap());
    }
}
