//! The sweep orchestrator: collect every figure's jobs, dedup globally,
//! execute once across the pool, then render and report per figure.
//!
//! With the trace store enabled, execution is two-phased: for each
//! distinct instruction stream ([`RunSpec::trace_key`]) the first spec
//! needing it — its *captain* — runs in phase one and captures the stream
//! to disk; every other spec sharing it runs in phase two and replays.
//! Walker generation therefore happens once per workload stream per
//! sweep, no matter how many configurations share it.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::time::Duration;

use ipsim_telemetry::TelemetryConfig;

use crate::cache::RunCache;
use crate::figure::Figure;
use crate::manifest::{self, FigureManifest, ManifestEntry};
use crate::pool::{self, ExecReport};
use crate::progress::{Progress, ProgressMode};
use crate::runlog;
use crate::shard::ShardSpec;
use crate::spec::RunSpec;
use crate::summary::Summary;
use crate::telemetry::TelemetrySink;
use crate::traces::TraceStore;
use crate::RunLengths;

/// How a sweep should run.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Warm-up / measurement windows passed to every figure.
    pub lengths: RunLengths,
    /// Worker threads for the pool.
    pub workers: usize,
    /// When set, each figure's output is also written to
    /// `<dir>/<name>.txt`.
    pub results_dir: Option<PathBuf>,
    /// Cache directory; `None` uses `$IPSIM_CACHE_DIR` / the default.
    pub cache_dir: Option<PathBuf>,
    /// Run-log path; `None` uses `$IPSIM_RUNLOG` / the default.
    pub runlog: Option<PathBuf>,
    /// Trace-store directory; `None` uses `$IPSIM_TRACE_DIR` / the
    /// default. Ignored when `traces` is false.
    pub trace_dir: Option<PathBuf>,
    /// Whether to capture/replay instruction streams at all.
    pub traces: bool,
    /// When set, every executed run collects telemetry with this config
    /// and writes a per-run artifact directory (see [`TelemetrySink`]).
    /// Telemetry never affects summaries, figures or cache keys.
    pub telemetry: Option<TelemetryConfig>,
    /// Telemetry artifact root; `None` uses `$IPSIM_TELEMETRY_DIR` / the
    /// default. Ignored when `telemetry` is `None`.
    pub telemetry_dir: Option<PathBuf>,
    /// Progress reporting mode.
    pub progress: ProgressMode,
    /// Incremental-render manifest path; `None` disables skipping and
    /// always renders every figure (the pre-manifest behaviour). See
    /// [`crate::manifest`].
    pub manifest: Option<PathBuf>,
    /// Bypass the manifest and re-render everything (`--force`). The
    /// manifest is still *updated* after rendering, so the next sweep can
    /// skip again.
    pub force: bool,
}

impl SweepOptions {
    /// Defaults for interactive use: env-resolved cache, run log and trace
    /// store, auto progress, no result files.
    pub fn new(lengths: RunLengths, workers: usize) -> SweepOptions {
        SweepOptions {
            lengths,
            workers,
            results_dir: None,
            cache_dir: None,
            runlog: None,
            trace_dir: None,
            traces: true,
            telemetry: None,
            telemetry_dir: None,
            progress: ProgressMode::Auto,
            manifest: None,
            force: false,
        }
    }

    /// The trace store these options select.
    fn trace_store(&self) -> TraceStore {
        if !self.traces {
            return TraceStore::disabled();
        }
        match &self.trace_dir {
            Some(dir) => TraceStore::at(dir.clone()),
            None => TraceStore::from_env(),
        }
    }

    /// The telemetry sink these options select, if any.
    fn telemetry_sink(&self) -> Option<TelemetrySink> {
        let config = self.telemetry.clone()?;
        Some(match &self.telemetry_dir {
            Some(dir) => TelemetrySink::at(dir.clone(), config),
            None => TelemetrySink::from_env(config),
        })
    }
}

/// One figure's outcome within a sweep.
#[derive(Debug)]
pub struct FigureReport {
    /// Figure name (`fig01`…).
    pub name: &'static str,
    /// Figure title.
    pub title: &'static str,
    /// Rendered output, or the failure reason. For a skipped figure this
    /// is the (byte-identical) text already on disk, so downstream
    /// consumers never see a gap.
    pub outcome: Result<String, String>,
    /// Whether the manifest proved the on-disk output current and the
    /// render (and its input runs) were skipped entirely.
    pub skipped: bool,
}

/// Everything a sweep did, for reporting and tests.
#[derive(Debug)]
pub struct SweepReport {
    /// Per-figure outcomes, in input order.
    pub figures: Vec<FigureReport>,
    /// Jobs requested across all figures, before dedup (skipped figures'
    /// jobs included — they were requested, then proven unnecessary).
    pub total_jobs: usize,
    /// Unique jobs after global dedup by cache key, over the figures that
    /// actually rendered (a fully-skipped sweep executes zero runs).
    pub unique_jobs: usize,
    /// Figures skipped because the manifest proved their output current.
    pub figures_skipped: usize,
    /// Disk-cache hits.
    pub cache_hits: u64,
    /// Disk-cache misses (simulated this sweep).
    pub cache_misses: u64,
    /// Corrupt cache entries quarantined.
    pub quarantined: u64,
    /// Workload streams captured to the trace store.
    pub traces_captured: u64,
    /// Runs whose instruction streams were replayed from the trace store.
    pub traces_replayed: u64,
    /// Corrupt trace files quarantined.
    pub traces_quarantined: u64,
    /// Telemetry artifact directories written this sweep.
    pub telemetry_written: u64,
    /// Sweep-aggregate kernel throughput: total measured instructions over
    /// total kernel seconds across executed runs (`None` when everything
    /// came from the cache). Weighted by per-run kernel seconds, so long
    /// runs count proportionally.
    pub aggregate_sim_mips: Option<f64>,
    /// Wall time of the execution phase.
    pub wall: Duration,
    /// Whether a shutdown signal (Ctrl-C / SIGTERM) cut execution short.
    /// In-flight runs were completed and the runlog tail was flushed;
    /// figures whose runs are incomplete report errors rather than
    /// rendering from partial data. Callers should exit with code 130.
    pub interrupted: bool,
}

impl SweepReport {
    /// Whether every figure rendered successfully.
    pub fn all_ok(&self) -> bool {
        self.figures.iter().all(|f| f.outcome.is_ok())
    }
}

/// One figure's skip decision: either "the on-disk output is provably
/// current" (carrying its text) or "must render".
enum SkipDecision {
    Current(String),
    Render,
}

/// The shared front half of a sweep: per-figure job enumeration, manifest
/// skip decisions, and the global dedup over figures that must render.
/// Every process of a sharded sweep computes this independently and —
/// because enumeration, fingerprints and the on-disk manifest are all
/// deterministic inputs — arrives at the same plan.
struct JobPlan {
    /// Per-figure enumerated jobs (enumeration panics become `Err`).
    planned: Vec<Result<Vec<RunSpec>, String>>,
    /// Per-figure render fingerprint (`None` for failed enumeration).
    fingerprints: Vec<Option<String>>,
    /// Per-figure skip decision.
    skips: Vec<SkipDecision>,
    /// Unique jobs (deduped by cache key, first-seen order) across the
    /// figures that must render.
    unique: Vec<RunSpec>,
    /// Jobs requested across all figures, before dedup and skipping.
    total_jobs: usize,
}

fn plan_jobs(figures: &[Figure], opts: &SweepOptions) -> JobPlan {
    let _plan = ipsim_obs::spans().span("sweep.plan");
    let planned: Vec<Result<Vec<RunSpec>, String>> =
        figures.iter().map(|f| f.jobs(opts.lengths)).collect();
    let total_jobs: usize = planned.iter().map(|p| p.as_ref().map_or(0, Vec::len)).sum();

    let fingerprints: Vec<Option<String>> = figures
        .iter()
        .zip(&planned)
        .map(|(figure, plan)| {
            let plan = plan.as_ref().ok()?;
            let keys: Vec<String> = plan.iter().map(RunSpec::cache_key).collect();
            Some(manifest::fingerprint(figure.name, figure.version, &keys))
        })
        .collect();

    let loaded = (!opts.force)
        .then(|| opts.manifest.as_deref().map(FigureManifest::load))
        .flatten()
        .unwrap_or_default();
    let skips: Vec<SkipDecision> = figures
        .iter()
        .zip(&fingerprints)
        .map(|(figure, fingerprint)| {
            skip_decision(&loaded, figure.name, fingerprint.as_deref(), opts)
        })
        .collect();

    // Global dedup by cache key over figures that must render, preserving
    // first-seen order so scheduling (and thus the progress display) is
    // deterministic.
    let mut seen = HashSet::new();
    let mut unique: Vec<RunSpec> = Vec::new();
    for (plan, skip) in planned.iter().zip(&skips) {
        if matches!(skip, SkipDecision::Current(_)) {
            continue;
        }
        for spec in plan.iter().flatten() {
            if seen.insert(spec.cache_key()) {
                unique.push(spec.clone());
            }
        }
    }

    JobPlan {
        planned,
        fingerprints,
        skips,
        unique,
        total_jobs,
    }
}

/// Whether one figure's render can be skipped: the manifest's recorded
/// fingerprint matches and the output file on disk still hashes to the
/// recorded value. Returns the on-disk text so the report (and any
/// downstream consumer) sees the same bytes a render would have produced.
fn skip_decision(
    loaded: &FigureManifest,
    name: &str,
    fingerprint: Option<&str>,
    opts: &SweepOptions,
) -> SkipDecision {
    let (Some(fingerprint), Some(dir)) = (fingerprint, &opts.results_dir) else {
        return SkipDecision::Render;
    };
    let Some(entry) = loaded.get(name) else {
        return SkipDecision::Render;
    };
    if entry.fingerprint != fingerprint {
        return SkipDecision::Render;
    }
    let path = dir.join(format!("{name}.txt"));
    let Ok(bytes) = std::fs::read(&path) else {
        return SkipDecision::Render;
    };
    if manifest::hash_hex(&bytes) != entry.output_hash {
        return SkipDecision::Render;
    }
    match String::from_utf8(bytes) {
        Ok(text) => SkipDecision::Current(text),
        Err(_) => SkipDecision::Render,
    }
}

/// Runs `figures` end to end: enumerate, dedup, execute, render, persist.
///
/// Figure failures (enumeration panic, simulation panic, render panic) are
/// contained per figure; the sweep always completes and the report carries
/// each failure. Worker count never affects any rendered byte, and neither
/// does the manifest: a skipped figure's reported text is the byte-identical
/// output already on disk.
pub fn run_sweep(figures: &[Figure], opts: &SweepOptions) -> SweepReport {
    // Phases 1-2: enumerate, decide skips, dedup.
    let plan = plan_jobs(figures, opts);

    // Phase 3: execute unique runs across the pool, captains first (see
    // module docs) so every stream is captured before anyone replays it.
    let cache = match &opts.cache_dir {
        Some(dir) => RunCache::at(dir.clone()),
        None => RunCache::from_env(),
    };
    let traces = opts.trace_store();
    let telemetry = opts.telemetry_sink();
    let progress = Progress::new(opts.progress, plan.unique.len());
    let exec = execute_phased(
        &plan.unique,
        opts.workers,
        &cache,
        &traces,
        telemetry.as_ref(),
        &progress,
    );
    progress.finish();

    // Phase 4: observability — append to the run log. Failure to log is
    // not failure to sweep.
    let runlog_path = opts
        .runlog
        .clone()
        .unwrap_or_else(runlog::runlog_path_from_env);
    if let Err(e) = runlog::append(&runlog_path, opts.workers, &exec.records) {
        eprintln!("warning: could not append {}: {e}", runlog_path.display());
    }

    // Phase 5: render each non-skipped figure sequentially and persist its
    // output; record every successful render in the manifest.
    let interrupted = exec.interrupted;
    let resolve = |spec: &RunSpec| -> Result<Summary, String> {
        match exec.results.get(&spec.cache_key()) {
            Some(Ok(summary)) => Ok(summary.clone()),
            Some(Err(e)) => Err(format!("run `{}` failed: {e}", spec.label())),
            None if interrupted => Err(format!(
                "run `{}` was skipped: sweep interrupted",
                spec.label()
            )),
            None => Err(format!(
                "run `{}` was never scheduled (nondeterministic job enumeration?)",
                spec.label()
            )),
        }
    };
    let mut reports = Vec::with_capacity(figures.len());
    let mut updated = opts
        .manifest
        .as_deref()
        .map(FigureManifest::load)
        .unwrap_or_default();
    let mut manifest_dirty = false;
    let mut figures_skipped = 0;
    for (i, figure) in figures.iter().enumerate() {
        if let SkipDecision::Current(text) = &plan.skips[i] {
            figures_skipped += 1;
            reports.push(FigureReport {
                name: figure.name,
                title: figure.title,
                outcome: Ok(text.clone()),
                skipped: true,
            });
            continue;
        }
        let outcome = {
            let _render = ipsim_obs::spans().span("sweep.render");
            match &plan.planned[i] {
                Err(e) => Err(e.clone()),
                Ok(_) => figure.output(opts.lengths, &resolve),
            }
        };
        if let (Some(dir), Ok(text)) = (&opts.results_dir, &outcome) {
            let path = dir.join(format!("{}.txt", figure.name));
            let write =
                std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, text.as_bytes()));
            match write {
                Ok(()) => {
                    // Only a figure whose output landed on disk earns a
                    // manifest entry: the skip check re-hashes that file.
                    if let (Some(fingerprint), Ok(jobs)) = (&plan.fingerprints[i], &plan.planned[i])
                    {
                        updated.set(
                            figure.name,
                            ManifestEntry {
                                fingerprint: fingerprint.clone(),
                                output_hash: manifest::hash_hex(text.as_bytes()),
                                inputs: jobs.len(),
                            },
                        );
                        manifest_dirty = true;
                    }
                }
                Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
            }
        }
        reports.push(FigureReport {
            name: figure.name,
            title: figure.title,
            outcome,
            skipped: false,
        });
    }
    if let (Some(path), true) = (&opts.manifest, manifest_dirty) {
        if let Err(e) = updated.store(path) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }

    SweepReport {
        figures: reports,
        total_jobs: plan.total_jobs,
        unique_jobs: plan.unique.len(),
        figures_skipped,
        cache_hits: cache.hits(),
        cache_misses: cache.misses(),
        quarantined: cache.quarantined(),
        traces_captured: traces.captured(),
        traces_replayed: traces.replayed(),
        traces_quarantined: traces.quarantined(),
        telemetry_written: telemetry.as_ref().map_or(0, TelemetrySink::written),
        aggregate_sim_mips: progress.aggregate_sim_mips(),
        wall: exec.wall,
        interrupted,
    }
}

/// What one shard's execution pass did (no rendering happens here).
#[derive(Debug)]
pub struct ShardReport {
    /// Which shard this was.
    pub shard: ShardSpec,
    /// Unique jobs across the whole sweep (what all shards partition).
    pub sweep_jobs: usize,
    /// Unique jobs owned by this shard.
    pub assigned: usize,
    /// Disk-cache hits (runs another shard or a prior sweep already did).
    pub cache_hits: u64,
    /// Disk-cache misses (simulated by this shard).
    pub cache_misses: u64,
    /// Workload streams captured to the trace store by this shard.
    pub traces_captured: u64,
    /// Runs replayed from the trace store by this shard.
    pub traces_replayed: u64,
    /// Telemetry artifact directories written by this shard.
    pub telemetry_written: u64,
    /// Shard-aggregate kernel throughput (see [`SweepReport`]).
    pub aggregate_sim_mips: Option<f64>,
    /// Wall time of this shard's execution phase.
    pub wall: Duration,
    /// Whether a shutdown signal cut execution short.
    pub interrupted: bool,
}

/// Executes the slice of a sweep's run set owned by `shard`, writing
/// results through the shared run cache; renders nothing.
///
/// Every shard process calls this with the same `figures` and `opts` and a
/// different `shard`; the union of all shards' work is exactly
/// [`run_sweep`]'s execution phase (same enumeration, same manifest skips,
/// same dedup), partitioned by [`crate::shard::shard_index`]. Afterwards a
/// plain `run_sweep` over the shared cache renders from all-hits. Shard
/// batches land in the runlog tagged `shard I/N` so per-shard utilization
/// is reconstructable.
pub fn run_shard(figures: &[Figure], opts: &SweepOptions, shard: ShardSpec) -> ShardReport {
    let plan = plan_jobs(figures, opts);
    let assigned: Vec<RunSpec> = plan
        .unique
        .iter()
        .filter(|spec| shard.owns(&spec.cache_key()))
        .cloned()
        .collect();

    let cache = match &opts.cache_dir {
        Some(dir) => RunCache::at(dir.clone()),
        None => RunCache::from_env(),
    };
    let traces = opts.trace_store();
    let telemetry = opts.telemetry_sink();
    let progress = Progress::with_tag(
        opts.progress,
        assigned.len(),
        (shard.count > 1).then(|| format!("s{shard}")).as_deref(),
    );
    let exec = execute_phased(
        &assigned,
        opts.workers,
        &cache,
        &traces,
        telemetry.as_ref(),
        &progress,
    );
    progress.finish();

    let runlog_path = opts
        .runlog
        .clone()
        .unwrap_or_else(runlog::runlog_path_from_env);
    let tag = format!("shard {shard}");
    if let Err(e) = runlog::append_tagged(&runlog_path, opts.workers, Some(&tag), &exec.records) {
        eprintln!("warning: could not append {}: {e}", runlog_path.display());
    }

    ShardReport {
        shard,
        sweep_jobs: plan.unique.len(),
        assigned: assigned.len(),
        cache_hits: cache.hits(),
        cache_misses: cache.misses(),
        traces_captured: traces.captured(),
        traces_replayed: traces.replayed(),
        telemetry_written: telemetry.as_ref().map_or(0, TelemetrySink::written),
        aggregate_sim_mips: progress.aggregate_sim_mips(),
        wall: exec.wall,
        interrupted: exec.interrupted,
    }
}

/// Executes `unique` with captains-first scheduling when the trace store
/// is live: the first spec per trace key runs (and captures) in phase
/// one, the rest replay in phase two. Records are re-ordered to match the
/// input, so phasing is invisible everywhere downstream.
fn execute_phased(
    unique: &[RunSpec],
    workers: usize,
    cache: &RunCache,
    traces: &TraceStore,
    telemetry: Option<&TelemetrySink>,
    progress: &Progress,
) -> ExecReport {
    let _execute = ipsim_obs::spans().span("sweep.execute");
    let mut captains: Vec<RunSpec> = Vec::new();
    let mut followers: Vec<RunSpec> = Vec::new();
    if traces.enabled() {
        let mut streams = HashSet::new();
        for spec in unique {
            if streams.insert(spec.trace_key()) {
                captains.push(spec.clone());
            } else {
                followers.push(spec.clone());
            }
        }
    }
    if followers.is_empty() {
        // Every spec has its own stream (or the store is off): no phasing.
        return pool::execute(unique, workers, cache, traces, telemetry, progress);
    }
    let first = pool::execute(&captains, workers, cache, traces, telemetry, progress);
    let second = if first.interrupted {
        // Don't start the replay phase after an interrupt; its specs are
        // simply never claimed.
        ExecReport {
            results: HashMap::new(),
            records: Vec::new(),
            wall: Duration::ZERO,
            interrupted: true,
        }
    } else {
        pool::execute(&followers, workers, cache, traces, telemetry, progress)
    };

    let interrupted = first.interrupted || second.interrupted;
    let mut results = first.results;
    results.extend(second.results);
    // Restore input order (first.records ++ second.records is phase
    // order). An interrupted batch is missing the unclaimed specs'
    // records; everything completed is preserved.
    let mut by_key: HashMap<String, crate::runlog::RunRecord> = first
        .records
        .into_iter()
        .chain(second.records)
        .map(|r| (r.key.clone(), r))
        .collect();
    let records: Vec<crate::runlog::RunRecord> = unique
        .iter()
        .filter_map(|spec| by_key.remove(&spec.cache_key()))
        .collect();
    debug_assert!(interrupted || records.len() == unique.len());
    ExecReport {
        results,
        records,
        wall: first.wall + second.wall,
        interrupted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure::Executor;
    use ipsim_cpu::WorkloadSet;
    use ipsim_trace::Workload;
    use ipsim_types::SystemConfig;

    fn render_a(lengths: RunLengths, x: &mut Executor) -> String {
        let spec = RunSpec::new(
            SystemConfig::single_core(),
            WorkloadSet::homogeneous(Workload::Db),
            lengths,
        );
        format!("a {}\n", x(&spec).instructions)
    }

    /// Shares render_a's single job, adds one of its own.
    fn render_b(lengths: RunLengths, x: &mut Executor) -> String {
        let shared = RunSpec::new(
            SystemConfig::single_core(),
            WorkloadSet::homogeneous(Workload::Db),
            lengths,
        );
        let own = RunSpec::new(
            SystemConfig::single_core(),
            WorkloadSet::homogeneous(Workload::Web),
            lengths,
        );
        format!("b {} {}\n", x(&shared).instructions, x(&own).instructions)
    }

    fn render_broken(_: RunLengths, _: &mut Executor) -> String {
        panic!("deliberately broken figure");
    }

    fn opts(tag: &str) -> SweepOptions {
        let base = std::env::temp_dir().join(format!("ipsim-sweep-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        SweepOptions {
            lengths: RunLengths {
                warm: 1_000,
                measure: 2_000,
            },
            workers: 2,
            results_dir: Some(base.join("results")),
            cache_dir: Some(base.join("cache")),
            runlog: Some(base.join("runlog.tsv")),
            trace_dir: Some(base.join("traces")),
            traces: true,
            telemetry: None,
            telemetry_dir: Some(base.join("telemetry")),
            progress: ProgressMode::Silent,
            manifest: None,
            force: false,
        }
    }

    const FIGS: [Figure; 3] = [
        Figure {
            name: "figa",
            title: "figure a",
            version: 1,
            render: render_a,
        },
        Figure {
            name: "figb",
            title: "figure b",
            version: 1,
            render: render_b,
        },
        Figure {
            name: "figx",
            title: "broken figure",
            version: 1,
            render: render_broken,
        },
    ];

    #[test]
    fn sweep_dedups_contains_failures_and_persists() {
        let opts = opts("main");
        let report = run_sweep(&FIGS, &opts);

        // 3 jobs requested, 2 unique (figa's job is shared with figb).
        assert_eq!(report.total_jobs, 3);
        assert_eq!(report.unique_jobs, 2);
        assert_eq!(report.cache_misses, 2);

        // Two distinct workload streams, both captured, neither replayed
        // (the two unique specs run different workloads).
        assert_eq!(report.traces_captured, 2);
        assert_eq!(report.traces_replayed, 0);
        assert_eq!(report.traces_quarantined, 0);
        assert!(
            report.aggregate_sim_mips.is_some_and(|m| m > 0.0),
            "executed sweeps report aggregate kernel throughput"
        );

        // The broken figure failed; the others still rendered.
        assert!(!report.all_ok());
        assert!(report.figures[0].outcome.is_ok());
        assert!(report.figures[1].outcome.is_ok());
        let err = report.figures[2].outcome.as_ref().unwrap_err();
        assert!(err.contains("deliberately broken"), "{err}");

        // Outputs were written for successful figures only.
        let dir = opts.results_dir.as_ref().unwrap();
        assert!(dir.join("figa.txt").exists());
        assert!(dir.join("figb.txt").exists());
        assert!(!dir.join("figx.txt").exists());

        // The run log recorded both unique runs with their sources.
        let log = std::fs::read_to_string(opts.runlog.as_ref().unwrap()).unwrap();
        assert_eq!(log.lines().filter(|l| !l.starts_with('#')).count(), 2);
        assert_eq!(log.lines().filter(|l| l.contains("\tcapture\t")).count(), 2);

        // A second sweep over the same cache is all hits; cache hits
        // short-circuit the trace store entirely.
        let report2 = run_sweep(&FIGS, &opts);
        assert_eq!(report2.cache_hits, 2);
        assert_eq!(report2.cache_misses, 0);
        assert_eq!(report2.traces_captured, 0);
        assert_eq!(report2.traces_replayed, 0);
        assert_eq!(
            report2.aggregate_sim_mips, None,
            "all-cached sweeps simulated nothing"
        );

        let _ = std::fs::remove_dir_all(dir.parent().unwrap());
    }

    /// Same name as `render_b`, different input set (Japp instead of Web):
    /// stands in for "one config knob changed" between two sweeps.
    fn render_b_changed(lengths: RunLengths, x: &mut Executor) -> String {
        let shared = RunSpec::new(
            SystemConfig::single_core(),
            WorkloadSet::homogeneous(Workload::Db),
            lengths,
        );
        let own = RunSpec::new(
            SystemConfig::single_core(),
            WorkloadSet::homogeneous(Workload::JApp),
            lengths,
        );
        format!("b {} {}\n", x(&shared).instructions, x(&own).instructions)
    }

    #[test]
    fn manifest_skips_unchanged_figures_and_rerenders_exactly_the_affected() {
        let mut opts = opts("manifest");
        opts.manifest = Some(
            opts.results_dir
                .as_ref()
                .unwrap()
                .join("figures/manifest.tsv"),
        );
        let working = &FIGS[..2];

        // Cold: everything renders, manifest written.
        let first = run_sweep(working, &opts);
        assert!(first.all_ok());
        assert_eq!(first.figures_skipped, 0);
        assert!(opts.manifest.as_ref().unwrap().is_file());

        // Warm, unchanged: every figure skipped, zero runs executed, and
        // the reported text still matches the cold render byte for byte.
        let warm = run_sweep(working, &opts);
        assert_eq!(warm.figures_skipped, 2);
        assert_eq!(warm.unique_jobs, 0, "skipped figures schedule no runs");
        assert_eq!(warm.cache_hits + warm.cache_misses, 0);
        for (a, b) in first.figures.iter().zip(&warm.figures) {
            assert_eq!(a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
            assert!(b.skipped);
        }

        // One figure's input set changes (a knob turned): exactly that
        // figure re-renders, the other is still skipped.
        let changed = [
            FIGS[0],
            Figure {
                name: "figb",
                title: "figure b",
                version: 1,
                render: render_b_changed,
            },
        ];
        let third = run_sweep(&changed, &opts);
        assert!(third.all_ok());
        assert_eq!(third.figures_skipped, 1);
        assert!(third.figures[0].skipped, "figa's inputs are unchanged");
        assert!(!third.figures[1].skipped, "figb's inputs changed");
        // Only figb's new run was needed; its shared Db run came from the
        // run cache, so exactly one simulation happened.
        assert_eq!(third.cache_misses, 1);

        // A renderer-version bump re-renders even with identical inputs.
        let bumped = [
            Figure {
                name: "figa",
                title: "figure a",
                version: 2,
                render: render_a,
            },
            changed[1],
        ];
        let fourth = run_sweep(&bumped, &opts);
        assert!(!fourth.figures[0].skipped, "version bump must re-render");
        assert!(fourth.figures[1].skipped);

        // --force renders everything but keeps the manifest fresh, so the
        // next plain sweep skips again.
        opts.force = true;
        let forced = run_sweep(&bumped, &opts);
        assert_eq!(forced.figures_skipped, 0);
        opts.force = false;
        let after = run_sweep(&bumped, &opts);
        assert_eq!(after.figures_skipped, 2);

        let _ = std::fs::remove_dir_all(opts.results_dir.as_ref().unwrap().parent().unwrap());
    }

    #[test]
    fn corrupt_manifest_or_tampered_output_falls_back_to_full_render() {
        let mut opts = opts("manifest-corrupt");
        let manifest_path = opts
            .results_dir
            .as_ref()
            .unwrap()
            .join("figures/manifest.tsv");
        opts.manifest = Some(manifest_path.clone());
        let working = &FIGS[..2];
        run_sweep(working, &opts);

        // Torn manifest: full render (no skips), manifest rewritten.
        std::fs::write(&manifest_path, "# ipsim-figure-manifest v1\nfiga\t00").unwrap();
        let report = run_sweep(working, &opts);
        assert_eq!(report.figures_skipped, 0, "torn manifest must not skip");
        assert!(report.all_ok());

        // Healthy again: skips resume.
        let healthy = run_sweep(working, &opts);
        assert_eq!(healthy.figures_skipped, 2);

        // A hand-edited output file is not trusted.
        let figa = opts.results_dir.as_ref().unwrap().join("figa.txt");
        std::fs::write(&figa, "tampered\n").unwrap();
        let retouched = run_sweep(working, &opts);
        assert!(!retouched.figures[0].skipped, "tampered output re-renders");
        assert!(retouched.figures[1].skipped);
        assert_ne!(std::fs::read_to_string(&figa).unwrap(), "tampered\n");

        let _ = std::fs::remove_dir_all(opts.results_dir.as_ref().unwrap().parent().unwrap());
    }

    #[test]
    fn sharded_execution_merges_into_the_single_process_sweep() {
        use crate::shard::ShardSpec;

        // Baseline: ordinary single-process sweep in its own directories.
        let base_opts = opts("shard-base");
        let baseline = run_sweep(&FIGS[..2], &base_opts);
        assert!(baseline.all_ok());

        for count in [2usize, 3] {
            let opts = opts(&format!("shard-{count}"));
            let mut assigned_total = 0;
            let mut misses_total = 0;
            for index in 0..count {
                let report = run_shard(&FIGS[..2], &opts, ShardSpec { index, count });
                assert!(!report.interrupted);
                assert_eq!(report.sweep_jobs, 2);
                assigned_total += report.assigned;
                misses_total += report.cache_misses;
            }
            assert_eq!(assigned_total, 2, "shards partition the unique jobs");
            assert_eq!(misses_total, 2, "no run simulated twice across shards");

            // The merge pass renders entirely from the shared cache...
            let merged = run_sweep(&FIGS[..2], &opts);
            assert_eq!(merged.cache_misses, 0);
            assert_eq!(merged.cache_hits, 2);
            // ...byte-identical to the single-process sweep.
            for (a, b) in baseline.figures.iter().zip(&merged.figures) {
                assert_eq!(a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
            }

            // The runlog carries one tagged batch per shard that did work.
            let log = std::fs::read_to_string(opts.runlog.as_ref().unwrap()).unwrap();
            let markers: Vec<&str> = log
                .lines()
                .filter(|l| l.starts_with("# batch shard "))
                .collect();
            assert!(!markers.is_empty());
            for index in 0..count {
                let tag = format!("# batch shard {index}/{count}");
                let owned = markers.iter().filter(|m| **m == tag).count();
                assert!(owned <= 1, "one batch per shard, got {owned} for {tag}");
            }

            let _ = std::fs::remove_dir_all(opts.results_dir.as_ref().unwrap().parent().unwrap());
        }
        let _ = std::fs::remove_dir_all(base_opts.results_dir.as_ref().unwrap().parent().unwrap());
    }

    #[test]
    fn telemetry_sweeps_write_artifacts_and_match_plain_sweeps() {
        let plain_opts = opts("telem-plain");
        let plain = run_sweep(&FIGS[..2], &plain_opts);
        assert!(plain.all_ok());
        assert_eq!(plain.telemetry_written, 0);

        let mut telem_opts = opts("telem-on");
        telem_opts.telemetry = Some(TelemetryConfig {
            interval: 500,
            max_events_per_core: 4_096,
        });
        let report = run_sweep(&FIGS[..2], &telem_opts);
        assert!(report.all_ok());
        assert_eq!(report.telemetry_written, 2, "one artifact per unique run");

        // Figure bytes are identical with telemetry on.
        for (a, b) in plain.figures.iter().zip(&report.figures) {
            assert_eq!(a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
        }

        // Artifacts landed under the telemetry root with complete markers.
        let root = telem_opts.telemetry_dir.as_ref().unwrap();
        let dirs: Vec<_> = std::fs::read_dir(root)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        assert_eq!(dirs.len(), 2);
        for dir in &dirs {
            assert!(dir.join(crate::telemetry::META_FILE).is_file());
            assert!(dir.join("events.jsonl").is_file());
            assert!(dir.join("trace.json").is_file());
            assert!(dir.join("series.tsv").is_file());
            assert!(dir.join("pf_summary.tsv").is_file());
        }

        // A repeat sweep finds every artifact in place: all cache hits,
        // nothing rewritten.
        let repeat = run_sweep(&FIGS[..2], &telem_opts);
        assert_eq!(repeat.cache_hits, 2);
        assert_eq!(repeat.telemetry_written, 0);

        let _ = std::fs::remove_dir_all(root.parent().unwrap());
        let _ = std::fs::remove_dir_all(plain_opts.results_dir.as_ref().unwrap().parent().unwrap());
    }
}
