//! Deterministic sweep sharding: partition a run set by cache key.
//!
//! A shard is a pure function of the run's content-addressed cache key
//! ([`crate::spec::RunSpec::cache_key`]) and the shard count — no state,
//! no coordination. Two processes planning the same sweep therefore agree
//! on the partition without talking to each other: each executes only the
//! keys it owns, all write through the shared [`crate::cache::RunCache`]
//! (whose temp-file + rename stores are already multi-process safe), and
//! the merged result is exactly the single-process sweep. Work is never
//! duplicated because the shards are a disjoint exact cover of the key
//! space, which `plan` guarantees by construction and the property tests
//! below prove.
//!
//! The assignment hashes the key *again* (salted FNV-1a, see
//! [`shard_index`]) rather than taking hex digits of the key directly, so
//! shard balance never depends on how the cache-key hash distributes its
//! low bits, and the salt can evolve independently of the key format.

use std::fmt;

use crate::spec::RunSpec;

/// Environment variable supplying a default shard count to sweep drivers
/// (`all_figures` reads it when `--shards` is absent).
pub const SHARDS_ENV: &str = "IPSIM_SHARDS";

/// Domain salt for [`shard_index`]; versioned so a future rebalancing is
/// an explicit, greppable change rather than a silent drift.
const SHARD_SALT: &str = "shard-v1|";

/// One shard's identity within a sharded sweep: `index` of `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This shard's index, `0 <= index < count`.
    pub index: usize,
    /// Total shards the sweep is split into (>= 1).
    pub count: usize,
}

impl ShardSpec {
    /// The degenerate single-shard spec that owns every run.
    pub fn solo() -> ShardSpec {
        ShardSpec { index: 0, count: 1 }
    }

    /// Parses the `I/N` wire form used by `--shard-exec` (e.g. `2/4`).
    pub fn parse(s: &str) -> Result<ShardSpec, String> {
        let err = || format!("shard spec must be `I/N` with 0 <= I < N, got `{s}`");
        let (index, count) = s.split_once('/').ok_or_else(err)?;
        let index: usize = index.trim().parse().map_err(|_| err())?;
        let count: usize = count.trim().parse().map_err(|_| err())?;
        if count == 0 || index >= count {
            return Err(err());
        }
        Ok(ShardSpec { index, count })
    }

    /// Whether this shard owns the run with content key `key`.
    pub fn owns(&self, key: &str) -> bool {
        shard_index(key, self.count) == self.index
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// The shard a content key belongs to, for `count` shards.
pub fn shard_index(key: &str, count: usize) -> usize {
    debug_assert!(count >= 1, "shard count must be >= 1");
    if count <= 1 {
        return 0;
    }
    let mut h = crate::hash::Fnv1a64::new();
    h.write(SHARD_SALT.as_bytes());
    h.write(key.as_bytes());
    (h.finish() % count as u64) as usize
}

/// Partitions `specs` into `count` shards by cache key, preserving input
/// order within each shard. Every spec lands in exactly one shard;
/// duplicate keys land in the same shard (so per-shard dedup still works).
pub fn plan(specs: &[RunSpec], count: usize) -> Vec<Vec<RunSpec>> {
    let count = count.max(1);
    let mut shards: Vec<Vec<RunSpec>> = (0..count).map(|_| Vec::new()).collect();
    for spec in specs {
        shards[shard_index(&spec.cache_key(), count)].push(spec.clone());
    }
    shards
}

/// The shard count from `$IPSIM_SHARDS`, if set to a positive integer.
/// An unparsable value is reported so a typo doesn't silently serialise
/// the sweep.
pub fn shards_from_env() -> Result<Option<usize>, String> {
    let Some(raw) = std::env::var_os(SHARDS_ENV) else {
        return Ok(None);
    };
    let raw = raw.to_string_lossy();
    if raw.is_empty() {
        return Ok(None);
    }
    match raw.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(Some(n)),
        _ => Err(format!(
            "{SHARDS_ENV} must be a positive integer, got `{raw}`"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunLengths;
    use ipsim_cpu::WorkloadSet;
    use ipsim_trace::Workload;
    use ipsim_types::{CacheConfig, SystemConfig};

    fn specs(n: usize) -> Vec<RunSpec> {
        // Vary a result-determining knob so every spec has a distinct key.
        let sizes = [16u64, 32, 64, 128];
        (0..n)
            .map(|i| {
                let mut config = SystemConfig::single_core();
                config.core.l1i =
                    CacheConfig::new(sizes[i % sizes.len()] << 10, 4, 64).expect("valid geometry");
                RunSpec::new(
                    config,
                    WorkloadSet::homogeneous(if i % 2 == 0 {
                        Workload::Db
                    } else {
                        Workload::Web
                    }),
                    RunLengths {
                        warm: 100 + i as u64,
                        measure: 200,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["0/1", "0/4", "3/4", "6/7"] {
            let spec = ShardSpec::parse(s).unwrap();
            assert_eq!(spec.to_string(), s);
        }
        for bad in ["", "1", "4/4", "5/4", "-1/4", "0/0", "a/b", "1/", "/2"] {
            assert!(ShardSpec::parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn plan_is_a_disjoint_exact_cover() {
        let all = specs(40);
        for count in [1usize, 2, 4, 7] {
            let shards = plan(&all, count);
            assert_eq!(shards.len(), count);
            let total: usize = shards.iter().map(Vec::len).sum();
            assert_eq!(total, all.len(), "every spec lands in exactly one shard");
            // Each spec is owned by exactly the shard it landed in.
            for (i, shard) in shards.iter().enumerate() {
                for spec in shard {
                    let key = spec.cache_key();
                    assert_eq!(shard_index(&key, count), i);
                    let owners: usize = (0..count)
                        .filter(|&j| (ShardSpec { index: j, count }).owns(&key))
                        .count();
                    assert_eq!(owners, 1, "key {key} has {owners} owners");
                }
            }
        }
    }

    #[test]
    fn assignment_is_stable_and_key_driven() {
        // Pinned values: the assignment is part of the multi-process
        // protocol (parent and children compute it independently), so a
        // change here is a breaking change to in-flight sweeps.
        assert_eq!(shard_index("deadbeefdeadbeef", 1), 0);
        assert_eq!(shard_index("deadbeefdeadbeef", 4), 1);
        assert_eq!(shard_index("0123456789abcdef", 4), 1);
        assert_eq!(shard_index("deadbeefdeadbeef", 7), 0);
        assert_eq!(shard_index("0123456789abcdef", 7), 4);
        // Same key, same shard, every time.
        for key in ["a", "b", "deadbeefdeadbeef"] {
            for count in [2usize, 4, 7] {
                assert_eq!(shard_index(key, count), shard_index(key, count));
                assert!(shard_index(key, count) < count);
            }
        }
    }

    #[test]
    fn shards_spread_work_for_realistic_key_counts() {
        // Not a strict balance bound — FNV is not a perfect spreader — but
        // with 40 distinct keys over 4 shards, no shard may be empty and
        // none may hog more than half the work, or process-parallel sweeps
        // would degrade to serial.
        let shards = plan(&specs(40), 4);
        for shard in &shards {
            assert!(!shard.is_empty(), "a shard got no work");
            assert!(shard.len() <= 20, "one shard owns {} of 40", shard.len());
        }
    }

    #[test]
    fn duplicate_keys_land_in_the_same_shard() {
        let mut all = specs(8);
        all.extend(specs(8)); // every key twice
        let shards = plan(&all, 4);
        for shard in shards {
            let mut keys: Vec<String> = shard.iter().map(RunSpec::cache_key).collect();
            keys.sort();
            for pair in keys.chunks(2) {
                assert_eq!(pair.len(), 2, "duplicates split across shards");
                assert_eq!(pair[0], pair[1]);
            }
        }
    }
}
