//! Figures as data: a named render function over an executor.
//!
//! A figure is a pure function from run lengths and an *executor* — a
//! callback resolving a [`RunSpec`] to its [`Summary`] — to the figure's
//! full text output. This single definition serves three roles:
//!
//! 1. **Job collection**: calling the renderer with a recording executor
//!    (returns [`Summary::zeroed`], discards the text) enumerates exactly
//!    the specs the figure needs. One source of truth — the job list can
//!    never drift from what rendering actually consumes.
//! 2. **Rendering**: calling it again with a lookup executor over the
//!    scheduler's results produces the output, byte-identically regardless
//!    of worker count.
//! 3. **Thin binaries**: a `figNN` binary is one call into the registry.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::pool::panic_message;
use crate::spec::RunSpec;
use crate::summary::Summary;
use crate::RunLengths;

/// Resolves one spec to its summary during a render pass.
pub type Executor<'a> = dyn FnMut(&RunSpec) -> Summary + 'a;

/// Renders a figure's text given run lengths and an executor.
pub type RenderFn = fn(RunLengths, &mut Executor) -> String;

/// One figure of the paper (or an extension study).
#[derive(Clone, Copy)]
pub struct Figure {
    /// Short name, also the results file stem (`fig01` → `results/fig01.txt`).
    pub name: &'static str,
    /// One-line description for the sweep report.
    pub title: &'static str,
    /// Renderer version, part of the incremental-render fingerprint
    /// (`crate::manifest`). Bump it whenever the renderer changes what it
    /// prints for the *same* inputs — new columns, reworded headers,
    /// different precision — so stale output files are re-rendered instead
    /// of trusted. Input changes (new/removed runs) are caught by the
    /// fingerprint's key set and need no bump.
    pub version: u32,
    /// The renderer.
    pub render: RenderFn,
}

impl Figure {
    /// Enumerates the runs this figure needs, via a recording render pass.
    /// A panicking renderer yields an error instead of unwinding.
    pub fn jobs(&self, lengths: RunLengths) -> Result<Vec<RunSpec>, String> {
        let mut specs = Vec::new();
        catch_unwind(AssertUnwindSafe(|| {
            (self.render)(lengths, &mut |spec| {
                specs.push(spec.clone());
                Summary::zeroed()
            });
        }))
        .map_err(|panic| {
            format!(
                "{} job enumeration panicked: {}",
                self.name,
                panic_message(&*panic)
            )
        })?;
        Ok(specs)
    }

    /// The sorted, deduplicated cache keys of every run this figure
    /// consumes — its declared input set, feeding the incremental-render
    /// fingerprint ([`crate::manifest::fingerprint`]).
    pub fn input_keys(&self, lengths: RunLengths) -> Result<Vec<String>, String> {
        let mut keys: Vec<String> = self.jobs(lengths)?.iter().map(RunSpec::cache_key).collect();
        keys.sort_unstable();
        keys.dedup();
        Ok(keys)
    }

    /// Renders the figure against resolved results. `resolve` returns the
    /// summary for a key, or an error for a run that failed or was never
    /// scheduled; any such error (or renderer panic) fails this figure
    /// only, not the sweep.
    pub fn output(
        &self,
        lengths: RunLengths,
        resolve: &dyn Fn(&RunSpec) -> Result<Summary, String>,
    ) -> Result<String, String> {
        catch_unwind(AssertUnwindSafe(|| {
            let mut text = (self.render)(lengths, &mut |spec| match resolve(spec) {
                Ok(summary) => summary,
                // Unwinds into the catch above; rendering has no other
                // way to abort mid-table.
                Err(e) => panic!("{}: {e}", self.name),
            });
            if !text.ends_with('\n') {
                text.push('\n');
            }
            text
        }))
        .map_err(|panic| panic_message(&*panic))
    }
}

impl std::fmt::Debug for Figure {
    // Hand-written to skip the fn pointer, whose address is build-dependent.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Figure")
            .field("name", &self.name)
            .field("title", &self.title)
            .field("version", &self.version)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipsim_cpu::WorkloadSet;
    use ipsim_trace::Workload;
    use ipsim_types::SystemConfig;

    fn two_job_render(lengths: RunLengths, x: &mut Executor) -> String {
        let mut out = String::new();
        for w in [Workload::Db, Workload::Web] {
            let spec = RunSpec::new(
                SystemConfig::single_core(),
                WorkloadSet::homogeneous(w),
                lengths,
            );
            let s = x(&spec);
            out.push_str(&format!("{} {}\n", spec.workloads.name(), s.instructions));
        }
        out
    }

    const FIG: Figure = Figure {
        name: "figtest",
        title: "test figure",
        version: 1,
        render: two_job_render,
    };

    fn lengths() -> RunLengths {
        RunLengths {
            warm: 1,
            measure: 2,
        }
    }

    #[test]
    fn jobs_are_collected_without_running_anything() {
        let jobs = FIG.jobs(lengths()).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].workloads.name(), "DB");
        assert_eq!(jobs[1].workloads.name(), "Web");
    }

    #[test]
    fn input_keys_are_sorted_and_deduplicated() {
        fn repeat_render(lengths: RunLengths, x: &mut Executor) -> String {
            // Reads the same run twice; the declared input set must not.
            let spec = RunSpec::new(
                SystemConfig::single_core(),
                WorkloadSet::homogeneous(Workload::Db),
                lengths,
            );
            format!("{} {}\n", x(&spec).instructions, x(&spec).instructions)
        }
        let fig = Figure {
            name: "figdup",
            title: "duplicate-input figure",
            version: 1,
            render: repeat_render,
        };
        let keys = fig.input_keys(lengths()).unwrap();
        assert_eq!(keys.len(), 1, "{keys:?}");

        let keys = FIG.input_keys(lengths()).unwrap();
        assert_eq!(keys.len(), 2);
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn output_uses_resolved_summaries() {
        let resolve = |_: &RunSpec| -> Result<Summary, String> {
            let mut s = Summary::zeroed();
            s.instructions = 42;
            Ok(s)
        };
        let text = FIG.output(lengths(), &resolve).unwrap();
        assert_eq!(text, "DB 42\nWeb 42\n");
    }

    #[test]
    fn failed_runs_fail_the_figure_not_the_process() {
        let resolve =
            |_: &RunSpec| -> Result<Summary, String> { Err("simulation exploded".into()) };
        let err = FIG.output(lengths(), &resolve).unwrap_err();
        assert!(err.contains("simulation exploded"), "{err}");
    }
}
