//! Fully specified experiment runs and their stable cache keys.

use ipsim_cache::InstallPolicy;
use ipsim_core::PrefetcherKind;
use ipsim_cpu::{LimitSpec, System, SystemBuilder, SystemMetrics, WorkloadSet};
use ipsim_prefetch::ZooPlan;
use ipsim_types::config::DEFAULT_SCHED_QUANTUM;
use ipsim_types::SystemConfig;

use crate::cache::RunCache;
use crate::hash::fnv1a64;
use crate::summary::Summary;
use crate::RunLengths;

/// A fully specified experiment run.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// System configuration (cores, caches, memory).
    pub config: SystemConfig,
    /// Per-core prefetcher.
    pub prefetcher: PrefetcherKind,
    /// Optional prefetcher-zoo plan; when set it runs *instead of*
    /// `prefetcher` and the run's telemetry carries per-scheme
    /// shadow-attribution rows.
    pub zoo: Option<ZooPlan>,
    /// L2 install policy for instruction prefetches.
    pub policy: InstallPolicy,
    /// Optional limit-study spec.
    pub limit: Option<LimitSpec>,
    /// Workload assignment.
    pub workloads: WorkloadSet,
    /// Warm-up / measurement windows.
    pub lengths: RunLengths,
}

impl RunSpec {
    /// A baseline spec: the paper's default system with no prefetcher.
    pub fn new(config: SystemConfig, workloads: WorkloadSet, lengths: RunLengths) -> RunSpec {
        RunSpec {
            config,
            prefetcher: PrefetcherKind::None,
            zoo: None,
            policy: InstallPolicy::InstallBoth,
            limit: None,
            workloads,
            lengths,
        }
    }

    /// Sets the prefetcher.
    pub fn prefetcher(mut self, kind: PrefetcherKind) -> RunSpec {
        self.prefetcher = kind;
        self
    }

    /// Sets a prefetcher-zoo plan (overrides [`RunSpec::prefetcher`]).
    pub fn zoo(mut self, plan: ZooPlan) -> RunSpec {
        self.zoo = Some(plan);
        self
    }

    /// Sets the install policy.
    pub fn policy(mut self, policy: InstallPolicy) -> RunSpec {
        self.policy = policy;
        self
    }

    /// Sets a limit-study spec.
    pub fn limit(mut self, limit: LimitSpec) -> RunSpec {
        self.limit = Some(limit);
        self
    }

    /// The canonical plain-text descriptor covering every parameter that
    /// affects results; the cache key is a hash of this string.
    fn descriptor(&self) -> String {
        let c = &self.config;
        let mut descr = format!(
            "v4|cores={}|l1i={}x{}x{}|l1d={}x{}x{}|l2={}x{}x{}|lat={},{},{}|bw={:.4}|\
             fw={},iw={},rob={},pd={},mshr={}|gsh={},btb={},ras={}|pf={:?}|pol={:?}|lim={:?}|\
             ws={:?}/{}/{}|warm={}|meas={}",
            c.n_cores,
            c.core.l1i.size_bytes(),
            c.core.l1i.assoc(),
            c.core.l1i.line().bytes(),
            c.core.l1d.size_bytes(),
            c.core.l1d.assoc(),
            c.core.l1d.line().bytes(),
            c.mem.l2.size_bytes(),
            c.mem.l2.assoc(),
            c.mem.l2.line().bytes(),
            c.core.l1_latency,
            c.mem.l2_latency,
            c.mem.mem_latency,
            c.mem.offchip_bytes_per_cycle,
            c.core.fetch_width,
            c.core.issue_width,
            c.core.rob_entries,
            c.core.pipeline_depth,
            c.core.mshrs,
            c.core.branch.gshare_entries,
            c.core.branch.btb_entries,
            c.core.branch.ras_entries,
            self.prefetcher,
            self.policy,
            self.limit,
            self.workloads.per_core,
            self.workloads.program_seed,
            self.workloads.walker_seed,
            self.lengths.warm,
            self.lengths.measure,
        );
        if c.core.tlb.enabled {
            descr.push_str(&format!("|tlb={:?}", c.core.tlb));
        }
        // Appended only when present so pre-zoo specs keep their keys.
        if let Some(plan) = &self.zoo {
            descr.push_str(&format!("|zoo={}", plan.canonical()));
        }
        // Appended only when non-default so the pre-knob key corpus
        // survives: sq=16 specs hash exactly as before the knob existed.
        if c.sched_quantum != DEFAULT_SCHED_QUANTUM {
            descr.push_str(&format!("|sq={}", c.sched_quantum));
        }
        descr
    }

    /// A stable cache key covering every parameter that affects results.
    ///
    /// Hashed with hand-rolled FNV-1a (see [`crate::hash`]) rather than
    /// std's `DefaultHasher`, whose algorithm is unspecified and may change
    /// between toolchains — which would silently invalidate the whole
    /// on-disk cache.
    pub fn cache_key(&self) -> String {
        format!("{:016x}", fnv1a64(self.descriptor().as_bytes()))
    }

    /// The system half of the descriptor: exactly the fields that
    /// determine what [`RunSpec::build_system`] constructs (configuration,
    /// prefetcher/zoo, policy, limit). Workloads and run lengths are
    /// deliberately absent — they describe what flows *through* a system,
    /// not the system itself.
    fn system_descriptor(&self) -> String {
        let c = &self.config;
        let mut descr = format!(
            "system-v1|cores={}|l1i={}x{}x{}|l1d={}x{}x{}|l2={}x{}x{}|lat={},{},{}|bw={:.4}|\
             fw={},iw={},rob={},pd={},mshr={}|gsh={},btb={},ras={}|sq={}|pf={:?}|pol={:?}|lim={:?}",
            c.n_cores,
            c.core.l1i.size_bytes(),
            c.core.l1i.assoc(),
            c.core.l1i.line().bytes(),
            c.core.l1d.size_bytes(),
            c.core.l1d.assoc(),
            c.core.l1d.line().bytes(),
            c.mem.l2.size_bytes(),
            c.mem.l2.assoc(),
            c.mem.l2.line().bytes(),
            c.core.l1_latency,
            c.mem.l2_latency,
            c.mem.mem_latency,
            c.mem.offchip_bytes_per_cycle,
            c.core.fetch_width,
            c.core.issue_width,
            c.core.rob_entries,
            c.core.pipeline_depth,
            c.core.mshrs,
            c.core.branch.gshare_entries,
            c.core.branch.btb_entries,
            c.core.branch.ras_entries,
            c.sched_quantum,
            self.prefetcher,
            self.policy,
            self.limit,
        );
        if c.core.tlb.enabled {
            descr.push_str(&format!("|tlb={:?}", c.core.tlb));
        }
        if let Some(plan) = &self.zoo {
            descr.push_str(&format!("|zoo={}", plan.canonical()));
        }
        descr
    }

    /// A stable key for the *system* this spec builds: equal iff two specs
    /// construct interchangeable [`System`]s, so a reset-in-place slot
    /// (see `crate::traces::SystemSlot`) can safely reuse one spec's
    /// system for another. Workload and length changes preserve the key;
    /// any config/prefetcher/policy/limit change breaks it.
    pub fn system_key(&self) -> String {
        format!("{:016x}", fnv1a64(self.system_descriptor().as_bytes()))
    }

    /// The workload half of the descriptor: exactly the fields that
    /// determine each core's *instruction stream* (which workload runs
    /// where, the synthesis seeds, and how many ops each core consumes).
    /// Caches, prefetchers and policies are deliberately absent — specs
    /// differing only in those share one stream.
    fn trace_descriptor(&self) -> String {
        format!(
            "trace-v1|cores={}|ws={:?}/{}/{}|warm={}|meas={}",
            self.config.n_cores,
            self.workloads.per_core,
            self.workloads.program_seed,
            self.workloads.walker_seed,
            self.lengths.warm,
            self.lengths.measure,
        )
    }

    /// A stable key for this spec's instruction streams (the trace-store
    /// analogue of [`RunSpec::cache_key`]): equal iff two specs would feed
    /// their cores identical streams, so one captured trace serves every
    /// config sweep over the same workload.
    pub fn trace_key(&self) -> String {
        format!("{:016x}", fnv1a64(self.trace_descriptor().as_bytes()))
    }

    /// Human-readable stream description embedded in captured trace files,
    /// so a trace on disk identifies its workload without the harness.
    pub fn trace_meta(&self) -> String {
        self.trace_descriptor()
    }

    /// Builds the configured system, ready for
    /// [`ipsim_cpu::System::run_workload_from`] with any op sources.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid — experiment configs are
    /// static and a bad one is a programming error.
    pub fn build_system(&self) -> System {
        let builder = SystemBuilder::new(self.config.clone())
            .prefetcher(self.prefetcher)
            .install_policy(self.policy);
        let builder = match &self.zoo {
            Some(plan) => builder.zoo(plan.clone()),
            None => builder,
        };
        let builder = match self.limit {
            Some(l) => builder.limit(l),
            None => builder,
        };
        builder.build().expect("experiment configuration is valid")
    }

    /// A short human-readable tag for progress lines and the run log.
    pub fn label(&self) -> String {
        let pf = match &self.zoo {
            Some(plan) => format!("zoo[{}]", plan.canonical()),
            None => self.prefetcher.label().to_string(),
        };
        let mut label = format!("{}c·{}·{}", self.config.n_cores, self.workloads.name(), pf);
        if self.policy != InstallPolicy::InstallBoth {
            label.push_str("·bypass");
        }
        if let Some(limit) = &self.limit {
            label.push_str("·lim:");
            label.push_str(limit.label());
        }
        label
    }

    /// Runs the simulation unconditionally (no cache involved).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid — experiment configs are
    /// static and a bad one is a programming error.
    pub fn execute(&self) -> Summary {
        Summary::from_metrics(&self.execute_metrics())
    }

    /// Like [`RunSpec::execute`], but returns the full [`SystemMetrics`] —
    /// including the timed measure window, so callers can report
    /// `sim_mips` alongside the cacheable summary.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid — experiment configs are
    /// static and a bad one is a programming error.
    pub fn execute_metrics(&self) -> SystemMetrics {
        let mut system = self.build_system();
        system.run_workload(&self.workloads, self.lengths.warm, self.lengths.measure)
    }

    /// Executes the run, consulting and updating the default on-disk cache
    /// (`results/cache/`, overridable via `IPSIM_CACHE_DIR`). Delete that
    /// directory to force re-simulation.
    pub fn run(&self) -> Summary {
        let cache = RunCache::from_env();
        match cache.lookup(self) {
            Some(summary) => summary,
            None => {
                let summary = self.execute();
                cache.store(self, &summary);
                summary
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipsim_trace::Workload;

    #[test]
    fn cache_keys_distinguish_configs() {
        let lengths = RunLengths {
            warm: 1,
            measure: 2,
        };
        let a = RunSpec::new(
            SystemConfig::single_core(),
            WorkloadSet::homogeneous(Workload::Db),
            lengths,
        );
        let b = a.clone().prefetcher(PrefetcherKind::NextLineTagged);
        let c = a.clone().policy(InstallPolicy::BypassL2UntilUseful);
        let d = RunSpec::new(
            SystemConfig::cmp4(),
            WorkloadSet::homogeneous(Workload::Db),
            lengths,
        );
        let keys = [a.cache_key(), b.cache_key(), c.cache_key(), d.cache_key()];
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j]);
            }
        }
    }

    /// The key must be a pure function of the descriptor — stable across
    /// processes, toolchains and time. Pin one literal key so any change
    /// to the descriptor format or hash shows up as a test failure (and a
    /// deliberate change bumps the descriptor version).
    #[test]
    fn cache_keys_are_stable_across_builds() {
        let spec = RunSpec::new(
            SystemConfig::single_core(),
            WorkloadSet::homogeneous(Workload::Db),
            RunLengths {
                warm: 1000,
                measure: 2000,
            },
        );
        assert_eq!(spec.cache_key(), spec.cache_key());
        let expected = format!(
            "{:016x}",
            crate::hash::fnv1a64(spec.descriptor().as_bytes())
        );
        assert_eq!(spec.cache_key(), expected);
    }

    #[test]
    fn zoo_plans_change_key_label_and_engine() {
        let lengths = RunLengths {
            warm: 1,
            measure: 2,
        };
        let plain = RunSpec::new(
            SystemConfig::single_core(),
            WorkloadSet::homogeneous(Workload::Db),
            lengths,
        );
        let zoo = plain.clone().zoo(ZooPlan::parse("nl+disc").unwrap());
        assert_ne!(plain.cache_key(), zoo.cache_key());
        assert_ne!(
            zoo.cache_key(),
            plain
                .clone()
                .zoo(ZooPlan::parse("nl+disc:ahead=2").unwrap())
                .cache_key(),
            "knob values are part of the key"
        );
        assert_eq!(
            plain.trace_key(),
            zoo.trace_key(),
            "zoo runs share the plain spec's captured traces"
        );
        assert!(zoo.label().contains("zoo[nl+disc]"), "{}", zoo.label());
        let sys = zoo.build_system();
        assert_eq!(sys.zoo_scheme_stats().len(), 2);
    }

    /// The default quantum must hash exactly as it did before the knob
    /// existed (no `|sq=` appended), so the on-disk cache corpus and the
    /// golden figure keys survive; any other value must change the key.
    #[test]
    fn sched_quantum_affects_key_only_when_non_default() {
        let lengths = RunLengths {
            warm: 1,
            measure: 2,
        };
        let base = RunSpec::new(
            SystemConfig::cmp4(),
            WorkloadSet::homogeneous(Workload::Db),
            lengths,
        );
        let mut explicit_default = base.clone();
        explicit_default.config.sched_quantum = ipsim_types::config::DEFAULT_SCHED_QUANTUM;
        assert_eq!(base.cache_key(), explicit_default.cache_key());
        assert!(!base.descriptor().contains("|sq="));

        let mut shorter = base.clone();
        shorter.config.sched_quantum = 8;
        assert_ne!(base.cache_key(), shorter.cache_key());
        assert!(shorter.descriptor().ends_with("|sq=8"));
        assert_eq!(
            base.trace_key(),
            shorter.trace_key(),
            "quantum changes interleaving, not the instruction streams"
        );
    }

    #[test]
    fn system_key_ignores_workloads_and_lengths() {
        let a = RunSpec::new(
            SystemConfig::single_core(),
            WorkloadSet::homogeneous(Workload::Db),
            RunLengths {
                warm: 1,
                measure: 2,
            },
        );
        let mut b = RunSpec::new(
            SystemConfig::single_core(),
            WorkloadSet::homogeneous(Workload::Web),
            RunLengths {
                warm: 500,
                measure: 700,
            },
        );
        assert_eq!(a.system_key(), b.system_key());
        assert_ne!(a.cache_key(), b.cache_key());

        b.config.sched_quantum = 8;
        assert_ne!(a.system_key(), b.system_key());
        let c = a.clone().prefetcher(PrefetcherKind::NextLineTagged);
        assert_ne!(a.system_key(), c.system_key());
        let d = a.clone().zoo(ZooPlan::parse("nl+disc").unwrap());
        assert_ne!(a.system_key(), d.system_key());
    }

    #[test]
    fn labels_are_compact_and_distinct() {
        let lengths = RunLengths {
            warm: 1,
            measure: 2,
        };
        let base = RunSpec::new(
            SystemConfig::cmp4(),
            WorkloadSet::homogeneous(Workload::Db),
            lengths,
        );
        let bypassed = base
            .clone()
            .prefetcher(PrefetcherKind::NextLineTagged)
            .policy(InstallPolicy::BypassL2UntilUseful);
        assert_ne!(base.label(), bypassed.label());
        assert!(bypassed.label().contains("bypass"));
    }
}
