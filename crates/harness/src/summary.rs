//! A compact, disk-cacheable summary of one simulation run.

use ipsim_cpu::SystemMetrics;
use ipsim_types::stats::CategoryCounts;
use ipsim_types::MissCategory;

/// Everything the figure harnesses need from a run, in plain numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Total instructions retired.
    pub instructions: u64,
    /// Aggregate IPC (sum of per-core IPCs).
    pub ipc: f64,
    /// L1I misses per instruction.
    pub l1i_mpi: f64,
    /// L2 instruction misses per instruction.
    pub l2i_mpi: f64,
    /// L2 data misses per instruction.
    pub l2d_mpi: f64,
    /// L1D misses per instruction.
    pub l1d_mpi: f64,
    /// Prefetch accuracy (useful / issued).
    pub accuracy: f64,
    /// Prefetches issued per 1000 instructions.
    pub issued_per_ki: f64,
    /// L1I miss counts by category.
    pub l1i_breakdown: CategoryCounts,
    /// L2 instruction miss counts by category.
    pub l2i_breakdown: CategoryCounts,
}

impl Summary {
    /// Extracts the summary from full run metrics.
    pub fn from_metrics(m: &SystemMetrics) -> Summary {
        Summary {
            instructions: m.instructions(),
            ipc: m.ipc(),
            l1i_mpi: m.l1i_miss_per_instr(),
            l2i_mpi: m.l2_instr_miss_per_instr(),
            l2d_mpi: m.l2_data_miss_per_instr(),
            l1d_mpi: m.l1d_miss_per_instr(),
            accuracy: m.prefetch_accuracy(),
            issued_per_ki: m.prefetch().issued as f64 / (m.instructions().max(1) as f64 / 1000.0),
            l1i_breakdown: m.l1i_miss_breakdown(),
            l2i_breakdown: *m.l2_instr_miss_breakdown(),
        }
    }

    /// An all-zero summary: the stand-in the job-recording pass feeds to
    /// figure renderers while collecting their [`RunSpec`]s (renderers
    /// guard every division, so zeros flow through harmlessly).
    ///
    /// [`RunSpec`]: crate::RunSpec
    pub fn zeroed() -> Summary {
        Summary {
            instructions: 0,
            ipc: 0.0,
            l1i_mpi: 0.0,
            l2i_mpi: 0.0,
            l2d_mpi: 0.0,
            l1d_mpi: 0.0,
            accuracy: 0.0,
            issued_per_ki: 0.0,
            l1i_breakdown: CategoryCounts::new(),
            l2i_breakdown: CategoryCounts::new(),
        }
    }

    /// Serialises to one tab-separated line (for the run cache).
    pub fn to_tsv(&self) -> String {
        let mut fields = vec![
            self.instructions.to_string(),
            format!("{:.17e}", self.ipc),
            format!("{:.17e}", self.l1i_mpi),
            format!("{:.17e}", self.l2i_mpi),
            format!("{:.17e}", self.l2d_mpi),
            format!("{:.17e}", self.l1d_mpi),
            format!("{:.17e}", self.accuracy),
            format!("{:.17e}", self.issued_per_ki),
        ];
        for cat in MissCategory::ALL {
            fields.push(self.l1i_breakdown[cat].to_string());
        }
        for cat in MissCategory::ALL {
            fields.push(self.l2i_breakdown[cat].to_string());
        }
        fields.join("\t")
    }

    /// Parses a line produced by [`Summary::to_tsv`]; `None` on any
    /// mismatch (treated as cache corruption by the run cache).
    pub fn from_tsv(line: &str) -> Option<Summary> {
        let parts: Vec<&str> = line.trim_end().split('\t').collect();
        if parts.len() != 8 + 2 * MissCategory::COUNT {
            return None;
        }
        let mut l1i = CategoryCounts::new();
        let mut l2i = CategoryCounts::new();
        for (i, cat) in MissCategory::ALL.iter().enumerate() {
            l1i[*cat] = parts[8 + i].parse().ok()?;
            l2i[*cat] = parts[8 + MissCategory::COUNT + i].parse().ok()?;
        }
        Some(Summary {
            instructions: parts[0].parse().ok()?,
            ipc: parts[1].parse().ok()?,
            l1i_mpi: parts[2].parse().ok()?,
            l2i_mpi: parts[3].parse().ok()?,
            l2d_mpi: parts[4].parse().ok()?,
            l1d_mpi: parts[5].parse().ok()?,
            accuracy: parts[6].parse().ok()?,
            issued_per_ki: parts[7].parse().ok()?,
            l1i_breakdown: l1i,
            l2i_breakdown: l2i,
        })
    }

    /// Speedup of `self` over `baseline` (IPC ratio).
    pub fn speedup_over(&self, baseline: &Summary) -> f64 {
        if baseline.ipc == 0.0 {
            0.0
        } else {
            self.ipc / baseline.ipc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsv_round_trips() {
        let mut s = Summary {
            instructions: 123456,
            ipc: 0.87654321,
            l1i_mpi: 0.0221,
            l2i_mpi: 0.0019,
            l2d_mpi: 0.0084,
            l1d_mpi: 0.0241,
            accuracy: 0.33,
            issued_per_ki: 96.5,
            l1i_breakdown: CategoryCounts::new(),
            l2i_breakdown: CategoryCounts::new(),
        };
        s.l1i_breakdown[MissCategory::Sequential] = 42;
        s.l2i_breakdown[MissCategory::Call] = 7;
        let line = s.to_tsv();
        let back = Summary::from_tsv(&line).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(Summary::from_tsv("").is_none());
        assert!(Summary::from_tsv("1\t2\t3").is_none());
        assert!(Summary::from_tsv(&"x\t".repeat(26)).is_none());
    }
}
