//! The incremental-render manifest: skip figures whose inputs are
//! unchanged.
//!
//! Re-rendering a figure is cheap; re-*simulating* its inputs is not, and
//! a sweep that can prove "this figure's output file is already
//! byte-identical to what a fresh render would produce" can skip both.
//! The proof has two halves, stored per figure in
//! `results/figures/manifest.tsv`:
//!
//! * a **fingerprint** — FNV-1a 64 over the figure's name, its renderer
//!   version ([`crate::figure::Figure::version`], bumped whenever the
//!   output format changes) and the *sorted* cache keys of every run the
//!   figure consumes. Run summaries are immutable under their
//!   content-addressed key, so an unchanged fingerprint means a fresh
//!   render would produce the same bytes;
//! * an **output hash** — FNV-1a 64 over the bytes previously written to
//!   `results/<name>.txt`, re-checked against the file on disk at skip
//!   time, so a deleted or hand-edited output file forces a re-render
//!   instead of being trusted.
//!
//! The manifest is an optimisation, never an authority: a missing,
//! torn or corrupt manifest parses as empty and the sweep falls back to
//! a full render. Writes are atomic (temp file + rename), matching the
//! run cache's crash discipline.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use crate::hash::{fnv1a64, Fnv1a64};

/// First line of a valid manifest file.
pub const MANIFEST_SCHEMA: &str = "# ipsim-figure-manifest v1";

/// Default manifest path, relative to the working directory.
pub const DEFAULT_MANIFEST: &str = "results/figures/manifest.tsv";

/// What the last successful render of one figure looked like.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Fingerprint over name, renderer version and sorted input keys.
    pub fingerprint: String,
    /// FNV-1a 64 (hex) of the rendered output bytes.
    pub output_hash: String,
    /// How many input runs fed the render (diagnostics only).
    pub inputs: usize,
}

/// All figures' render records, keyed by figure name.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FigureManifest {
    entries: BTreeMap<String, ManifestEntry>,
}

impl FigureManifest {
    /// An empty manifest (every figure renders).
    pub fn new() -> FigureManifest {
        FigureManifest::default()
    }

    /// Loads the manifest at `path`. Any anomaly — missing file, wrong
    /// schema line, malformed row, truncated tail — yields an *empty*
    /// manifest: the worst consequence of distrust is one full render.
    pub fn load(path: &Path) -> FigureManifest {
        let Ok(text) = fs::read_to_string(path) else {
            return FigureManifest::new();
        };
        let mut lines = text.lines();
        if lines.next() != Some(MANIFEST_SCHEMA) {
            return FigureManifest::new();
        }
        let mut entries = BTreeMap::new();
        for line in lines {
            if line.starts_with('#') {
                continue;
            }
            let mut cols = line.split('\t');
            let (Some(name), Some(fingerprint), Some(output_hash), Some(inputs), None) = (
                cols.next(),
                cols.next(),
                cols.next(),
                cols.next(),
                cols.next(),
            ) else {
                return FigureManifest::new();
            };
            let Ok(inputs) = inputs.parse::<usize>() else {
                return FigureManifest::new();
            };
            if !is_hex16(fingerprint) || !is_hex16(output_hash) || name.is_empty() {
                return FigureManifest::new();
            }
            entries.insert(
                name.to_string(),
                ManifestEntry {
                    fingerprint: fingerprint.to_string(),
                    output_hash: output_hash.to_string(),
                    inputs,
                },
            );
        }
        FigureManifest { entries }
    }

    /// Writes the manifest atomically (temp file + rename).
    pub fn store(&self, path: &Path) -> io::Result<()> {
        let dir = path.parent().unwrap_or_else(|| Path::new("."));
        fs::create_dir_all(dir)?;
        let mut out = String::from(MANIFEST_SCHEMA);
        out.push_str("\n# name\tfingerprint\toutput_hash\tinputs\n");
        for (name, e) in &self.entries {
            out.push_str(&format!(
                "{name}\t{}\t{}\t{}\n",
                e.fingerprint, e.output_hash, e.inputs
            ));
        }
        let tmp = dir.join(format!(".manifest.{}.tmp", std::process::id()));
        fs::write(&tmp, out)?;
        if let Err(e) = fs::rename(&tmp, path) {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        Ok(())
    }

    /// The recorded entry for `name`, if any.
    pub fn get(&self, name: &str) -> Option<&ManifestEntry> {
        self.entries.get(name)
    }

    /// Records (or replaces) the entry for `name`.
    pub fn set(&mut self, name: &str, entry: ManifestEntry) {
        self.entries.insert(name.to_string(), entry);
    }

    /// Number of recorded figures.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no figure is recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the figure named `name` can be skipped: its recorded
    /// fingerprint matches `fingerprint` *and* the output file at
    /// `output` still hashes to the recorded value.
    pub fn allows_skip(&self, name: &str, fingerprint: &str, output: &Path) -> bool {
        let Some(entry) = self.entries.get(name) else {
            return false;
        };
        if entry.fingerprint != fingerprint {
            return false;
        }
        match fs::read(output) {
            Ok(bytes) => entry.output_hash == hash_hex(&bytes),
            Err(_) => false,
        }
    }
}

/// The render fingerprint of a figure: its name, renderer version and the
/// *sorted, deduplicated* cache keys of every input run. Sorting makes the
/// fingerprint independent of enumeration order; dedup makes it
/// independent of how many times a renderer re-reads the same run.
pub fn fingerprint(name: &str, version: u32, input_keys: &[String]) -> String {
    let mut keys: Vec<&str> = input_keys.iter().map(String::as_str).collect();
    keys.sort_unstable();
    keys.dedup();
    let mut h = Fnv1a64::new();
    h.write(b"figmf-v1|");
    h.write(name.as_bytes());
    h.write(format!("|r{version}").as_bytes());
    for key in keys {
        h.write(b"|");
        h.write(key.as_bytes());
    }
    format!("{:016x}", h.finish())
}

/// FNV-1a 64 of `bytes` as the 16-hex-digit form the manifest stores.
pub fn hash_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a64(bytes))
}

fn is_hex16(s: &str) -> bool {
    s.len() == 16 && s.bytes().all(|b| b.is_ascii_hexdigit())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ipsim-manifest-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn entry(fp: &str, oh: &str) -> ManifestEntry {
        ManifestEntry {
            fingerprint: fp.into(),
            output_hash: oh.into(),
            inputs: 3,
        }
    }

    #[test]
    fn store_then_load_round_trips() {
        let dir = tmp("roundtrip");
        let path = dir.join("manifest.tsv");
        let mut m = FigureManifest::new();
        m.set("fig01", entry("00000000000000aa", "00000000000000bb"));
        m.set("fig02", entry("00000000000000cc", "00000000000000dd"));
        m.store(&path).unwrap();
        let loaded = FigureManifest::load(&path);
        assert_eq!(loaded, m);
        // No temp files left behind.
        let tmps: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(tmps.is_empty(), "{tmps:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_or_torn_manifests_parse_as_empty() {
        let dir = tmp("corrupt");
        let path = dir.join("manifest.tsv");
        for bad in [
            "",                                                     // empty file
            "not a manifest\n",                                     // wrong header
            "# ipsim-figure-manifest v99\nfig01\taa\tbb\t1\n",      // future schema
            &format!("{MANIFEST_SCHEMA}\nfig01\tzz\n"),             // short row
            &format!("{MANIFEST_SCHEMA}\nfig01\tzz\tbb\t1\n"),      // non-hex hash
            &format!("{MANIFEST_SCHEMA}\nfig01\t00000000000000aa"), // torn tail
        ] {
            fs::write(&path, bad).unwrap();
            assert!(
                FigureManifest::load(&path).is_empty(),
                "must fall back to full render for {bad:?}"
            );
        }
        assert!(FigureManifest::load(&dir.join("missing.tsv")).is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_is_order_insensitive_and_knob_sensitive() {
        let keys_ab = vec!["aaaa".to_string(), "bbbb".to_string()];
        let keys_ba = vec!["bbbb".to_string(), "aaaa".to_string()];
        let keys_dup = vec!["aaaa".to_string(), "bbbb".to_string(), "aaaa".to_string()];
        let fp = fingerprint("fig01", 1, &keys_ab);
        assert_eq!(fp, fingerprint("fig01", 1, &keys_ba));
        assert_eq!(fp, fingerprint("fig01", 1, &keys_dup));
        // Any input-key change, name change or renderer bump invalidates.
        assert_ne!(fp, fingerprint("fig01", 1, &["aaaa".to_string()]));
        assert_ne!(fp, fingerprint("fig02", 1, &keys_ab));
        assert_ne!(fp, fingerprint("fig01", 2, &keys_ab));
    }

    #[test]
    fn skip_requires_matching_fingerprint_and_intact_output() {
        let dir = tmp("skip");
        let out = dir.join("fig01.txt");
        fs::write(&out, "rendered\n").unwrap();
        let fp = fingerprint("fig01", 1, &["aaaa".to_string()]);
        let mut m = FigureManifest::new();
        m.set(
            "fig01",
            ManifestEntry {
                fingerprint: fp.clone(),
                output_hash: hash_hex(b"rendered\n"),
                inputs: 1,
            },
        );
        assert!(m.allows_skip("fig01", &fp, &out));
        // Unknown figure, stale fingerprint, edited output, missing output.
        assert!(!m.allows_skip("fig02", &fp, &out));
        assert!(!m.allows_skip("fig01", "0000000000000000", &out));
        fs::write(&out, "tampered\n").unwrap();
        assert!(!m.allows_skip("fig01", &fp, &out));
        fs::remove_file(&out).unwrap();
        assert!(!m.allows_skip("fig01", &fp, &out));
        let _ = fs::remove_dir_all(&dir);
    }
}
