//! The on-disk trace store: capture each workload's instruction stream
//! once, replay it for every other configuration that shares it.
//!
//! A [`crate::spec::RunSpec`]'s instruction stream depends only on its
//! *workload half* — core count, workload assignment, seeds and run
//! lengths — not on caches, prefetchers or policies. A 13-figure sweep
//! therefore simulates the same handful of streams dozens of times. The
//! store keys streams by [`crate::spec::RunSpec::trace_key`] and keeps one
//! file per core under one directory (default `results/traces/`,
//! overridable via [`TRACE_DIR_ENV`]):
//!
//! ```text
//! results/traces/<trace_key>.c<core>.itrace
//! ```
//!
//! Hardening mirrors the run cache ([`crate::cache`]):
//!
//! * captures write to pid-suffixed temp files and rename into place, so
//!   an interrupted capture never leaves a plausible-looking trace;
//! * replay verifies every block CRC before the simulation starts (at
//!   checksum speed, no decode), so a corrupt file is quarantined to
//!   `*.corrupt` (evidence, not deleted) and the run transparently falls
//!   back to live generation — there is no mid-run failure path;
//! * capture I/O errors degrade the run to plain live generation
//!   (the simulation result is identical either way).

use std::collections::{HashMap, HashSet};
use std::fs::{self, File};
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use ipsim_cpu::{OpSource, System};
use ipsim_stream::{ArenaSource, ReplaySource, Tee, TraceReader, TraceWriter};
use ipsim_telemetry::{TelemetryConfig, TelemetryRun};
use ipsim_types::instr::TraceOp;

use crate::spec::RunSpec;
use crate::summary::Summary;

/// Environment variable overriding the trace directory. The values `off`
/// and `0` disable the store entirely.
pub const TRACE_DIR_ENV: &str = "IPSIM_TRACE_DIR";

/// Default trace directory, relative to the working directory.
pub const DEFAULT_TRACE_DIR: &str = "results/traces";

/// Environment variable overriding the in-memory arena budget, in total
/// decoded ops held across all cached streams. `0` disables arenas (every
/// replay streams through the codec).
pub const ARENA_OPS_ENV: &str = "IPSIM_ARENA_OPS";

/// Default arena budget: 16 million ops (~a few hundred MB at `TraceOp`
/// width) — far above the paper sweeps' stream lengths, far below a
/// machine-threatening allocation.
pub const DEFAULT_ARENA_OPS: u64 = 16_000_000;

fn arena_budget() -> u64 {
    std::env::var(ARENA_OPS_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_ARENA_OPS)
}

/// A reusable simulator slot: keeps the last [`System`] built for a
/// [`RunSpec::system_key`] and serves it back reset-in-place
/// ([`System::reset_cold`]) instead of re-allocating caches, predictors
/// and queues for every run. A sweep varies workloads far more often than
/// systems, so the common case is a key hit.
///
/// The slot is ownership-transfer, not borrowing: [`SystemSlot::take`]
/// moves the system out and [`SystemSlot::put`] returns it. If a run
/// panics between the two, the system is simply never returned and the
/// next `take` builds fresh — a poisoned simulator can never leak into a
/// later run. One slot per pool worker; slots are not `Sync`.
#[derive(Default)]
pub struct SystemSlot {
    key: Option<String>,
    system: Option<System>,
}

impl SystemSlot {
    /// An empty slot; the first [`SystemSlot::take`] builds fresh.
    pub fn new() -> SystemSlot {
        SystemSlot::default()
    }

    /// A system for `spec`: the stored one reset in place when its
    /// [`RunSpec::system_key`] matches, a fresh build otherwise.
    pub fn take(&mut self, spec: &RunSpec) -> System {
        let want = spec.system_key();
        let system = match (self.key.as_deref(), self.system.take()) {
            (Some(have), Some(mut system)) if have == want => {
                system.reset_cold();
                system
            }
            _ => spec.build_system(),
        };
        self.key = Some(want);
        system
    }

    /// Returns a system taken with [`SystemSlot::take`] for reuse. Only
    /// hand back the system from the matching `take` — the slot assumes
    /// it corresponds to the key recorded there.
    pub fn put(&mut self, system: System) {
        self.system = Some(system);
    }
}

/// One fully decoded stream set (all cores of one trace key) plus the
/// decode throughput observed while building it.
#[derive(Debug, Clone)]
struct CachedArena {
    ops: Arc<Vec<Vec<TraceOp>>>,
    decode_mips: f64,
}

/// Per-core view into a shared arena, so each core's [`ArenaSource`] can
/// borrow its slice while all cores share one `Arc`.
struct CoreOps {
    arena: Arc<Vec<Vec<TraceOp>>>,
    core: usize,
}

impl AsRef<[TraceOp]> for CoreOps {
    fn as_ref(&self) -> &[TraceOp] {
        &self.arena[self.core]
    }
}

/// Arena admission outcome for one replay attempt.
enum ArenaOutcome {
    /// Decoded (or already cached) streams, ready to serve zero-copy.
    Hit(CachedArena),
    /// A per-core file is missing or corrupt — capture instead.
    Missing,
    /// The run's streams don't fit the arena budget — stream the replay
    /// through the codec as before.
    OverBudget,
}

/// Where a run's result (and instruction stream) came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunSource {
    /// Summary served from the on-disk run cache; nothing simulated.
    Cache,
    /// Simulated with live walker generation (store disabled or
    /// unavailable).
    Live,
    /// Simulated live while writing the stream to the trace store.
    Capture,
    /// Simulated from a stored trace, no walker involved.
    Replay,
}

impl RunSource {
    /// Stable lower-case token used in the run log.
    pub fn as_str(self) -> &'static str {
        match self {
            RunSource::Cache => "cache",
            RunSource::Live => "live",
            RunSource::Capture => "capture",
            RunSource::Replay => "replay",
        }
    }
}

/// Outcome of executing one spec through the store.
pub struct TracedRun {
    /// The simulation summary.
    pub summary: Summary,
    /// How the instruction stream was produced.
    pub source: RunSource,
    /// Throughput of the pre-replay verification scan (million ops per
    /// second through the CRC check of every block); 0 for non-replay
    /// runs. A drop in this column means trace I/O or checksumming got
    /// slower, independent of simulation speed.
    pub decode_mips: f64,
    /// Kernel-only simulation throughput (million simulated instructions
    /// per host second over the *measured* window, excluding system
    /// construction, warm-up, trace validation and capture I/O); 0 for
    /// cache hits. Compare against the run-level `mips` to see how much
    /// wall time goes to overhead around the simulation loop.
    pub sim_mips: f64,
    /// Wall seconds inside the measured simulation window (the denominator
    /// of [`TracedRun::sim_mips`]); 0 for cache hits. Sweep-level
    /// aggregation weights per-run `sim_mips` by this, so the aggregate is
    /// total measured instructions over total kernel seconds rather than
    /// an unweighted mean of rates.
    pub sim_seconds: f64,
    /// Telemetry collected over the measurement window; `Some` iff the
    /// run was executed with a [`TelemetryConfig`]. Replay, capture and
    /// live paths all collect identically — telemetry observes the
    /// simulation, not the stream source.
    pub telemetry: Option<TelemetryRun>,
}

/// A trace store rooted at one directory, with capture/replay accounting.
///
/// All methods take `&self`; counters are atomic and the capture-claim set
/// is mutex-guarded, so one store is shared across the worker pool.
#[derive(Debug)]
pub struct TraceStore {
    /// `None` disables capture and replay entirely.
    dir: Option<PathBuf>,
    captured: AtomicU64,
    replayed: AtomicU64,
    quarantined: AtomicU64,
    /// Trace keys some thread is currently capturing (or has captured)
    /// this process; prevents two workers racing to write the same files.
    claims: Mutex<HashSet<String>>,
    /// Fully decoded streams, keyed by trace key and shared across the
    /// worker pool; `total_ops` tracks the store-wide arena budget.
    arenas: Mutex<ArenaCache>,
}

#[derive(Debug, Default)]
struct ArenaCache {
    map: HashMap<String, CachedArena>,
    total_ops: u64,
}

impl TraceStore {
    /// A store rooted at `dir`.
    pub fn at(dir: impl Into<PathBuf>) -> TraceStore {
        TraceStore {
            dir: Some(dir.into()),
            captured: AtomicU64::new(0),
            replayed: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            claims: Mutex::new(HashSet::new()),
            arenas: Mutex::new(ArenaCache::default()),
        }
    }

    /// A disabled store: every run executes live.
    pub fn disabled() -> TraceStore {
        TraceStore {
            dir: None,
            captured: AtomicU64::new(0),
            replayed: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            claims: Mutex::new(HashSet::new()),
            arenas: Mutex::new(ArenaCache::default()),
        }
    }

    /// The store at `$IPSIM_TRACE_DIR` (`off`/`0` disable it), or
    /// [`DEFAULT_TRACE_DIR`] if unset.
    pub fn from_env() -> TraceStore {
        match std::env::var_os(TRACE_DIR_ENV) {
            Some(dir) if dir == "off" || dir == "0" => TraceStore::disabled(),
            Some(dir) if !dir.is_empty() => TraceStore::at(PathBuf::from(dir)),
            _ => TraceStore::at(DEFAULT_TRACE_DIR),
        }
    }

    /// Whether capture/replay is active.
    pub fn enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// The store's root directory, if enabled.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Workload streams captured to disk by this instance.
    pub fn captured(&self) -> u64 {
        self.captured.load(Ordering::Relaxed)
    }

    /// Runs fed from stored traces by this instance.
    pub fn replayed(&self) -> u64 {
        self.replayed.load(Ordering::Relaxed)
    }

    /// Corrupt trace files quarantined by this instance.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Path of the per-core trace file for a trace key.
    fn core_path(&self, dir: &Path, key: &str, core: u32) -> PathBuf {
        let _ = self;
        dir.join(format!("{key}.c{core}.itrace"))
    }

    /// Executes `spec`, preferring replay, then capture, then plain live
    /// generation. Never fails harder than [`RunSpec::execute`] itself:
    /// every store problem downgrades the run, it never aborts it.
    pub fn execute(&self, spec: &RunSpec) -> TracedRun {
        self.execute_with(spec, None)
    }

    /// Like [`TraceStore::execute`], but collecting telemetry over the
    /// measurement window when a config is given. The stream path chosen
    /// (replay / capture / live) is unaffected by telemetry, and — because
    /// telemetry never perturbs simulation — neither is the summary.
    pub fn execute_with(&self, spec: &RunSpec, telemetry: Option<&TelemetryConfig>) -> TracedRun {
        self.execute_in(spec, telemetry, &mut SystemSlot::new())
    }

    /// Like [`TraceStore::execute_with`], but drawing the simulator from
    /// `slot` ([`SystemSlot::take`]) and returning it afterwards, so
    /// back-to-back runs over the same system configuration reset in
    /// place instead of rebuilding. Results are identical to a fresh
    /// build ([`System::reset_cold`] restores post-construction state
    /// exactly); only construction cost changes.
    pub fn execute_in(
        &self,
        spec: &RunSpec,
        telemetry: Option<&TelemetryConfig>,
        slot: &mut SystemSlot,
    ) -> TracedRun {
        let Some(dir) = self.dir.clone() else {
            return live_run(spec, telemetry, slot);
        };
        let key = spec.trace_key();
        match self.try_replay(&dir, spec, &key, telemetry, slot) {
            Some(run) => run,
            None => self.capture_or_live(&dir, spec, &key, telemetry, slot),
        }
    }

    /// Attempts to serve `spec` from stored traces. Returns `None` when
    /// any per-core file is missing or fails validation (corrupt files are
    /// quarantined on the way out).
    fn try_replay(
        &self,
        dir: &Path,
        spec: &RunSpec,
        key: &str,
        telemetry: Option<&TelemetryConfig>,
        slot: &mut SystemSlot,
    ) -> Option<TracedRun> {
        let _replay = ipsim_obs::spans().span("trace.replay");
        let n_cores = spec.config.n_cores;
        let per_core_ops = spec.lengths.warm + spec.lengths.measure;
        // Zero-copy fast path: decode the whole stream set once into a
        // shared arena and lend the scheduler borrowed slices. Over-budget
        // runs fall through to the per-op streaming decoder below.
        match self.arena_for(dir, key, n_cores, per_core_ops) {
            ArenaOutcome::Hit(arena) => {
                let mut sources: Vec<ArenaSource<CoreOps>> = (0..n_cores as usize)
                    .map(|core| {
                        ArenaSource::new(CoreOps {
                            arena: arena.ops.clone(),
                            core,
                        })
                    })
                    .collect();
                let mut system = instrumented(spec, telemetry, slot);
                let mut dyns: Vec<&mut dyn OpSource> =
                    sources.iter_mut().map(|s| s as &mut dyn OpSource).collect();
                let metrics =
                    system.run_workload_from(&mut dyns, spec.lengths.warm, spec.lengths.measure);
                self.replayed.fetch_add(1, Ordering::Relaxed);
                let run = TracedRun {
                    summary: Summary::from_metrics(&metrics),
                    source: RunSource::Replay,
                    decode_mips: arena.decode_mips,
                    sim_mips: metrics.sim_mips(),
                    sim_seconds: metrics.sim_wall_seconds,
                    telemetry: system.take_telemetry(),
                };
                slot.put(system);
                return Some(run);
            }
            ArenaOutcome::Missing => return None,
            ArenaOutcome::OverBudget => {}
        }
        let mut sources: Vec<ReplaySource<BufReader<File>>> = Vec::with_capacity(n_cores as usize);
        let t0 = Instant::now();
        for core in 0..n_cores {
            let path = self.core_path(dir, key, core);
            let file = File::open(&path).ok()?;
            let replay = match TraceReader::open(BufReader::new(file)).and_then(ReplaySource::new) {
                Ok(replay) => replay,
                Err(_) => {
                    // Bad header, CRC or count: move the evidence aside so
                    // the follow-up capture can rewrite the slot.
                    self.quarantine(&path);
                    return None;
                }
            };
            if replay.stats().ops != per_core_ops {
                // A valid file for a different run length can only appear
                // here through key tampering; treat it as corrupt.
                self.quarantine(&path);
                return None;
            }
            sources.push(replay);
        }
        let decode_s = t0.elapsed().as_secs_f64();
        let decoded_ops: u64 = sources.iter().map(|s| s.stats().ops).sum();
        let mut system = instrumented(spec, telemetry, slot);
        let mut dyns: Vec<&mut dyn OpSource> =
            sources.iter_mut().map(|s| s as &mut dyn OpSource).collect();
        let metrics = system.run_workload_from(&mut dyns, spec.lengths.warm, spec.lengths.measure);
        self.replayed.fetch_add(1, Ordering::Relaxed);
        let run = TracedRun {
            summary: Summary::from_metrics(&metrics),
            source: RunSource::Replay,
            decode_mips: if decode_s > 0.0 {
                decoded_ops as f64 / 1e6 / decode_s
            } else {
                0.0
            },
            sim_mips: metrics.sim_mips(),
            sim_seconds: metrics.sim_wall_seconds,
            telemetry: system.take_telemetry(),
        };
        slot.put(system);
        Some(run)
    }

    /// Finds or builds the decoded arena for `key`. Decode happens outside
    /// the cache lock (workers decoding different keys don't serialise);
    /// the budget is re-checked at insert, and a losing racer simply serves
    /// from its private copy without caching it.
    fn arena_for(&self, dir: &Path, key: &str, n_cores: u32, per_core_ops: u64) -> ArenaOutcome {
        let total_ops = per_core_ops * u64::from(n_cores);
        let budget = arena_budget();
        {
            let cache = self.arenas.lock().unwrap();
            if let Some(cached) = cache.map.get(key) {
                return ArenaOutcome::Hit(cached.clone());
            }
            if cache.total_ops + total_ops > budget {
                return ArenaOutcome::OverBudget;
            }
        }
        let t0 = Instant::now();
        let mut cores: Vec<Vec<TraceOp>> = Vec::with_capacity(n_cores as usize);
        for core in 0..n_cores {
            let path = self.core_path(dir, key, core);
            let Ok(file) = File::open(&path) else {
                return ArenaOutcome::Missing;
            };
            let decoded = TraceReader::open(BufReader::new(file)).and_then(|mut reader| {
                let mut ops = Vec::new();
                reader.decode_all_into(&mut ops).map(|stats| (ops, stats))
            });
            match decoded {
                Ok((ops, stats)) if stats.ops == per_core_ops => cores.push(ops),
                // Corrupt, truncated, or a valid file of the wrong length
                // (key tampering): quarantine and recapture.
                Ok(_) | Err(_) => {
                    self.quarantine(&path);
                    return ArenaOutcome::Missing;
                }
            }
        }
        let decode_s = t0.elapsed().as_secs_f64();
        let arena = CachedArena {
            ops: Arc::new(cores),
            decode_mips: if decode_s > 0.0 {
                total_ops as f64 / 1e6 / decode_s
            } else {
                0.0
            },
        };
        let mut cache = self.arenas.lock().unwrap();
        if let Some(existing) = cache.map.get(key) {
            return ArenaOutcome::Hit(existing.clone());
        }
        if cache.total_ops + total_ops <= budget {
            cache.total_ops += total_ops;
            cache.map.insert(key.to_string(), arena.clone());
        }
        ArenaOutcome::Hit(arena)
    }

    /// Runs `spec` live, capturing the stream if this thread wins the
    /// claim for `key` and the capture files can be written.
    fn capture_or_live(
        &self,
        dir: &Path,
        spec: &RunSpec,
        key: &str,
        telemetry: Option<&TelemetryConfig>,
        slot: &mut SystemSlot,
    ) -> TracedRun {
        let _capture = ipsim_obs::spans().span("trace.capture");
        let claimed = self.claims.lock().unwrap().insert(key.to_string());
        if !claimed || fs::create_dir_all(dir).is_err() {
            // Someone else is already writing this stream (or the store
            // directory is unusable): plain live run.
            return live_run(spec, telemetry, slot);
        }

        let n_cores = spec.config.n_cores;
        let pid = std::process::id();
        let mut tmp_paths: Vec<PathBuf> = Vec::with_capacity(n_cores as usize);
        let mut writers: Vec<TraceWriter<BufWriter<File>>> = Vec::with_capacity(n_cores as usize);
        for core in 0..n_cores {
            let tmp = dir.join(format!(".{key}.c{core}.{pid}.tmp"));
            let writer = File::create(&tmp)
                .ok()
                .and_then(|f| TraceWriter::new(BufWriter::new(f), core, &spec.trace_meta()).ok());
            match writer {
                Some(w) => {
                    tmp_paths.push(tmp);
                    writers.push(w);
                }
                None => {
                    discard(&tmp_paths);
                    return live_run(spec, telemetry, slot);
                }
            }
        }

        // Drive the run through capture tees: identical walkers to a live
        // run, with every op mirrored to its core's writer.
        let programs = spec.workloads.programs(n_cores);
        let mut tees: Vec<_> = writers
            .into_iter()
            .enumerate()
            .map(|(c, w)| Tee::new(spec.workloads.walker(&programs, c as u32), w))
            .collect();
        let mut system = instrumented(spec, telemetry, slot);
        let mut dyns: Vec<&mut dyn OpSource> =
            tees.iter_mut().map(|t| t as &mut dyn OpSource).collect();
        let metrics = system.run_workload_from(&mut dyns, spec.lengths.warm, spec.lengths.measure);
        let summary = Summary::from_metrics(&metrics);
        let sim_mips = metrics.sim_mips();
        let sim_seconds = metrics.sim_wall_seconds;
        let collected = system.take_telemetry();
        slot.put(system);

        // Seal and publish. Any sink error (latched mid-run or at finish)
        // voids the whole capture but never the simulation result.
        let mut sealed = true;
        for tee in tees {
            let (writer, err) = tee.into_parts();
            if err.is_some() || writer.finish().is_err() {
                sealed = false;
            }
        }
        if sealed {
            for (core, tmp) in tmp_paths.iter().enumerate() {
                let path = self.core_path(dir, key, core as u32);
                if fs::rename(tmp, &path).is_err() {
                    sealed = false;
                    break;
                }
            }
        }
        if !sealed {
            discard(&tmp_paths);
            return TracedRun {
                summary,
                source: RunSource::Live,
                decode_mips: 0.0,
                sim_mips,
                sim_seconds,
                telemetry: collected,
            };
        }
        self.captured.fetch_add(1, Ordering::Relaxed);
        TracedRun {
            summary,
            source: RunSource::Capture,
            decode_mips: 0.0,
            sim_mips,
            sim_seconds,
            telemetry: collected,
        }
    }

    /// Moves a corrupt trace aside, preserving it for inspection.
    fn quarantine(&self, path: &Path) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        let mut quarantined = path.as_os_str().to_owned();
        quarantined.push(".corrupt");
        if fs::rename(path, PathBuf::from(quarantined)).is_err() {
            let _ = fs::remove_file(path);
        }
    }
}

/// Draws `spec`'s system from `slot` with telemetry armed when a config
/// is given. ([`System::reset_cold`] disarms telemetry, so a reused
/// system never inherits instrumentation from its previous run.)
fn instrumented(
    spec: &RunSpec,
    telemetry: Option<&TelemetryConfig>,
    slot: &mut SystemSlot,
) -> System {
    let mut system = slot.take(spec);
    if let Some(config) = telemetry {
        system.enable_telemetry(config.clone());
    }
    system
}

/// Executes `spec` with plain live generation (no store involvement).
fn live_run(
    spec: &RunSpec,
    telemetry: Option<&TelemetryConfig>,
    slot: &mut SystemSlot,
) -> TracedRun {
    let mut system = instrumented(spec, telemetry, slot);
    let metrics = system.run_workload(&spec.workloads, spec.lengths.warm, spec.lengths.measure);
    let run = TracedRun {
        summary: Summary::from_metrics(&metrics),
        source: RunSource::Live,
        decode_mips: 0.0,
        sim_mips: metrics.sim_mips(),
        sim_seconds: metrics.sim_wall_seconds,
        telemetry: system.take_telemetry(),
    };
    slot.put(system);
    run
}

/// Removes leftover capture temp files (best effort).
fn discard(tmp_paths: &[PathBuf]) {
    for tmp in tmp_paths {
        let _ = fs::remove_file(tmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunLengths;
    use ipsim_cpu::WorkloadSet;
    use ipsim_trace::Workload;
    use ipsim_types::SystemConfig;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ipsim-traces-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn spec() -> RunSpec {
        RunSpec::new(
            SystemConfig::single_core(),
            WorkloadSet::homogeneous(Workload::Db),
            RunLengths {
                warm: 1_000,
                measure: 3_000,
            },
        )
    }

    #[test]
    fn capture_then_replay_matches_live() {
        let dir = tmp_dir("roundtrip");
        let store = TraceStore::at(&dir);
        let spec = spec();
        let live = spec.execute();

        let first = store.execute(&spec);
        assert_eq!(first.source, RunSource::Capture);
        assert_eq!(first.summary, live);

        let second = store.execute(&spec);
        assert_eq!(second.source, RunSource::Replay);
        assert_eq!(second.summary, live);
        assert!(second.decode_mips >= 0.0);
        assert!(first.sim_mips > 0.0, "capture runs are timed");
        assert!(second.sim_mips > 0.0, "replay runs are timed");

        assert_eq!((store.captured(), store.replayed()), (1, 1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_works_across_configs_sharing_the_stream() {
        let dir = tmp_dir("crossconfig");
        let store = TraceStore::at(&dir);
        let base = spec();
        let other = base
            .clone()
            .prefetcher(ipsim_core::PrefetcherKind::NextLineTagged);
        assert_eq!(base.trace_key(), other.trace_key());
        assert_ne!(base.cache_key(), other.cache_key());

        assert_eq!(store.execute(&base).source, RunSource::Capture);
        let replayed = store.execute(&other);
        assert_eq!(replayed.source, RunSource::Replay);
        assert_eq!(replayed.summary, other.execute());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_traces_are_quarantined_and_fall_back_to_live() {
        let dir = tmp_dir("corrupt");
        let store = TraceStore::at(&dir);
        let spec = spec();
        assert_eq!(store.execute(&spec).source, RunSource::Capture);

        // Flip one payload byte in the stored trace.
        let path = store.core_path(&dir, &spec.trace_key(), 0);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();

        // A fresh store (no claim memory) quarantines, then re-captures.
        let store2 = TraceStore::at(&dir);
        let run = store2.execute(&spec);
        assert_eq!(run.source, RunSource::Capture);
        assert_eq!(run.summary, spec.execute());
        assert_eq!(store2.quarantined(), 1);
        assert!(!path.exists() || fs::read(&path).unwrap() != bytes);
        let corrupt: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.ends_with(".corrupt"))
            .collect();
        assert_eq!(corrupt.len(), 1);

        // And the re-captured trace replays.
        assert_eq!(store2.execute(&spec).source, RunSource::Replay);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_store_always_runs_live() {
        let store = TraceStore::disabled();
        let run = store.execute(&spec());
        assert_eq!(run.source, RunSource::Live);
        assert!(run.sim_mips > 0.0, "live runs are timed");
        assert_eq!((store.captured(), store.replayed()), (0, 0));
    }

    #[test]
    fn telemetry_flows_through_every_stream_path() {
        let dir = tmp_dir("telemetry");
        let store = TraceStore::at(&dir);
        let spec = spec();
        let config = TelemetryConfig::default();
        let plain = spec.execute();

        let capture = store.execute_with(&spec, Some(&config));
        assert_eq!(capture.source, RunSource::Capture);
        let replay = store.execute_with(&spec, Some(&config));
        assert_eq!(replay.source, RunSource::Replay);
        let live = TraceStore::disabled().execute_with(&spec, Some(&config));
        assert_eq!(live.source, RunSource::Live);

        for run in [&capture, &replay, &live] {
            assert_eq!(run.summary, plain, "telemetry perturbed a summary");
            let telem = run.telemetry.as_ref().expect("telemetry was requested");
            // One core, measure < interval: at least the final snapshot.
            assert!(!telem.samples.is_empty());
        }
        assert!(store.execute(&spec).telemetry.is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    /// Reset-in-place must be invisible in results: cycling one slot
    /// through different systems and workloads — forcing both key hits
    /// (reset_cold reuse) and key misses (fresh build) — produces exactly
    /// the summaries fresh systems do, on live and replay paths alike.
    #[test]
    fn slot_reuse_matches_fresh_builds() {
        let dir = tmp_dir("slot");
        let store = TraceStore::at(&dir);
        let base = spec();
        let nl = base
            .clone()
            .prefetcher(ipsim_core::PrefetcherKind::NextLineTagged);
        let mut web = base.clone();
        web.workloads = ipsim_cpu::WorkloadSet::homogeneous(ipsim_trace::Workload::Web);

        // base → base: same system key, second run reuses via reset_cold.
        // base → nl: key miss, fresh build. nl → web(nl-less): miss again.
        // Interleave captures and replays so both paths go through slots.
        let sequence = [&base, &base, &nl, &web, &base, &nl];
        let mut slot = SystemSlot::new();
        for spec in sequence {
            let run = store.execute_in(spec, None, &mut slot);
            assert_eq!(
                run.summary,
                spec.execute(),
                "slot-reused run diverged from a fresh system for {}",
                spec.label()
            );
            assert!(run.sim_seconds > 0.0, "executed runs report kernel time");
        }
        assert!(store.replayed() > 0, "later runs replayed captured streams");
        let _ = fs::remove_dir_all(&dir);
    }

    /// Telemetry must not leak across slot reuses: a telemetry run
    /// followed by a plain run on the same slot collects nothing the
    /// second time.
    #[test]
    fn slot_reuse_does_not_leak_telemetry() {
        let store = TraceStore::disabled();
        let spec = spec();
        let mut slot = SystemSlot::new();
        let with = store.execute_in(&spec, Some(&TelemetryConfig::default()), &mut slot);
        assert!(with.telemetry.is_some());
        let without = store.execute_in(&spec, None, &mut slot);
        assert!(without.telemetry.is_none(), "telemetry survived reset_cold");
        assert_eq!(with.summary, without.summary);
    }

    /// Replays small enough for the arena budget decode once and serve
    /// zero-copy; an over-budget store streams per-op instead. Both must
    /// match live results exactly.
    #[test]
    fn arena_and_streaming_replay_agree_with_live() {
        let dir = tmp_dir("arena");
        let spec = spec();
        let live = spec.execute();

        let store = TraceStore::at(&dir);
        assert_eq!(store.execute(&spec).source, RunSource::Capture);
        let arena = store.execute(&spec);
        assert_eq!(arena.source, RunSource::Replay);
        assert_eq!(arena.summary, live);
        assert!(
            store
                .arenas
                .lock()
                .unwrap()
                .map
                .contains_key(&spec.trace_key()),
            "a budget-sized stream set is cached in the arena"
        );
        // Replays after the first reuse the cached arena (and report the
        // decode throughput observed when it was built).
        let again = store.execute(&spec);
        assert_eq!(again.summary, live);
        assert_eq!(again.decode_mips, arena.decode_mips);

        // A zero budget disables arenas: same files, streaming decoder.
        std::env::set_var(ARENA_OPS_ENV, "0");
        let streaming_store = TraceStore::at(&dir);
        let streaming = streaming_store.execute(&spec);
        std::env::remove_var(ARENA_OPS_ENV);
        assert_eq!(streaming.source, RunSource::Replay);
        assert_eq!(streaming.summary, live);
        assert!(
            streaming_store.arenas.lock().unwrap().map.is_empty(),
            "over-budget replays must not cache arenas"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_claim_prevents_double_capture() {
        let dir = tmp_dir("claims");
        let store = TraceStore::at(&dir);
        let spec = spec();
        // Simulate another worker holding the claim.
        store.claims.lock().unwrap().insert(spec.trace_key());
        let run = store.execute(&spec);
        assert_eq!(run.source, RunSource::Live);
        assert_eq!(store.captured(), 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
