//! The hardened on-disk run cache.
//!
//! Identical configurations are simulated once and reused across figures
//! and across invocations. Entries live under one directory (default
//! `results/cache/`), one file per [`RunSpec`] cache key:
//!
//! ```text
//! # ipsim-run-cache v1          <- schema header
//! <instructions>\t<ipc>\t...    <- Summary::to_tsv line
//! ```
//!
//! Hardening, in order of the failure it prevents:
//!
//! * **Stable keys** — [`RunSpec::cache_key`] uses hand-rolled FNV-1a, so
//!   keys survive toolchain upgrades (std's `DefaultHasher` does not
//!   promise that).
//! * **Schema header** — a version line distinguishes "older format" from
//!   "truncated garbage" and lets future PRs evolve the summary layout
//!   without silently misparsing old entries.
//! * **Atomic writes** — entries are written to a temp file and renamed
//!   into place, so a killed run can never leave a truncated entry behind.
//! * **Quarantine** — a file that exists but does not parse is renamed to
//!   `<key>.corrupt` (not deleted: it is evidence) and the run is
//!   re-simulated, instead of silently re-parsing or crashing.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::spec::RunSpec;
use crate::summary::Summary;

/// First line of every valid cache entry.
pub const CACHE_SCHEMA: &str = "# ipsim-run-cache v1";

/// Default cache directory, relative to the working directory.
pub const DEFAULT_CACHE_DIR: &str = "results/cache";

/// Environment variable overriding the cache directory.
pub const CACHE_DIR_ENV: &str = "IPSIM_CACHE_DIR";

/// A run cache rooted at one directory, with hit/miss accounting.
///
/// All methods take `&self`; the counters are atomic, so one `RunCache`
/// can be shared across the worker pool.
#[derive(Debug)]
pub struct RunCache {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    quarantined: AtomicU64,
}

impl RunCache {
    /// A cache rooted at `dir`.
    pub fn at(dir: impl Into<PathBuf>) -> RunCache {
        RunCache {
            dir: dir.into(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        }
    }

    /// The cache at `$IPSIM_CACHE_DIR`, or [`DEFAULT_CACHE_DIR`] if unset.
    pub fn from_env() -> RunCache {
        match std::env::var_os(CACHE_DIR_ENV) {
            Some(dir) if !dir.is_empty() => RunCache::at(PathBuf::from(dir)),
            _ => RunCache::at(DEFAULT_CACHE_DIR),
        }
    }

    /// The cache's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Entry path for a cache key.
    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.tsv"))
    }

    /// Read-only lookup by raw cache key, for reporting tools that walk
    /// the runlog rather than hold `RunSpec`s. Does not touch the hit/miss
    /// counters and never quarantines: a reporter must not mutate the
    /// store it is describing. Corrupt or missing entries are `None`.
    pub fn lookup_key(&self, key: &str) -> Option<Summary> {
        let text = fs::read_to_string(self.entry_path(key)).ok()?;
        parse_entry(&text)
    }

    /// Looks up `spec`; counts a hit or a miss. Corrupt entries are
    /// quarantined to `<key>.tsv.corrupt` and reported as misses.
    pub fn lookup(&self, spec: &RunSpec) -> Option<Summary> {
        let _probe = ipsim_obs::spans().span("cache.probe");
        let path = self.entry_path(&spec.cache_key());
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                crate::obs::obs().cache_miss.inc();
                return None;
            }
        };
        match parse_entry(&text) {
            Some(summary) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                crate::obs::obs().cache_hit.inc();
                Some(summary)
            }
            None => {
                self.quarantine(&path);
                self.misses.fetch_add(1, Ordering::Relaxed);
                crate::obs::obs().cache_miss.inc();
                None
            }
        }
    }

    /// Stores `summary` for `spec` atomically (temp file + rename).
    ///
    /// Failures are deliberately non-fatal: a read-only or full disk costs
    /// re-simulation next time, not the current results.
    pub fn store(&self, spec: &RunSpec, summary: &Summary) {
        let _insert = ipsim_obs::spans().span("cache.insert");
        let key = spec.cache_key();
        let path = self.entry_path(&key);
        if fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        // Unique per process; two workers never write the same key within
        // one process (the scheduler dedups), so pid suffices.
        let tmp = self.dir.join(format!(".{key}.{}.tmp", std::process::id()));
        let body = format!("{CACHE_SCHEMA}\n{}\n", summary.to_tsv());
        if fs::write(&tmp, body).is_ok() && fs::rename(&tmp, &path).is_err() {
            let _ = fs::remove_file(&tmp);
        }
    }

    /// Moves a corrupt entry aside, preserving it for inspection.
    fn quarantine(&self, path: &Path) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        crate::obs::obs().cache_quarantined.inc();
        let mut quarantined = path.as_os_str().to_owned();
        quarantined.push(".corrupt");
        if fs::rename(path, PathBuf::from(quarantined)).is_err() {
            // Renaming failed (e.g. read-only dir): last resort, try to
            // remove it so the rewritten entry isn't blocked.
            let _ = fs::remove_file(path);
        }
    }

    /// Cache hits observed through this instance.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses observed through this instance.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Corrupt entries quarantined by this instance.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }
}

/// Parses a full cache file: schema header, then exactly one summary line.
fn parse_entry(text: &str) -> Option<Summary> {
    let mut lines = text.lines();
    if lines.next()? != CACHE_SCHEMA {
        return None;
    }
    let summary = Summary::from_tsv(lines.next()?)?;
    if lines.next().is_some() {
        return None;
    }
    Some(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunLengths;
    use ipsim_cpu::WorkloadSet;
    use ipsim_trace::Workload;
    use ipsim_types::SystemConfig;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ipsim-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn spec() -> RunSpec {
        RunSpec::new(
            SystemConfig::single_core(),
            WorkloadSet::homogeneous(Workload::Db),
            RunLengths {
                warm: 10,
                measure: 20,
            },
        )
    }

    #[test]
    fn store_then_lookup_round_trips() {
        let dir = tmp_dir("roundtrip");
        let cache = RunCache::at(&dir);
        let spec = spec();
        assert!(cache.lookup(&spec).is_none());
        let summary = Summary::zeroed();
        cache.store(&spec, &summary);
        assert_eq!(cache.lookup(&spec), Some(summary.clone()));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));

        // Raw-key lookup sees the same entry without moving a counter.
        assert_eq!(cache.lookup_key(&spec.cache_key()), Some(summary));
        assert!(cache.lookup_key("not-a-key").is_none());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_quarantined_not_reused() {
        let dir = tmp_dir("corrupt");
        let cache = RunCache::at(&dir);
        let spec = spec();
        let path = cache.entry_path(&spec.cache_key());

        // Truncated file: header only.
        fs::write(&path, format!("{CACHE_SCHEMA}\n")).unwrap();
        assert!(cache.lookup(&spec).is_none());
        assert!(!path.exists(), "corrupt entry must be moved aside");
        let quarantined: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.ends_with(".corrupt"))
            .collect();
        assert_eq!(quarantined.len(), 1);
        assert_eq!(cache.quarantined(), 1);

        // Re-storing over a quarantined slot works.
        cache.store(&spec, &Summary::zeroed());
        assert!(cache.lookup(&spec).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_or_wrong_header_is_rejected() {
        let summary = Summary::zeroed();
        // Headerless (the pre-harness format).
        assert!(parse_entry(&format!("{}\n", summary.to_tsv())).is_none());
        // Future schema.
        assert!(parse_entry(&format!("# ipsim-run-cache v99\n{}\n", summary.to_tsv())).is_none());
        // Trailing junk.
        assert!(parse_entry(&format!("{CACHE_SCHEMA}\n{}\nextra\n", summary.to_tsv())).is_none());
        // Valid.
        assert_eq!(
            parse_entry(&format!("{CACHE_SCHEMA}\n{}\n", summary.to_tsv())),
            Some(summary)
        );
    }

    #[test]
    fn store_leaves_no_temp_files() {
        let dir = tmp_dir("notmp");
        let cache = RunCache::at(&dir);
        cache.store(&spec(), &Summary::zeroed());
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }
}
