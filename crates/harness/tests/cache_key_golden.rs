//! Golden test: pins the FNV-1a cache keys of a fixed spec corpus.
//!
//! The run cache, the trace store, the telemetry artifact directories and
//! the serve-job journal all address results by [`RunSpec::cache_key`]. A
//! silent change to the key derivation orphans every cached result and
//! artifact on disk — this test makes such a change loud: if a key moves
//! on purpose, bump the descriptor version in `spec.rs`, update these
//! literals, and expect a cold cache everywhere.

use ipsim_harness::wire::JobSpec;
use ipsim_harness::RunSpec;

/// One corpus entry: a wire-encoded run (the stable client-facing
/// encoding) and the cache key its lowered [`RunSpec`] must hash to.
const GOLDEN: &[(&str, &str)] = &[
    (
        "single_core\tdb\tnone\tinstall_both\t-\t10000000\t20000000",
        "362fd776329978dd",
    ),
    (
        "cmp4\tmixed\tnl_tagged\tbypass\t-\t2000000\t4000000",
        "2d3ce901470cf2ad",
    ),
    (
        "cmp4\tdb\tdisc:8192:4\tinstall_both\t-\t2000000\t4000000",
        "72c93892aa9aac45",
    ),
    (
        "cmp4\tweb\tdisc_gated:8192:4:2\tbypass\t-\t2000000\t4000000",
        "a1773e690226ee7f",
    ),
    (
        "single_core\ttpcw\tnnl:2\tinstall_both\t-\t2000000\t4000000",
        "57a5afb123d0cc29",
    ),
    (
        "single_core\tjapp\tlookahead:4\tinstall_both\t-\t2000000\t4000000",
        "fc16155280620ae1",
    ),
    (
        "cmp4\tdb\tmarkov:4096:2\tinstall_both\t-\t2000000\t4000000",
        "b29a153d4a70aade",
    ),
    (
        "cmp4\ttpcw\ttarget:4096\tbypass\t-\t2000000\t4000000",
        "6a286a849d3421c8",
    ),
    (
        "single_core\tweb\twrong_path+nl\tinstall_both\t-\t2000000\t4000000",
        "7602eb4e2c652f60",
    ),
    (
        "single_core\tdb\tnone\tinstall_both\tseq+br+call\t2000000\t4000000",
        "103479c891cfa60d",
    ),
    // v2 zoo-bearing specs: the plan's canonical form is part of the key.
    (
        "single_core\tweb\tzoo:nl+disc\tinstall_both\t-\t2000000\t4000000",
        "0c572f02b1d874cf",
    ),
    (
        "single_core\tweb\tzoo:nl+disc:ahead=2\tinstall_both\t-\t2000000\t4000000",
        "80b9a2b4c95ec38b",
    ),
    (
        "cmp4\tmixed\tzoo:nl+nnl+disc+stream+mana+pmap\tbypass\t-\t2000000\t4000000",
        "602e5d292ead99fa",
    ),
    (
        "cmp4\tdb\tzoo:mana:degree=4,region_lines=16+pmap:depth=2\tinstall_both\t-\t2000000\t4000000",
        "43c8f0778eb91a0d",
    ),
];

fn corpus_specs() -> Vec<(String, RunSpec)> {
    GOLDEN
        .iter()
        .map(|(wire, _)| {
            let body = format!("{}\n{}\n", ipsim_harness::wire::TSV_HEADER, wire);
            let spec = JobSpec::from_tsv(&body)
                .unwrap_or_else(|e| panic!("corpus line `{wire}` no longer parses: {e}"));
            (wire.to_string(), spec.to_run_specs().unwrap().remove(0))
        })
        .collect()
}

#[test]
fn cache_keys_match_the_pinned_golden_values() {
    let mut mismatches = Vec::new();
    for ((wire, spec), (_, want)) in corpus_specs().iter().zip(GOLDEN) {
        let got = spec.cache_key();
        if got != *want {
            mismatches.push(format!("    (\"{wire}\", \"{got}\"),"));
        }
    }
    assert!(
        mismatches.is_empty(),
        "cache keys moved — on-disk caches, traces, telemetry and journals \
         will all go cold. If intentional, update the corpus to:\n{}",
        mismatches.join("\n")
    );
}

#[test]
fn corpus_keys_are_unique() {
    let mut keys: Vec<String> = corpus_specs().iter().map(|(_, s)| s.cache_key()).collect();
    keys.sort();
    keys.dedup();
    assert_eq!(keys.len(), GOLDEN.len(), "corpus keys collide");
}
