//! The graceful-interrupt contract of the worker pool, in its own test
//! binary: the signal flag is process-global, so this must not share a
//! process with tests that run the pool concurrently.

use ipsim_cpu::WorkloadSet;
use ipsim_harness::pool;
use ipsim_harness::progress::{Progress, ProgressMode};
use ipsim_harness::{RunCache, RunLengths, RunSpec, TraceStore};
use ipsim_trace::Workload;
use ipsim_types::SystemConfig;

#[test]
fn triggered_signal_stops_claiming_and_reset_resumes() {
    let lengths = RunLengths {
        warm: 2_000,
        measure: 5_000,
    };
    let specs: Vec<RunSpec> = Workload::ALL
        .iter()
        .map(|w| {
            RunSpec::new(
                SystemConfig::single_core(),
                WorkloadSet::homogeneous(*w),
                lengths,
            )
        })
        .collect();
    let dir = std::env::temp_dir().join(format!("ipsim-interrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = RunCache::at(&dir);
    let traces = TraceStore::disabled();

    // A signal that arrives before the batch starts: no run is claimed,
    // the report says so, and nothing is cached.
    ipsim_signal::install();
    ipsim_signal::raise_self(ipsim_signal::SIGINT);
    assert!(ipsim_signal::triggered());
    let progress = Progress::new(ProgressMode::Silent, specs.len());
    let report = pool::execute(&specs, 2, &cache, &traces, None, &progress);
    assert!(report.interrupted);
    assert!(report.records.is_empty(), "no run should have started");
    assert_eq!(cache.misses(), 0);

    // Clearing the flag resumes normal operation: the same batch runs to
    // completion with a record per spec, in input order.
    ipsim_signal::reset();
    let progress = Progress::new(ProgressMode::Silent, specs.len());
    let report = pool::execute(&specs, 2, &cache, &traces, None, &progress);
    assert!(!report.interrupted);
    assert_eq!(report.records.len(), specs.len());
    let got: Vec<String> = report.records.iter().map(|r| r.key.clone()).collect();
    let want: Vec<String> = specs.iter().map(RunSpec::cache_key).collect();
    assert_eq!(got, want);
    assert!(report.records.iter().all(|r| r.ok));

    let _ = std::fs::remove_dir_all(&dir);
}
