//! Property tests for the run cache's on-disk summary format: the TSV
//! round trip must be lossless for every representable summary, and any
//! structural damage must be rejected (so the cache quarantines it) rather
//! than half-parsed.

use ipsim_harness::Summary;
use ipsim_types::stats::CategoryCounts;
use ipsim_types::MissCategory;
use proptest::prelude::*;

fn counts() -> impl Strategy<Value = CategoryCounts> {
    prop::collection::vec(0u64..1_000_000_000_000, MissCategory::COUNT).prop_map(|v| {
        let mut c = CategoryCounts::new();
        for (i, cat) in MissCategory::ALL.iter().enumerate() {
            c[*cat] = v[i];
        }
        c
    })
}

fn summaries() -> impl Strategy<Value = Summary> {
    (
        (
            0u64..u64::MAX / 2,
            0.0f64..8.0,
            0.0f64..1.0,
            0.0f64..1.0,
            0.0f64..1.0,
        ),
        (0.0f64..1.0, 0.0f64..1.0, 0.0f64..2000.0),
        counts(),
        counts(),
    )
        .prop_map(
            |((instructions, ipc, l1i, l2i, l2d), (l1d, accuracy, issued_per_ki), b1, b2)| {
                Summary {
                    instructions,
                    ipc,
                    l1i_mpi: l1i,
                    l2i_mpi: l2i,
                    l2d_mpi: l2d,
                    l1d_mpi: l1d,
                    accuracy,
                    issued_per_ki,
                    l1i_breakdown: b1,
                    l2i_breakdown: b2,
                }
            },
        )
}

proptest! {
    #[test]
    fn tsv_round_trip_is_lossless(s in summaries()) {
        let line = s.to_tsv();
        prop_assert!(!line.contains('\n'), "cache entries are single lines");
        let back = Summary::from_tsv(&line);
        prop_assert_eq!(back, Some(s));
    }

    #[test]
    fn dropping_any_field_is_rejected(s in summaries(), pick in 0usize..64) {
        let line = s.to_tsv();
        let mut fields: Vec<&str> = line.split('\t').collect();
        let i = pick % fields.len();
        fields.remove(i);
        prop_assert!(Summary::from_tsv(&fields.join("\t")).is_none());
    }

    #[test]
    fn corrupting_any_field_is_rejected(s in summaries(), pick in 0usize..64) {
        let line = s.to_tsv();
        let mut fields: Vec<&str> = line.split('\t').collect();
        let i = pick % fields.len();
        fields[i] = "not-a-number";
        prop_assert!(Summary::from_tsv(&fields.join("\t")).is_none());
    }
}
