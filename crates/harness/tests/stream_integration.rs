//! End-to-end tests for the trace capture/replay subsystem: replayed
//! sweeps must reproduce live figure output byte for byte, at any worker
//! count, and corrupt traces must quarantine and fall back without
//! affecting a single output byte.

use std::fs;
use std::path::{Path, PathBuf};

use ipsim_cpu::WorkloadSet;
use ipsim_harness::{run_sweep, Executor, Figure, ProgressMode, RunLengths, RunSpec, SweepOptions};
use ipsim_trace::Workload;
use ipsim_types::SystemConfig;

/// Five runs: four configurations sharing the DB instruction stream, plus
/// a Web baseline with its own stream. The full `Summary` debug output is
/// the figure body, so any metric diverging between live and replayed
/// simulation changes the bytes.
fn render_shared_stream(lengths: RunLengths, x: &mut Executor) -> String {
    let db = WorkloadSet::homogeneous(Workload::Db);
    let web = WorkloadSet::homogeneous(Workload::Web);
    let base = RunSpec::new(SystemConfig::single_core(), db, lengths);
    let specs: Vec<(&str, RunSpec)> = vec![
        ("db-base", base.clone()),
        (
            "db-nl-always",
            base.clone()
                .prefetcher(ipsim_core::PrefetcherKind::NextLineAlways),
        ),
        (
            "db-nl-miss",
            base.clone()
                .prefetcher(ipsim_core::PrefetcherKind::NextLineOnMiss),
        ),
        (
            "db-nl-tagged",
            base.prefetcher(ipsim_core::PrefetcherKind::NextLineTagged),
        ),
        (
            "web-base",
            RunSpec::new(SystemConfig::single_core(), web, lengths),
        ),
    ];
    let mut out = String::new();
    for (label, spec) in specs {
        out.push_str(&format!("{label}: {:?}\n", x(&spec)));
    }
    out
}

const FIG: Figure = Figure {
    name: "figstream",
    title: "stream integration figure",
    version: 1,
    render: render_shared_stream,
};

fn base_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ipsim-stream-integration-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn opts(base: &Path, cache: &str, workers: usize, traces: bool) -> SweepOptions {
    SweepOptions {
        lengths: RunLengths {
            warm: 1_000,
            measure: 2_000,
        },
        workers,
        results_dir: None,
        cache_dir: Some(base.join(cache)),
        runlog: Some(base.join(format!("{cache}.runlog.tsv"))),
        trace_dir: Some(base.join("traces")),
        traces,
        telemetry: None,
        telemetry_dir: None,
        progress: ProgressMode::Silent,
        manifest: None,
        force: false,
    }
}

fn figure_text(report: &ipsim_harness::SweepReport) -> String {
    report.figures[0]
        .outcome
        .as_ref()
        .expect("figure rendered")
        .clone()
}

#[test]
fn replay_reproduces_live_figures_byte_identically() {
    let base = base_dir("identical");

    // Reference: traces disabled, single worker, pure live generation.
    let live = run_sweep(&[FIG], &opts(&base, "cache-live", 1, false));
    assert_eq!(live.traces_captured + live.traces_replayed, 0);
    let live_text = figure_text(&live);

    // Capture sweep: fresh cache, traces on, parallel workers. Two streams
    // (DB, Web) are captured by their captains; the other three DB configs
    // replay within the same sweep.
    let capture = run_sweep(&[FIG], &opts(&base, "cache-capture", 3, true));
    assert_eq!(capture.unique_jobs, 5);
    assert_eq!(capture.traces_captured, 2);
    assert_eq!(capture.traces_replayed, 3);
    assert_eq!(capture.traces_quarantined, 0);
    assert_eq!(figure_text(&capture), live_text);

    // Replay sweep: fresh cache again, same trace store, different worker
    // count. Every run replays; output is still byte-identical.
    let replay = run_sweep(&[FIG], &opts(&base, "cache-replay", 2, true));
    assert_eq!(replay.traces_captured, 0);
    assert_eq!(replay.traces_replayed, 5);
    assert_eq!(figure_text(&replay), live_text);

    // The run log records stream provenance under the v5 schema.
    let cap_log = fs::read_to_string(base.join("cache-capture.runlog.tsv")).unwrap();
    assert!(cap_log.starts_with("# ipsim-runlog v5"), "{cap_log}");
    assert_eq!(cap_log.matches("\tcapture\t").count(), 2);
    assert_eq!(cap_log.matches("\treplay\t").count(), 3);
    let rep_log = fs::read_to_string(base.join("cache-replay.runlog.tsv")).unwrap();
    assert_eq!(rep_log.matches("\treplay\t").count(), 5);

    let _ = fs::remove_dir_all(&base);
}

#[test]
fn corrupt_trace_quarantines_recaptures_and_keeps_output_identical() {
    let base = base_dir("corrupt");

    let live = run_sweep(&[FIG], &opts(&base, "cache-live", 1, false));
    let live_text = figure_text(&live);
    let capture = run_sweep(&[FIG], &opts(&base, "cache-capture", 2, true));
    assert_eq!(capture.traces_captured, 2);

    // Corrupt the stored DB stream (shared by four of the five runs).
    let db_key = RunSpec::new(
        SystemConfig::single_core(),
        WorkloadSet::homogeneous(Workload::Db),
        RunLengths {
            warm: 1_000,
            measure: 2_000,
        },
    )
    .trace_key();
    let trace_path = base.join("traces").join(format!("{db_key}.c0.itrace"));
    let mut bytes = fs::read(&trace_path).expect("captured DB trace exists");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    fs::write(&trace_path, &bytes).unwrap();

    // Fresh cache, same store: the DB captain quarantines the corrupt file
    // and re-captures; its three followers and the Web run replay. Output
    // bytes are unaffected.
    let recover = run_sweep(&[FIG], &opts(&base, "cache-recover", 2, true));
    assert!(recover.all_ok());
    assert_eq!(recover.traces_quarantined, 1);
    assert_eq!(recover.traces_captured, 1);
    assert_eq!(recover.traces_replayed, 4);
    assert_eq!(figure_text(&recover), live_text);

    // The evidence is preserved next to the store, and the slot was
    // rewritten with a valid stream.
    let corrupt: Vec<_> = fs::read_dir(base.join("traces"))
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n.ends_with(".corrupt"))
        .collect();
    assert_eq!(corrupt.len(), 1, "{corrupt:?}");
    assert_ne!(fs::read(&trace_path).unwrap(), bytes);

    let _ = fs::remove_dir_all(&base);
}
