//! Calibration snapshot for the prefetchers: miss-rate reduction,
//! accuracy, pollution and speedup for each scheme on the 4-way CMP.
//! Development tool; the paper figures have dedicated binaries.

use ipsim_cache::InstallPolicy;
use ipsim_core::PrefetcherKind;
use ipsim_cpu::{SystemBuilder, WorkloadSet};
use ipsim_experiments::{pct, print_table, run, tool_args, RunLengths};
use ipsim_trace::Workload;

const USAGE: &str = "\
usage: pf_check [db|tpcw|japp|web] [--quick]

  db|tpcw|japp|web   workload to check (default: japp)
  --quick            ~5x shorter warm-up/measurement windows
  --help             this text
";

fn main() {
    let mut lengths = RunLengths::full();
    let mut workload = Workload::JApp;
    for arg in tool_args(USAGE) {
        match arg.as_str() {
            "--quick" => lengths = RunLengths::quick(),
            "db" => workload = Workload::Db,
            "tpcw" => workload = Workload::TpcW,
            "japp" => workload = Workload::JApp,
            "web" => workload = Workload::Web,
            _ => {
                eprintln!("unknown argument `{arg}`\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let ws = WorkloadSet::homogeneous(workload);
    println!("workload: {}", ws.name());

    let base = run(SystemBuilder::cmp4(), &ws, lengths);
    println!(
        "baseline: L1I {}  L2I {}  L2D {}  IPC {:.3}\n",
        pct(base.l1i_miss_per_instr()),
        pct(base.l2_instr_miss_per_instr()),
        pct(base.l2_data_miss_per_instr()),
        base.ipc()
    );

    let mut rows = Vec::new();
    for kind in PrefetcherKind::PAPER_SCHEMES {
        for policy in [
            InstallPolicy::InstallBoth,
            InstallPolicy::BypassL2UntilUseful,
        ] {
            let m = run(
                SystemBuilder::cmp4()
                    .prefetcher(kind)
                    .install_policy(policy),
                &ws,
                lengths,
            );
            rows.push(vec![
                kind.label(),
                match policy {
                    InstallPolicy::InstallBoth => "install".to_string(),
                    InstallPolicy::BypassL2UntilUseful => "bypass".to_string(),
                },
                format!("{:.2}", m.l1i_miss_ratio_vs(&base)),
                format!("{:.2}", m.l2_instr_miss_ratio_vs(&base)),
                format!("{:.2}", m.l2_data_miss_ratio_vs(&base)),
                format!("{:.0}%", m.prefetch_accuracy() * 100.0),
                format!("{:.3}", m.speedup_over(&base)),
            ]);
        }
    }
    print_table(
        &[
            "scheme",
            "policy",
            "L1I ratio",
            "L2I ratio",
            "L2D ratio",
            "acc",
            "speedup",
        ],
        &rows,
    );
}
