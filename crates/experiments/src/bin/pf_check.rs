//! Calibration snapshot for the prefetchers: miss-rate reduction,
//! accuracy, pollution and speedup for each scheme on the 4-way CMP.
//! Development tool; the paper figures have dedicated binaries.

use ipsim_cache::InstallPolicy;
use ipsim_core::PrefetcherKind;
use ipsim_cpu::{SystemBuilder, WorkloadSet};
use ipsim_experiments::{pct, print_table, run, tool_args, RunLengths};
use ipsim_prefetch::ZooPlan;
use ipsim_trace::Workload;

const USAGE: &str = "\
usage: pf_check [db|tpcw|japp|web] [--quick] [--prefetcher SPEC]

  db|tpcw|japp|web     workload to check (default: japp)
  --quick              ~5x shorter warm-up/measurement windows
  --prefetcher SPEC    check one registry scheme instead of the paper
                       set; SPEC is a registry spec like `disc:ahead=2`,
                       `mana` or `stream:degree=8` (run via a zoo of one)
  --help               this text
";

fn main() {
    let mut lengths = RunLengths::full();
    let mut workload = Workload::JApp;
    let mut selected: Option<ZooPlan> = None;
    let mut args = tool_args(USAGE).into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => lengths = RunLengths::quick(),
            "db" => workload = Workload::Db,
            "tpcw" => workload = Workload::TpcW,
            "japp" => workload = Workload::JApp,
            "web" => workload = Workload::Web,
            "--prefetcher" => {
                let spec = args.next().unwrap_or_default();
                match ZooPlan::parse(&spec) {
                    Ok(plan) => selected = Some(plan),
                    Err(e) => {
                        eprintln!("--prefetcher: {e}\n\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            _ => {
                eprintln!("unknown argument `{arg}`\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let ws = WorkloadSet::homogeneous(workload);
    println!("workload: {}", ws.name());

    let base = run(SystemBuilder::cmp4(), &ws, lengths);
    println!(
        "baseline: L1I {}  L2I {}  L2D {}  IPC {:.3}\n",
        pct(base.l1i_miss_per_instr()),
        pct(base.l2_instr_miss_per_instr()),
        pct(base.l2_data_miss_per_instr()),
        base.ipc()
    );

    // Each contender: a display label and a configured builder factory.
    let contenders: Vec<(String, Box<dyn Fn() -> SystemBuilder>)> = match &selected {
        Some(plan) => {
            let plan = plan.clone();
            vec![(
                format!("zoo[{}]", plan.canonical()),
                Box::new(move || SystemBuilder::cmp4().zoo(plan.clone())) as _,
            )]
        }
        None => PrefetcherKind::PAPER_SCHEMES
            .into_iter()
            .map(|kind| {
                (
                    kind.label(),
                    Box::new(move || SystemBuilder::cmp4().prefetcher(kind)) as _,
                )
            })
            .collect(),
    };

    let mut rows = Vec::new();
    for (label, builder) in &contenders {
        for policy in [
            InstallPolicy::InstallBoth,
            InstallPolicy::BypassL2UntilUseful,
        ] {
            let m = run(builder().install_policy(policy), &ws, lengths);
            rows.push(vec![
                label.clone(),
                match policy {
                    InstallPolicy::InstallBoth => "install".to_string(),
                    InstallPolicy::BypassL2UntilUseful => "bypass".to_string(),
                },
                format!("{:.2}", m.l1i_miss_ratio_vs(&base)),
                format!("{:.2}", m.l2_instr_miss_ratio_vs(&base)),
                format!("{:.2}", m.l2_data_miss_ratio_vs(&base)),
                format!("{:.0}%", m.prefetch_accuracy() * 100.0),
                format!("{:.3}", m.speedup_over(&base)),
            ]);
        }
    }
    print_table(
        &[
            "scheme",
            "policy",
            "L1I ratio",
            "L2I ratio",
            "L2D ratio",
            "acc",
            "speedup",
        ],
        &rows,
    );
}
