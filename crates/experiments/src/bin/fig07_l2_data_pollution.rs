//! Figure 7: L2 cache *data* miss rate under instruction prefetching,
//! normalised to no prefetching — the pollution the paper's bypass policy
//! removes; (i) single core and (ii) 4-way CMP.

use ipsim_cache::InstallPolicy;
use ipsim_core::PrefetcherKind;
use ipsim_experiments::{
    print_table_owned, scheme_matrix, workload_columns, workload_header, RunLengths,
};
use ipsim_types::SystemConfig;

fn main() {
    let lengths = RunLengths::from_args();
    println!("Figure 7: L2 data miss rate (normalised to no prefetch)");
    println!("(paper: aggressive schemes inflate data misses by up to ~1.35x — speculative");
    println!(" instruction lines evict data from the unified L2)\n");

    for (title, config, include_mix) in [
        ("(i) single core", SystemConfig::single_core(), false),
        ("(ii) 4-way CMP", SystemConfig::cmp4(), true),
    ] {
        println!("{title}");
        let sets = workload_columns(include_mix);
        let (baselines, per_scheme) = scheme_matrix(
            &config,
            &sets,
            &PrefetcherKind::PAPER_SCHEMES,
            InstallPolicy::InstallBoth,
            lengths,
        );
        let rows: Vec<Vec<String>> = per_scheme
            .iter()
            .map(|(label, summaries)| {
                let mut row = vec![label.clone()];
                for (s, base) in summaries.iter().zip(&baselines) {
                    let ratio = if base.l2d_mpi == 0.0 {
                        0.0
                    } else {
                        s.l2d_mpi / base.l2d_mpi
                    };
                    row.push(format!("{ratio:.3}"));
                }
                row
            })
            .collect();
        print_table_owned(&workload_header("scheme", &sets), &rows);
        println!();
    }
}
