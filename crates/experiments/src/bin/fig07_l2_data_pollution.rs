//! Figure 7: L2 data pollution from instruction prefetching.
//! Thin wrapper; the figure lives in [`ipsim_experiments::figures`].

fn main() {
    ipsim_experiments::figure_main("fig07");
}
