//! `sweep_report`: aggregate a sweep's on-disk outputs into one report.
//!
//! Reads the v5 runlog (including `# batch shard I/N` markers), the run
//! cache and the telemetry artifacts — nothing is re-simulated — and
//! prints totals, aggregate sim-MIPS, cache hit/miss economics, a
//! per-workload/per-scheme accuracy-coverage-timeliness table, and shard
//! utilization. See `ipsim_experiments::report` for the section
//! definitions.

use std::path::PathBuf;
use std::process::exit;

use ipsim_experiments::report::{render_report, ReportOptions};

const USAGE: &str = "\
usage: sweep_report [--runlog PATH] [--cache DIR] [--telemetry DIR] [--stable]

  --runlog PATH     runlog to aggregate (default: $IPSIM_RUNLOG or
                    results/runlog.tsv)
  --cache DIR       run cache with metric summaries (default:
                    $IPSIM_CACHE_DIR or results/cache)
  --telemetry DIR   telemetry artifact root for the timeliness columns
                    (default: $IPSIM_TELEMETRY_DIR or results/telemetry);
                    missing artifacts print `-`, never fail
  --stable          machine-stable view only: no timestamps, wall times,
                    stream sources or shard batches — byte-identical for
                    any shard or worker count that produced the sweep
  --help            this text
";

fn main() {
    let mut opts = ReportOptions {
        runlog: ipsim_harness::runlog::runlog_path_from_env(),
        cache_dir: ipsim_harness::RunCache::from_env().dir().to_path_buf(),
        telemetry_dir: match std::env::var_os(ipsim_harness::telemetry::TELEMETRY_DIR_ENV) {
            Some(dir) if !dir.is_empty() => PathBuf::from(dir),
            _ => PathBuf::from(ipsim_harness::telemetry::DEFAULT_TELEMETRY_DIR),
        },
        stable: false,
    };
    let mut args = ipsim_experiments::tool_args(USAGE).into_iter();
    while let Some(arg) = args.next() {
        let mut path_flag = |name: &str| -> PathBuf {
            match args.next() {
                Some(v) => PathBuf::from(v),
                None => {
                    eprintln!("{name} needs a value\n\n{USAGE}");
                    exit(2);
                }
            }
        };
        match arg.as_str() {
            "--stable" => opts.stable = true,
            "--runlog" => opts.runlog = path_flag("--runlog"),
            "--cache" => opts.cache_dir = path_flag("--cache"),
            "--telemetry" => opts.telemetry_dir = path_flag("--telemetry"),
            other => {
                eprintln!("unknown argument `{other}`\n\n{USAGE}");
                exit(2);
            }
        }
    }

    match render_report(&opts) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("sweep_report: {e}");
            exit(1);
        }
    }
}
