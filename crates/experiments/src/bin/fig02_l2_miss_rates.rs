//! Figure 2: L2 cache instruction miss rates (% per retired instruction)
//! for the single-core processor and the 4-way CMP as L2 capacity varies
//! (1 MB / 2 MB / 4 MB; default 2 MB, 4-way, 64 B lines).

use ipsim_cpu::WorkloadSet;
use ipsim_experiments::{pct, print_table, RunLengths, RunSpec};
use ipsim_trace::Workload;
use ipsim_types::{CacheConfig, SystemConfig};

fn main() {
    let lengths = RunLengths::from_args();
    println!("Figure 2: L2 instruction miss rate (% per instruction) vs L2 capacity");
    println!("(paper: 2MB CMP rates 0.07-0.44%, Mixed worst; CMP rates exceed single-core;");
    println!(" 1MB→2MB improves more than 2MB→4MB)\n");

    let mut sets: Vec<WorkloadSet> = Workload::ALL
        .iter()
        .map(|w| WorkloadSet::homogeneous(*w))
        .collect();
    sets.push(WorkloadSet::mixed());

    let mut rows = Vec::new();
    for mb in [1u64, 2, 4] {
        for cmp in [false, true] {
            let label = format!("{mb}MB {}", if cmp { "4-way CMP" } else { "single core" });
            let mut row = vec![label];
            for ws in &sets {
                if !cmp && ws.per_core.len() > 1 {
                    // The mixed workload needs one core per application.
                    row.push("-".to_string());
                    continue;
                }
                let mut config = if cmp {
                    SystemConfig::cmp4()
                } else {
                    SystemConfig::single_core()
                };
                config.mem.l2 = CacheConfig::new(mb << 20, 4, 64).expect("valid geometry");
                let summary = RunSpec::new(config, ws.clone(), lengths).run();
                row.push(pct(summary.l2i_mpi));
            }
            rows.push(row);
        }
    }
    print_table(
        &["L2 configuration", "DB", "TPC-W", "jApp", "Web", "Mix"],
        &rows,
    );
}
