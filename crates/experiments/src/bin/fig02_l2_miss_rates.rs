//! Figure 2: L2 instruction miss rates vs L2 capacity.
//! Thin wrapper; the figure lives in [`ipsim_experiments::figures`].

fn main() {
    ipsim_experiments::figure_main("fig02");
}
