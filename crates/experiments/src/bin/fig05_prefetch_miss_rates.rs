//! Figure 5: instruction miss rates under the HW prefetching schemes.
//! Thin wrapper; the figure lives in [`ipsim_experiments::figures`].

fn main() {
    ipsim_experiments::figure_main("fig05");
}
