//! Figure 5: instruction miss rates under the HW prefetching schemes,
//! normalised to no prefetching: (i) instruction cache, (ii) L2 cache
//! (single core), (iii) L2 cache (4-way CMP).

use ipsim_cache::InstallPolicy;
use ipsim_core::PrefetcherKind;
use ipsim_experiments::{
    print_table_owned, scheme_matrix, workload_columns, workload_header, RunLengths,
};
use ipsim_types::SystemConfig;

fn main() {
    let lengths = RunLengths::from_args();
    println!("Figure 5: instruction miss rate under prefetching (normalised to no prefetch)");
    println!("(paper: discontinuity lowest, reducing misses to ~0.10-0.25 of baseline;");
    println!(" next-4-line clearly beats the next-line variants)\n");

    struct Part {
        title: &'static str,
        config: SystemConfig,
        include_mix: bool,
        l2: bool,
    }
    let parts = [
        Part {
            title: "(i) Instruction cache (single core)",
            config: SystemConfig::single_core(),
            include_mix: false,
            l2: false,
        },
        Part {
            title: "(ii) L2 cache instruction misses (single core)",
            config: SystemConfig::single_core(),
            include_mix: false,
            l2: true,
        },
        Part {
            title: "(iii) L2 cache instruction misses (4-way CMP)",
            config: SystemConfig::cmp4(),
            include_mix: true,
            l2: true,
        },
    ];

    for part in parts {
        println!("{}", part.title);
        let sets = workload_columns(part.include_mix);
        let (baselines, per_scheme) = scheme_matrix(
            &part.config,
            &sets,
            &PrefetcherKind::PAPER_SCHEMES,
            InstallPolicy::InstallBoth,
            lengths,
        );
        let rows: Vec<Vec<String>> = per_scheme
            .iter()
            .map(|(label, summaries)| {
                let mut row = vec![label.clone()];
                for (s, base) in summaries.iter().zip(&baselines) {
                    let (v, b) = if part.l2 {
                        (s.l2i_mpi, base.l2i_mpi)
                    } else {
                        (s.l1i_mpi, base.l1i_mpi)
                    };
                    row.push(format!("{:.2}", if b == 0.0 { 0.0 } else { v / b }));
                }
                row
            })
            .collect();
        print_table_owned(&workload_header("scheme", &sets), &rows);
        println!();
    }
}
