//! `sim_report`: per-workload prefetcher diagnosis from telemetry
//! artifacts.
//!
//! Runs the paper's flagship configuration (CMP-4, discontinuity+sequential
//! prefetcher, bypass-L2-until-useful install policy) against a no-prefetch
//! baseline for each of the four commercial workloads plus the mixed
//! schedule, with telemetry enabled. Every run writes its artifact
//! directory through the harness pipeline; the report is then built by
//! *reading the artifacts back* — the per-component accuracy, coverage and
//! timeliness numbers come from `pf_summary.tsv`, not from in-process
//! state, so the binary doubles as an end-to-end check of the artifact
//! pipeline.
//!
//! Columns, per workload and prefetch component (`seq` = next-N-line,
//! `disc` = discontinuity table):
//!
//! * `iss/KI`   — prefetches issued per 1 000 committed instructions;
//! * `acc%`     — accuracy: first demand uses / issued;
//! * `late%`    — timeliness: first uses that arrived after a demand
//!   fetch had already stalled on the line;
//! * `useless%` — issued prefetches evicted without ever being used;
//! * `l2ins/KI` — lines the bypass policy promoted into L2;
//!
//! plus the workload-level L1I miss rate with and without prefetching and
//! the resulting coverage (fraction of baseline misses removed).

use std::process::exit;

use ipsim_cache::InstallPolicy;
use ipsim_core::PrefetcherKind;
use ipsim_cpu::WorkloadSet;
use ipsim_harness::pool;
use ipsim_harness::progress::Progress;
use ipsim_harness::{
    ProgressMode, RunCache, RunLengths, RunSpec, Summary, TelemetrySink, TraceStore,
};
use ipsim_telemetry::sink::parse_component_summary_tsv;
use ipsim_telemetry::{ComponentCounters, PfComponent, PfEventKind, TelemetryConfig};
use ipsim_types::SystemConfig;

const USAGE: &str = "\
usage: sim_report [--bakeoff] [--quick | --smoke] [--jobs N]

  --bakeoff   run the prefetcher-zoo bake-off instead of the flagship
              report: every registered scheme side by side per workload,
              with accuracy/coverage/timeliness attributed per scheme
  --quick     ~5x shorter warm-up/measurement windows
  --smoke     tiny windows for CI smoke runs (seconds, not minutes)
  --jobs N    worker threads (default: available parallelism)
  --help      this text

Environment: IPSIM_CACHE_DIR, IPSIM_TRACE_DIR, IPSIM_TELEMETRY_DIR,
IPSIM_RUNLOG as for the figure binaries.
";

fn parse_args() -> (RunLengths, usize, bool) {
    let mut lengths = RunLengths::full();
    let mut workers = ipsim_harness::args::default_workers();
    let mut bakeoff = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bakeoff" => bakeoff = true,
            "--quick" => lengths = RunLengths::quick(),
            "--smoke" => {
                lengths = RunLengths {
                    warm: 20_000,
                    measure: 50_000,
                }
            }
            "--jobs" | "-j" => {
                let v = args.next().unwrap_or_default();
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => workers = n,
                    _ => {
                        eprintln!("--jobs needs a positive integer\n\n{USAGE}");
                        exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0);
            }
            other => {
                eprintln!("unknown argument `{other}`\n\n{USAGE}");
                exit(2);
            }
        }
    }
    (lengths, workers, bakeoff)
}

fn main() {
    let (lengths, workers, bakeoff) = parse_args();
    let workload_sets: Vec<WorkloadSet> = ipsim_trace::Workload::ALL
        .iter()
        .map(|w| WorkloadSet::homogeneous(*w))
        .chain(std::iter::once(WorkloadSet::mixed()))
        .collect();

    // One baseline and one flagship-prefetcher spec per workload set — or
    // the bake-off sweep (baseline + full-zoo run per workload).
    let mut specs: Vec<RunSpec> = Vec::new();
    if bakeoff {
        specs = ipsim_experiments::bakeoff::bakeoff_specs(lengths);
    } else {
        for ws in &workload_sets {
            let base = RunSpec::new(SystemConfig::cmp4(), ws.clone(), lengths);
            specs.push(base.clone());
            specs.push(
                base.prefetcher(PrefetcherKind::discontinuity_default())
                    .policy(InstallPolicy::BypassL2UntilUseful),
            );
        }
    }

    let cache = RunCache::from_env();
    let traces = TraceStore::from_env();
    let sink = TelemetrySink::from_env(TelemetryConfig::default());
    let progress = Progress::new(ProgressMode::Auto, specs.len());
    let report = pool::execute(&specs, workers, &cache, &traces, Some(&sink), &progress);
    progress.finish();

    let resolve = |spec: &RunSpec| -> Summary {
        match report.results.get(&spec.cache_key()) {
            Some(Ok(summary)) => summary.clone(),
            Some(Err(e)) => {
                eprintln!("run `{}` failed: {e}", spec.label());
                exit(1);
            }
            None => unreachable!("every spec was scheduled"),
        }
    };

    if bakeoff {
        match ipsim_experiments::bakeoff::render_bakeoff(&sink, &specs, resolve) {
            Ok(table) => {
                print!("{table}");
                return;
            }
            Err(e) => {
                eprintln!("bake-off failed: {e}");
                exit(1);
            }
        }
    }

    println!(
        "sim_report: discontinuity+sequential prefetcher vs no-prefetch baseline \
         (CMP-{}, bypass-L2-until-useful, warm={} measure={})",
        SystemConfig::cmp4().n_cores,
        lengths.warm,
        lengths.measure
    );
    println!(
        "{:<8} {:<6} {:>8} {:>6} {:>6} {:>9} {:>9}   {:>18} {:>9}",
        "workload",
        "comp",
        "iss/KI",
        "acc%",
        "late%",
        "useless%",
        "l2ins/KI",
        "L1I MPI base→pf",
        "cover%"
    );

    for (i, ws) in workload_sets.iter().enumerate() {
        let base = resolve(&specs[2 * i]);
        let pf_spec = &specs[2 * i + 1];
        let pf = resolve(pf_spec);
        let instructions = pf.instructions.max(1) as f64;

        // Per-component counters from the on-disk artifact, not memory.
        let dir = sink.dir_for(&pf_spec.cache_key());
        let summary_path = dir.join("pf_summary.tsv");
        let text = match std::fs::read_to_string(&summary_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("missing artifact {}: {e}", summary_path.display());
                exit(1);
            }
        };
        let components = match parse_component_summary_tsv(&text) {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!("corrupt artifact {}: {e}", summary_path.display());
                exit(1);
            }
        };

        let coverage = if base.l1i_mpi > 0.0 {
            (1.0 - pf.l1i_mpi / base.l1i_mpi) * 100.0
        } else {
            0.0
        };
        let mut first = true;
        for (component, counters) in &components {
            if *component == PfComponent::Target || counters.total() == 0 {
                continue;
            }
            let (name, tail) = if first {
                (
                    ws.name(),
                    format!(
                        "{:>8.4}→{:<7.4} {:>8.1}",
                        base.l1i_mpi, pf.l1i_mpi, coverage
                    ),
                )
            } else {
                (String::new(), String::new())
            };
            println!(
                "{:<8} {}",
                name,
                component_row(*component, counters, instructions, &tail)
            );
            first = false;
        }
    }
}

/// One formatted component row; `tail` carries the workload-level columns
/// printed only on the first row of each workload block.
fn component_row(
    component: PfComponent,
    counters: &ComponentCounters,
    instructions: f64,
    tail: &str,
) -> String {
    let issued = counters.get(PfEventKind::Issued);
    let first_uses = counters.first_uses();
    let late = counters.get(PfEventKind::FirstUseLate);
    let useless = counters.get(PfEventKind::EvictUnused);
    let l2_installs = counters.get(PfEventKind::L2Install);
    let pct = |num: u64, den: u64| {
        if den == 0 {
            0.0
        } else {
            num as f64 * 100.0 / den as f64
        }
    };
    format!(
        "{:<6} {:>8.2} {:>6.1} {:>6.1} {:>9.1} {:>9.2}   {}",
        component.name(),
        issued as f64 * 1_000.0 / instructions,
        pct(first_uses, issued),
        pct(late, first_uses),
        pct(useless, issued),
        l2_installs as f64 * 1_000.0 / instructions,
        tail,
    )
}
