//! Figure 8: performance gains of the HW prefetching schemes when
//! instruction prefetches bypass the L2 until proven useful (the paper's
//! selective-install policy); (i) single core and (ii) 4-way CMP.

use ipsim_cache::InstallPolicy;
use ipsim_core::PrefetcherKind;
use ipsim_experiments::{
    print_table_owned, scheme_matrix, workload_columns, workload_header, RunLengths,
};
use ipsim_types::SystemConfig;

fn main() {
    let lengths = RunLengths::from_args();
    println!("Figure 8: speedup over no prefetching (prefetches bypass the L2 until useful)");
    println!("(paper: removing the data pollution lifts the CMP discontinuity speedups from");
    println!(" 1.05-1.28x to 1.08-1.37x; compare with Figure 6)\n");

    for (title, config, include_mix) in [
        ("(i) single core", SystemConfig::single_core(), false),
        ("(ii) 4-way CMP", SystemConfig::cmp4(), true),
    ] {
        println!("{title}");
        let sets = workload_columns(include_mix);
        let (baselines, per_scheme) = scheme_matrix(
            &config,
            &sets,
            &PrefetcherKind::PAPER_SCHEMES,
            InstallPolicy::BypassL2UntilUseful,
            lengths,
        );
        let rows: Vec<Vec<String>> = per_scheme
            .iter()
            .map(|(label, summaries)| {
                let mut row = vec![label.clone()];
                for (s, base) in summaries.iter().zip(&baselines) {
                    row.push(format!("{:.3}", s.speedup_over(base)));
                }
                row
            })
            .collect();
        print_table_owned(&workload_header("scheme", &sets), &rows);
        println!();
    }
}
