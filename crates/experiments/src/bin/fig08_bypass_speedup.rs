//! Figure 8: prefetch speedup with L2 bypass until useful.
//! Thin wrapper; the figure lives in [`ipsim_experiments::figures`].

fn main() {
    ipsim_experiments::figure_main("fig08");
}
