//! Figure 6: performance gains of the HW prefetching schemes with
//! conventional L2 installation (the polluting regime);
//! (i) single core and (ii) 4-way CMP.

use ipsim_cache::InstallPolicy;
use ipsim_core::PrefetcherKind;
use ipsim_experiments::{
    print_table_owned, scheme_matrix, workload_columns, workload_header, RunLengths,
};
use ipsim_types::SystemConfig;

fn main() {
    let lengths = RunLengths::from_args();
    println!("Figure 6: speedup over no prefetching (prefetches installed in L2)");
    println!("(paper: gains fall well short of the Figure 4 limits because aggressive");
    println!(" instruction prefetching pollutes the shared L2 with displaced data)\n");

    for (title, config, include_mix) in [
        ("(i) single core", SystemConfig::single_core(), false),
        ("(ii) 4-way CMP", SystemConfig::cmp4(), true),
    ] {
        println!("{title}");
        let sets = workload_columns(include_mix);
        let (baselines, per_scheme) = scheme_matrix(
            &config,
            &sets,
            &PrefetcherKind::PAPER_SCHEMES,
            InstallPolicy::InstallBoth,
            lengths,
        );
        let rows: Vec<Vec<String>> = per_scheme
            .iter()
            .map(|(label, summaries)| {
                let mut row = vec![label.clone()];
                for (s, base) in summaries.iter().zip(&baselines) {
                    row.push(format!("{:.3}", s.speedup_over(base)));
                }
                row
            })
            .collect();
        print_table_owned(&workload_header("scheme", &sets), &rows);
        println!();
    }
}
