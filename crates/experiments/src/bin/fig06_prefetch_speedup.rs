//! Figure 6: prefetch speedup with conventional L2 installation.
//! Thin wrapper; the figure lives in [`ipsim_experiments::figures`].

fn main() {
    ipsim_experiments::figure_main("fig06");
}
