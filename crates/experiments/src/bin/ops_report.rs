//! `ops_report`: one operational table from the observability artifacts.
//!
//! Joins a Prometheus text snapshot (a saved `GET /v1/metrics` scrape)
//! and/or a Chrome-trace span file (`spans.trace.json`, written by the
//! daemon on drain) into aligned tables: counters and gauges by family,
//! histogram percentiles per label-set, and per-span-name wall-time
//! totals. `--require` turns it into smoke-test teeth: the report fails
//! unless every named metric family is present in the snapshot.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::exit;

use ipsim_experiments::table_string;
use ipsim_obs::{histogram_percentile, parse_text, Exposition};
use ipsim_telemetry::json::Json;

const USAGE: &str = "\
usage: ops_report [options]

  --metrics FILE    Prometheus text snapshot (e.g. a saved /v1/metrics scrape)
  --spans FILE      Chrome-trace span file (e.g. results/serve/spans.trace.json)
  --require NAMES   comma-separated metric families that must be present;
                    missing families fail the report (exit 1)
  --help            this text

At least one of --metrics / --spans is required.
";

fn main() {
    let mut metrics: Option<PathBuf> = None;
    let mut spans: Option<PathBuf> = None;
    let mut require: Vec<String> = Vec::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{name} needs a value\n\n{USAGE}");
                exit(2);
            })
        };
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--metrics" => metrics = Some(value("--metrics").into()),
            "--spans" => spans = Some(value("--spans").into()),
            "--require" => require.extend(
                value("--require")
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string),
            ),
            _ => {
                eprintln!("unknown argument `{arg}`\n\n{USAGE}");
                exit(2);
            }
        }
    }
    if metrics.is_none() && spans.is_none() {
        eprintln!("nothing to report: pass --metrics and/or --spans\n\n{USAGE}");
        exit(2);
    }
    if metrics.is_none() && !require.is_empty() {
        eprintln!("--require needs --metrics\n\n{USAGE}");
        exit(2);
    }

    let mut failed = false;
    if let Some(path) = &metrics {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("ops_report: cannot read {}: {e}", path.display());
            exit(1);
        });
        match parse_text(&text) {
            Ok(exposition) => {
                print!("{}", metrics_tables(&exposition));
                for name in &require {
                    if exposition.family(name).is_none() {
                        eprintln!("ops_report: required family `{name}` is missing");
                        failed = true;
                    }
                }
            }
            Err(e) => {
                eprintln!(
                    "ops_report: {} is not valid exposition: {e}",
                    path.display()
                );
                failed = true;
            }
        }
    }
    if let Some(path) = &spans {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("ops_report: cannot read {}: {e}", path.display());
            exit(1);
        });
        match span_table(&text) {
            Ok(table) => print!("{table}"),
            Err(e) => {
                eprintln!("ops_report: {}: {e}", path.display());
                failed = true;
            }
        }
    }
    if failed {
        exit(1);
    }
}

/// Renders the counter/gauge table and the histogram percentile table.
fn metrics_tables(exposition: &Exposition) -> String {
    let mut out = String::new();
    let mut scalars: Vec<Vec<String>> = Vec::new();
    let mut histograms: Vec<Vec<String>> = Vec::new();
    for family in &exposition.families {
        match family.kind.as_str() {
            "counter" | "gauge" => {
                for sample in &family.samples {
                    scalars.push(vec![
                        family.name.clone(),
                        family.kind.clone(),
                        label_string(&sample.labels),
                        trim_float(sample.value),
                    ]);
                }
            }
            "histogram" => {
                // One percentile row per distinct label-set (minus `le`).
                let mut label_sets: Vec<Vec<(String, String)>> = Vec::new();
                for sample in &family.samples {
                    let mut labels: Vec<(String, String)> = sample
                        .labels
                        .iter()
                        .filter(|(k, _)| k != "le")
                        .cloned()
                        .collect();
                    labels.sort();
                    if !label_sets.contains(&labels) {
                        label_sets.push(labels);
                    }
                }
                for labels in label_sets {
                    let want: Vec<(&str, &str)> = labels
                        .iter()
                        .map(|(k, v)| (k.as_str(), v.as_str()))
                        .collect();
                    let buckets = exposition.histogram_buckets(&family.name, &want);
                    let count = buckets.last().map_or(0.0, |&(_, n)| n);
                    let p = |p: f64| trim_float(histogram_percentile(&buckets, p));
                    histograms.push(vec![
                        family.name.clone(),
                        label_string(&labels),
                        trim_float(count),
                        p(50.0),
                        p(90.0),
                        p(99.0),
                    ]);
                }
            }
            _ => {}
        }
    }
    if !scalars.is_empty() {
        out.push_str("== counters and gauges ==\n");
        out.push_str(&table_string(
            &["family", "kind", "labels", "value"],
            &scalars,
        ));
    }
    if !histograms.is_empty() {
        out.push_str("\n== histograms ==\n");
        out.push_str(&table_string(
            &["family", "labels", "count", "p50", "p90", "p99"],
            &histograms,
        ));
    }
    out
}

/// Folds a Chrome-trace span file into per-name totals: spans, total and
/// maximum wall micros. Validation is the telemetry crate's shared
/// structural validator; the fold itself re-reads the events.
fn span_table(text: &str) -> Result<String, String> {
    ipsim_telemetry::sink::validate_chrome_trace(text)?;
    let json = ipsim_telemetry::json::parse(text)?;
    let events = json
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("traceEvents missing")?;
    // name -> (spans, total duration micros, max duration micros)
    let mut by_name: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
    for event in events {
        if event.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let name = event
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        let dur = event.get("dur").and_then(Json::as_num).unwrap_or(0.0) as u64;
        let entry = by_name.entry(name).or_insert((0, 0, 0));
        entry.0 += 1;
        entry.1 += dur;
        entry.2 = entry.2.max(dur);
    }
    let rows: Vec<Vec<String>> = by_name
        .iter()
        .map(|(name, (n, total, max))| {
            vec![
                name.clone(),
                n.to_string(),
                total.to_string(),
                (total / (*n).max(1)).to_string(),
                max.to_string(),
            ]
        })
        .collect();
    let mut out = String::from("\n== spans ==\n");
    if rows.is_empty() {
        out.push_str("(no complete spans in the trace)\n");
    } else {
        out.push_str(&table_string(
            &["span", "count", "total_us", "mean_us", "max_us"],
            &rows,
        ));
    }
    Ok(out)
}

fn label_string(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return "-".to_string();
    }
    labels
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(",")
}

/// Integer-valued floats print without the trailing `.0` the exposition
/// format writes.
fn trim_float(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}
