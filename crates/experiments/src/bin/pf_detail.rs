//! Development tool: dumps the full prefetch-pipeline counters for each
//! scheme so calibration problems can be localised.

use ipsim_cache::InstallPolicy;
use ipsim_core::PrefetcherKind;
use ipsim_cpu::{SystemBuilder, WorkloadSet};
use ipsim_experiments::{pct, run, tool_args, RunLengths};
use ipsim_prefetch::ZooPlan;
use ipsim_trace::Workload;

const USAGE: &str = "\
usage: pf_detail [--bypass] [--prefetcher SPEC]

  --bypass             use the BypassL2UntilUseful install policy
  --prefetcher SPEC    dump one registry scheme instead of the default
                       trio; SPEC is a registry spec like `disc:ahead=2`,
                       `mana` or `pmap:depth=2` (run via a zoo of one)
  --help               this text
";

fn main() {
    let mut bypass = false;
    let mut selected: Option<ZooPlan> = None;
    let mut args = tool_args(USAGE).into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bypass" => bypass = true,
            "--prefetcher" => {
                let spec = args.next().unwrap_or_default();
                match ZooPlan::parse(&spec) {
                    Ok(plan) => selected = Some(plan),
                    Err(e) => {
                        eprintln!("--prefetcher: {e}\n\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            _ => {
                eprintln!("unknown argument `{arg}`\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let lengths = RunLengths::quick();
    let ws = WorkloadSet::homogeneous(Workload::JApp);
    let base = run(SystemBuilder::cmp4(), &ws, lengths);
    {
        let bd = base.l1i_miss_breakdown();
        println!("baseline L1I misses by category (per 1k instr):");
        for (cat, count) in bd.iter() {
            if count > 0 {
                println!(
                    "  {:<18} {:.2}",
                    cat.label(),
                    count as f64 / base.instructions() as f64 * 1000.0
                );
            }
        }
        println!();
    }
    let contenders: Vec<(String, Box<dyn Fn() -> SystemBuilder>)> = match &selected {
        Some(plan) => {
            let plan = plan.clone();
            vec![(
                format!("zoo[{}]", plan.canonical()),
                Box::new(move || SystemBuilder::cmp4().zoo(plan.clone())) as _,
            )]
        }
        None => [
            PrefetcherKind::NextNLineTagged { n: 4 },
            PrefetcherKind::discontinuity_default(),
            PrefetcherKind::DiscontinuityGated {
                table_entries: 8192,
                ahead: 4,
                min_confidence: 2,
            },
        ]
        .into_iter()
        .map(|kind| {
            (
                kind.label(),
                Box::new(move || SystemBuilder::cmp4().prefetcher(kind)) as _,
            )
        })
        .collect(),
    };
    for (label, builder) in &contenders {
        let m = run(
            builder().install_policy(if bypass {
                InstallPolicy::BypassL2UntilUseful
            } else {
                InstallPolicy::InstallBoth
            }),
            &ws,
            lengths,
        );
        let pf = m.prefetch();
        let ki = m.instructions() as f64 / 1000.0;
        println!("== {label} ==");
        println!(
            "L1I {} (ratio {:.2})  L2I ratio {:.2}  L2D ratio {:.2}  speedup {:.3}",
            pct(m.l1i_miss_per_instr()),
            m.l1i_miss_ratio_vs(&base),
            m.l2_instr_miss_ratio_vs(&base),
            m.l2_data_miss_ratio_vs(&base),
            m.speedup_over(&base)
        );
        println!(
            "per 1k instr: generated {:.1} filtered {:.1} queued {:.1} probes {:.1} \
             probe_hits {:.1} inflight {:.1} mshr_rej {:.1} issued {:.1} useful {:.1} late {:.1}",
            pf.generated as f64 / ki,
            pf.filtered_recent as f64 / ki,
            pf.queued as f64 / ki,
            pf.probes as f64 / ki,
            pf.probe_hits as f64 / ki,
            pf.inflight_hits as f64 / ki,
            pf.mshr_rejected as f64 / ki,
            pf.issued as f64 / ki,
            pf.useful as f64 / ki,
            pf.late as f64 / ki,
        );
        // Queue-level stats from core 0 are not exposed; approximate with
        // issued vs queued.
        println!(
            "accuracy {:.0}%  queue loss (queued-probes) {:.1}/1k",
            pf.accuracy() * 100.0,
            (pf.queued as i64 - pf.probes as i64) as f64 / ki,
        );
        let bd = m.l1i_miss_breakdown();
        println!("remaining L1I misses by category (per 1k instr):");
        for (cat, count) in bd.iter() {
            if count > 0 {
                println!(
                    "  {:<18} {:.2}",
                    cat.label(),
                    count as f64 / ki / 1000.0 * 1000.0
                );
            }
        }
        println!();
    }
}
