//! Figure 1: instruction cache miss rates vs cache geometry.
//! Thin wrapper; the figure lives in [`ipsim_experiments::figures`].

fn main() {
    ipsim_experiments::figure_main("fig01");
}
