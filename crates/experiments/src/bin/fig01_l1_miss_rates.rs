//! Figure 1: instruction cache miss rates (% per retired instruction) as
//! cache associativity, line size and capacity are varied.
//!
//! Default configuration: 32 KB, 4-way, 64 B lines. Single-core system (the
//! L1I is private, so this applies to the CMP too), no prefetching.

use ipsim_experiments::{pct, print_table, single_workload_sets, RunLengths, RunSpec};
use ipsim_types::{CacheConfig, SystemConfig};

fn main() {
    let lengths = RunLengths::from_args();
    // (label, size, assoc, line)
    let configs: [(&str, u64, u32, u64); 10] = [
        ("Default", 32 << 10, 4, 64),
        ("Direct-mapped", 32 << 10, 1, 64),
        ("2-way", 32 << 10, 2, 64),
        ("8-way", 32 << 10, 8, 64),
        ("32B line size", 32 << 10, 4, 32),
        ("128B line size", 32 << 10, 4, 128),
        ("256B line size", 32 << 10, 4, 256),
        ("16KB", 16 << 10, 4, 64),
        ("64KB", 64 << 10, 4, 64),
        ("128KB", 128 << 10, 4, 64),
    ];

    println!("Figure 1: L1I miss rate (% per instruction) vs cache geometry");
    println!("(paper: default miss rates 1.32-3.16%, jApp highest; larger lines and");
    println!(" capacity help strongly, associativity modestly)\n");

    let workloads = single_workload_sets();
    let mut rows = Vec::new();
    for (label, size, assoc, line) in configs {
        let mut row = vec![label.to_string()];
        for ws in &workloads {
            let mut config = SystemConfig::single_core();
            config.core.l1i = CacheConfig::new(size, assoc, line).expect("valid geometry");
            let summary = RunSpec::new(config, ws.clone(), lengths).run();
            row.push(pct(summary.l1i_mpi));
        }
        rows.push(row);
    }
    print_table(&["I$ configuration", "DB", "TPC-W", "jApp", "Web"], &rows);
}
