//! Figure 4: performance improvement achievable by perfectly eliminating
//! different classes of instruction misses (limit study), relative to the
//! no-prefetch baseline; (i) single core and (ii) 4-way CMP.

use ipsim_cpu::{LimitSpec, WorkloadSet};
use ipsim_experiments::{print_table, RunLengths, RunSpec};
use ipsim_trace::Workload;
use ipsim_types::SystemConfig;

fn main() {
    let lengths = RunLengths::from_args();
    println!("Figure 4: speedup from perfect elimination of miss classes");
    println!("(paper: eliminating all three classes yields far more than any single class;");
    println!(" sequential-only beats branch-only and function-only)\n");

    for (part, config, include_mix) in [
        ("(i) single core", SystemConfig::single_core(), false),
        ("(ii) 4-way CMP", SystemConfig::cmp4(), true),
    ] {
        println!("{part}");
        let mut sets: Vec<WorkloadSet> = Workload::ALL
            .iter()
            .map(|w| WorkloadSet::homogeneous(*w))
            .collect();
        if include_mix {
            sets.push(WorkloadSet::mixed());
        }
        let mut header = vec!["elimination"];
        let names: Vec<String> = sets.iter().map(|w| w.name()).collect();
        for n in &names {
            header.push(n);
        }
        let baselines: Vec<_> = sets
            .iter()
            .map(|ws| RunSpec::new(config.clone(), ws.clone(), lengths).run())
            .collect();
        let mut rows = Vec::new();
        for spec in LimitSpec::FIG4_SETS {
            let mut row = vec![spec.label().to_string()];
            for (ws, base) in sets.iter().zip(&baselines) {
                let s = RunSpec::new(config.clone(), ws.clone(), lengths)
                    .limit(spec)
                    .run();
                row.push(format!("{:.3}", s.speedup_over(base)));
            }
            rows.push(row);
        }
        print_table(&header, &rows);
        println!();
    }
}
