//! Figure 4: limit study — perfect elimination of miss classes.
//! Thin wrapper; the figure lives in [`ipsim_experiments::figures`].

fn main() {
    ipsim_experiments::figure_main("fig04");
}
