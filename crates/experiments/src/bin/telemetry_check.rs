//! `telemetry_check`: validates every telemetry artifact directory under a
//! root using the exporters' own parsers.
//!
//! For each run directory (identified by its `meta.tsv` completion
//! marker) the check re-reads all four artifacts with the readers the
//! `ipsim-telemetry` crate ships alongside its writers:
//!
//! * `events.jsonl`  — schema/field validation, then per-core prefetch
//!   lifecycle state-machine validation;
//! * `trace.json`    — Chrome `trace_event` structural validation;
//! * `series.tsv`    — interval time-series parse;
//! * `pf_summary.tsv`— per-component counter parse, cross-checked against
//!   the event counts recovered from the JSONL.
//!
//! Exit status is 0 only if every directory passes; any violation prints
//! the directory and reason and flips the exit code to 1. This is the CI
//! smoke job's teeth: `all_figures --telemetry` followed by
//! `telemetry_check` proves the artifact pipeline end to end.

use std::path::{Path, PathBuf};
use std::process::exit;

use ipsim_harness::telemetry::{read_meta, DEFAULT_TELEMETRY_DIR, META_FILE, TELEMETRY_DIR_ENV};
use ipsim_telemetry::sink::{
    parse_component_summary_tsv, parse_events_jsonl, parse_series_tsv, validate_chrome_trace,
};
use ipsim_telemetry::{validate_lifecycle, PfEventKind};

const USAGE: &str = "\
usage: telemetry_check [ROOT] [TRACE.json ...]

Validates every telemetry artifact directory under ROOT (default:
$IPSIM_TELEMETRY_DIR or results/telemetry). Arguments that are files
are validated as loose Chrome-trace exports instead (e.g. the
spans.trace.json the serving daemon writes on drain). Exits nonzero
if any artifact fails its format or lifecycle validation.
";

/// Parsed positional arguments: an optional artifact root plus any loose
/// Chrome-trace files. A file argument never becomes the root; when only
/// files are given the directory scan is skipped entirely.
fn targets_from_args() -> (Option<PathBuf>, Vec<PathBuf>) {
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0);
            }
            other if !other.starts_with('-') => {
                let path = PathBuf::from(other);
                if path.is_file() {
                    files.push(path);
                } else if root.is_none() {
                    root = Some(path);
                } else {
                    eprintln!("more than one ROOT directory given\n\n{USAGE}");
                    exit(2);
                }
            }
            other => {
                eprintln!("unknown argument `{other}`\n\n{USAGE}");
                exit(2);
            }
        }
    }
    if root.is_none() && files.is_empty() {
        root = Some(
            std::env::var(TELEMETRY_DIR_ENV)
                .map(PathBuf::from)
                .unwrap_or_else(|_| PathBuf::from(DEFAULT_TELEMETRY_DIR)),
        );
    }
    (root, files)
}

/// Validates one loose Chrome-trace file with the shared validator.
fn check_trace_file(path: &Path) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let events = validate_chrome_trace(&text)?;
    Ok(format!("{events} trace events"))
}

fn read(dir: &Path, name: &str) -> Result<String, String> {
    std::fs::read_to_string(dir.join(name)).map_err(|e| format!("{name}: {e}"))
}

/// Validates one artifact directory; returns a one-line pass description.
fn check_dir(dir: &Path) -> Result<String, String> {
    let meta = read_meta(dir).ok_or_else(|| format!("{META_FILE}: missing or malformed"))?;
    let meta_get = |key: &str| -> Option<&str> {
        meta.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    };

    // events.jsonl: format, then the lifecycle state machine per core.
    let events = parse_events_jsonl(&read(dir, "events.jsonl")?)
        .map_err(|e| format!("events.jsonl: {e}"))?;
    let mut issued = 0u64;
    for (core, core_events) in events.per_core.iter().enumerate() {
        let summary = validate_lifecycle(core_events)
            .map_err(|v| format!("events.jsonl: core {core}: lifecycle violation: {v}"))?;
        issued += summary.issues;
    }
    if let Some(want) = meta_get("events").and_then(|v| v.parse::<usize>().ok()) {
        if want != events.total_events() {
            return Err(format!(
                "events.jsonl: {} events, {META_FILE} recorded {want}",
                events.total_events()
            ));
        }
    }

    // trace.json: the Chrome exporter's structural validator.
    let trace_events =
        validate_chrome_trace(&read(dir, "trace.json")?).map_err(|e| format!("trace.json: {e}"))?;

    // series.tsv: interval time series.
    let samples =
        parse_series_tsv(&read(dir, "series.tsv")?).map_err(|e| format!("series.tsv: {e}"))?;

    // pf_summary.tsv: per-component counters, cross-checked against the
    // issue count recovered from the event stream. The summary counts
    // every event the tracer saw; the JSONL stream loses events only to
    // per-core buffer overflow, so with nothing dropped the counts agree
    // exactly and with drops the summary can only be larger.
    let components = parse_component_summary_tsv(&read(dir, "pf_summary.tsv")?)
        .map_err(|e| format!("pf_summary.tsv: {e}"))?;
    let summary_issued: u64 = components
        .iter()
        .map(|(_, c)| c.get(PfEventKind::Issued))
        .sum();
    let dropped: u64 = events.dropped.iter().sum();
    if dropped == 0 && summary_issued != issued {
        return Err(format!(
            "pf_summary.tsv: {summary_issued} issues, events.jsonl has {issued} \
             (nothing dropped)"
        ));
    }
    if summary_issued < issued {
        return Err(format!(
            "pf_summary.tsv: {summary_issued} issues, fewer than the {issued} \
             in events.jsonl"
        ));
    }

    Ok(format!(
        "{} events ({dropped} dropped) · {trace_events} trace events · {} samples · {} components{}",
        events.total_events(),
        samples.len(),
        components.len(),
        meta_get("label")
            .map(|l| format!(" · {l}"))
            .unwrap_or_default(),
    ))
}

fn main() {
    let (root, files) = targets_from_args();
    let mut failed = 0usize;
    let mut checked = 0usize;

    for file in &files {
        checked += 1;
        let name = file.display();
        match check_trace_file(file) {
            Ok(detail) => println!("ok   {name}  {detail}"),
            Err(reason) => {
                println!("FAIL {name}  {reason}");
                failed += 1;
            }
        }
    }

    if let Some(root) = root {
        let entries = match std::fs::read_dir(&root) {
            Ok(entries) => entries,
            Err(e) => {
                eprintln!("telemetry_check: cannot read {}: {e}", root.display());
                exit(1);
            }
        };
        let mut dirs: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.join(META_FILE).is_file())
            .collect();
        dirs.sort();

        if dirs.is_empty() {
            eprintln!(
                "telemetry_check: no artifact directories under {} \
                 (run a sweep with --telemetry first)",
                root.display()
            );
            exit(1);
        }

        for dir in &dirs {
            checked += 1;
            let name = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| dir.display().to_string());
            match check_dir(dir) {
                Ok(detail) => println!("ok   {name}  {detail}"),
                Err(reason) => {
                    println!("FAIL {name}  {reason}");
                    failed += 1;
                }
            }
        }
    }

    println!(
        "{checked} artifact{} checked, {failed} failed",
        if checked == 1 { "" } else { "s" },
    );
    if failed > 0 {
        exit(1);
    }
}
