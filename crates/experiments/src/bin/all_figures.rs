//! Runs every figure harness in sequence, teeing each figure's output into
//! `results/figNN.txt`. Thanks to the shared run cache (`results/cache/`),
//! configurations appearing in several figures are simulated once.

use std::fs;
use std::process::Command;

const FIGURES: [&str; 13] = [
    "fig01_l1_miss_rates",
    "fig02_l2_miss_rates",
    "fig03_miss_breakdown",
    "fig04_limit_study",
    "fig05_prefetch_miss_rates",
    "fig06_prefetch_speedup",
    "fig07_l2_data_pollution",
    "fig08_bypass_speedup",
    "fig09_accuracy_2nl",
    "fig10_table_size",
    "fig11_ablations",
    "fig12_bandwidth",
    "fig13_latency",
];

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    fs::create_dir_all("results").expect("can create results directory");
    let exe_dir = std::env::current_exe()
        .expect("current executable path")
        .parent()
        .expect("executable directory")
        .to_path_buf();

    for fig in FIGURES {
        println!("==> {fig}");
        let mut cmd = Command::new(exe_dir.join(fig));
        if quick {
            cmd.arg("--quick");
        }
        let out = cmd.output().unwrap_or_else(|e| panic!("failed to run {fig}: {e}"));
        if !out.status.success() {
            eprintln!("{fig} failed:\n{}", String::from_utf8_lossy(&out.stderr));
            std::process::exit(1);
        }
        let text = String::from_utf8_lossy(&out.stdout);
        let short = fig.split('_').next().unwrap_or(fig);
        fs::write(format!("results/{short}.txt"), text.as_bytes())
            .expect("can write results file");
        println!("{text}");
    }
    println!("all figures written to results/");
}
