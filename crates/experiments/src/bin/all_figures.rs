//! Regenerates every figure in one process through the shared scheduler.
//!
//! All figures' runs are collected up front, deduplicated globally by cache
//! key, executed once across a worker pool (`--jobs N`), then each figure
//! is rendered and teed into `results/figNN.txt`. Output is byte-identical
//! for any worker count. A failing figure no longer aborts the sweep: every
//! figure runs, a pass/fail summary is printed at the end, and only then
//! does the process exit nonzero.

use std::path::PathBuf;
use std::process::exit;

use ipsim_experiments::figures;
use ipsim_harness::{run_sweep, Figure, HarnessArgs, SweepOptions};

fn main() {
    ipsim_signal::install();
    let args = HarnessArgs::from_env_or_exit();
    let all = figures::all();
    let selected: Vec<Figure> = match &args.figures {
        None => all,
        Some(names) => {
            let picked: Vec<Figure> = all
                .iter()
                .filter(|f| names.iter().any(|n| n == f.name))
                .copied()
                .collect();
            let known: Vec<&str> = all.iter().map(|f| f.name).collect();
            if let Some(bad) = names.iter().find(|n| !known.contains(&n.as_str())) {
                eprintln!("unknown figure `{bad}` (known: {})", known.join(", "));
                exit(2);
            }
            picked
        }
    };

    let mut opts = SweepOptions::new(args.lengths, args.workers);
    opts.results_dir = Some(PathBuf::from("results"));
    opts.traces = args.traces;
    if args.telemetry {
        opts.telemetry = Some(ipsim_telemetry::TelemetryConfig::default());
    }
    let report = run_sweep(&selected, &opts);

    for fig in &report.figures {
        println!("==> {}", fig.name);
        match &fig.outcome {
            Ok(text) => println!("{text}"),
            Err(e) => println!("FAILED: {e}\n"),
        }
    }

    println!(
        "{} figures · {} runs ({} unique: {} cached, {} simulated{}) · {:.1}s with {} worker{}",
        report.figures.len(),
        report.total_jobs,
        report.unique_jobs,
        report.cache_hits,
        report.cache_misses,
        if report.quarantined > 0 {
            format!(", {} corrupt cache entries quarantined", report.quarantined)
        } else {
            String::new()
        },
        report.wall.as_secs_f64(),
        args.workers,
        if args.workers == 1 { "" } else { "s" },
    );
    if report.telemetry_written > 0 {
        println!(
            "telemetry: {} artifact director{} written under results/telemetry/",
            report.telemetry_written,
            if report.telemetry_written == 1 {
                "y"
            } else {
                "ies"
            },
        );
    }
    if report.traces_captured + report.traces_replayed + report.traces_quarantined > 0 {
        println!(
            "traces: {} stream{} captured · {} run{} replayed{}",
            report.traces_captured,
            if report.traces_captured == 1 { "" } else { "s" },
            report.traces_replayed,
            if report.traces_replayed == 1 { "" } else { "s" },
            if report.traces_quarantined > 0 {
                format!(
                    " · {} corrupt trace file(s) quarantined",
                    report.traces_quarantined
                )
            } else {
                String::new()
            },
        );
    }
    for fig in &report.figures {
        println!(
            "  {}  {} — {}",
            if fig.outcome.is_ok() { "ok  " } else { "FAIL" },
            fig.name,
            fig.title,
        );
    }
    if report.interrupted {
        eprintln!(
            "interrupted: {} completed runs flushed to the runlog; rerun to resume from cache",
            report.cache_hits + report.cache_misses,
        );
        exit(130);
    }
    if report.all_ok() {
        println!("all figures written to results/");
    } else {
        let failed = report.figures.iter().filter(|f| f.outcome.is_err()).count();
        eprintln!("{failed} figure(s) failed");
        exit(1);
    }
}
