//! Regenerates every figure in one process — or several — through the
//! shared scheduler.
//!
//! All figures' runs are collected up front, deduplicated globally by cache
//! key, executed once across a worker pool (`--jobs N`), then each figure
//! is rendered and teed into `results/figNN.txt`. Output is byte-identical
//! for any worker count. A failing figure no longer aborts the sweep: every
//! figure runs, a pass/fail summary is printed at the end, and only then
//! does the process exit nonzero.
//!
//! Two orthogonal accelerators ride on top:
//!
//! * `--shards N` (or `$IPSIM_SHARDS`) partitions the unique run set
//!   deterministically by cache key over N processes: this binary re-execs
//!   itself with the internal `--shard-exec I/N` flag for shards `1..N`,
//!   runs shard 0 in-process, and every shard writes through the shared
//!   run cache — so the final render pass resolves everything from cache
//!   hits and the figures are byte-identical at any shard count.
//! * the incremental manifest (`results/figures/manifest.tsv`) skips
//!   figures whose input runs and renderer are unchanged since their
//!   output file was written; `--force` bypasses it.

use std::path::PathBuf;
use std::process::exit;

use ipsim_experiments::figures;
use ipsim_harness::shard::ShardSpec;
use ipsim_harness::{run_shard, run_sweep, Figure, HarnessArgs, SweepOptions};

fn main() {
    ipsim_signal::install();
    let args = HarnessArgs::from_env_or_exit();
    let all = figures::all();
    let selected: Vec<Figure> = match &args.figures {
        None => all,
        Some(names) => {
            let picked: Vec<Figure> = all
                .iter()
                .filter(|f| names.iter().any(|n| n == f.name))
                .copied()
                .collect();
            let known: Vec<&str> = all.iter().map(|f| f.name).collect();
            if let Some(bad) = names.iter().find(|n| !known.contains(&n.as_str())) {
                eprintln!("unknown figure `{bad}` (known: {})", known.join(", "));
                exit(2);
            }
            picked
        }
    };

    let mut opts = SweepOptions::new(args.lengths, args.workers);
    opts.results_dir = Some(PathBuf::from("results"));
    opts.traces = args.traces;
    opts.manifest = Some(PathBuf::from(ipsim_harness::manifest::DEFAULT_MANIFEST));
    opts.force = args.force;
    if args.telemetry {
        opts.telemetry = Some(ipsim_telemetry::TelemetryConfig::default());
    }

    // Child mode: execute our slice of the run set and exit. No rendering,
    // no summary tables — the parent does that once everything merged.
    if let Some(shard) = args.shard_exec {
        let report = run_shard(&selected, &opts, shard);
        eprintln!(
            "[s{shard}] shard done: {}/{} runs ({} simulated, {} cached) in {:.1}s",
            report.assigned,
            report.sweep_jobs,
            report.cache_misses,
            report.cache_hits,
            report.wall.as_secs_f64(),
        );
        exit(if report.interrupted { 130 } else { 0 });
    }

    let shards = match args.resolve_shards() {
        Ok(n) => n,
        Err(msg) => {
            eprintln!("{msg}");
            exit(2);
        }
    };
    let mut shard_interrupted = false;
    if shards > 1 {
        shard_interrupted = run_sharded(&args, &selected, &opts, shards);
    }

    // Render pass. After sharded execution this resolves (almost) entirely
    // from cache hits; any run a failed shard left behind is simulated
    // here, so a crashed child degrades throughput, never correctness.
    let report = run_sweep(&selected, &opts);

    for fig in &report.figures {
        println!(
            "==> {}{}",
            fig.name,
            if fig.skipped { " (unchanged)" } else { "" }
        );
        match &fig.outcome {
            Ok(text) => println!("{text}"),
            Err(e) => println!("FAILED: {e}\n"),
        }
    }

    println!(
        "{} figures ({} rendered, {} unchanged) · {} runs ({} unique: {} cached, {} simulated{}) · {:.1}s with {} worker{}{}",
        report.figures.len(),
        report.figures.len() - report.figures_skipped,
        report.figures_skipped,
        report.total_jobs,
        report.unique_jobs,
        report.cache_hits,
        report.cache_misses,
        if report.quarantined > 0 {
            format!(", {} corrupt cache entries quarantined", report.quarantined)
        } else {
            String::new()
        },
        report.wall.as_secs_f64(),
        args.workers,
        if args.workers == 1 { "" } else { "s" },
        if shards > 1 {
            format!(" · {shards} shards")
        } else {
            String::new()
        },
    );
    if report.telemetry_written > 0 {
        println!(
            "telemetry: {} artifact director{} written under results/telemetry/",
            report.telemetry_written,
            if report.telemetry_written == 1 {
                "y"
            } else {
                "ies"
            },
        );
    }
    if report.traces_captured + report.traces_replayed + report.traces_quarantined > 0 {
        println!(
            "traces: {} stream{} captured · {} run{} replayed{}",
            report.traces_captured,
            if report.traces_captured == 1 { "" } else { "s" },
            report.traces_replayed,
            if report.traces_replayed == 1 { "" } else { "s" },
            if report.traces_quarantined > 0 {
                format!(
                    " · {} corrupt trace file(s) quarantined",
                    report.traces_quarantined
                )
            } else {
                String::new()
            },
        );
    }
    for fig in &report.figures {
        println!(
            "  {}  {} — {}",
            if fig.outcome.is_err() {
                "FAIL"
            } else if fig.skipped {
                "skip"
            } else {
                "ok  "
            },
            fig.name,
            fig.title,
        );
    }
    if report.interrupted || shard_interrupted {
        eprintln!(
            "interrupted: {} completed runs flushed to the runlog; rerun to resume from cache",
            report.cache_hits + report.cache_misses,
        );
        exit(130);
    }
    if report.all_ok() {
        println!("all figures written to results/");
    } else {
        let failed = report.figures.iter().filter(|f| f.outcome.is_err()).count();
        eprintln!("{failed} figure(s) failed");
        exit(1);
    }
}

/// Spawns shards `1..shards` as child processes of this same binary and
/// runs shard 0 in-process; waits for every child. Returns whether any
/// shard was interrupted. A child that fails for any other reason is
/// reported and otherwise ignored: the render pass re-simulates whatever
/// that shard didn't finish.
fn run_sharded(
    args: &HarnessArgs,
    selected: &[Figure],
    opts: &SweepOptions,
    shards: usize,
) -> bool {
    let exe = match std::env::current_exe() {
        Ok(exe) => exe,
        Err(e) => {
            eprintln!("warning: cannot respawn for sharding ({e}); running single-process");
            return false;
        }
    };
    let mut children = Vec::new();
    for index in 1..shards {
        let shard = ShardSpec {
            index,
            count: shards,
        };
        match std::process::Command::new(&exe)
            .args(args.child_args(shard))
            .spawn()
        {
            Ok(child) => children.push((shard, child)),
            Err(e) => eprintln!("warning: shard {shard} failed to spawn: {e}"),
        }
    }
    let local = run_shard(
        selected,
        opts,
        ShardSpec {
            index: 0,
            count: shards,
        },
    );
    let mut interrupted = local.interrupted;
    for (shard, mut child) in children {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) if status.code() == Some(130) => interrupted = true,
            Ok(status) => eprintln!("warning: shard {shard} exited with {status}"),
            Err(e) => eprintln!("warning: shard {shard} could not be waited on: {e}"),
        }
    }
    eprintln!(
        "shards: {shards} processes over {} unique runs · shard 0 did {} ({} simulated) in {:.1}s",
        local.sweep_jobs,
        local.assigned,
        local.cache_misses,
        local.wall.as_secs_f64(),
    );
    interrupted
}
