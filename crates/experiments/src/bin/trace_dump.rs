//! Development tool: dumps the synthesised static program's structure —
//! a workload's code-layout summary and the CFG of chosen functions.
//!
//! Usage: `trace_dump <db|tpcw|japp|web> [func_id ...]`

use ipsim_experiments::tool_args;
use ipsim_trace::{FuncId, Terminator, Workload};

const USAGE: &str = "\
usage: trace_dump <db|tpcw|japp|web> [func_id ...]

  func_id   numeric function ids to dump as CFGs
  --help    this text
";

fn main() {
    let args = tool_args(USAGE);
    let w = match args.first().map(String::as_str) {
        Some("db") => Workload::Db,
        Some("tpcw") => Workload::TpcW,
        Some("japp") => Workload::JApp,
        Some("web") => Workload::Web,
        _ => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    let prog = w.build_program(0x5EED_0001);
    println!(
        "{}: {} functions (+{} trap handlers), {:.2} MB of code at {}",
        w.name(),
        prog.n_regular(),
        prog.n_functions() - prog.n_regular(),
        prog.code_bytes() as f64 / (1 << 20) as f64,
        prog.code_start(),
    );

    // Aggregate shape statistics.
    let mut blocks = 0u64;
    let mut instrs = 0u64;
    let mut terminators = [0u64; 6]; // fallthrough, cond, uncond, call, indirect, return
    for f in 0..prog.n_regular() {
        let func = prog.function(FuncId(f));
        blocks += func.blocks.len() as u64;
        instrs += func.n_instrs() as u64;
        for b in &func.blocks {
            let idx = match b.terminator {
                Terminator::FallThrough => 0,
                Terminator::CondBranch { .. } => 1,
                Terminator::UncondBranch { .. } => 2,
                Terminator::Call { .. } => 3,
                Terminator::IndirectCall { .. } => 4,
                Terminator::Return => 5,
            };
            terminators[idx] += 1;
        }
    }
    println!(
        "mean {:.1} blocks/function, {:.1} instrs/block",
        blocks as f64 / prog.n_regular() as f64,
        instrs as f64 / blocks as f64
    );
    let labels = [
        "fallthrough",
        "cond",
        "uncond",
        "call",
        "indirect",
        "return",
    ];
    for (label, count) in labels.iter().zip(terminators) {
        println!(
            "  {:<12} {:>5.1}%",
            label,
            count as f64 / blocks as f64 * 100.0
        );
    }

    // Per-function CFG dumps.
    for arg in args.iter().skip(1) {
        let Ok(id) = arg.parse::<u32>() else {
            eprintln!("bad function id '{arg}'");
            continue;
        };
        if id >= prog.n_functions() {
            eprintln!("function {id} out of range");
            continue;
        }
        let func = prog.function(FuncId(id));
        println!(
            "\nfunction {} @ {} ({} instrs):",
            id,
            func.entry(),
            func.n_instrs()
        );
        for (i, b) in func.blocks.iter().enumerate() {
            let term = match &b.terminator {
                Terminator::FallThrough => "fall-through".to_string(),
                Terminator::CondBranch { target, taken_prob } => {
                    format!("cond -> B{target} (p={taken_prob:.2})")
                }
                Terminator::UncondBranch { target } => format!("goto B{target}"),
                Terminator::Call { callee } => format!("call F{}", callee.0),
                Terminator::IndirectCall { callees } => format!(
                    "jmpl {{{}}}",
                    callees
                        .iter()
                        .map(|(c, _)| format!("F{}", c.0))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                Terminator::Return => "return".to_string(),
            };
            println!(
                "  B{i:<3} @ {}  {:>2} instrs  {}",
                b.start, b.n_instrs, term
            );
        }
    }
}
