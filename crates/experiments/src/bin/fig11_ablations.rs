//! Extension ablations: discontinuity design choices.
//! Thin wrapper; the figure lives in [`ipsim_experiments::figures`].

fn main() {
    ipsim_experiments::figure_main("fig11");
}
