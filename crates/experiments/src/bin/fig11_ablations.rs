//! Extension ablations (not a paper figure): design-choice studies around
//! the discontinuity prefetcher on the 4-way CMP.
//!
//! * prefetch-ahead distance sweep (1/2/4/8),
//! * confidence gating (an extension in the spirit of the confidence
//!   filtering the paper cites from Haga et al.),
//! * related-work baselines: the classic target prefetcher and the
//!   lookahead-N prefetcher.

use ipsim_cache::InstallPolicy;
use ipsim_core::PrefetcherKind;
use ipsim_experiments::{
    print_table_owned, workload_columns, workload_header, RunLengths, RunSpec, Summary,
};
use ipsim_types::SystemConfig;

fn main() {
    let lengths = RunLengths::from_args();
    println!("Ablations (extension): discontinuity design choices, 4-way CMP, bypass policy\n");

    let config = SystemConfig::cmp4();
    let sets = workload_columns(true);
    let baselines: Vec<Summary> = sets
        .iter()
        .map(|ws| RunSpec::new(config.clone(), ws.clone(), lengths).run())
        .collect();

    let variants: Vec<(String, PrefetcherKind)> = vec![
        (
            "discont ahead=1".into(),
            PrefetcherKind::Discontinuity {
                table_entries: 8192,
                ahead: 1,
            },
        ),
        (
            "discont ahead=2".into(),
            PrefetcherKind::Discontinuity {
                table_entries: 8192,
                ahead: 2,
            },
        ),
        (
            "discont ahead=4 (paper)".into(),
            PrefetcherKind::Discontinuity {
                table_entries: 8192,
                ahead: 4,
            },
        ),
        (
            "discont ahead=8".into(),
            PrefetcherKind::Discontinuity {
                table_entries: 8192,
                ahead: 8,
            },
        ),
        (
            "discont gated >=2".into(),
            PrefetcherKind::DiscontinuityGated {
                table_entries: 8192,
                ahead: 4,
                min_confidence: 2,
            },
        ),
        (
            "target (8192)".into(),
            PrefetcherKind::Target {
                table_entries: 8192,
            },
        ),
        ("lookahead-4".into(), PrefetcherKind::Lookahead { n: 4 }),
        ("next-line (always)".into(), PrefetcherKind::NextLineAlways),
        (
            "wrong-path + next-line".into(),
            PrefetcherKind::WrongPath { next_line: true },
        ),
        (
            "markov 2-target".into(),
            PrefetcherKind::Markov {
                table_entries: 8192,
                ahead: 4,
            },
        ),
    ];

    let mut speed_rows = Vec::new();
    let mut miss_rows = Vec::new();
    let mut acc_rows = Vec::new();
    for (label, kind) in &variants {
        let mut speed = vec![label.clone()];
        let mut miss = vec![label.clone()];
        let mut acc = vec![label.clone()];
        for (ws, base) in sets.iter().zip(&baselines) {
            let s = RunSpec::new(config.clone(), ws.clone(), lengths)
                .prefetcher(*kind)
                .policy(InstallPolicy::BypassL2UntilUseful)
                .run();
            speed.push(format!("{:.3}", s.speedup_over(base)));
            miss.push(format!(
                "{:.2}",
                if base.l1i_mpi == 0.0 {
                    0.0
                } else {
                    s.l1i_mpi / base.l1i_mpi
                }
            ));
            acc.push(format!("{:.0}%", s.accuracy * 100.0));
        }
        speed_rows.push(speed);
        miss_rows.push(miss);
        acc_rows.push(acc);
    }

    println!("speedup over no prefetching");
    print_table_owned(&workload_header("variant", &sets), &speed_rows);
    println!("\nL1I miss ratio (vs no prefetching)");
    print_table_owned(&workload_header("variant", &sets), &miss_rows);
    println!("\nprefetch accuracy");
    print_table_owned(&workload_header("variant", &sets), &acc_rows);
}
