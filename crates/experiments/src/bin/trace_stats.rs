//! Development tool: dynamic-stream statistics for one workload — CTI
//! frequencies, transaction lengths, stack depth, footprint.

use std::collections::HashSet;

use ipsim_trace::{TraceWalker, Workload};
use ipsim_types::instr::{CtiClass, OpKind};
use ipsim_types::LineSize;

fn main() {
    let w = match std::env::args().nth(1).as_deref() {
        Some("db") => Workload::Db,
        Some("tpcw") => Workload::TpcW,
        Some("web") => Workload::Web,
        _ => Workload::JApp,
    };
    let prog = w.build_program(0x5EED_0001);
    let mut walker = TraceWalker::new(&prog, w.profile(), 0, 0x5EED_1001);
    let n = 2_000_000u64;
    let ls = LineSize::default();

    let mut counts = std::collections::HashMap::new();
    let mut lines = HashSet::new();
    let mut dispatches = 0u64; // jump while stack empty
    let mut depth_sum = 0u64;
    let mut max_depth = 0usize;
    for _ in 0..n {
        let was_empty = walker.stack_depth() == 0;
        let op = walker.next_op();
        lines.insert(op.pc.line(ls));
        depth_sum += walker.stack_depth() as u64;
        max_depth = max_depth.max(walker.stack_depth());
        if let OpKind::Cti { class, taken, .. } = op.kind {
            *counts.entry(format!("{class:?} taken={taken}")).or_insert(0u64) += 1;
            if class == CtiClass::Jump && was_empty {
                dispatches += 1;
            }
        }
    }
    println!("workload {} over {}k instrs:", w.name(), n / 1000);
    let mut keys: Vec<_> = counts.iter().collect();
    keys.sort();
    for (k, v) in keys {
        println!("  {:<28} {:>8.2}/1k", k, *v as f64 / n as f64 * 1000.0);
    }
    println!("  dispatch jumps               {:>8.2}/1k (mean txn {} instrs)",
        dispatches as f64 / n as f64 * 1000.0,
        n.checked_div(dispatches).unwrap_or(0));
    println!("  mean stack depth {:.1}, max {}", depth_sum as f64 / n as f64, max_depth);
    println!("  touched {} lines ({} KB)", lines.len(), lines.len() * 64 / 1024);
}
