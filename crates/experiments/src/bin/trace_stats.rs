//! Development tool: dynamic-stream statistics.
//!
//! Two modes:
//!
//! * `trace_stats [db|tpcw|web|japp]` — walk a synthetic workload live and
//!   report CTI frequencies, transaction lengths, stack depth, footprint.
//! * `trace_stats --trace <file.itrace>` — decode a captured trace file
//!   from the harness trace store (`results/traces/`) and report its
//!   header, instruction count, kind mix and line footprint.

use std::collections::HashSet;
use std::fs::File;
use std::io::BufReader;

use ipsim_stream::TraceReader;
use ipsim_trace::{TraceWalker, Workload};
use ipsim_types::instr::{CtiClass, OpKind};
use ipsim_types::LineSize;

const USAGE: &str = "\
usage: trace_stats [db|tpcw|japp|web]
       trace_stats --trace <file.itrace>

  db|tpcw|japp|web   walk a synthetic workload live (default: japp)
  --trace FILE       decode a captured trace file and report statistics
  --help             this text
";

fn main() {
    let args = ipsim_experiments::tool_args(USAGE);
    if args.first().map(String::as_str) == Some("--trace") {
        let (Some(path), true) = (args.get(1), args.len() == 2) else {
            eprintln!("{USAGE}");
            std::process::exit(2);
        };
        if let Err(e) = trace_file_stats(path) {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
        return;
    }
    let which = match args.first().map(String::as_str) {
        w @ (None | Some("db" | "tpcw" | "japp" | "web")) if args.len() <= 1 => w,
        _ => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    live_walker_stats(which);
}

/// Decodes one captured trace file and prints its statistics.
fn trace_file_stats(path: &str) -> Result<(), String> {
    let file = File::open(path).map_err(|e| e.to_string())?;
    let file_bytes = file.metadata().map(|m| m.len()).unwrap_or(0);
    let mut reader = TraceReader::open(BufReader::new(file)).map_err(|e| e.to_string())?;

    println!("trace {path}");
    println!("  meta        {}", reader.meta());
    println!("  core        {}", reader.core_id());
    println!(
        "  blocks      {} ({} ops indexed)",
        reader.block_count(),
        reader.total_ops()
    );

    let ls = LineSize::default();
    let mut ops = 0u64;
    let mut counts = std::collections::HashMap::new();
    let mut code_lines = HashSet::new();
    let mut data_lines = HashSet::new();
    while let Some(op) = reader.next_op().map_err(|e| e.to_string())? {
        ops += 1;
        code_lines.insert(op.pc.line(ls));
        match op.kind {
            OpKind::Other => *counts.entry("Other".to_string()).or_insert(0u64) += 1,
            OpKind::Load { addr } => {
                data_lines.insert(addr.line(ls));
                *counts.entry("Load".to_string()).or_insert(0u64) += 1;
            }
            OpKind::Store { addr } => {
                data_lines.insert(addr.line(ls));
                *counts.entry("Store".to_string()).or_insert(0u64) += 1;
            }
            OpKind::Cti { class, taken, .. } => {
                *counts
                    .entry(format!("Cti {class:?} taken={taken}"))
                    .or_insert(0u64) += 1;
            }
        }
    }
    println!("  decoded     {ops} ops");
    if ops > 0 && file_bytes > 0 {
        println!(
            "  size        {} bytes ({:.2} bytes/op)",
            file_bytes,
            file_bytes as f64 / ops as f64
        );
    }
    // Decode throughput, both ways through the same file. A streaming
    // replay pays the buffered per-op rate on every run; the arena path
    // pays the one-shot decode rate once, then replays at memcpy speed.
    // The two rates are close by construction (same codec underneath) —
    // the arena's win is amortisation, not a faster decoder.
    if ops > 0 {
        reader.rewind().map_err(|e| e.to_string())?;
        let t0 = std::time::Instant::now();
        let mut buffered = 0u64;
        while reader.next_op().map_err(|e| e.to_string())?.is_some() {
            buffered += 1;
        }
        let buffered_s = t0.elapsed().as_secs_f64();

        // Pre-fault the arena allocation (resize touches every page) so the
        // timing compares decode paths, not first-touch page faults — the
        // harness amortises the allocation across every replay of the run.
        let filler = ipsim_types::instr::TraceOp {
            pc: ipsim_types::Addr(0),
            kind: OpKind::Other,
        };
        let mut arena = vec![filler; ops as usize];
        arena.clear();
        let t0 = std::time::Instant::now();
        reader
            .decode_all_into(&mut arena)
            .map_err(|e| e.to_string())?;
        let arena_s = t0.elapsed().as_secs_f64();

        let mips = |n: u64, s: f64| if s > 0.0 { n as f64 / 1e6 / s } else { 0.0 };
        println!(
            "  dec_mips    {:.1} buffered (per-op), {:.1} zero-copy (arena)",
            mips(buffered, buffered_s),
            mips(arena.len() as u64, arena_s),
        );
    }
    println!("  kind mix:");
    let mut keys: Vec<_> = counts.iter().collect();
    keys.sort();
    for (k, v) in keys {
        println!(
            "    {:<28} {:>10}  ({:>6.2}%)",
            k,
            v,
            *v as f64 / ops as f64 * 100.0
        );
    }
    println!(
        "  code footprint  {} lines ({} KB)",
        code_lines.len(),
        code_lines.len() * 64 / 1024
    );
    println!(
        "  data footprint  {} lines ({} KB)",
        data_lines.len(),
        data_lines.len() * 64 / 1024
    );
    Ok(())
}

/// Walks a synthetic workload live and prints its stream statistics.
fn live_walker_stats(which: Option<&str>) {
    let w = match which {
        Some("db") => Workload::Db,
        Some("tpcw") => Workload::TpcW,
        Some("web") => Workload::Web,
        _ => Workload::JApp,
    };
    let prog = w.build_program(0x5EED_0001);
    let mut walker = TraceWalker::new(&prog, w.profile(), 0, 0x5EED_1001);
    let n = 2_000_000u64;
    let ls = LineSize::default();

    let mut counts = std::collections::HashMap::new();
    let mut lines = HashSet::new();
    let mut dispatches = 0u64; // jump while stack empty
    let mut depth_sum = 0u64;
    let mut max_depth = 0usize;
    for _ in 0..n {
        let was_empty = walker.stack_depth() == 0;
        let op = walker.next_op();
        lines.insert(op.pc.line(ls));
        depth_sum += walker.stack_depth() as u64;
        max_depth = max_depth.max(walker.stack_depth());
        if let OpKind::Cti { class, taken, .. } = op.kind {
            *counts
                .entry(format!("{class:?} taken={taken}"))
                .or_insert(0u64) += 1;
            if class == CtiClass::Jump && was_empty {
                dispatches += 1;
            }
        }
    }
    println!("workload {} over {}k instrs:", w.name(), n / 1000);
    let mut keys: Vec<_> = counts.iter().collect();
    keys.sort();
    for (k, v) in keys {
        println!("  {:<28} {:>8.2}/1k", k, *v as f64 / n as f64 * 1000.0);
    }
    println!(
        "  dispatch jumps               {:>8.2}/1k (mean txn {} instrs)",
        dispatches as f64 / n as f64 * 1000.0,
        n.checked_div(dispatches).unwrap_or(0)
    );
    println!(
        "  mean stack depth {:.1}, max {}",
        depth_sum as f64 / n as f64,
        max_depth
    );
    println!(
        "  touched {} lines ({} KB)",
        lines.len(),
        lines.len() * 64 / 1024
    );
}
