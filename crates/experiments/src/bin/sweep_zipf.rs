//! Calibration helper: sweeps the hot-tier size and probability of one
//! workload's code-popularity model and prints baseline miss rates.
//!
//! Usage: `sweep_zipf <db|tpcw|japp|web> [hot_prob_percent]`

use ipsim_cpu::{OpSource, SystemBuilder};
use ipsim_experiments::{pct, tool_args};
use ipsim_trace::{ProgramBuilder, TraceWalker, Workload};

const USAGE: &str = "\
usage: sweep_zipf <db|tpcw|japp|web> [hot_prob_percent]

  hot_prob_percent   override the dispatch hot-probability (0-100)
  --help             this text
";

fn main() {
    let args = tool_args(USAGE);
    let w = match args.first().map(String::as_str) {
        Some("db") => Workload::Db,
        Some("tpcw") => Workload::TpcW,
        Some("japp") => Workload::JApp,
        Some("web") => Workload::Web,
        _ => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    let hot_prob: Option<f64> = match args.get(1) {
        None => None,
        Some(s) => match s.parse::<f64>() {
            Ok(v) if (0.0..=100.0).contains(&v) => Some(v / 100.0),
            _ => {
                eprintln!("bad hot_prob_percent `{s}`\n\n{USAGE}");
                std::process::exit(2);
            }
        },
    };
    if args.len() > 2 {
        eprintln!("too many arguments\n\n{USAGE}");
        std::process::exit(2);
    }

    println!("workload {} (hot_prob = {:?})", w.name(), hot_prob);
    println!("{:>8} {:>8} {:>8}", "hot_fns", "L1I", "L2I");
    for hot_fns in [100u32, 150, 200, 300, 400, 600, 800, 1200] {
        let mut profile = w.profile();
        profile.code_hot_fns = hot_fns;
        if let Some(h) = hot_prob {
            profile.dispatch_hot_prob = h;
        }
        let prog = ProgramBuilder::new(profile.clone(), 0x5EED_0001).build();
        let mut system = SystemBuilder::single_core().build().unwrap();
        let mut walker = TraceWalker::new(&prog, profile, 0, 0x5EED_1001);
        let mut sources: Vec<&mut dyn OpSource> = vec![&mut walker];
        system.run(&mut sources, 2_000_000);
        system.reset_stats();
        system.run(&mut sources, 3_000_000);
        let m = system.metrics();
        println!(
            "{:>8} {:>8} {:>8}",
            hot_fns,
            pct(m.l1i_miss_per_instr()),
            pct(m.l2_instr_miss_per_instr()),
        );
    }
}
