//! Figure 9: prefetch accuracy and the next-2-line discontinuity variant.
//! Thin wrapper; the figure lives in [`ipsim_experiments::figures`].

fn main() {
    ipsim_experiments::figure_main("fig09");
}
