//! Figure 9: (i) prefetch accuracy on the 4-way CMP for every scheme
//! including the next-2-line discontinuity variant, and (ii) the
//! performance of the next-2-line discontinuity prefetcher.

use ipsim_cache::InstallPolicy;
use ipsim_core::PrefetcherKind;
use ipsim_experiments::{
    print_table_owned, scheme_matrix, workload_columns, workload_header, RunLengths,
};
use ipsim_types::SystemConfig;

fn main() {
    let lengths = RunLengths::from_args();
    println!("Figure 9: prefetch accuracy and the next-2-line discontinuity variant (4-way CMP)");
    println!("(paper: accuracy falls as schemes get more aggressive; discont(2NL) is ~50%");
    println!(" more accurate than next-4-line and still outperforms it)\n");

    let mut schemes = PrefetcherKind::PAPER_SCHEMES.to_vec();
    schemes.push(PrefetcherKind::discontinuity_2nl());

    let config = SystemConfig::cmp4();
    let sets = workload_columns(true);
    let (baselines, per_scheme) = scheme_matrix(
        &config,
        &sets,
        &schemes,
        InstallPolicy::BypassL2UntilUseful,
        lengths,
    );

    println!("(i) prefetch accuracy (useful / issued)");
    let rows: Vec<Vec<String>> = per_scheme
        .iter()
        .map(|(label, summaries)| {
            let mut row = vec![label.clone()];
            for s in summaries {
                row.push(format!("{:.0}%", s.accuracy * 100.0));
            }
            row
        })
        .collect();
    print_table_owned(&workload_header("scheme", &sets), &rows);

    println!("\n(ii) speedup over no prefetching");
    let rows: Vec<Vec<String>> = per_scheme
        .iter()
        .map(|(label, summaries)| {
            let mut row = vec![label.clone()];
            for (s, base) in summaries.iter().zip(&baselines) {
                row.push(format!("{:.3}", s.speedup_over(base)));
            }
            row
        })
        .collect();
    print_table_owned(&workload_header("scheme", &sets), &rows);
}
