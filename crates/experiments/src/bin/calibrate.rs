//! Calibration snapshot: prints the key baseline statistics for every
//! workload against the paper's published targets. Not a paper figure —
//! a development tool used to tune the workload profiles.

use ipsim_core::PrefetcherKind;
use ipsim_cpu::{SystemBuilder, WorkloadSet};
use ipsim_experiments::{pct, print_table, run, tool_args, RunLengths};
use ipsim_trace::Workload;
use ipsim_types::stats::MissGroup;

const USAGE: &str = "\
usage: calibrate [--quick]

  --quick   ~5x shorter warm-up/measurement windows
  --help    this text
";

fn main() {
    let mut lengths = RunLengths::full();
    for arg in tool_args(USAGE) {
        match arg.as_str() {
            "--quick" => lengths = RunLengths::quick(),
            _ => {
                eprintln!("unknown argument `{arg}`\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    println!("== single-core baseline (no prefetch) ==");
    println!("paper targets: L1I miss 1.32-3.16%/instr (jApp max); breakdown seq 40-60%, branch 20-40%, call 15-20%\n");

    let mut rows = Vec::new();
    for w in Workload::ALL {
        let m = run(
            SystemBuilder::single_core().prefetcher(PrefetcherKind::None),
            &WorkloadSet::homogeneous(w),
            lengths,
        );
        let bd = m.l1i_miss_breakdown();
        let total = bd.total().max(1) as f64;
        rows.push(vec![
            w.name().to_string(),
            pct(m.l1i_miss_per_instr()),
            pct(m.l2_instr_miss_per_instr()),
            pct(m.l2_data_miss_per_instr()),
            pct(m.l1d_miss_per_instr()),
            format!(
                "{:.0}%",
                bd.group_total(MissGroup::Sequential) as f64 / total * 100.0
            ),
            format!(
                "{:.0}%",
                bd.group_total(MissGroup::Branch) as f64 / total * 100.0
            ),
            format!(
                "{:.0}%",
                bd.group_total(MissGroup::FunctionCall) as f64 / total * 100.0
            ),
            format!("{:.3}", m.ipc()),
        ]);
    }
    print_table(
        &[
            "workload", "L1I", "L2I", "L2D", "L1D", "seq", "br", "call", "IPC",
        ],
        &rows,
    );

    println!("\n== 4-way CMP baseline (no prefetch) ==");
    println!("paper targets: L2 instr miss 0.07-0.44%/instr (2MB), Mixed worst and > apps\n");
    let mut rows = Vec::new();
    let mut sets: Vec<WorkloadSet> = Workload::ALL
        .iter()
        .map(|w| WorkloadSet::homogeneous(*w))
        .collect();
    sets.push(WorkloadSet::mixed());
    for ws in &sets {
        let m = run(
            SystemBuilder::cmp4().prefetcher(PrefetcherKind::None),
            ws,
            lengths,
        );
        rows.push(vec![
            ws.name(),
            pct(m.l1i_miss_per_instr()),
            pct(m.l2_instr_miss_per_instr()),
            pct(m.l2_data_miss_per_instr()),
            format!("{:.3}", m.ipc()),
        ]);
    }
    print_table(&["workload", "L1I", "L2I", "L2D", "IPC"], &rows);
}
