//! Figure 10: prefetch coverage (fraction of baseline misses eliminated)
//! for various discontinuity prediction-table sizes, against the
//! next-4-line sequential prefetcher: (i) L1 instruction cache and
//! (ii) L2 cache (4-way CMP).

use ipsim_cache::InstallPolicy;
use ipsim_core::PrefetcherKind;
use ipsim_experiments::{
    print_table_owned, workload_columns, workload_header, RunLengths, RunSpec, Summary,
};
use ipsim_types::SystemConfig;

fn main() {
    let lengths = RunLengths::from_args();
    println!("Figure 10: miss coverage vs discontinuity table size (4-way CMP)");
    println!("(paper: the 8K-entry table can shrink 4x with minimal coverage loss, and");
    println!(" even 256 entries beats the next-4-line sequential prefetcher)\n");

    let config = SystemConfig::cmp4();
    let sets = workload_columns(true);
    let baselines: Vec<Summary> = sets
        .iter()
        .map(|ws| RunSpec::new(config.clone(), ws.clone(), lengths).run())
        .collect();

    let mut variants: Vec<(String, PrefetcherKind)> = [8192usize, 4096, 2048, 1024, 512, 256]
        .iter()
        .map(|&entries| {
            (
                format!("{entries}-entries"),
                PrefetcherKind::Discontinuity {
                    table_entries: entries,
                    ahead: 4,
                },
            )
        })
        .collect();
    variants.push((
        "next-4lines (tagged)".to_string(),
        PrefetcherKind::NextNLineTagged { n: 4 },
    ));

    let results: Vec<(String, Vec<Summary>)> = variants
        .iter()
        .map(|(label, kind)| {
            let summaries = sets
                .iter()
                .map(|ws| {
                    RunSpec::new(config.clone(), ws.clone(), lengths)
                        .prefetcher(*kind)
                        .policy(InstallPolicy::BypassL2UntilUseful)
                        .run()
                })
                .collect();
            (label.clone(), summaries)
        })
        .collect();

    for (title, l2) in [
        ("(i) L1 instruction cache coverage", false),
        ("(ii) L2 cache coverage", true),
    ] {
        println!("{title}");
        let rows: Vec<Vec<String>> = results
            .iter()
            .map(|(label, summaries)| {
                let mut row = vec![label.clone()];
                for (s, base) in summaries.iter().zip(&baselines) {
                    let (v, b) = if l2 {
                        (s.l2i_mpi, base.l2i_mpi)
                    } else {
                        (s.l1i_mpi, base.l1i_mpi)
                    };
                    let coverage = if b == 0.0 { 0.0 } else { 1.0 - v / b };
                    row.push(format!("{:.0}%", coverage * 100.0));
                }
                row
            })
            .collect();
        print_table_owned(&workload_header("predictor", &sets), &rows);
        println!();
    }
}
