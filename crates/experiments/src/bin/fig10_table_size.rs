//! Figure 10: miss coverage vs discontinuity table size.
//! Thin wrapper; the figure lives in [`ipsim_experiments::figures`].

fn main() {
    ipsim_experiments::figure_main("fig10");
}
