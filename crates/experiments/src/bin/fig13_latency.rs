//! Extension experiment: memory-latency sensitivity.
//!
//! The paper's introduction argues that as the relative distance to memory
//! grows, prefetchers must speculate further ahead: timeliness, not
//! prediction, becomes the binding constraint. This harness sweeps the
//! memory latency and shows (a) the baseline degrading, (b) the
//! short-lookahead next-line scheme losing its value faster than the
//! deeper next-4-line/discontinuity windows.

use ipsim_cache::InstallPolicy;
use ipsim_core::PrefetcherKind;
use ipsim_cpu::WorkloadSet;
use ipsim_experiments::{print_table_owned, RunLengths, RunSpec, Summary};
use ipsim_trace::Workload;
use ipsim_types::SystemConfig;

fn main() {
    let lengths = RunLengths::from_args();
    println!("Extension: speedup vs memory latency (4-way CMP, DB, bypass policy)");
    println!("(paper intro: growing memory distance demands longer prefetch lookahead —");
    println!(" shallow next-line windows lose value faster than the 4-line window)\n");

    let latencies = [100u64, 200, 400, 800];
    let schemes = [
        PrefetcherKind::NextLineTagged,
        PrefetcherKind::NextNLineTagged { n: 4 },
        PrefetcherKind::discontinuity_default(),
    ];
    let ws = WorkloadSet::homogeneous(Workload::Db);

    let mut header = vec!["scheme".to_string()];
    for l in latencies {
        header.push(format!("{l}cyc"));
    }
    let mut rows = Vec::new();

    let mut base_row = vec!["baseline IPC".to_string()];
    let baselines: Vec<Summary> = latencies
        .iter()
        .map(|&lat| {
            let mut config = SystemConfig::cmp4();
            config.mem.mem_latency = lat;
            let s = RunSpec::new(config, ws.clone(), lengths).run();
            base_row.push(format!("{:.3}", s.ipc));
            s
        })
        .collect();
    rows.push(base_row);

    for kind in schemes {
        let mut row = vec![kind.label()];
        for (i, &lat) in latencies.iter().enumerate() {
            let mut config = SystemConfig::cmp4();
            config.mem.mem_latency = lat;
            let s = RunSpec::new(config, ws.clone(), lengths)
                .prefetcher(kind)
                .policy(InstallPolicy::BypassL2UntilUseful)
                .run();
            row.push(format!("{:.3}", s.speedup_over(&baselines[i])));
        }
        rows.push(row);
    }
    print_table_owned(&header, &rows);
}
