//! Figure 3: instruction miss breakdown by category.
//! Thin wrapper; the figure lives in [`ipsim_experiments::figures`].

fn main() {
    ipsim_experiments::figure_main("fig03");
}
