//! Figure 3: breakdown of instruction misses by category:
//! (i) instruction cache (single core), (ii) L2 cache (single core),
//! (iii) L2 cache (4-way CMP).

use ipsim_cpu::WorkloadSet;
use ipsim_experiments::{print_table, RunLengths, RunSpec, Summary};
use ipsim_trace::Workload;
use ipsim_types::stats::CategoryCounts;
use ipsim_types::{MissCategory, SystemConfig};

fn breakdown_row(name: &str, counts: &CategoryCounts) -> Vec<String> {
    let mut row = vec![name.to_string()];
    for cat in MissCategory::ALL {
        row.push(format!("{:.1}%", counts.fraction(cat) * 100.0));
    }
    row
}

fn header() -> Vec<&'static str> {
    let mut h = vec!["workload"];
    for cat in MissCategory::ALL {
        h.push(cat.label());
    }
    h
}

fn main() {
    let lengths = RunLengths::from_args();
    println!("Figure 3: instruction miss breakdown by category");
    println!("(paper: sequential 40-60%; branches 20-40% with cond-tf most prevalent;");
    println!(" calls/jumps/returns 15-20% with Call most prevalent; traps negligible)\n");

    let apps: Vec<WorkloadSet> = Workload::ALL
        .iter()
        .map(|w| WorkloadSet::homogeneous(*w))
        .collect();

    let single: Vec<(String, Summary)> = apps
        .iter()
        .map(|ws| {
            (
                ws.name(),
                RunSpec::new(SystemConfig::single_core(), ws.clone(), lengths).run(),
            )
        })
        .collect();

    println!("(i) Instruction cache (single core)");
    let rows: Vec<Vec<String>> = single
        .iter()
        .map(|(n, s)| breakdown_row(n, &s.l1i_breakdown))
        .collect();
    print_table(&header(), &rows);

    println!("\n(ii) L2 cache (single core)");
    let rows: Vec<Vec<String>> = single
        .iter()
        .map(|(n, s)| breakdown_row(n, &s.l2i_breakdown))
        .collect();
    print_table(&header(), &rows);

    println!("\n(iii) L2 cache (4-way CMP)");
    let mut cmp_sets = apps;
    cmp_sets.push(WorkloadSet::mixed());
    let rows: Vec<Vec<String>> = cmp_sets
        .iter()
        .map(|ws| {
            let s = RunSpec::new(SystemConfig::cmp4(), ws.clone(), lengths).run();
            breakdown_row(&ws.name(), &s.l2i_breakdown)
        })
        .collect();
    print_table(&header(), &rows);
}
