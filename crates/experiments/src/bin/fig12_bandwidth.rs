//! Extension: off-chip bandwidth sensitivity.
//! Thin wrapper; the figure lives in [`ipsim_experiments::figures`].

fn main() {
    ipsim_experiments::figure_main("fig12");
}
