//! Extension experiment: off-chip bandwidth sensitivity.
//!
//! Section 7 of the paper remarks that "in environments where off-chip
//! bandwidth is constrained, the next-2-line discontinuity prefetcher may
//! be a good choice" — its ~50% higher accuracy wastes less bandwidth than
//! the next-4-line window. This harness sweeps the CMP's off-chip
//! bandwidth and shows where the 2NL variant overtakes the default.

use ipsim_cache::InstallPolicy;
use ipsim_core::PrefetcherKind;
use ipsim_cpu::WorkloadSet;
use ipsim_experiments::{print_table_owned, RunLengths, RunSpec, Summary};
use ipsim_trace::Workload;
use ipsim_types::SystemConfig;

fn main() {
    let lengths = RunLengths::from_args();
    println!("Extension: speedup vs off-chip bandwidth (4-way CMP, bypass policy)");
    println!("(paper: under constrained bandwidth the more accurate discont(2NL) becomes");
    println!(" competitive with / preferable to the default next-4-line window)\n");

    // GB/s at 3 GHz; 20 GB/s is the paper's CMP default.
    let bandwidths = [2.5f64, 5.0, 10.0, 20.0, 40.0];
    let schemes = [
        PrefetcherKind::NextNLineTagged { n: 4 },
        PrefetcherKind::discontinuity_2nl(),
        PrefetcherKind::discontinuity_default(),
    ];
    let sets = [
        WorkloadSet::homogeneous(Workload::Db),
        WorkloadSet::mixed(),
    ];

    for ws in &sets {
        println!("workload: {}", ws.name());
        let mut header = vec!["scheme".to_string()];
        for bw in bandwidths {
            header.push(format!("{bw}GB/s"));
        }
        let mut rows = Vec::new();
        for kind in schemes {
            let mut row = vec![kind.label()];
            for bw in bandwidths {
                let mut config = SystemConfig::cmp4();
                config.mem.offchip_bytes_per_cycle = bw / 3.0;
                let base: Summary =
                    RunSpec::new(config.clone(), ws.clone(), lengths).run();
                let s = RunSpec::new(config, ws.clone(), lengths)
                    .prefetcher(kind)
                    .policy(InstallPolicy::BypassL2UntilUseful)
                    .run();
                row.push(format!("{:.3}", s.speedup_over(&base)));
            }
            rows.push(row);
        }
        print_table_owned(&header, &rows);
        println!();
    }
}
