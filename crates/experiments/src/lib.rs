//! Shared harness utilities for the figure-regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one figure of the paper; run them
//! as
//!
//! ```text
//! cargo run --release -p ipsim-experiments --bin fig01_l1_miss_rates [-- --quick]
//! ```
//!
//! `--quick` shrinks the warm-up/measurement windows ~5× for smoke runs;
//! default windows are 10 M warm + 20 M measured instructions per core
//! (the paper used 50 M + 100 M on real traces).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod runner;
pub mod summary;

pub use runner::RunSpec;
pub use summary::Summary;

use ipsim_cpu::{SystemBuilder, SystemMetrics, WorkloadSet};
use ipsim_trace::Workload;

/// Run-length configuration for the harness binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLengths {
    /// Warm-up instructions per core (caches and predictors fill; not
    /// measured).
    pub warm: u64,
    /// Measured instructions per core.
    pub measure: u64,
}

impl RunLengths {
    /// The default experiment windows.
    pub fn full() -> RunLengths {
        RunLengths {
            warm: 10_000_000,
            measure: 20_000_000,
        }
    }

    /// Fast smoke-run windows.
    pub fn quick() -> RunLengths {
        RunLengths {
            warm: 2_000_000,
            measure: 4_000_000,
        }
    }

    /// Parses process arguments: `--quick` selects [`RunLengths::quick`].
    pub fn from_args() -> RunLengths {
        if std::env::args().any(|a| a == "--quick") {
            RunLengths::quick()
        } else {
            RunLengths::full()
        }
    }
}

/// The five workload columns of the paper's CMP figures
/// (DB, TPC-W, jApp, Web, Mixed).
pub fn cmp_workload_sets() -> Vec<WorkloadSet> {
    let mut v: Vec<WorkloadSet> = Workload::ALL
        .iter()
        .map(|w| WorkloadSet::homogeneous(*w))
        .collect();
    v.push(WorkloadSet::mixed());
    v
}

/// The four workload columns of the single-core figures.
pub fn single_workload_sets() -> Vec<WorkloadSet> {
    Workload::ALL
        .iter()
        .map(|w| WorkloadSet::homogeneous(*w))
        .collect()
}

/// Runs one configuration to completion and returns its metrics.
///
/// # Panics
///
/// Panics if the builder's configuration is invalid — experiment configs
/// are static and a bad one is a programming error.
pub fn run(builder: SystemBuilder, workloads: &WorkloadSet, lengths: RunLengths) -> SystemMetrics {
    let mut system = builder.build().expect("experiment configuration is valid");
    system.run_workload(workloads, lengths.warm, lengths.measure)
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Runs the paper's four prefetch schemes over a set of workloads under a
/// given system configuration and install policy, returning per-scheme
/// summaries plus the no-prefetch baselines. Shared by Figures 5-9.
pub fn scheme_matrix(
    config: &ipsim_types::SystemConfig,
    sets: &[WorkloadSet],
    schemes: &[ipsim_core::PrefetcherKind],
    policy: ipsim_cache::InstallPolicy,
    lengths: RunLengths,
) -> (Vec<Summary>, Vec<(String, Vec<Summary>)>) {
    let baselines: Vec<Summary> = sets
        .iter()
        .map(|ws| RunSpec::new(config.clone(), ws.clone(), lengths).run())
        .collect();
    let per_scheme = schemes
        .iter()
        .map(|kind| {
            let summaries = sets
                .iter()
                .map(|ws| {
                    RunSpec::new(config.clone(), ws.clone(), lengths)
                        .prefetcher(*kind)
                        .policy(policy)
                        .run()
                })
                .collect();
            (kind.label(), summaries)
        })
        .collect();
    (baselines, per_scheme)
}

/// The workload columns for one part of a figure: the four applications,
/// plus Mixed when `include_mix`.
pub fn workload_columns(include_mix: bool) -> Vec<WorkloadSet> {
    let mut sets: Vec<WorkloadSet> = Workload::ALL
        .iter()
        .map(|w| WorkloadSet::homogeneous(*w))
        .collect();
    if include_mix {
        sets.push(WorkloadSet::mixed());
    }
    sets
}

/// Header row: a label column followed by workload names.
pub fn workload_header(label: &'static str, sets: &[WorkloadSet]) -> Vec<String> {
    let mut h = vec![label.to_string()];
    for ws in sets {
        h.push(ws.name());
    }
    h
}

/// Prints a table whose header cells are owned strings.
pub fn print_table_owned(header: &[String], rows: &[Vec<String>]) {
    let refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print_table(&refs, rows);
}

/// Prints a simple aligned table: a header row then data rows.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i == 0 {
                out.push_str(&format!("{:<w$}", c, w = widths[i] + 2));
            } else {
                out.push_str(&format!("{:>w$}", c, w = widths[i] + 2));
            }
        }
        out
    };
    println!("{}", line(header.iter().map(|s| s.to_string()).collect()));
    println!("{}", "-".repeat(widths.iter().map(|w| w + 2).sum()));
    for row in rows {
        println!("{}", line(row.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_sets_cover_the_paper_columns() {
        let cmp = cmp_workload_sets();
        assert_eq!(cmp.len(), 5);
        assert_eq!(cmp[4].name(), "Mixed");
        assert_eq!(single_workload_sets().len(), 4);
    }

    #[test]
    fn quick_is_shorter_than_full() {
        assert!(RunLengths::quick().measure < RunLengths::full().measure);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.1234), "12.34%");
    }
}
