//! Figure definitions and shared utilities for the experiment binaries.
//!
//! Each figure of the paper lives in [`figures`] as a render function over
//! an [`Executor`] (see `ipsim-harness`); the `figNN_*` binaries in
//! `src/bin/` are thin wrappers around [`figure_main`], and `all_figures`
//! sweeps every figure through one shared scheduler in a single process:
//!
//! ```text
//! cargo run --release -p ipsim-experiments --bin all_figures -- [--quick] [--jobs N]
//! cargo run --release -p ipsim-experiments --bin fig01_l1_miss_rates [-- --quick]
//! ```
//!
//! `--quick` shrinks the warm-up/measurement windows ~5× for smoke runs;
//! default windows are 10 M warm + 20 M measured instructions per core
//! (the paper used 50 M + 100 M on real traces).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bakeoff;
pub mod figures;
pub mod report;

pub use ipsim_harness::{Executor, RunLengths, RunSpec, Summary};

use ipsim_cpu::{SystemBuilder, SystemMetrics, WorkloadSet};
use ipsim_harness::{run_sweep, HarnessArgs, SweepOptions};
use ipsim_trace::Workload;

/// The five workload columns of the paper's CMP figures
/// (DB, TPC-W, jApp, Web, Mixed).
pub fn cmp_workload_sets() -> Vec<WorkloadSet> {
    let mut v: Vec<WorkloadSet> = Workload::ALL
        .iter()
        .map(|w| WorkloadSet::homogeneous(*w))
        .collect();
    v.push(WorkloadSet::mixed());
    v
}

/// The four workload columns of the single-core figures.
pub fn single_workload_sets() -> Vec<WorkloadSet> {
    Workload::ALL
        .iter()
        .map(|w| WorkloadSet::homogeneous(*w))
        .collect()
}

/// Runs one configuration to completion and returns its metrics.
///
/// # Panics
///
/// Panics if the builder's configuration is invalid — experiment configs
/// are static and a bad one is a programming error.
pub fn run(builder: SystemBuilder, workloads: &WorkloadSet, lengths: RunLengths) -> SystemMetrics {
    let mut system = builder.build().expect("experiment configuration is valid");
    system.run_workload(workloads, lengths.warm, lengths.measure)
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Runs the paper's four prefetch schemes over a set of workloads under a
/// given system configuration and install policy, returning per-scheme
/// summaries plus the no-prefetch baselines. Shared by Figures 5-9.
pub fn scheme_matrix(
    config: &ipsim_types::SystemConfig,
    sets: &[WorkloadSet],
    schemes: &[ipsim_core::PrefetcherKind],
    policy: ipsim_cache::InstallPolicy,
    lengths: RunLengths,
    x: &mut Executor,
) -> (Vec<Summary>, Vec<(String, Vec<Summary>)>) {
    let baselines: Vec<Summary> = sets
        .iter()
        .map(|ws| x(&RunSpec::new(config.clone(), ws.clone(), lengths)))
        .collect();
    let per_scheme = schemes
        .iter()
        .map(|kind| {
            let summaries = sets
                .iter()
                .map(|ws| {
                    x(&RunSpec::new(config.clone(), ws.clone(), lengths)
                        .prefetcher(*kind)
                        .policy(policy))
                })
                .collect();
            (kind.label(), summaries)
        })
        .collect();
    (baselines, per_scheme)
}

/// The workload columns for one part of a figure: the four applications,
/// plus Mixed when `include_mix`.
pub fn workload_columns(include_mix: bool) -> Vec<WorkloadSet> {
    let mut sets: Vec<WorkloadSet> = Workload::ALL
        .iter()
        .map(|w| WorkloadSet::homogeneous(*w))
        .collect();
    if include_mix {
        sets.push(WorkloadSet::mixed());
    }
    sets
}

/// Header row: a label column followed by workload names.
pub fn workload_header(label: &'static str, sets: &[WorkloadSet]) -> Vec<String> {
    let mut h = vec![label.to_string()];
    for ws in sets {
        h.push(ws.name());
    }
    h
}

/// Formats a table whose header cells are owned strings.
pub fn table_string_owned(header: &[String], rows: &[Vec<String>]) -> String {
    let refs: Vec<&str> = header.iter().map(String::as_str).collect();
    table_string(&refs, rows)
}

/// Formats a simple aligned table: a header row, a rule, then data rows.
/// Every line ends with `\n`.
pub fn table_string(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i == 0 {
                out.push_str(&format!("{:<w$}", c, w = widths[i] + 2));
            } else {
                out.push_str(&format!("{:>w$}", c, w = widths[i] + 2));
            }
        }
        out
    };
    let mut out = String::new();
    out.push_str(&line(header.iter().map(|s| s.to_string()).collect()));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().map(|w| w + 2).sum()));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row.clone()));
        out.push('\n');
    }
    out
}

/// Prints a table whose header cells are owned strings.
pub fn print_table_owned(header: &[String], rows: &[Vec<String>]) {
    print!("{}", table_string_owned(header, rows));
}

/// Prints a simple aligned table: a header row then data rows.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    print!("{}", table_string(header, rows));
}

/// Entry point shared by every thin `figNN_*` binary: parse arguments, run
/// the named figure through the scheduler, print its output. Exits the
/// process (0 on success, 1 on figure failure, 130 on Ctrl-C/SIGTERM —
/// after completing the in-flight run and flushing the runlog tail).
pub fn figure_main(name: &str) -> ! {
    ipsim_signal::install();
    let args = HarnessArgs::from_env_or_exit();
    let all = figures::all();
    let figure = all
        .iter()
        .find(|f| f.name == name)
        .unwrap_or_else(|| panic!("unknown figure `{name}`"));
    let mut opts = SweepOptions::new(args.lengths, args.workers);
    opts.traces = args.traces;
    let report = run_sweep(std::slice::from_ref(figure), &opts);
    if report.interrupted {
        eprintln!("{name} interrupted: completed runs were cached and logged; rerun to resume");
        std::process::exit(130);
    }
    match &report.figures[0].outcome {
        Ok(text) => {
            print!("{text}");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("{name} failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Shared argument preamble for the development-tool binaries
/// (`calibrate`, `pf_check`, `trace_stats`, …): returns the raw argument
/// list after handling `--help`/`-h` (usage to stdout, exit 0). Tools
/// validate the remaining arguments themselves and exit 2 with the same
/// usage text on anything unknown — the contract `tests/cli.rs` pins for
/// every binary in this crate.
pub fn tool_args(usage: &str) -> Vec<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{usage}");
        std::process::exit(0);
    }
    args
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_sets_cover_the_paper_columns() {
        let cmp = cmp_workload_sets();
        assert_eq!(cmp.len(), 5);
        assert_eq!(cmp[4].name(), "Mixed");
        assert_eq!(single_workload_sets().len(), 4);
    }

    #[test]
    fn quick_is_shorter_than_full() {
        assert!(RunLengths::quick().measure < RunLengths::full().measure);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.1234), "12.34%");
    }

    #[test]
    fn tables_align_and_terminate_lines() {
        let t = table_string(&["a", "bb"], &[vec!["x".to_string(), "12345".to_string()]]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(t.ends_with('\n'));
        assert_eq!(lines[0].len(), lines[2].len());
    }
}
