//! The sweep report: one queryable summary aggregated from the runlog,
//! the run cache and the telemetry artifacts.
//!
//! Everything a sweep produced is already on disk — v5 runlog rows with
//! per-run wall time and kernel throughput, cache entries with the full
//! metric summaries, telemetry artifacts with prefetch lifecycle counts —
//! but spread over three stores in three formats. `sweep_report` folds
//! them into one text report:
//!
//! * **totals** — runs by stream source, wall time, and the aggregate
//!   kernel throughput Σ(sim_mips·sim_s)/Σ sim_s the v5 schema was added
//!   to make computable;
//! * **cache economics** — hit/miss counts and the wall seconds the cache
//!   bought, from the measured costs of hits vs simulations in this log;
//! * **per-workload / per-scheme** — accuracy, coverage (L1I miss
//!   reduction vs the matching no-prefetch baseline), prefetches per
//!   kilo-instruction from the cache summaries, plus timeliness (late and
//!   useless fractions) where a telemetry artifact exists;
//! * **shard utilization** — simulated runs, wall and instructions per
//!   `# batch shard I/N` section of the log.
//!
//! `--stable` drops everything timing- or shard-dependent (timestamps,
//! wall, sources, batches) and keys every remaining line to sorted cache
//! keys: the stable view of a sweep is byte-identical no matter how many
//! processes, workers or invocations produced it — which is exactly what
//! the sharding tests pin.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use ipsim_harness::runlog::RUNLOG_SCHEMA;
use ipsim_harness::RunCache;
use ipsim_telemetry::sink::parse_component_summary_tsv;
use ipsim_telemetry::PfEventKind;

use crate::table_string;

/// Where a report reads its inputs from.
#[derive(Debug, Clone)]
pub struct ReportOptions {
    /// The runlog to aggregate.
    pub runlog: PathBuf,
    /// The run cache holding metric summaries (accuracy, miss rates).
    pub cache_dir: PathBuf,
    /// The telemetry artifact root (timeliness columns); missing artifacts
    /// degrade those columns to `-`, never fail the report.
    pub telemetry_dir: PathBuf,
    /// Emit only the machine-stable view: no timestamps, wall times,
    /// stream sources or shard batches. Byte-identical across shard and
    /// worker counts.
    pub stable: bool,
}

impl ReportOptions {
    /// Defaults rooted at `results/`.
    pub fn new() -> ReportOptions {
        ReportOptions {
            runlog: PathBuf::from(ipsim_harness::runlog::DEFAULT_RUNLOG),
            cache_dir: PathBuf::from(ipsim_harness::cache::DEFAULT_CACHE_DIR),
            telemetry_dir: PathBuf::from(ipsim_harness::telemetry::DEFAULT_TELEMETRY_DIR),
            stable: false,
        }
    }
}

impl Default for ReportOptions {
    fn default() -> Self {
        ReportOptions::new()
    }
}

/// One parsed v5 runlog row (the fields the report uses), plus the batch
/// tag it was appended under.
#[derive(Debug, Clone)]
struct LogRow {
    source: String,
    ok: bool,
    wall_s: f64,
    sim_minstr: f64,
    sim_mips: f64,
    sim_s: f64,
    key: String,
    label: String,
    batch: Option<String>,
}

/// Parses a v5 runlog. `# batch <tag>` markers attribute the rows that
/// follow them (until the next marker) to that producer; other comment
/// lines are skipped. Malformed rows are counted, not fatal: a report
/// over a damaged log should describe what is readable and say what was
/// not.
fn parse_runlog(text: &str) -> Result<(Vec<LogRow>, usize), String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(first) if first == RUNLOG_SCHEMA => {}
        Some(first) => return Err(format!("unsupported runlog header `{first}`")),
        None => return Err("empty runlog".to_string()),
    }
    let mut rows = Vec::new();
    let mut malformed = 0usize;
    let mut batch: Option<String> = None;
    for line in lines {
        if let Some(tag) = line.strip_prefix("# batch ") {
            batch = Some(tag.to_string());
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split('\t').collect();
        let parsed = (|| -> Option<LogRow> {
            Some(LogRow {
                source: f.get(2)?.to_string(),
                ok: *f.get(3)? == "1",
                wall_s: f.get(4)?.parse().ok()?,
                sim_minstr: f.get(5)?.parse().ok()?,
                sim_mips: f.get(7)?.parse().ok()?,
                sim_s: f.get(8)?.parse().ok()?,
                key: f.get(13)?.to_string(),
                label: f.get(14)?.to_string(),
                batch: batch.clone(),
            })
        })();
        match parsed {
            Some(row) if f.len() == 15 => rows.push(row),
            _ => malformed += 1,
        }
    }
    Ok((rows, malformed))
}

/// Splits a run label `{n}c·{workload}·{scheme}[·bypass][·lim:…]` into
/// (cores, workload, scheme-with-modifiers). Labels that don't follow the
/// shape (none today) land under a catch-all workload.
fn split_label(label: &str) -> (String, String, String) {
    let parts: Vec<&str> = label.split('·').collect();
    if parts.len() >= 3 {
        (
            parts[0].to_string(),
            parts[1].to_string(),
            parts[2..].join("·"),
        )
    } else {
        ("?".to_string(), label.to_string(), "?".to_string())
    }
}

/// Timeliness counters for one run, read from its telemetry artifact.
#[derive(Debug, Clone, Copy)]
struct Timeliness {
    issued: u64,
    first_use: u64,
    first_use_late: u64,
    evict_unused: u64,
}

/// Reads and folds `pf_summary.tsv` across components; `None` when the
/// artifact is absent or unreadable.
fn read_timeliness(telemetry_dir: &Path, key: &str) -> Option<Timeliness> {
    let text = std::fs::read_to_string(telemetry_dir.join(key).join("pf_summary.tsv")).ok()?;
    let rows = parse_component_summary_tsv(&text).ok()?;
    let mut t = Timeliness {
        issued: 0,
        first_use: 0,
        first_use_late: 0,
        evict_unused: 0,
    };
    for (_, counters) in rows {
        t.issued += counters.get(PfEventKind::Issued);
        t.first_use += counters.get(PfEventKind::FirstUse);
        t.first_use_late += counters.get(PfEventKind::FirstUseLate);
        t.evict_unused += counters.get(PfEventKind::EvictUnused);
    }
    Some(t)
}

fn pct_or_dash(num: f64, den: f64) -> String {
    if den > 0.0 {
        format!("{:.1}%", 100.0 * num / den)
    } else {
        "-".to_string()
    }
}

/// Renders the full report text.
///
/// # Errors
///
/// Only a missing or unreadable runlog fails the report; the cache and
/// telemetry inputs degrade gracefully (their columns print `-`).
pub fn render_report(opts: &ReportOptions) -> Result<String, String> {
    let text = std::fs::read_to_string(&opts.runlog)
        .map_err(|e| format!("cannot read runlog {}: {e}", opts.runlog.display()))?;
    let (rows, malformed) = parse_runlog(&text)?;
    let cache = RunCache::at(&opts.cache_dir);

    // One representative row per key (the last one logged) drives the
    // deterministic sections; the full row list drives the timing ones.
    let mut by_key: BTreeMap<String, LogRow> = BTreeMap::new();
    for row in &rows {
        by_key.insert(row.key.clone(), row.clone());
    }

    let mut out = String::new();
    let _ = writeln!(out, "# ipsim sweep report");
    if !opts.stable {
        let _ = writeln!(out, "runlog: {}", opts.runlog.display());
    }

    // --- totals -----------------------------------------------------
    let _ = writeln!(out, "\n== totals ==");
    let _ = writeln!(out, "unique runs: {}", by_key.len());
    let failed = by_key.values().filter(|r| !r.ok).count();
    if failed > 0 {
        let _ = writeln!(out, "failed runs: {failed}");
    }
    if malformed > 0 {
        let _ = writeln!(out, "malformed rows skipped: {malformed}");
    }
    if !opts.stable {
        let _ = writeln!(out, "log rows: {}", rows.len());
        let mut by_source: BTreeMap<&str, usize> = BTreeMap::new();
        for row in &rows {
            *by_source.entry(row.source.as_str()).or_default() += 1;
        }
        let sources: Vec<String> = by_source.iter().map(|(s, n)| format!("{s} {n}")).collect();
        let _ = writeln!(out, "stream sources: {}", sources.join(" · "));
        let wall: f64 = rows.iter().map(|r| r.wall_s).sum();
        let minstr: f64 = rows.iter().map(|r| r.sim_minstr).sum();
        let _ = writeln!(
            out,
            "wall: {wall:.1}s · {minstr:.0}M instructions simulated"
        );
        let sim_s: f64 = rows.iter().map(|r| r.sim_s).sum();
        let weighted: f64 = rows.iter().map(|r| r.sim_mips * r.sim_s).sum();
        if sim_s > 0.0 {
            let _ = writeln!(
                out,
                "aggregate sim-MIPS: {:.2} (kernel-only, sim_s-weighted over {:.1}s)",
                weighted / sim_s,
                sim_s,
            );
        }
        // Per-run kernel throughput distribution, through the same log₂
        // histogram `/v1/metrics` exposes (`ipsim_kernel_sim_mips`), so a
        // runlog report and a live metrics scrape quote comparable
        // percentiles.
        let dist = ipsim_obs::Histogram::new();
        let executed = rows.iter().filter(|r| r.sim_mips > 0.0).count();
        for row in rows.iter().filter(|r| r.sim_mips > 0.0) {
            dist.observe(row.sim_mips.round() as u64);
        }
        if executed > 0 {
            let _ = writeln!(
                out,
                "sim-MIPS distribution: p50 {} · p90 {} · p99 {} (over {executed} executed runs)",
                dist.percentile(50.0),
                dist.percentile(90.0),
                dist.percentile(99.0),
            );
        }
    }

    // --- cache economics (timing-dependent: skipped in stable) ------
    if !opts.stable {
        let hits: Vec<&LogRow> = rows.iter().filter(|r| r.source == "cache").collect();
        let sims: Vec<&LogRow> = rows.iter().filter(|r| r.source != "cache").collect();
        let _ = writeln!(out, "\n== cache economics ==");
        let _ = writeln!(
            out,
            "hits: {} · simulations: {} · hit rate {}",
            hits.len(),
            sims.len(),
            pct_or_dash(hits.len() as f64, rows.len() as f64),
        );
        if !hits.is_empty() && !sims.is_empty() {
            let hit_mean = hits.iter().map(|r| r.wall_s).sum::<f64>() / hits.len() as f64;
            let sim_mean = sims.iter().map(|r| r.wall_s).sum::<f64>() / sims.len() as f64;
            let _ = writeln!(
                out,
                "mean wall: {:.4}s per hit vs {:.3}s per simulation \
                 (~{:.1}s saved by {} hits)",
                hit_mean,
                sim_mean,
                (sim_mean - hit_mean).max(0.0) * hits.len() as f64,
                hits.len(),
            );
        }
        // Corrupt entries the cache moved aside (`<key>.tsv.corrupt`):
        // each one cost a re-simulation and is evidence worth inspecting.
        let quarantined = std::fs::read_dir(&opts.cache_dir)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .filter(|e| e.file_name().to_string_lossy().ends_with(".corrupt"))
                    .count()
            })
            .unwrap_or(0);
        if quarantined > 0 {
            let _ = writeln!(
                out,
                "quarantined entries: {quarantined} (*.corrupt files under {})",
                opts.cache_dir.display(),
            );
        }
    }

    // --- per-workload / per-scheme ----------------------------------
    // Baselines: for each (cores, workload), the `none` run's summary.
    let mut baselines: BTreeMap<(String, String), f64> = BTreeMap::new();
    for row in by_key.values() {
        let (cores, workload, scheme) = split_label(&row.label);
        if scheme == "none" {
            if let Some(s) = cache.lookup_key(&row.key) {
                baselines.insert((cores, workload), s.l1i_mpi);
            }
        }
    }
    let _ = writeln!(out, "\n== per-workload / per-scheme ==");
    let header = [
        "run", "accuracy", "coverage", "pf/KI", "l1i_mpi", "late", "useless", "key",
    ];
    let mut table: Vec<Vec<String>> = Vec::new();
    for (key, row) in &by_key {
        let (cores, workload, scheme) = split_label(&row.label);
        if scheme == "none" {
            continue;
        }
        let Some(s) = cache.lookup_key(key) else {
            table.push(vec![
                row.label.clone(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                key.clone(),
            ]);
            continue;
        };
        let coverage = match baselines.get(&(cores, workload)) {
            Some(base_mpi) if *base_mpi > 0.0 => {
                format!("{:.1}%", 100.0 * (base_mpi - s.l1i_mpi) / base_mpi)
            }
            _ => "-".to_string(),
        };
        let (late, useless) = match read_timeliness(&opts.telemetry_dir, key) {
            Some(t) => (
                pct_or_dash(
                    t.first_use_late as f64,
                    (t.first_use + t.first_use_late) as f64,
                ),
                pct_or_dash(t.evict_unused as f64, t.issued as f64),
            ),
            None => ("-".to_string(), "-".to_string()),
        };
        table.push(vec![
            row.label.clone(),
            format!("{:.1}%", 100.0 * s.accuracy),
            coverage,
            format!("{:.1}", s.issued_per_ki),
            format!("{:.5}", s.l1i_mpi),
            late,
            useless,
            key.clone(),
        ]);
    }
    if table.is_empty() {
        let _ = writeln!(out, "(no prefetching runs in the log)");
    } else {
        out.push_str(&table_string(&header, &table));
    }

    // --- shard utilization (timing-dependent: skipped in stable) ----
    if !opts.stable {
        let mut batches: BTreeMap<String, (usize, f64, f64)> = BTreeMap::new();
        for row in &rows {
            if row.source == "cache" {
                continue; // cache hits are bookkeeping, not shard work
            }
            let tag = row.batch.clone().unwrap_or_else(|| "(untagged)".into());
            let b = batches.entry(tag).or_insert((0, 0.0, 0.0));
            b.0 += 1;
            b.1 += row.wall_s;
            b.2 += row.sim_minstr;
        }
        if batches.keys().any(|t| t.starts_with("shard ")) {
            let _ = writeln!(out, "\n== shard utilization ==");
            let rows: Vec<Vec<String>> = batches
                .iter()
                .map(|(tag, (n, wall, minstr))| {
                    vec![
                        tag.clone(),
                        n.to_string(),
                        format!("{wall:.1}"),
                        format!("{minstr:.0}"),
                    ]
                })
                .collect();
            out.push_str(&table_string(&["batch", "runs", "wall_s", "Minstr"], &rows));
        }
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipsim_harness::runlog::{append_tagged, RunRecord};
    use ipsim_harness::traces::RunSource;

    fn record(key: &str, label: &str, source: RunSource, wall: f64) -> RunRecord {
        RunRecord {
            key: key.into(),
            label: label.into(),
            source,
            ok: true,
            wall_s: wall,
            sim_instructions: if source == RunSource::Cache {
                0
            } else {
                30_000_000
            },
            mips: 20.0,
            sim_mips: if source == RunSource::Cache {
                0.0
            } else {
                30.0
            },
            sim_s: if source == RunSource::Cache { 0.0 } else { 0.5 },
            decode_mips: 0.0,
            l1i_mpi: 0.02,
            iv_mpki: 0.0,
            telemetry_events: 0,
        }
    }

    fn base(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ipsim-report-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn opts(dir: &Path) -> ReportOptions {
        ReportOptions {
            runlog: dir.join("runlog.tsv"),
            cache_dir: dir.join("cache"),
            telemetry_dir: dir.join("telemetry"),
            stable: false,
        }
    }

    #[test]
    fn report_aggregates_batches_sources_and_schemes() {
        let dir = base("full");
        let o = opts(&dir);
        append_tagged(
            &o.runlog,
            1,
            Some("shard 0/2"),
            &[record("aaaa", "1c·DB·none", RunSource::Capture, 2.0)],
        )
        .unwrap();
        append_tagged(
            &o.runlog,
            1,
            Some("shard 1/2"),
            &[record("bbbb", "1c·DB·nl-tagged", RunSource::Replay, 1.5)],
        )
        .unwrap();
        append_tagged(
            &o.runlog,
            1,
            None,
            &[
                record("aaaa", "1c·DB·none", RunSource::Cache, 0.001),
                record("bbbb", "1c·DB·nl-tagged", RunSource::Cache, 0.001),
            ],
        )
        .unwrap();

        let text = render_report(&o).unwrap();
        assert!(text.contains("unique runs: 2"), "{text}");
        assert!(text.contains("shard 0/2"), "{text}");
        assert!(text.contains("shard 1/2"), "{text}");
        assert!(text.contains("hits: 2 · simulations: 2"), "{text}");
        assert!(text.contains("aggregate sim-MIPS: 30.00"), "{text}");
        // Both executed rows report sim_mips 30, which lands in the
        // [28, 31] log₂ bucket — percentiles quote its upper bound.
        assert!(
            text.contains("sim-MIPS distribution: p50 31 · p90 31 · p99 31 (over 2 executed runs)"),
            "{text}"
        );
        // No corrupt entries: the quarantine line stays silent.
        assert!(!text.contains("quarantined entries"), "{text}");
        // No cache entries on disk: metric columns degrade to dashes.
        assert!(text.contains("1c·DB·nl-tagged"), "{text}");

        // A quarantined entry left by the cache surfaces in the report.
        std::fs::create_dir_all(&o.cache_dir).unwrap();
        std::fs::write(o.cache_dir.join("aaaa.tsv.corrupt"), "junk").unwrap();
        let text = render_report(&o).unwrap();
        assert!(text.contains("quarantined entries: 1"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stable_view_is_independent_of_row_order_sources_and_batches() {
        let dir_a = base("stable-a");
        let dir_b = base("stable-b");
        // Same key set; different shard batches, sources, wall times and
        // row orders — everything a shard count changes.
        let a = opts(&dir_a);
        append_tagged(
            &a.runlog,
            4,
            Some("shard 0/4"),
            &[
                record("aaaa", "1c·DB·none", RunSource::Live, 2.0),
                record("bbbb", "1c·DB·nl-tagged", RunSource::Capture, 3.0),
            ],
        )
        .unwrap();
        let b = opts(&dir_b);
        append_tagged(
            &b.runlog,
            1,
            None,
            &[record("bbbb", "1c·DB·nl-tagged", RunSource::Replay, 9.9)],
        )
        .unwrap();
        append_tagged(
            &b.runlog,
            1,
            Some("shard 1/2"),
            &[record("aaaa", "1c·DB·none", RunSource::Cache, 0.1)],
        )
        .unwrap();

        let stable = |mut o: ReportOptions| {
            o.stable = true;
            // Shared (empty) metric stores so the views only differ by log.
            o.cache_dir = dir_a.join("cache");
            o.telemetry_dir = dir_a.join("telemetry");
            render_report(&o).unwrap()
        };
        assert_eq!(stable(a), stable(b));
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn missing_or_foreign_runlog_is_a_clear_error() {
        let dir = base("errors");
        let mut o = opts(&dir);
        assert!(render_report(&o).unwrap_err().contains("cannot read"));
        std::fs::write(dir.join("other.tsv"), "# some-other-format v9\n").unwrap();
        o.runlog = dir.join("other.tsv");
        assert!(render_report(&o)
            .unwrap_err()
            .contains("unsupported runlog header"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
