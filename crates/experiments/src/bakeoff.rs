//! The prefetcher bake-off: every registered scheme head-to-head, per
//! workload, with metrics attributed by the zoo's shadow layer.
//!
//! One zoo run per workload hosts the whole contender pool side by side
//! (plus one no-prefetch baseline run for coverage/MPKI reference), so a
//! scheme's accuracy/timeliness numbers are measured under *contended*
//! conditions — the regime the paper's Figure 9 trade-off lives in. The
//! rendered table is built from the on-disk `zoo.tsv` telemetry
//! artifacts, never from in-process state, which makes the report
//! byte-identical whether the runs executed through the batch CLI
//! (`sim_report --bakeoff`) or through an `ipsim-serve` job — the
//! equivalence the serve end-to-end test pins.

use std::collections::BTreeMap;

use ipsim_harness::{RunLengths, RunSpec, Summary, TelemetrySink};
use ipsim_prefetch::ZooPlan;
use ipsim_telemetry::sink::parse_zoo_tsv;
use ipsim_telemetry::ZooSchemeRow;
use ipsim_types::SystemConfig;

use crate::cmp_workload_sets;

/// The contender pool: the paper's sequential and discontinuity schemes
/// plus the lookahead/target paper mechanisms and the three rivals.
/// Order is zoo slot order, so it is also table row order.
pub const BAKEOFF_PLAN: &str = "nl+nnl+disc+target+stream+mana+pmap";

/// The bake-off zoo plan ([`BAKEOFF_PLAN`] parsed).
///
/// # Panics
///
/// Never — the plan literal is covered by tests.
pub fn bakeoff_plan() -> ZooPlan {
    ZooPlan::parse(BAKEOFF_PLAN).expect("bake-off plan literal is valid")
}

/// The bake-off sweep: for each of the five workload columns, one
/// no-prefetch baseline and one full-zoo run on the paper's 4-way CMP.
/// Even indices are baselines, odd indices the paired zoo runs.
pub fn bakeoff_specs(lengths: RunLengths) -> Vec<RunSpec> {
    let mut specs = Vec::new();
    for ws in cmp_workload_sets() {
        let base = RunSpec::new(SystemConfig::cmp4(), ws, lengths);
        specs.push(base.clone());
        specs.push(base.zoo(bakeoff_plan()));
    }
    specs
}

/// Per-scheme counters summed across cores, in zoo slot order.
fn sum_by_scheme(rows: &[ZooSchemeRow]) -> Vec<(String, ZooSchemeRow)> {
    let mut order: Vec<String> = Vec::new();
    let mut by_scheme: BTreeMap<String, ZooSchemeRow> = BTreeMap::new();
    for row in rows {
        let entry = by_scheme.entry(row.scheme.clone()).or_insert_with(|| {
            order.push(row.scheme.clone());
            ZooSchemeRow {
                scheme: row.scheme.clone(),
                slot: row.slot,
                ..ZooSchemeRow::default()
            }
        });
        entry.generated += row.generated;
        entry.issued += row.issued;
        entry.filled += row.filled;
        entry.useful += row.useful;
        entry.late += row.late;
        entry.evicted_used += row.evicted_used;
        entry.evicted_unused += row.evicted_unused;
    }
    order
        .into_iter()
        .map(|scheme| {
            let row = by_scheme.remove(&scheme).expect("scheme recorded");
            (scheme, row)
        })
        .collect()
}

/// Renders the bake-off table from the on-disk artifacts of an executed
/// [`bakeoff_specs`] sweep. `resolve` maps a spec to its run summary
/// (from the scheduler report or the run cache).
///
/// Columns, per workload × scheme:
///
/// * `iss/KI`  — prefetches the scheme got accepted per 1 000 instrs;
/// * `acc%`    — first demand uses / issued (shadow-attributed);
/// * `cover%`  — first uses per baseline L1I miss (the share of the
///   no-prefetch miss stream this scheme's lines absorbed);
/// * `late%`   — first uses that were still in flight when demanded;
/// * the first row of each workload block carries the workload-level
///   L1I MPKI with and without the zoo.
///
/// # Errors
///
/// Returns a message when an artifact is missing or malformed (the
/// caller should treat that as "re-run with telemetry", not a crash).
pub fn render_bakeoff(
    sink: &TelemetrySink,
    specs: &[RunSpec],
    mut resolve: impl FnMut(&RunSpec) -> Summary,
) -> Result<String, String> {
    let mut out = String::new();
    out.push_str(&format!(
        "bake-off: zoo[{BAKEOFF_PLAN}] vs no-prefetch baseline (CMP-4)\n"
    ));
    out.push_str(&format!(
        "{:<8} {:<22} {:>8} {:>6} {:>7} {:>6}   {:>18}\n",
        "workload", "scheme", "iss/KI", "acc%", "cover%", "late%", "L1I MPKI base→zoo"
    ));
    for pair in specs.chunks(2) {
        let [base_spec, zoo_spec] = pair else {
            return Err("bake-off specs must come in baseline/zoo pairs".to_string());
        };
        let base = resolve(base_spec);
        let zoo = resolve(zoo_spec);
        let path = sink.dir_for(&zoo_spec.cache_key()).join("zoo.tsv");
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("missing artifact {}: {e}", path.display()))?;
        let rows = parse_zoo_tsv(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let instructions = zoo.instructions.max(1) as f64;
        let baseline_misses = base.l1i_mpi * base.instructions.max(1) as f64;
        let pct = |num: u64, den: f64| {
            if den <= 0.0 {
                0.0
            } else {
                num as f64 * 100.0 / den
            }
        };
        let mut first = true;
        for (scheme, c) in sum_by_scheme(&rows) {
            let tail = if first {
                format!(
                    "{:>8.3}→{:<8.3}",
                    base.l1i_mpi * 1_000.0,
                    zoo.l1i_mpi * 1_000.0
                )
            } else {
                String::new()
            };
            out.push_str(&format!(
                "{:<8} {:<22} {:>8.2} {:>6.1} {:>7.1} {:>6.1}   {}\n",
                if first {
                    zoo_spec.workloads.name()
                } else {
                    String::new()
                },
                scheme,
                c.issued as f64 * 1_000.0 / instructions,
                pct(c.useful, c.issued as f64),
                pct(c.useful, baseline_misses),
                pct(c.late, c.useful as f64),
                tail,
            ));
            first = false;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bakeoff_covers_at_least_six_schemes() {
        let plan = bakeoff_plan();
        assert!(plan.canonical().split('+').count() >= 6);
        let specs = bakeoff_specs(RunLengths {
            warm: 10,
            measure: 20,
        });
        assert_eq!(specs.len(), 10, "5 workload columns × (baseline, zoo)");
        for pair in specs.chunks(2) {
            assert!(pair[0].zoo.is_none());
            assert_eq!(pair[1].zoo.as_ref().unwrap().canonical(), BAKEOFF_PLAN);
            assert_eq!(pair[0].workloads, pair[1].workloads);
        }
    }

    #[test]
    fn scheme_sums_aggregate_across_cores_in_slot_order() {
        let row = |core, slot, scheme: &str, useful| ZooSchemeRow {
            core,
            slot,
            scheme: scheme.to_string(),
            useful,
            issued: useful * 2,
            ..ZooSchemeRow::default()
        };
        let rows = vec![
            row(0, 0, "nl", 3),
            row(0, 1, "disc", 5),
            row(1, 0, "nl", 4),
            row(1, 1, "disc", 6),
        ];
        let summed = sum_by_scheme(&rows);
        assert_eq!(summed.len(), 2);
        assert_eq!(summed[0].0, "nl");
        assert_eq!(summed[0].1.useful, 7);
        assert_eq!(summed[1].0, "disc");
        assert_eq!(summed[1].1.issued, 22);
    }
}
