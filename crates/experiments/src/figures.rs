//! Every figure of the paper (and the extension studies) as a
//! [`Figure`]: a named render function over an executor.
//!
//! The same function both enumerates the runs a figure needs (recording
//! pass) and renders its output from resolved summaries, so the scheduler's
//! job list can never drift from what rendering consumes. Output text is
//! byte-identical to the historical per-figure binaries.

use std::fmt::Write as _;

use ipsim_cache::InstallPolicy;
use ipsim_core::PrefetcherKind;
use ipsim_cpu::{LimitSpec, WorkloadSet};
use ipsim_harness::{Executor, Figure, RunLengths, RunSpec, Summary};
use ipsim_trace::Workload;
use ipsim_types::stats::CategoryCounts;
use ipsim_types::{CacheConfig, MissCategory, SystemConfig};

use crate::{
    pct, scheme_matrix, single_workload_sets, table_string, table_string_owned, workload_columns,
    workload_header,
};

/// The full figure registry, in paper order. `all_figures` sweeps this;
/// each thin `figNN_*` binary picks its own entry.
pub fn all() -> Vec<Figure> {
    vec![
        Figure {
            name: "fig01",
            title: "L1I miss rates vs cache geometry",
            version: 1,
            render: fig01,
        },
        Figure {
            name: "fig02",
            title: "L2 instruction miss rates vs L2 capacity",
            version: 1,
            render: fig02,
        },
        Figure {
            name: "fig03",
            title: "instruction miss breakdown by category",
            version: 1,
            render: fig03,
        },
        Figure {
            name: "fig04",
            title: "limit study: perfect elimination of miss classes",
            version: 1,
            render: fig04,
        },
        Figure {
            name: "fig05",
            title: "instruction miss rates under prefetching",
            version: 1,
            render: fig05,
        },
        Figure {
            name: "fig06",
            title: "prefetch speedup with conventional L2 install",
            version: 1,
            render: fig06,
        },
        Figure {
            name: "fig07",
            title: "L2 data pollution from instruction prefetching",
            version: 1,
            render: fig07,
        },
        Figure {
            name: "fig08",
            title: "prefetch speedup with L2 bypass until useful",
            version: 1,
            render: fig08,
        },
        Figure {
            name: "fig09",
            title: "prefetch accuracy and the next-2-line variant",
            version: 1,
            render: fig09,
        },
        Figure {
            name: "fig10",
            title: "miss coverage vs discontinuity table size",
            version: 1,
            render: fig10,
        },
        Figure {
            name: "fig11",
            title: "extension ablations: discontinuity design choices",
            version: 1,
            render: fig11,
        },
        Figure {
            name: "fig12",
            title: "extension: off-chip bandwidth sensitivity",
            version: 1,
            render: fig12,
        },
        Figure {
            name: "fig13",
            title: "extension: memory-latency sensitivity",
            version: 1,
            render: fig13,
        },
    ]
}

/// Figure 1: instruction cache miss rates (% per retired instruction) as
/// cache associativity, line size and capacity are varied.
fn fig01(lengths: RunLengths, x: &mut Executor) -> String {
    // (label, size, assoc, line)
    let configs: [(&str, u64, u32, u64); 10] = [
        ("Default", 32 << 10, 4, 64),
        ("Direct-mapped", 32 << 10, 1, 64),
        ("2-way", 32 << 10, 2, 64),
        ("8-way", 32 << 10, 8, 64),
        ("32B line size", 32 << 10, 4, 32),
        ("128B line size", 32 << 10, 4, 128),
        ("256B line size", 32 << 10, 4, 256),
        ("16KB", 16 << 10, 4, 64),
        ("64KB", 64 << 10, 4, 64),
        ("128KB", 128 << 10, 4, 64),
    ];

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 1: L1I miss rate (% per instruction) vs cache geometry"
    );
    let _ = writeln!(
        out,
        "(paper: default miss rates 1.32-3.16%, jApp highest; larger lines and"
    );
    let _ = writeln!(out, " capacity help strongly, associativity modestly)\n");

    let workloads = single_workload_sets();
    let mut rows = Vec::new();
    for (label, size, assoc, line) in configs {
        let mut row = vec![label.to_string()];
        for ws in &workloads {
            let mut config = SystemConfig::single_core();
            config.core.l1i = CacheConfig::new(size, assoc, line).expect("valid geometry");
            let summary = x(&RunSpec::new(config, ws.clone(), lengths));
            row.push(pct(summary.l1i_mpi));
        }
        rows.push(row);
    }
    out.push_str(&table_string(
        &["I$ configuration", "DB", "TPC-W", "jApp", "Web"],
        &rows,
    ));
    out
}

/// Figure 2: L2 cache instruction miss rates for the single-core processor
/// and the 4-way CMP as L2 capacity varies.
fn fig02(lengths: RunLengths, x: &mut Executor) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 2: L2 instruction miss rate (% per instruction) vs L2 capacity"
    );
    let _ = writeln!(
        out,
        "(paper: 2MB CMP rates 0.07-0.44%, Mixed worst; CMP rates exceed single-core;"
    );
    let _ = writeln!(out, " 1MB→2MB improves more than 2MB→4MB)\n");

    let sets = workload_columns(true);
    let mut rows = Vec::new();
    for mb in [1u64, 2, 4] {
        for cmp in [false, true] {
            let label = format!("{mb}MB {}", if cmp { "4-way CMP" } else { "single core" });
            let mut row = vec![label];
            for ws in &sets {
                if !cmp && ws.per_core.len() > 1 {
                    // The mixed workload needs one core per application.
                    row.push("-".to_string());
                    continue;
                }
                let mut config = if cmp {
                    SystemConfig::cmp4()
                } else {
                    SystemConfig::single_core()
                };
                config.mem.l2 = CacheConfig::new(mb << 20, 4, 64).expect("valid geometry");
                let summary = x(&RunSpec::new(config, ws.clone(), lengths));
                row.push(pct(summary.l2i_mpi));
            }
            rows.push(row);
        }
    }
    out.push_str(&table_string(
        &["L2 configuration", "DB", "TPC-W", "jApp", "Web", "Mix"],
        &rows,
    ));
    out
}

fn breakdown_row(name: &str, counts: &CategoryCounts) -> Vec<String> {
    let mut row = vec![name.to_string()];
    for cat in MissCategory::ALL {
        row.push(format!("{:.1}%", counts.fraction(cat) * 100.0));
    }
    row
}

fn breakdown_header() -> Vec<&'static str> {
    let mut h = vec!["workload"];
    for cat in MissCategory::ALL {
        h.push(cat.label());
    }
    h
}

/// Figure 3: breakdown of instruction misses by category.
fn fig03(lengths: RunLengths, x: &mut Executor) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 3: instruction miss breakdown by category");
    let _ = writeln!(
        out,
        "(paper: sequential 40-60%; branches 20-40% with cond-tf most prevalent;"
    );
    let _ = writeln!(
        out,
        " calls/jumps/returns 15-20% with Call most prevalent; traps negligible)\n"
    );

    let apps = single_workload_sets();
    let single: Vec<(String, Summary)> = apps
        .iter()
        .map(|ws| {
            (
                ws.name(),
                x(&RunSpec::new(
                    SystemConfig::single_core(),
                    ws.clone(),
                    lengths,
                )),
            )
        })
        .collect();

    let _ = writeln!(out, "(i) Instruction cache (single core)");
    let rows: Vec<Vec<String>> = single
        .iter()
        .map(|(n, s)| breakdown_row(n, &s.l1i_breakdown))
        .collect();
    out.push_str(&table_string(&breakdown_header(), &rows));

    let _ = writeln!(out, "\n(ii) L2 cache (single core)");
    let rows: Vec<Vec<String>> = single
        .iter()
        .map(|(n, s)| breakdown_row(n, &s.l2i_breakdown))
        .collect();
    out.push_str(&table_string(&breakdown_header(), &rows));

    let _ = writeln!(out, "\n(iii) L2 cache (4-way CMP)");
    let mut cmp_sets = apps;
    cmp_sets.push(WorkloadSet::mixed());
    let rows: Vec<Vec<String>> = cmp_sets
        .iter()
        .map(|ws| {
            let s = x(&RunSpec::new(SystemConfig::cmp4(), ws.clone(), lengths));
            breakdown_row(&ws.name(), &s.l2i_breakdown)
        })
        .collect();
    out.push_str(&table_string(&breakdown_header(), &rows));
    out
}

/// Figure 4: performance improvement achievable by perfectly eliminating
/// different classes of instruction misses (limit study).
fn fig04(lengths: RunLengths, x: &mut Executor) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 4: speedup from perfect elimination of miss classes"
    );
    let _ = writeln!(
        out,
        "(paper: eliminating all three classes yields far more than any single class;"
    );
    let _ = writeln!(
        out,
        " sequential-only beats branch-only and function-only)\n"
    );

    for (part, config, include_mix) in [
        ("(i) single core", SystemConfig::single_core(), false),
        ("(ii) 4-way CMP", SystemConfig::cmp4(), true),
    ] {
        let _ = writeln!(out, "{part}");
        let sets = workload_columns(include_mix);
        let mut header = vec!["elimination"];
        let names: Vec<String> = sets.iter().map(|w| w.name()).collect();
        for n in &names {
            header.push(n);
        }
        let baselines: Vec<Summary> = sets
            .iter()
            .map(|ws| x(&RunSpec::new(config.clone(), ws.clone(), lengths)))
            .collect();
        let mut rows = Vec::new();
        for spec in LimitSpec::FIG4_SETS {
            let mut row = vec![spec.label().to_string()];
            for (ws, base) in sets.iter().zip(&baselines) {
                let s = x(&RunSpec::new(config.clone(), ws.clone(), lengths).limit(spec));
                row.push(format!("{:.3}", s.speedup_over(base)));
            }
            rows.push(row);
        }
        out.push_str(&table_string(&header, &rows));
        let _ = writeln!(out);
    }
    out
}

/// Figure 5: instruction miss rates under the HW prefetching schemes,
/// normalised to no prefetching.
fn fig05(lengths: RunLengths, x: &mut Executor) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 5: instruction miss rate under prefetching (normalised to no prefetch)"
    );
    let _ = writeln!(
        out,
        "(paper: discontinuity lowest, reducing misses to ~0.10-0.25 of baseline;"
    );
    let _ = writeln!(out, " next-4-line clearly beats the next-line variants)\n");

    struct Part {
        title: &'static str,
        config: SystemConfig,
        include_mix: bool,
        l2: bool,
    }
    let parts = [
        Part {
            title: "(i) Instruction cache (single core)",
            config: SystemConfig::single_core(),
            include_mix: false,
            l2: false,
        },
        Part {
            title: "(ii) L2 cache instruction misses (single core)",
            config: SystemConfig::single_core(),
            include_mix: false,
            l2: true,
        },
        Part {
            title: "(iii) L2 cache instruction misses (4-way CMP)",
            config: SystemConfig::cmp4(),
            include_mix: true,
            l2: true,
        },
    ];

    for part in parts {
        let _ = writeln!(out, "{}", part.title);
        let sets = workload_columns(part.include_mix);
        let (baselines, per_scheme) = scheme_matrix(
            &part.config,
            &sets,
            &PrefetcherKind::PAPER_SCHEMES,
            InstallPolicy::InstallBoth,
            lengths,
            x,
        );
        let rows: Vec<Vec<String>> = per_scheme
            .iter()
            .map(|(label, summaries)| {
                let mut row = vec![label.clone()];
                for (s, base) in summaries.iter().zip(&baselines) {
                    let (v, b) = if part.l2 {
                        (s.l2i_mpi, base.l2i_mpi)
                    } else {
                        (s.l1i_mpi, base.l1i_mpi)
                    };
                    row.push(format!("{:.2}", if b == 0.0 { 0.0 } else { v / b }));
                }
                row
            })
            .collect();
        out.push_str(&table_string_owned(
            &workload_header("scheme", &sets),
            &rows,
        ));
        let _ = writeln!(out);
    }
    out
}

/// Figure 6: performance gains of the HW prefetching schemes with
/// conventional L2 installation (the polluting regime).
fn fig06(lengths: RunLengths, x: &mut Executor) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 6: speedup over no prefetching (prefetches installed in L2)"
    );
    let _ = writeln!(
        out,
        "(paper: gains fall well short of the Figure 4 limits because aggressive"
    );
    let _ = writeln!(
        out,
        " instruction prefetching pollutes the shared L2 with displaced data)\n"
    );

    for (title, config, include_mix) in [
        ("(i) single core", SystemConfig::single_core(), false),
        ("(ii) 4-way CMP", SystemConfig::cmp4(), true),
    ] {
        let _ = writeln!(out, "{title}");
        let sets = workload_columns(include_mix);
        let (baselines, per_scheme) = scheme_matrix(
            &config,
            &sets,
            &PrefetcherKind::PAPER_SCHEMES,
            InstallPolicy::InstallBoth,
            lengths,
            x,
        );
        let rows: Vec<Vec<String>> = per_scheme
            .iter()
            .map(|(label, summaries)| {
                let mut row = vec![label.clone()];
                for (s, base) in summaries.iter().zip(&baselines) {
                    row.push(format!("{:.3}", s.speedup_over(base)));
                }
                row
            })
            .collect();
        out.push_str(&table_string_owned(
            &workload_header("scheme", &sets),
            &rows,
        ));
        let _ = writeln!(out);
    }
    out
}

/// Figure 7: L2 cache *data* miss rate under instruction prefetching,
/// normalised to no prefetching.
fn fig07(lengths: RunLengths, x: &mut Executor) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 7: L2 data miss rate (normalised to no prefetch)"
    );
    let _ = writeln!(
        out,
        "(paper: aggressive schemes inflate data misses by up to ~1.35x — speculative"
    );
    let _ = writeln!(out, " instruction lines evict data from the unified L2)\n");

    for (title, config, include_mix) in [
        ("(i) single core", SystemConfig::single_core(), false),
        ("(ii) 4-way CMP", SystemConfig::cmp4(), true),
    ] {
        let _ = writeln!(out, "{title}");
        let sets = workload_columns(include_mix);
        let (baselines, per_scheme) = scheme_matrix(
            &config,
            &sets,
            &PrefetcherKind::PAPER_SCHEMES,
            InstallPolicy::InstallBoth,
            lengths,
            x,
        );
        let rows: Vec<Vec<String>> = per_scheme
            .iter()
            .map(|(label, summaries)| {
                let mut row = vec![label.clone()];
                for (s, base) in summaries.iter().zip(&baselines) {
                    let ratio = if base.l2d_mpi == 0.0 {
                        0.0
                    } else {
                        s.l2d_mpi / base.l2d_mpi
                    };
                    row.push(format!("{ratio:.3}"));
                }
                row
            })
            .collect();
        out.push_str(&table_string_owned(
            &workload_header("scheme", &sets),
            &rows,
        ));
        let _ = writeln!(out);
    }
    out
}

/// Figure 8: performance gains when instruction prefetches bypass the L2
/// until proven useful (the paper's selective-install policy).
fn fig08(lengths: RunLengths, x: &mut Executor) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 8: speedup over no prefetching (prefetches bypass the L2 until useful)"
    );
    let _ = writeln!(
        out,
        "(paper: removing the data pollution lifts the CMP discontinuity speedups from"
    );
    let _ = writeln!(out, " 1.05-1.28x to 1.08-1.37x; compare with Figure 6)\n");

    for (title, config, include_mix) in [
        ("(i) single core", SystemConfig::single_core(), false),
        ("(ii) 4-way CMP", SystemConfig::cmp4(), true),
    ] {
        let _ = writeln!(out, "{title}");
        let sets = workload_columns(include_mix);
        let (baselines, per_scheme) = scheme_matrix(
            &config,
            &sets,
            &PrefetcherKind::PAPER_SCHEMES,
            InstallPolicy::BypassL2UntilUseful,
            lengths,
            x,
        );
        let rows: Vec<Vec<String>> = per_scheme
            .iter()
            .map(|(label, summaries)| {
                let mut row = vec![label.clone()];
                for (s, base) in summaries.iter().zip(&baselines) {
                    row.push(format!("{:.3}", s.speedup_over(base)));
                }
                row
            })
            .collect();
        out.push_str(&table_string_owned(
            &workload_header("scheme", &sets),
            &rows,
        ));
        let _ = writeln!(out);
    }
    out
}

/// Figure 9: prefetch accuracy for every scheme including the next-2-line
/// discontinuity variant, plus that variant's performance.
fn fig09(lengths: RunLengths, x: &mut Executor) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 9: prefetch accuracy and the next-2-line discontinuity variant (4-way CMP)"
    );
    let _ = writeln!(
        out,
        "(paper: accuracy falls as schemes get more aggressive; discont(2NL) is ~50%"
    );
    let _ = writeln!(
        out,
        " more accurate than next-4-line and still outperforms it)\n"
    );

    let mut schemes = PrefetcherKind::PAPER_SCHEMES.to_vec();
    schemes.push(PrefetcherKind::discontinuity_2nl());

    let config = SystemConfig::cmp4();
    let sets = workload_columns(true);
    let (baselines, per_scheme) = scheme_matrix(
        &config,
        &sets,
        &schemes,
        InstallPolicy::BypassL2UntilUseful,
        lengths,
        x,
    );

    let _ = writeln!(out, "(i) prefetch accuracy (useful / issued)");
    let rows: Vec<Vec<String>> = per_scheme
        .iter()
        .map(|(label, summaries)| {
            let mut row = vec![label.clone()];
            for s in summaries {
                row.push(format!("{:.0}%", s.accuracy * 100.0));
            }
            row
        })
        .collect();
    out.push_str(&table_string_owned(
        &workload_header("scheme", &sets),
        &rows,
    ));

    let _ = writeln!(out, "\n(ii) speedup over no prefetching");
    let rows: Vec<Vec<String>> = per_scheme
        .iter()
        .map(|(label, summaries)| {
            let mut row = vec![label.clone()];
            for (s, base) in summaries.iter().zip(&baselines) {
                row.push(format!("{:.3}", s.speedup_over(base)));
            }
            row
        })
        .collect();
    out.push_str(&table_string_owned(
        &workload_header("scheme", &sets),
        &rows,
    ));
    out
}

/// Figure 10: prefetch coverage for various discontinuity prediction-table
/// sizes, against the next-4-line sequential prefetcher.
fn fig10(lengths: RunLengths, x: &mut Executor) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 10: miss coverage vs discontinuity table size (4-way CMP)"
    );
    let _ = writeln!(
        out,
        "(paper: the 8K-entry table can shrink 4x with minimal coverage loss, and"
    );
    let _ = writeln!(
        out,
        " even 256 entries beats the next-4-line sequential prefetcher)\n"
    );

    let config = SystemConfig::cmp4();
    let sets = workload_columns(true);
    let baselines: Vec<Summary> = sets
        .iter()
        .map(|ws| x(&RunSpec::new(config.clone(), ws.clone(), lengths)))
        .collect();

    let mut variants: Vec<(String, PrefetcherKind)> = [8192usize, 4096, 2048, 1024, 512, 256]
        .iter()
        .map(|&entries| {
            (
                format!("{entries}-entries"),
                PrefetcherKind::Discontinuity {
                    table_entries: entries,
                    ahead: 4,
                },
            )
        })
        .collect();
    variants.push((
        "next-4lines (tagged)".to_string(),
        PrefetcherKind::NextNLineTagged { n: 4 },
    ));

    let results: Vec<(String, Vec<Summary>)> = variants
        .iter()
        .map(|(label, kind)| {
            let summaries = sets
                .iter()
                .map(|ws| {
                    x(&RunSpec::new(config.clone(), ws.clone(), lengths)
                        .prefetcher(*kind)
                        .policy(InstallPolicy::BypassL2UntilUseful))
                })
                .collect();
            (label.clone(), summaries)
        })
        .collect();

    for (title, l2) in [
        ("(i) L1 instruction cache coverage", false),
        ("(ii) L2 cache coverage", true),
    ] {
        let _ = writeln!(out, "{title}");
        let rows: Vec<Vec<String>> = results
            .iter()
            .map(|(label, summaries)| {
                let mut row = vec![label.clone()];
                for (s, base) in summaries.iter().zip(&baselines) {
                    let (v, b) = if l2 {
                        (s.l2i_mpi, base.l2i_mpi)
                    } else {
                        (s.l1i_mpi, base.l1i_mpi)
                    };
                    let coverage = if b == 0.0 { 0.0 } else { 1.0 - v / b };
                    row.push(format!("{:.0}%", coverage * 100.0));
                }
                row
            })
            .collect();
        out.push_str(&table_string_owned(
            &workload_header("predictor", &sets),
            &rows,
        ));
        let _ = writeln!(out);
    }
    out
}

/// Extension ablations (not a paper figure): design-choice studies around
/// the discontinuity prefetcher on the 4-way CMP.
fn fig11(lengths: RunLengths, x: &mut Executor) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablations (extension): discontinuity design choices, 4-way CMP, bypass policy\n"
    );

    let config = SystemConfig::cmp4();
    let sets = workload_columns(true);
    let baselines: Vec<Summary> = sets
        .iter()
        .map(|ws| x(&RunSpec::new(config.clone(), ws.clone(), lengths)))
        .collect();

    let variants: Vec<(String, PrefetcherKind)> = vec![
        (
            "discont ahead=1".into(),
            PrefetcherKind::Discontinuity {
                table_entries: 8192,
                ahead: 1,
            },
        ),
        (
            "discont ahead=2".into(),
            PrefetcherKind::Discontinuity {
                table_entries: 8192,
                ahead: 2,
            },
        ),
        (
            "discont ahead=4 (paper)".into(),
            PrefetcherKind::Discontinuity {
                table_entries: 8192,
                ahead: 4,
            },
        ),
        (
            "discont ahead=8".into(),
            PrefetcherKind::Discontinuity {
                table_entries: 8192,
                ahead: 8,
            },
        ),
        (
            "discont gated >=2".into(),
            PrefetcherKind::DiscontinuityGated {
                table_entries: 8192,
                ahead: 4,
                min_confidence: 2,
            },
        ),
        (
            "target (8192)".into(),
            PrefetcherKind::Target {
                table_entries: 8192,
            },
        ),
        ("lookahead-4".into(), PrefetcherKind::Lookahead { n: 4 }),
        ("next-line (always)".into(), PrefetcherKind::NextLineAlways),
        (
            "wrong-path + next-line".into(),
            PrefetcherKind::WrongPath { next_line: true },
        ),
        (
            "markov 2-target".into(),
            PrefetcherKind::Markov {
                table_entries: 8192,
                ahead: 4,
            },
        ),
    ];

    let mut speed_rows = Vec::new();
    let mut miss_rows = Vec::new();
    let mut acc_rows = Vec::new();
    for (label, kind) in &variants {
        let mut speed = vec![label.clone()];
        let mut miss = vec![label.clone()];
        let mut acc = vec![label.clone()];
        for (ws, base) in sets.iter().zip(&baselines) {
            let s = x(&RunSpec::new(config.clone(), ws.clone(), lengths)
                .prefetcher(*kind)
                .policy(InstallPolicy::BypassL2UntilUseful));
            speed.push(format!("{:.3}", s.speedup_over(base)));
            miss.push(format!(
                "{:.2}",
                if base.l1i_mpi == 0.0 {
                    0.0
                } else {
                    s.l1i_mpi / base.l1i_mpi
                }
            ));
            acc.push(format!("{:.0}%", s.accuracy * 100.0));
        }
        speed_rows.push(speed);
        miss_rows.push(miss);
        acc_rows.push(acc);
    }

    let _ = writeln!(out, "speedup over no prefetching");
    out.push_str(&table_string_owned(
        &workload_header("variant", &sets),
        &speed_rows,
    ));
    let _ = writeln!(out, "\nL1I miss ratio (vs no prefetching)");
    out.push_str(&table_string_owned(
        &workload_header("variant", &sets),
        &miss_rows,
    ));
    let _ = writeln!(out, "\nprefetch accuracy");
    out.push_str(&table_string_owned(
        &workload_header("variant", &sets),
        &acc_rows,
    ));
    out
}

/// Extension experiment: off-chip bandwidth sensitivity (paper §7).
fn fig12(lengths: RunLengths, x: &mut Executor) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Extension: speedup vs off-chip bandwidth (4-way CMP, bypass policy)"
    );
    let _ = writeln!(
        out,
        "(paper: under constrained bandwidth the more accurate discont(2NL) becomes"
    );
    let _ = writeln!(
        out,
        " competitive with / preferable to the default next-4-line window)\n"
    );

    // GB/s at 3 GHz; 20 GB/s is the paper's CMP default.
    let bandwidths = [2.5f64, 5.0, 10.0, 20.0, 40.0];
    let schemes = [
        PrefetcherKind::NextNLineTagged { n: 4 },
        PrefetcherKind::discontinuity_2nl(),
        PrefetcherKind::discontinuity_default(),
    ];
    let sets = [WorkloadSet::homogeneous(Workload::Db), WorkloadSet::mixed()];

    for ws in &sets {
        let _ = writeln!(out, "workload: {}", ws.name());
        let mut header = vec!["scheme".to_string()];
        for bw in bandwidths {
            header.push(format!("{bw}GB/s"));
        }
        let mut rows = Vec::new();
        for kind in schemes {
            let mut row = vec![kind.label()];
            for bw in bandwidths {
                let mut config = SystemConfig::cmp4();
                config.mem.offchip_bytes_per_cycle = bw / 3.0;
                let base: Summary = x(&RunSpec::new(config.clone(), ws.clone(), lengths));
                let s = x(&RunSpec::new(config, ws.clone(), lengths)
                    .prefetcher(kind)
                    .policy(InstallPolicy::BypassL2UntilUseful));
                row.push(format!("{:.3}", s.speedup_over(&base)));
            }
            rows.push(row);
        }
        out.push_str(&table_string_owned(&header, &rows));
        let _ = writeln!(out);
    }
    out
}

/// Extension experiment: memory-latency sensitivity.
fn fig13(lengths: RunLengths, x: &mut Executor) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Extension: speedup vs memory latency (4-way CMP, DB, bypass policy)"
    );
    let _ = writeln!(
        out,
        "(paper intro: growing memory distance demands longer prefetch lookahead —"
    );
    let _ = writeln!(
        out,
        " shallow next-line windows lose value faster than the 4-line window)\n"
    );

    let latencies = [100u64, 200, 400, 800];
    let schemes = [
        PrefetcherKind::NextLineTagged,
        PrefetcherKind::NextNLineTagged { n: 4 },
        PrefetcherKind::discontinuity_default(),
    ];
    let ws = WorkloadSet::homogeneous(Workload::Db);

    let mut header = vec!["scheme".to_string()];
    for l in latencies {
        header.push(format!("{l}cyc"));
    }
    let mut rows = Vec::new();

    let mut base_row = vec!["baseline IPC".to_string()];
    let baselines: Vec<Summary> = latencies
        .iter()
        .map(|&lat| {
            let mut config = SystemConfig::cmp4();
            config.mem.mem_latency = lat;
            let s = x(&RunSpec::new(config, ws.clone(), lengths));
            base_row.push(format!("{:.3}", s.ipc));
            s
        })
        .collect();
    rows.push(base_row);

    for kind in schemes {
        let mut row = vec![kind.label()];
        for (i, &lat) in latencies.iter().enumerate() {
            let mut config = SystemConfig::cmp4();
            config.mem.mem_latency = lat;
            let s = x(&RunSpec::new(config, ws.clone(), lengths)
                .prefetcher(kind)
                .policy(InstallPolicy::BypassL2UntilUseful));
            row.push(format!("{:.3}", s.speedup_over(&baselines[i])));
        }
        rows.push(row);
    }
    out.push_str(&table_string_owned(&header, &rows));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn registry_is_complete_and_uniquely_named() {
        let figs = all();
        assert_eq!(figs.len(), 13);
        let names: HashSet<&str> = figs.iter().map(|f| f.name).collect();
        assert_eq!(names.len(), figs.len());
        for (i, f) in figs.iter().enumerate() {
            assert_eq!(f.name, format!("fig{:02}", i + 1));
        }
    }

    /// Every figure must enumerate at least one run, and enumeration must be
    /// deterministic (same jobs, same order) — the scheduler depends on it.
    #[test]
    fn job_enumeration_is_deterministic() {
        let lengths = RunLengths {
            warm: 1_000,
            measure: 2_000,
        };
        for fig in all() {
            let a = fig.jobs(lengths).unwrap();
            let b = fig.jobs(lengths).unwrap();
            assert!(!a.is_empty(), "{} enumerates no runs", fig.name);
            let ka: Vec<String> = a.iter().map(RunSpec::cache_key).collect();
            let kb: Vec<String> = b.iter().map(RunSpec::cache_key).collect();
            assert_eq!(ka, kb, "{} job enumeration is unstable", fig.name);
        }
    }
}
