//! Cached experiment execution: identical configurations are simulated
//! once and reused across figure binaries.

use std::collections::hash_map::DefaultHasher;
use std::fs;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;

use ipsim_cache::InstallPolicy;
use ipsim_core::PrefetcherKind;
use ipsim_cpu::{LimitSpec, SystemBuilder, WorkloadSet};
use ipsim_types::SystemConfig;

use crate::summary::Summary;
use crate::RunLengths;

/// A fully specified experiment run.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// System configuration (cores, caches, memory).
    pub config: SystemConfig,
    /// Per-core prefetcher.
    pub prefetcher: PrefetcherKind,
    /// L2 install policy for instruction prefetches.
    pub policy: InstallPolicy,
    /// Optional limit-study spec.
    pub limit: Option<LimitSpec>,
    /// Workload assignment.
    pub workloads: WorkloadSet,
    /// Warm-up / measurement windows.
    pub lengths: RunLengths,
}

impl RunSpec {
    /// A baseline spec: the paper's default system with no prefetcher.
    pub fn new(config: SystemConfig, workloads: WorkloadSet, lengths: RunLengths) -> RunSpec {
        RunSpec {
            config,
            prefetcher: PrefetcherKind::None,
            policy: InstallPolicy::InstallBoth,
            limit: None,
            workloads,
            lengths,
        }
    }

    /// Sets the prefetcher.
    pub fn prefetcher(mut self, kind: PrefetcherKind) -> RunSpec {
        self.prefetcher = kind;
        self
    }

    /// Sets the install policy.
    pub fn policy(mut self, policy: InstallPolicy) -> RunSpec {
        self.policy = policy;
        self
    }

    /// Sets a limit-study spec.
    pub fn limit(mut self, limit: LimitSpec) -> RunSpec {
        self.limit = Some(limit);
        self
    }

    /// A stable cache key covering every parameter that affects results.
    fn cache_key(&self) -> String {
        let c = &self.config;
        let descr = format!(
            "v3|cores={}|l1i={}x{}x{}|l1d={}x{}x{}|l2={}x{}x{}|lat={},{},{}|bw={:.4}|\
             fw={},iw={},rob={},pd={},mshr={}|gsh={},btb={},ras={}|pf={:?}|pol={:?}|lim={:?}|\
             ws={:?}/{}/{}|warm={}|meas={}",
            c.n_cores,
            c.core.l1i.size_bytes(),
            c.core.l1i.assoc(),
            c.core.l1i.line().bytes(),
            c.core.l1d.size_bytes(),
            c.core.l1d.assoc(),
            c.core.l1d.line().bytes(),
            c.mem.l2.size_bytes(),
            c.mem.l2.assoc(),
            c.mem.l2.line().bytes(),
            c.core.l1_latency,
            c.mem.l2_latency,
            c.mem.mem_latency,
            c.mem.offchip_bytes_per_cycle,
            c.core.fetch_width,
            c.core.issue_width,
            c.core.rob_entries,
            c.core.pipeline_depth,
            c.core.mshrs,
            c.core.branch.gshare_entries,
            c.core.branch.btb_entries,
            c.core.branch.ras_entries,
            self.prefetcher,
            self.policy,
            self.limit,
            self.workloads.per_core,
            self.workloads.program_seed,
            self.workloads.walker_seed,
            self.lengths.warm,
            self.lengths.measure,
        );
        let mut descr = descr;
        if c.core.tlb.enabled {
            descr.push_str(&format!("|tlb={:?}", c.core.tlb));
        }
        let mut h = DefaultHasher::new();
        descr.hash(&mut h);
        format!("{:016x}", h.finish())
    }

    /// Executes the run, consulting and updating the on-disk cache
    /// (`results/cache/`). Delete that directory to force re-simulation.
    pub fn run(&self) -> Summary {
        let path = cache_path(&self.cache_key());
        if let Ok(contents) = fs::read_to_string(&path) {
            if let Some(s) = Summary::from_tsv(&contents) {
                return s;
            }
        }
        let builder = SystemBuilder::new(self.config.clone())
            .prefetcher(self.prefetcher)
            .install_policy(self.policy);
        let builder = match self.limit {
            Some(l) => builder.limit(l),
            None => builder,
        };
        let mut system = builder.build().expect("experiment configuration is valid");
        let metrics =
            system.run_workload(&self.workloads, self.lengths.warm, self.lengths.measure);
        let summary = Summary::from_metrics(&metrics);
        if let Some(dir) = path.parent() {
            let _ = fs::create_dir_all(dir);
        }
        let _ = fs::write(&path, summary.to_tsv());
        summary
    }
}

fn cache_path(key: &str) -> PathBuf {
    PathBuf::from("results").join("cache").join(format!("{key}.tsv"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipsim_trace::Workload;

    #[test]
    fn cache_keys_distinguish_configs() {
        let lengths = RunLengths {
            warm: 1,
            measure: 2,
        };
        let a = RunSpec::new(
            SystemConfig::single_core(),
            WorkloadSet::homogeneous(Workload::Db),
            lengths,
        );
        let b = a.clone().prefetcher(PrefetcherKind::NextLineTagged);
        let c = a.clone().policy(InstallPolicy::BypassL2UntilUseful);
        let d = RunSpec::new(
            SystemConfig::cmp4(),
            WorkloadSet::homogeneous(Workload::Db),
            lengths,
        );
        let keys = [a.cache_key(), b.cache_key(), c.cache_key(), d.cache_key()];
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j]);
            }
        }
    }
}
