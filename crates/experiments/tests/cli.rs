//! Pins the command-line contract shared by every binary in this crate:
//! `--help` prints usage to stdout and exits 0; an unknown flag prints
//! usage to stderr and exits 2. Scripts and CI jobs rely on that split to
//! tell "you called it wrong" from "the experiment failed" (exit 1).

use std::process::Command;

/// Every binary this crate builds, by `CARGO_BIN_EXE_*` path.
const BINS: &[(&str, &str)] = &[
    ("all_figures", env!("CARGO_BIN_EXE_all_figures")),
    ("calibrate", env!("CARGO_BIN_EXE_calibrate")),
    ("fig01", env!("CARGO_BIN_EXE_fig01_l1_miss_rates")),
    ("fig02", env!("CARGO_BIN_EXE_fig02_l2_miss_rates")),
    ("fig03", env!("CARGO_BIN_EXE_fig03_miss_breakdown")),
    ("fig04", env!("CARGO_BIN_EXE_fig04_limit_study")),
    ("fig05", env!("CARGO_BIN_EXE_fig05_prefetch_miss_rates")),
    ("fig06", env!("CARGO_BIN_EXE_fig06_prefetch_speedup")),
    ("fig07", env!("CARGO_BIN_EXE_fig07_l2_data_pollution")),
    ("fig08", env!("CARGO_BIN_EXE_fig08_bypass_speedup")),
    ("fig09", env!("CARGO_BIN_EXE_fig09_accuracy_2nl")),
    ("fig10", env!("CARGO_BIN_EXE_fig10_table_size")),
    ("fig11", env!("CARGO_BIN_EXE_fig11_ablations")),
    ("fig12", env!("CARGO_BIN_EXE_fig12_bandwidth")),
    ("fig13", env!("CARGO_BIN_EXE_fig13_latency")),
    ("ops_report", env!("CARGO_BIN_EXE_ops_report")),
    ("pf_check", env!("CARGO_BIN_EXE_pf_check")),
    ("pf_detail", env!("CARGO_BIN_EXE_pf_detail")),
    ("sim_report", env!("CARGO_BIN_EXE_sim_report")),
    ("sweep_report", env!("CARGO_BIN_EXE_sweep_report")),
    ("sweep_zipf", env!("CARGO_BIN_EXE_sweep_zipf")),
    ("telemetry_check", env!("CARGO_BIN_EXE_telemetry_check")),
    ("trace_dump", env!("CARGO_BIN_EXE_trace_dump")),
    ("trace_stats", env!("CARGO_BIN_EXE_trace_stats")),
];

#[test]
fn every_binary_prints_usage_on_help_and_exits_zero() {
    for (name, path) in BINS {
        let out = Command::new(path)
            .arg("--help")
            .output()
            .unwrap_or_else(|e| panic!("{name}: could not run: {e}"));
        assert_eq!(
            out.status.code(),
            Some(0),
            "{name} --help exited {:?}\nstderr: {}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("usage"),
            "{name} --help printed no usage text:\n{stdout}"
        );
    }
}

#[test]
fn prefetcher_selectors_reject_unknown_schemes_with_exit_two() {
    for name in ["pf_check", "pf_detail"] {
        let path = BINS.iter().find(|(n, _)| *n == name).unwrap().1;
        for bad in ["warp", "nl:mode=9", ""] {
            let out = Command::new(path)
                .args(["--prefetcher", bad])
                .output()
                .unwrap_or_else(|e| panic!("{name}: could not run: {e}"));
            assert_eq!(
                out.status.code(),
                Some(2),
                "{name} --prefetcher {bad:?} should exit 2, got {:?}",
                out.status.code()
            );
            let stderr = String::from_utf8_lossy(&out.stderr);
            assert!(
                stderr.contains("usage"),
                "{name} rejected the spec without printing usage:\n{stderr}"
            );
        }
    }
}

#[test]
fn every_binary_rejects_unknown_flags_with_exit_two() {
    for (name, path) in BINS {
        let out = Command::new(path)
            .arg("--definitely-not-a-real-flag")
            .output()
            .unwrap_or_else(|e| panic!("{name}: could not run: {e}"));
        assert_eq!(
            out.status.code(),
            Some(2),
            "{name} accepted an unknown flag (exit {:?})\nstdout: {}\nstderr: {}",
            out.status.code(),
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("usage"),
            "{name} rejected the flag without printing usage:\n{stderr}"
        );
    }
}
