//! The scheduler's core guarantee: worker count never changes a figure's
//! rendered bytes. Both sweeps here start from cold caches, so the 1-worker
//! and 4-worker runs each simulate everything themselves.

use std::path::PathBuf;

use ipsim_harness::{run_sweep, Figure, ProgressMode, RunLengths, SweepOptions, SweepReport};

fn cold_sweep(figures: &[Figure], tag: &str, workers: usize) -> (SweepReport, PathBuf) {
    let base = std::env::temp_dir().join(format!("ipsim-determinism-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let opts = SweepOptions {
        lengths: RunLengths {
            warm: 10_000,
            measure: 20_000,
        },
        workers,
        results_dir: None,
        cache_dir: Some(base.join("cache")),
        runlog: Some(base.join("runlog.tsv")),
        trace_dir: Some(base.join("traces")),
        traces: true,
        progress: ProgressMode::Silent,
    };
    (run_sweep(figures, &opts), base)
}

#[test]
fn figure_output_is_byte_identical_across_worker_counts() {
    // fig02 exercises mixed workloads and config edits; fig05 exercises the
    // shared scheme matrix (its three parts dedup onto the same runs).
    let figures: Vec<Figure> = ipsim_experiments::figures::all()
        .into_iter()
        .filter(|f| f.name == "fig02" || f.name == "fig05")
        .collect();
    assert_eq!(figures.len(), 2);

    let (serial, dir1) = cold_sweep(&figures, "w1", 1);
    let (parallel, dir4) = cold_sweep(&figures, "w4", 4);

    assert!(serial.all_ok(), "serial sweep failed");
    assert!(parallel.all_ok(), "parallel sweep failed");
    assert_eq!(serial.cache_hits, 0, "sweep was not cold");
    assert_eq!(parallel.cache_hits, 0, "sweep was not cold");

    for (a, b) in serial.figures.iter().zip(&parallel.figures) {
        assert_eq!(a.name, b.name);
        let text1 = a.outcome.as_ref().unwrap();
        let text4 = b.outcome.as_ref().unwrap();
        assert_eq!(
            text1.as_bytes(),
            text4.as_bytes(),
            "{}: 1-worker and 4-worker outputs differ",
            a.name
        );
    }

    let _ = std::fs::remove_dir_all(dir1);
    let _ = std::fs::remove_dir_all(dir4);
}
