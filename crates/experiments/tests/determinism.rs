//! The scheduler's core guarantee: worker count never changes a figure's
//! rendered bytes. Both sweeps here start from cold caches, so the 1-worker
//! and 4-worker runs each simulate everything themselves.
//!
//! On top of the worker-count comparison, the rendered bytes are pinned to
//! golden FNV-1a hashes captured before the data-oriented kernel rewrite
//! (flat cache sets, batched dispatch, bounded prefetch-source table). Any
//! change to simulated behaviour — however subtle — flips a hash; perf work
//! on the hot path must keep these green.

use std::path::PathBuf;

use ipsim_harness::hash::fnv1a64;
use ipsim_harness::{run_sweep, Figure, ProgressMode, RunLengths, SweepOptions, SweepReport};
use ipsim_telemetry::TelemetryConfig;

/// Golden output hashes at warm=10_000 / measure=20_000, captured from the
/// pre-rewrite `Vec<Entry>`/`HashMap` simulation kernel. The kernel rewrite
/// must reproduce these bytes exactly.
const GOLDEN: [(&str, u64); 2] = [
    ("fig02", 0xE0C2_1790_1C1A_F0A1),
    ("fig05", 0x8B34_D941_5818_8E70),
];

fn cold_sweep(
    figures: &[Figure],
    tag: &str,
    workers: usize,
    telemetry: Option<TelemetryConfig>,
) -> (SweepReport, PathBuf) {
    let base = std::env::temp_dir().join(format!("ipsim-determinism-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let opts = SweepOptions {
        lengths: RunLengths {
            warm: 10_000,
            measure: 20_000,
        },
        workers,
        results_dir: None,
        cache_dir: Some(base.join("cache")),
        runlog: Some(base.join("runlog.tsv")),
        trace_dir: Some(base.join("traces")),
        traces: true,
        telemetry,
        telemetry_dir: Some(base.join("telemetry")),
        progress: ProgressMode::Silent,
        manifest: None,
        force: false,
    };
    (run_sweep(figures, &opts), base)
}

#[test]
fn figure_output_is_byte_identical_across_worker_counts() {
    // fig02 exercises mixed workloads and config edits; fig05 exercises the
    // shared scheme matrix (its three parts dedup onto the same runs).
    let figures: Vec<Figure> = ipsim_experiments::figures::all()
        .into_iter()
        .filter(|f| f.name == "fig02" || f.name == "fig05")
        .collect();
    assert_eq!(figures.len(), 2);

    let (serial, dir1) = cold_sweep(&figures, "w1", 1, None);
    let (parallel, dir4) = cold_sweep(&figures, "w4", 4, None);
    // Telemetry observes the simulation; it must not touch a rendered byte.
    let (instrumented, dir_t) = cold_sweep(
        &figures,
        "telem",
        4,
        Some(TelemetryConfig {
            interval: 5_000,
            max_events_per_core: 65_536,
        }),
    );

    assert!(serial.all_ok(), "serial sweep failed");
    assert!(parallel.all_ok(), "parallel sweep failed");
    assert!(instrumented.all_ok(), "telemetry sweep failed");
    assert_eq!(serial.cache_hits, 0, "sweep was not cold");
    assert_eq!(parallel.cache_hits, 0, "sweep was not cold");
    assert_eq!(instrumented.cache_hits, 0, "sweep was not cold");
    assert!(
        instrumented.telemetry_written > 0,
        "telemetry sweep wrote no artifacts"
    );

    for ((a, b), c) in serial
        .figures
        .iter()
        .zip(&parallel.figures)
        .zip(&instrumented.figures)
    {
        assert_eq!(a.name, b.name);
        let text1 = a.outcome.as_ref().unwrap();
        let text4 = b.outcome.as_ref().unwrap();
        let text_t = c.outcome.as_ref().unwrap();
        assert_eq!(
            text1.as_bytes(),
            text4.as_bytes(),
            "{}: 1-worker and 4-worker outputs differ",
            a.name
        );
        assert_eq!(
            text1.as_bytes(),
            text_t.as_bytes(),
            "{}: telemetry changed the rendered output",
            a.name
        );

        let (_, golden) = GOLDEN
            .iter()
            .find(|(name, _)| *name == a.name)
            .expect("figure missing from GOLDEN table");
        let actual = fnv1a64(text1.as_bytes());
        assert_eq!(
            actual, *golden,
            "{}: rendered bytes diverged from the pre-rewrite kernel \
             (got hash {actual:#018x})",
            a.name
        );
    }

    let _ = std::fs::remove_dir_all(dir1);
    let _ = std::fs::remove_dir_all(dir4);
    let _ = std::fs::remove_dir_all(dir_t);
}
