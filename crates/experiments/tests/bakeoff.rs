//! Zoo equivalence and bake-off pipeline tests.
//!
//! The equivalence half pins the tentpole's porting guarantee: a paper
//! mechanism hosted in the zoo (via the registry + `LegacyScheme`
//! adapter) simulates *byte-identically* to the same mechanism wired
//! directly as a `PrefetcherKind` — the zoo's shadow attribution observes
//! the pipeline, it never steers it. The bake-off half drives the full
//! artifact → `render_bakeoff` pipeline on tiny windows and checks the
//! table is complete and deterministic.

use ipsim_cache::InstallPolicy;
use ipsim_core::PrefetcherKind;
use ipsim_cpu::WorkloadSet;
use ipsim_experiments::bakeoff::{bakeoff_specs, render_bakeoff, BAKEOFF_PLAN};
use ipsim_experiments::{RunLengths, RunSpec, Summary};
use ipsim_harness::TelemetrySink;
use ipsim_prefetch::ZooPlan;
use ipsim_telemetry::TelemetryConfig;
use ipsim_trace::Workload;
use ipsim_types::SystemConfig;

fn lengths() -> RunLengths {
    RunLengths {
        warm: 5_000,
        measure: 15_000,
    }
}

/// Runs a spec with telemetry, writes its artifact, returns the summary.
fn run_with_artifacts(spec: &RunSpec, sink: &TelemetrySink) -> Summary {
    let mut system = spec.build_system();
    system.enable_telemetry(sink.config().clone());
    let metrics = system.run_workload(&spec.workloads, spec.lengths.warm, spec.lengths.measure);
    let run = system.take_telemetry().expect("telemetry enabled");
    sink.write(spec, &run).expect("artifact write");
    Summary::from_metrics(&metrics)
}

#[test]
fn zoo_hosted_paper_schemes_match_their_direct_engines() {
    // Registry defaults must equal the paper-default kinds for this to be
    // a true port, not a reimplementation drifting apart.
    for (zoo_spec, kind) in [
        ("nl", PrefetcherKind::NextLineTagged),
        ("nnl", PrefetcherKind::NextNLineTagged { n: 4 }),
        ("disc", PrefetcherKind::discontinuity_default()),
    ] {
        for policy in [
            InstallPolicy::InstallBoth,
            InstallPolicy::BypassL2UntilUseful,
        ] {
            let base = RunSpec::new(
                SystemConfig::cmp4(),
                WorkloadSet::homogeneous(Workload::Web),
                lengths(),
            )
            .policy(policy);
            let direct = base.clone().prefetcher(kind).execute();
            let hosted = base
                .clone()
                .zoo(ZooPlan::parse(zoo_spec).unwrap())
                .execute();
            assert_eq!(
                format!("{direct:?}"),
                format!("{hosted:?}"),
                "zoo[{zoo_spec}] vs direct {} under {policy:?} diverged",
                kind.label()
            );
        }
    }
}

#[test]
fn bakeoff_renders_a_complete_deterministic_table() {
    let base = std::env::temp_dir().join(format!("ipsim-bakeoff-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let config = TelemetryConfig {
        interval: 5_000,
        max_events_per_core: 16_384,
    };

    let render_once = |tag: &str| -> String {
        let sink = TelemetrySink::at(base.join(tag), config.clone());
        let specs = bakeoff_specs(lengths());
        let summaries: Vec<Summary> = specs.iter().map(|s| run_with_artifacts(s, &sink)).collect();
        let mut it = summaries.into_iter();
        render_bakeoff(&sink, &specs, move |_| {
            it.next().expect("one summary per spec")
        })
        .expect("bake-off renders")
    };

    let table = render_once("a");
    // Every workload column and every contender scheme appears.
    for workload in ["DB", "TPC-W", "jApp", "Web", "Mixed"] {
        assert!(table.contains(workload), "missing {workload}:\n{table}");
    }
    let schemes: Vec<&str> = BAKEOFF_PLAN.split('+').collect();
    assert!(schemes.len() >= 6, "bake-off must cover ≥6 schemes");
    for scheme in &schemes {
        let rows = table
            .lines()
            .filter(|l| l.split_whitespace().any(|w| w == *scheme))
            .count();
        assert_eq!(rows, 5, "scheme {scheme} missing rows:\n{table}");
    }

    // Re-simulating from scratch reproduces the table byte-for-byte.
    let again = render_once("b");
    assert_eq!(table, again, "bake-off table is not deterministic");

    let _ = std::fs::remove_dir_all(&base);
}
