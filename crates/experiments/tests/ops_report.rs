//! End-to-end contract of `ops_report`: a saved metrics snapshot and a
//! span trace render as tables, `--require` fails on a missing family,
//! and garbage inputs exit 1 rather than panicking.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_ops_report");

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ipsim-ops-report-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small exposition page shaped exactly like the daemon's: a counter
/// family with labels, a gauge, and one histogram.
fn snapshot() -> String {
    let registry = ipsim_obs::Registry::new();
    registry
        .counter("ipsim_serve_requests_total", &[("endpoint", "jobs")])
        .add(7);
    registry.gauge("ipsim_serve_queue_depth", &[]).set(3);
    let hist = registry.histogram("ipsim_serve_request_micros", &[("endpoint", "jobs")]);
    for v in [120, 450, 900, 4_000] {
        hist.observe(v);
    }
    registry.render_prometheus()
}

fn span_trace() -> String {
    let recorder = ipsim_obs::SpanRecorder::new(64);
    {
        let _outer = recorder.span("serve.request");
        let _inner = recorder.span("serve.parse");
    }
    let mut out = Vec::new();
    recorder.write_chrome_trace(&mut out).unwrap();
    String::from_utf8(out).unwrap()
}

#[test]
fn renders_tables_from_metrics_and_spans() {
    let dir = tmp("tables");
    let metrics = dir.join("metrics.prom");
    let spans = dir.join("spans.trace.json");
    std::fs::write(&metrics, snapshot()).unwrap();
    std::fs::write(&spans, span_trace()).unwrap();

    let out = Command::new(BIN)
        .args(["--metrics", metrics.to_str().unwrap()])
        .args(["--spans", spans.to_str().unwrap()])
        .args([
            "--require",
            "ipsim_serve_requests_total,ipsim_serve_request_micros",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("counters and gauges"), "{stdout}");
    assert!(stdout.contains("ipsim_serve_requests_total"), "{stdout}");
    assert!(stdout.contains("endpoint=jobs"), "{stdout}");
    assert!(stdout.contains("== histograms =="), "{stdout}");
    assert!(stdout.contains("== spans =="), "{stdout}");
    assert!(stdout.contains("serve.request"), "{stdout}");
    assert!(stdout.contains("serve.parse"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn require_fails_on_missing_family() {
    let dir = tmp("require");
    let metrics = dir.join("metrics.prom");
    std::fs::write(&metrics, snapshot()).unwrap();
    let out = Command::new(BIN)
        .args(["--metrics", metrics.to_str().unwrap()])
        .args(["--require", "ipsim_serve_requests_total,ipsim_not_a_family"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("ipsim_not_a_family"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn invalid_inputs_fail_cleanly() {
    let dir = tmp("invalid");
    let bad = dir.join("bad.prom");
    let mut file = std::fs::File::create(&bad).unwrap();
    writeln!(file, "this is not exposition format {{{{").unwrap();
    let out = Command::new(BIN)
        .args(["--metrics", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");

    // No inputs at all is a usage error, not a report failure.
    let out = Command::new(BIN).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
