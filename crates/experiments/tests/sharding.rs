//! The sharded sweep's core guarantee: shard count never changes a
//! rendered byte, a cached result, or a stable report.
//!
//! The library-level property runs the full shard protocol (every shard's
//! execution pass, then the merge sweep) for N ∈ {1, 2, 4, 7} and pins
//! the rendered figures to the same golden FNV-1a hashes the worker-count
//! determinism test uses — so sharding is held to the exact bytes of the
//! pre-rewrite kernel, not merely to self-consistency. The process-level
//! test drives the real `all_figures` binary with `--shards`, covering
//! the re-exec path (`--shard-exec` children, shared cache merge) and the
//! warm-rerun manifest skip.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;

use ipsim_experiments::report::{render_report, ReportOptions};
use ipsim_harness::hash::fnv1a64;
use ipsim_harness::shard::ShardSpec;
use ipsim_harness::{run_shard, run_sweep, Figure, ProgressMode, RunLengths, SweepOptions};

/// Same goldens as `tests/determinism.rs`: rendered bytes at
/// warm=10_000 / measure=20_000 must match the pre-rewrite kernel.
const GOLDEN: [(&str, u64); 2] = [
    ("fig02", 0xE0C2_1790_1C1A_F0A1),
    ("fig05", 0x8B34_D941_5818_8E70),
];

const LENGTHS: RunLengths = RunLengths {
    warm: 10_000,
    measure: 20_000,
};

fn test_figures() -> Vec<Figure> {
    let figures: Vec<Figure> = ipsim_experiments::figures::all()
        .into_iter()
        .filter(|f| f.name == "fig02" || f.name == "fig05")
        .collect();
    assert_eq!(figures.len(), 2);
    figures
}

fn opts_at(base: &Path) -> SweepOptions {
    SweepOptions {
        lengths: LENGTHS,
        workers: 2,
        results_dir: None,
        cache_dir: Some(base.join("cache")),
        runlog: Some(base.join("runlog.tsv")),
        trace_dir: Some(base.join("traces")),
        traces: true,
        telemetry: None,
        telemetry_dir: Some(base.join("telemetry")),
        progress: ProgressMode::Silent,
        manifest: None,
        force: false,
    }
}

/// The set of run keys a runlog records (ignoring comments and order).
fn runlog_keys(path: &Path) -> BTreeSet<String> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!("runlog {} unreadable: {e}", path.display());
    });
    text.lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .map(|l| {
            let fields: Vec<&str> = l.split('\t').collect();
            assert_eq!(fields.len(), 15, "not a v5 runlog row: {l}");
            fields[13].to_string()
        })
        .collect()
}

#[test]
fn every_shard_count_reproduces_the_golden_bytes_and_the_stable_report() {
    let figures = test_figures();
    let mut key_sets: Vec<BTreeSet<String>> = Vec::new();
    let mut stable_reports: Vec<String> = Vec::new();

    for count in [1usize, 2, 4, 7] {
        let base =
            std::env::temp_dir().join(format!("ipsim-sharding-{count}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let opts = opts_at(&base);

        // Execution pass: every shard in turn (one process stands in for
        // N — the partition, not the process boundary, is what's under
        // test; the process boundary is covered below).
        let mut assigned = 0;
        let mut misses = 0;
        for index in 0..count {
            let report = run_shard(&figures, &opts, ShardSpec { index, count });
            assert!(!report.interrupted);
            assigned += report.assigned;
            misses += report.cache_misses;
        }
        assert_eq!(assigned, misses as usize, "shards must start cold");

        // Merge pass renders everything from the shared cache.
        let merged = run_sweep(&figures, &opts);
        assert!(merged.all_ok(), "merge sweep failed at {count} shards");
        assert_eq!(
            merged.cache_misses, 0,
            "{count} shards left runs unsimulated"
        );
        assert_eq!(assigned, merged.unique_jobs, "shards must cover the sweep");

        for fig in &merged.figures {
            let (_, golden) = GOLDEN
                .iter()
                .find(|(name, _)| *name == fig.name)
                .expect("figure missing from GOLDEN table");
            let actual = fnv1a64(fig.outcome.as_ref().unwrap().as_bytes());
            assert_eq!(
                actual, *golden,
                "{} at {count} shards diverged (got hash {actual:#018x})",
                fig.name
            );
        }

        key_sets.push(runlog_keys(&opts.runlog.clone().unwrap()));
        let report_opts = ReportOptions {
            runlog: opts.runlog.clone().unwrap(),
            cache_dir: opts.cache_dir.clone().unwrap(),
            telemetry_dir: opts.telemetry_dir.clone().unwrap(),
            stable: true,
        };
        stable_reports.push(render_report(&report_opts).unwrap());

        let _ = std::fs::remove_dir_all(&base);
    }

    // The merged runlog records the same run set at every shard count...
    for (i, keys) in key_sets.iter().enumerate().skip(1) {
        assert_eq!(
            keys, &key_sets[0],
            "runlog key set differs between shard counts (index {i})"
        );
    }
    // ...and the stable report is byte-identical.
    for (i, report) in stable_reports.iter().enumerate().skip(1) {
        assert_eq!(
            report, &stable_reports[0],
            "stable sweep report differs between shard counts (index {i})"
        );
    }
}

/// Runs the real binary in `dir` with extra args, isolated via env vars.
fn all_figures_in(dir: &Path, args: &[&str]) -> std::process::Output {
    std::fs::create_dir_all(dir).unwrap();
    Command::new(env!("CARGO_BIN_EXE_all_figures"))
        .args(args)
        .current_dir(dir)
        .env("IPSIM_RUN_LENGTHS", "10000/20000")
        .env("IPSIM_CACHE_DIR", dir.join("cache"))
        .env("IPSIM_RUNLOG", dir.join("runlog.tsv"))
        .env("IPSIM_TRACE_DIR", dir.join("traces"))
        .output()
        .expect("all_figures did not run")
}

#[test]
fn the_binary_shards_across_processes_and_skips_on_the_warm_rerun() {
    let root = std::env::temp_dir().join(format!("ipsim-sharding-bin-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let common = ["--figures", "fig02", "--jobs", "1"];
    let solo_dir = root.join("solo");
    let solo = all_figures_in(&solo_dir, &common);
    assert!(
        solo.status.success(),
        "--shards 1 run failed:\n{}",
        String::from_utf8_lossy(&solo.stderr)
    );

    let sharded_dir = root.join("sharded");
    let sharded = all_figures_in(&sharded_dir, &[&common[..], &["--shards", "2"]].concat());
    assert!(
        sharded.status.success(),
        "--shards 2 run failed:\n{}",
        String::from_utf8_lossy(&sharded.stderr)
    );

    // The figure on disk is byte-identical and matches the golden hash.
    let solo_fig = std::fs::read(solo_dir.join("results/fig02.txt")).unwrap();
    let sharded_fig = std::fs::read(sharded_dir.join("results/fig02.txt")).unwrap();
    assert_eq!(solo_fig, sharded_fig, "shard count changed rendered bytes");
    assert_eq!(fnv1a64(&sharded_fig), GOLDEN[0].1, "fig02 diverged");

    // Both processes logged the same run set; the sharded log carries
    // shard batch markers (the child really executed).
    assert_eq!(
        runlog_keys(&solo_dir.join("runlog.tsv")),
        runlog_keys(&sharded_dir.join("runlog.tsv")),
    );
    let sharded_log = std::fs::read_to_string(sharded_dir.join("runlog.tsv")).unwrap();
    assert!(
        sharded_log.lines().any(|l| l.starts_with("# batch shard ")),
        "no shard batch markers in:\n{sharded_log}"
    );

    // Warm re-run: the manifest proves the output current; nothing renders.
    let warm = all_figures_in(&sharded_dir, &[&common[..], &["--shards", "2"]].concat());
    assert!(warm.status.success());
    let stdout = String::from_utf8_lossy(&warm.stdout);
    assert!(
        stdout.contains("(0 rendered, 1 unchanged)"),
        "warm rerun rendered figures:\n{stdout}"
    );
    assert_eq!(
        std::fs::read(sharded_dir.join("results/fig02.txt")).unwrap(),
        sharded_fig,
        "warm rerun changed the output file"
    );

    // `sweep_report --stable` over either directory produces the same bytes.
    let report = |dir: &PathBuf| {
        let opts = ReportOptions {
            runlog: dir.join("runlog.tsv"),
            cache_dir: dir.join("cache"),
            telemetry_dir: dir.join("telemetry"),
            stable: true,
        };
        render_report(&opts).unwrap()
    };
    assert_eq!(report(&solo_dir), report(&sharded_dir));

    let _ = std::fs::remove_dir_all(&root);
}
