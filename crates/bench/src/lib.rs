//! Criterion micro-benchmarks live in `benches/`; this library is empty.
