//! Machine-readable kernel-throughput snapshot: `BENCH_sim_kernel.json`.
//!
//! The criterion benches in `benches/` are for interactive exploration;
//! their shimmed runner prints text and keeps no history. This tool runs
//! the same workloads with hand-rolled min-of-N timing and writes one JSON
//! file so the simulator's perf trajectory is diffable and CI-checkable:
//!
//! ```text
//! cargo run --release -p ipsim-bench --bin bench_snapshot            # regenerate
//! cargo run --release -p ipsim-bench --bin bench_snapshot -- --check # compare
//! ```
//!
//! `--check` re-measures and fails (exit 1) when any `system/*` bench is
//! more than `IPSIM_BENCH_TOLERANCE` percent (default 10) slower than the
//! committed snapshot. The snapshot path defaults to
//! `BENCH_sim_kernel.json` and can be redirected with `--out PATH` or the
//! `IPSIM_BENCH_BASELINE` environment variable (`--out` wins) — useful
//! for comparing against an alternate baseline without moving files. The min-of-N estimator is deliberate: minima track
//! the code's floor and are far less sensitive to scheduler noise than
//! means, which is what a regression gate needs. A `"baseline"` block in
//! the JSON (pre-optimisation reference numbers, written by hand once) is
//! preserved verbatim across regenerations.

use std::fmt::Write as _;
use std::time::Instant;

use ipsim_cache::{FillKind, InstallPolicy, SetAssocCache};
use ipsim_core::PrefetcherKind;
use ipsim_cpu::{OpSource, SystemBuilder};
use ipsim_stream::{ArenaSource, TraceSource};
use ipsim_trace::{TraceWalker, Workload};
use ipsim_types::{Addr, CacheConfig, LineAddr, OpKind, Rng64, TraceOp};

/// Default snapshot path, relative to the workspace root (the tool is run
/// via `cargo run`, whose working directory is the workspace root).
/// Overridable with `--out PATH` or the `IPSIM_BENCH_BASELINE` environment
/// variable (`--out` wins); `--check` compares against the same path.
const DEFAULT_PATH: &str = "BENCH_sim_kernel.json";

/// Environment override for the snapshot path.
const BASELINE_ENV: &str = "IPSIM_BENCH_BASELINE";

/// Instructions per sample for the system benches (matches
/// `benches/system_throughput.rs`).
const INSTRS: u64 = 100_000;

/// Operations per sample for the cache micro-benches.
const CACHE_OPS: u64 = 1_000_000;

/// Instructions per sample for the straight-line fast-path bench: ten
/// replays of a 100k-op buffer, so first-touch misses on the 256-line
/// footprint vanish into the noise. The buffer is kept host-L2-resident
/// (like the kernel-only bench's) so the sample times the simulation
/// kernel, not host-memory streaming of the op buffer.
const STRAIGHT_INSTRS: u64 = 1_000_000;

/// Ops in the straight-line buffer; one sample replays it
/// `STRAIGHT_INSTRS / STRAIGHT_BUF` times.
const STRAIGHT_BUF: u64 = 100_000;

/// A straight-line instruction stream walking a 16 KiB (256-line) code
/// footprint and wrapping: after first touch everything is L1I-resident,
/// so the line-granular fast path covers 15 of every 16 instructions.
fn straightline_ops(n: u64) -> Vec<TraceOp> {
    let span = 256 * 64;
    (0..n)
        .map(|i| TraceOp {
            pc: Addr(0x0040_0000 + (i * 4) % span),
            kind: OpKind::Other,
        })
        .collect()
}

/// Default allowed slowdown for `--check`, percent.
const DEFAULT_TOLERANCE_PCT: f64 = 10.0;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let quick = args.iter().any(|a| a == "--quick");
    let path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .or_else(|| std::env::var(BASELINE_ENV).ok().filter(|v| !v.is_empty()))
        .unwrap_or_else(|| DEFAULT_PATH.to_string());

    let reps = std::env::var("IPSIM_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 5 } else { 9 });

    eprintln!("bench_snapshot: {reps} samples per bench (min-of-N)...");
    let results = run_all(reps);
    for r in &results {
        eprintln!(
            "  {:<38} {:>9.3} ms  {:>7.1} ns/op",
            r.name,
            r.min_ms,
            r.ns_per_op()
        );
    }

    if check {
        std::process::exit(check_against(&path, &results));
    }
    let baseline = std::fs::read_to_string(&path)
        .ok()
        .and_then(|old| extract_baseline_block(&old));
    std::fs::write(&path, render(&results, baseline.as_deref())).expect("write snapshot");
    eprintln!("bench_snapshot: wrote {path}");
}

/// One measured bench: the minimum over N samples.
struct BenchResult {
    name: &'static str,
    ops: u64,
    min_ms: f64,
}

impl BenchResult {
    fn ns_per_op(&self) -> f64 {
        self.min_ms * 1e6 / self.ops as f64
    }
}

/// Times `body` (one full sample per call) `reps` times after two warm-up
/// calls; returns the minimum in milliseconds.
fn min_of<F: FnMut()>(reps: u32, mut body: F) -> f64 {
    for _ in 0..2 {
        body();
    }
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        body();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Serves a pre-generated op buffer, cycling — isolates the simulation
/// kernel from walker generation cost (mirrors the criterion bench).
struct SliceSource<'a> {
    ops: &'a [TraceOp],
    pos: usize,
}

impl OpSource for SliceSource<'_> {
    fn next_op(&mut self) -> TraceOp {
        let op = self.ops[self.pos];
        self.pos = (self.pos + 1) % self.ops.len();
        op
    }

    fn next_block(&mut self, out: &mut [TraceOp]) {
        for slot in out {
            *slot = self.ops[self.pos];
            self.pos += 1;
            if self.pos == self.ops.len() {
                self.pos = 0;
            }
        }
    }
}

fn run_all(reps: u32) -> Vec<BenchResult> {
    let prog = Workload::Web.build_program(1);
    let profile = Workload::Web.profile();
    let mut results = Vec::new();

    results.push(BenchResult {
        name: "system/single_core_baseline_100k",
        ops: INSTRS,
        min_ms: min_of(reps, || {
            let mut system = SystemBuilder::single_core().build().unwrap();
            let mut walker = TraceWalker::new(&prog, profile.clone(), 0, 5);
            let mut sources: Vec<&mut dyn OpSource> = vec![&mut walker];
            system.run(&mut sources, INSTRS);
            assert!(system.metrics().instructions() == INSTRS);
        }),
    });

    let mut walker = TraceWalker::new(&prog, profile.clone(), 0, 5);
    let ops: Vec<TraceOp> = (0..INSTRS)
        .map(|_| TraceSource::next_op(&mut walker))
        .collect();
    results.push(BenchResult {
        name: "system/single_core_kernel_only_100k",
        ops: INSTRS,
        min_ms: min_of(reps, || {
            let mut system = SystemBuilder::single_core().build().unwrap();
            let mut source = SliceSource { ops: &ops, pos: 0 };
            let mut sources: Vec<&mut dyn OpSource> = vec![&mut source];
            system.run(&mut sources, INSTRS);
            assert!(system.metrics().instructions() == INSTRS);
        }),
    });

    // Zero-copy replay of the same kernel-only stream: `System::run` pulls
    // borrowed slices straight from the arena instead of copying blocks
    // into a staging buffer — what the harness's arena replay path sees on
    // a realistic instruction mix.
    results.push(BenchResult {
        name: "system/single_core_arena_replay_100k",
        ops: INSTRS,
        min_ms: min_of(reps, || {
            let mut system = SystemBuilder::single_core().build().unwrap();
            let mut source = ArenaSource::new(ops.as_slice());
            let mut sources: Vec<&mut dyn OpSource> = vec![&mut source];
            system.run(&mut sources, INSTRS);
            assert!(system.metrics().instructions() == INSTRS);
        }),
    });

    // Straight-line fetch in an L1I-resident footprint, served zero-copy:
    // the line-granular fast path's best case (one tag probe per line,
    // fifteen O(1) advances). This is the bench the fast-path win is
    // gated on. The scheduler quantum is opened to its maximum — exact
    // for a single core (no interleaving to perturb) and the intended
    // configuration for batch replays of decoded arenas.
    let straight = straightline_ops(STRAIGHT_BUF);
    results.push(BenchResult {
        name: "system/single_core_straightline_1m",
        ops: STRAIGHT_INSTRS,
        min_ms: min_of(reps, || {
            let mut config = ipsim_types::SystemConfig::single_core();
            config.sched_quantum = ipsim_types::config::MAX_SCHED_QUANTUM;
            let mut system = SystemBuilder::new(config).build().unwrap();
            for _ in 0..STRAIGHT_INSTRS / STRAIGHT_BUF {
                let mut source = ArenaSource::new(straight.as_slice());
                let mut sources: Vec<&mut dyn OpSource> = vec![&mut source];
                system.run(&mut sources, STRAIGHT_BUF);
            }
            assert!(system.metrics().instructions() == STRAIGHT_INSTRS);
        }),
    });

    // The baseline run with telemetry armed: guards the "no regression
    // with telemetry on" half of the fast-path contract (the fast path
    // must not fire-and-miss sampler boundaries, and the telemetry guard
    // checks must stay off the hot path).
    results.push(BenchResult {
        name: "system/single_core_telemetry_100k",
        ops: INSTRS,
        min_ms: min_of(reps, || {
            let mut system = SystemBuilder::single_core().build().unwrap();
            system.enable_telemetry(ipsim_telemetry::TelemetryConfig {
                interval: 10_000,
                max_events_per_core: 4_096,
            });
            let mut walker = TraceWalker::new(&prog, profile.clone(), 0, 5);
            let mut sources: Vec<&mut dyn OpSource> = vec![&mut walker];
            system.run(&mut sources, INSTRS);
            assert!(system.metrics().instructions() == INSTRS);
        }),
    });

    // The baseline run with live [`ipsim_obs`] hooks at far above harness
    // density: a counter/gauge/histogram/span bundle every 1 000
    // instructions (the harness fires a handful per run). The gap to
    // `single_core_baseline_100k` bounds what operational metrics cost
    // when enabled; `tests/obs_overhead.rs` guards the disabled path.
    results.push(BenchResult {
        name: "system/single_core_obs_100k",
        ops: INSTRS,
        min_ms: min_of(reps, || {
            let m = ipsim_obs::metrics();
            let counter = m.counter("ipsim_bench_snapshot_obs_total", &[]);
            let hist = m.histogram("ipsim_bench_snapshot_obs_micros", &[]);
            let spans = ipsim_obs::spans();
            let mut system = SystemBuilder::single_core().build().unwrap();
            let mut walker = TraceWalker::new(&prog, profile.clone(), 0, 5);
            for i in 0..INSTRS / 1_000 {
                let _span = spans.span("bench.obs");
                let mut sources: Vec<&mut dyn OpSource> = vec![&mut walker];
                system.run(&mut sources, 1_000);
                counter.inc();
                hist.observe(i);
            }
            assert!(system.metrics().instructions() == INSTRS);
        }),
    });

    results.push(BenchResult {
        name: "system/single_core_discontinuity_100k",
        ops: INSTRS,
        min_ms: min_of(reps, || {
            let mut system = SystemBuilder::single_core()
                .prefetcher(PrefetcherKind::discontinuity_default())
                .install_policy(InstallPolicy::BypassL2UntilUseful)
                .build()
                .unwrap();
            let mut walker = TraceWalker::new(&prog, profile.clone(), 0, 5);
            let mut sources: Vec<&mut dyn OpSource> = vec![&mut walker];
            system.run(&mut sources, INSTRS);
            assert!(system.metrics().instructions() == INSTRS);
        }),
    });

    // Same scheme as `single_core_discontinuity_100k` but hosted in a
    // zoo of one: the gap between the two entries is the cost of the
    // trait indirection plus shadow attribution.
    let zoo_plan = ipsim_prefetch::ZooPlan::parse("disc").unwrap();
    results.push(BenchResult {
        name: "system/single_core_zoo_disc_100k",
        ops: INSTRS,
        min_ms: min_of(reps, || {
            let mut system = SystemBuilder::single_core()
                .zoo(zoo_plan.clone())
                .install_policy(InstallPolicy::BypassL2UntilUseful)
                .build()
                .unwrap();
            let mut walker = TraceWalker::new(&prog, profile.clone(), 0, 5);
            let mut sources: Vec<&mut dyn OpSource> = vec![&mut walker];
            system.run(&mut sources, INSTRS);
            assert!(system.metrics().instructions() == INSTRS);
        }),
    });

    results.push(BenchResult {
        name: "system/cmp4_baseline_100k_per_core",
        ops: INSTRS,
        min_ms: min_of(reps, || {
            let mut system = SystemBuilder::cmp4().build().unwrap();
            let mut walkers: Vec<TraceWalker<'_>> = (0..4)
                .map(|i| TraceWalker::new(&prog, profile.clone(), i, 5))
                .collect();
            let mut sources: Vec<&mut dyn OpSource> =
                walkers.iter_mut().map(|w| w as &mut dyn OpSource).collect();
            system.run(&mut sources, INSTRS / 4);
        }),
    });

    let mut hit_cache = SetAssocCache::new(CacheConfig::default_l1());
    for l in 0..512u64 {
        hit_cache.fill(LineAddr(l), FillKind::Demand);
    }
    results.push(BenchResult {
        name: "cache/hit_path_1m",
        ops: CACHE_OPS,
        min_ms: min_of(reps, || {
            let mut sum = 0u64;
            for i in 0..CACHE_OPS {
                sum += u64::from(hit_cache.access(LineAddr(i % 512)).is_hit());
            }
            assert!(sum == CACHE_OPS);
        }),
    });

    results.push(BenchResult {
        name: "cache/miss_and_fill_1m",
        ops: CACHE_OPS,
        min_ms: min_of(reps, || {
            let mut cache = SetAssocCache::new(CacheConfig::default_l1());
            let mut rng = Rng64::new(1);
            for _ in 0..CACHE_OPS {
                let line = LineAddr(rng.next_u64() & 0xFFFF);
                if !cache.access(line).is_hit() {
                    cache.fill(line, FillKind::Demand);
                }
            }
        }),
    });

    results
}

/// Renders the snapshot JSON. `baseline` is the raw `"baseline": {...}`
/// block from a previous snapshot, carried forward verbatim.
fn render(results: &[BenchResult], baseline: Option<&str>) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"ipsim-bench-snapshot v1\",\n");
    out.push_str(
        "  \"note\": \"min-of-N hand-timed samples; regenerate with \
         `cargo run --release -p ipsim-bench --bin bench_snapshot` on a quiet machine; \
         `--check` gates system/* at IPSIM_BENCH_TOLERANCE (default 10%)\",\n",
    );
    out.push_str("  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"ops\": {}, \"min_ms\": {:.3}, \"ns_per_op\": {:.1}}}{}",
            r.name,
            r.ops,
            r.min_ms,
            r.ns_per_op(),
            if i + 1 == results.len() { "" } else { "," },
        );
    }
    out.push_str("  ]");
    if let Some(block) = baseline {
        out.push_str(",\n  \"baseline\": ");
        out.push_str(block);
    }
    out.push_str("\n}\n");
    out
}

/// Extracts the raw `"baseline"` object from a snapshot this tool wrote
/// (stable formatting: the block runs to the first line that is exactly
/// `  }`). Returns `None` when the file has no baseline block.
fn extract_baseline_block(json: &str) -> Option<String> {
    let start = json.find("\"baseline\": ")? + "\"baseline\": ".len();
    let rest = &json[start..];
    let end = rest.find("\n  }")? + "\n  }".len();
    Some(rest[..end].to_string())
}

/// Pulls `(name, min_ms)` pairs out of a snapshot's `"benches"` array.
fn extract_benches(json: &str) -> Vec<(String, f64)> {
    let Some(start) = json.find("\"benches\": [") else {
        return Vec::new();
    };
    let body = &json[start..];
    let body = &body[..body.find(']').unwrap_or(body.len())];
    let mut out = Vec::new();
    for line in body.lines() {
        let Some(name) = field_str(line, "\"name\": \"") else {
            continue;
        };
        let Some(min_ms) = field_num(line, "\"min_ms\": ") else {
            continue;
        };
        out.push((name, min_ms));
    }
    out
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let rest = &line[line.find(key)? + key.len()..];
    Some(rest[..rest.find('"')?].to_string())
}

fn field_num(line: &str, key: &str) -> Option<f64> {
    let rest = &line[line.find(key)? + key.len()..];
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Pulls the top-level `"commit"` and `"method"` strings out of a
/// snapshot's baseline block, if it has one. The block nests follow-up
/// PR sub-blocks with their own commit/method, but those come later in
/// the text, so the first occurrence of each key is the top-level pair.
fn baseline_provenance(json: &str) -> Option<(String, String)> {
    let block = extract_baseline_block(json)?;
    let commit = field_str(&block, "\"commit\": \"")?;
    let method = field_str(&block, "\"method\": \"")?;
    Some((commit, method))
}

/// Compares fresh `results` against the committed snapshot at `path`.
/// Returns the process exit code: 0 on pass, 1 on regression or a missing
/// / unreadable snapshot. A regressed bench prints the band it had to
/// land in, and the failure footer names where the committed numbers
/// came from (baseline commit + measurement method) so the reader can
/// judge whether the comparison is even meaningful on this machine.
fn check_against(path: &str, results: &[BenchResult]) -> i32 {
    let tolerance_pct = std::env::var("IPSIM_BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_TOLERANCE_PCT);
    let Ok(committed_text) = std::fs::read_to_string(path) else {
        eprintln!("bench_snapshot: no committed snapshot at {path}");
        return 1;
    };
    let committed = extract_benches(&committed_text);
    if committed.is_empty() {
        eprintln!("bench_snapshot: {path} has no readable benches");
        return 1;
    }
    let mut failed = false;
    for r in results.iter().filter(|r| r.name.starts_with("system/")) {
        let Some((_, committed_ms)) = committed.iter().find(|(n, _)| n == r.name) else {
            eprintln!("  {:<38} not in committed snapshot (new bench?)", r.name);
            continue;
        };
        let allowed_ms = committed_ms * (1.0 + tolerance_pct / 100.0);
        let delta_pct = (r.min_ms / committed_ms - 1.0) * 100.0;
        if delta_pct > tolerance_pct {
            failed = true;
            eprintln!(
                "  {:<38} committed {:>8.3} ms, now {:>8.3} ms ({:+.1}%) REGRESSED \
                 [band: <= {:.3} ms at {}% tolerance]",
                r.name, committed_ms, r.min_ms, delta_pct, allowed_ms, tolerance_pct,
            );
        } else {
            eprintln!(
                "  {:<38} committed {:>8.3} ms, now {:>8.3} ms ({:+.1}%) ok",
                r.name, committed_ms, r.min_ms, delta_pct,
            );
        }
    }
    if failed {
        eprintln!(
            "bench_snapshot: system_throughput regressed more than {tolerance_pct}% \
             vs {path} (set IPSIM_BENCH_TOLERANCE to widen on noisy machines)"
        );
        match baseline_provenance(&committed_text) {
            Some((commit, method)) => {
                eprintln!("  committed numbers: snapshot at {path}, baseline commit {commit}");
                eprintln!("  baseline method: {method}");
            }
            None => {
                eprintln!("  committed numbers: snapshot at {path} (no baseline provenance block)")
            }
        }
        1
    } else {
        0
    }
}
