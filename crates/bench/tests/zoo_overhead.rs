//! Guard: hosting a paper scheme in the prefetcher zoo must cost (almost)
//! nothing over wiring the same scheme directly into the core.
//!
//! The A side runs the flagship discontinuity prefetcher on the direct
//! `PrefetcherKind` path. The B side runs the *same engine* inside a zoo
//! of one — through the `Prefetcher` trait object, the scheme-tagged
//! request sink, and the shadow-attribution table with the lifecycle
//! hooks enabled. If B stays within `IPSIM_ZOO_OVERHEAD_PCT` percent
//! (default 3) of A, the trait indirection is paid for.
//!
//! The methodology is the one proven out by `telemetry_overhead.rs`:
//! interleaved A/B samples over identical instruction streams, estimated
//! by the floor over adjacent pairs of the B/A ratio — machine-wide noise
//! hits both halves of a pair and cancels, while a genuine indirection
//! regression shifts every pair. Rounds repeat (up to 4×) until the bound
//! holds; widen with the environment variable on noisy machines.

use std::time::Instant;

use ipsim_cache::InstallPolicy;
use ipsim_core::PrefetcherKind;
use ipsim_cpu::{OpSource, System, SystemBuilder};
use ipsim_prefetch::ZooPlan;
use ipsim_trace::{TraceWalker, Workload};

/// Instructions per sample (matches `telemetry_overhead.rs`: ~30 ms
/// samples keep timer jitter well under the effect being measured).
const INSTRS: u64 = 400_000;

fn build_system(zoo: bool) -> System {
    let builder = SystemBuilder::single_core().install_policy(InstallPolicy::BypassL2UntilUseful);
    let builder = if zoo {
        // The registry's `disc` defaults are the paper defaults, so both
        // sides run an identical prefetch schedule (pinned by the
        // `zoo_hosted_paper_schemes_match_their_direct_engines` test).
        builder.zoo(ZooPlan::parse("disc").unwrap())
    } else {
        builder.prefetcher(PrefetcherKind::discontinuity_default())
    };
    builder.build().unwrap()
}

/// One timed sample: a fresh system and a fresh (identically seeded)
/// walker, so both sides simulate the same instruction stream.
fn sample(prog: &ipsim_trace::Program, zoo: bool) -> f64 {
    let mut system = build_system(zoo);
    let mut walker = TraceWalker::new(prog, Workload::Web.profile(), 0, 5);
    let mut sources: Vec<&mut dyn OpSource> = vec![&mut walker];
    let t0 = Instant::now();
    system.run(&mut sources, INSTRS);
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(system.metrics().instructions(), INSTRS);
    if zoo {
        assert!(
            system
                .zoo_scheme_stats()
                .iter()
                .any(|(_, _, c)| c.issued > 0),
            "the B side must actually exercise the zoo path"
        );
    }
    wall
}

#[test]
fn zoo_indirection_overhead_is_bounded() {
    let max_pct: f64 = std::env::var("IPSIM_ZOO_OVERHEAD_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);
    let reps: u32 = std::env::var("IPSIM_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(9);

    let prog = Workload::Web.build_program(1);
    // Warm-up: page in both paths before any timed sample.
    sample(&prog, false);
    sample(&prog, true);

    let (mut direct, mut zoo) = (f64::INFINITY, f64::INFINITY);
    let mut ratio = f64::INFINITY;
    let mut overhead_pct = f64::INFINITY;
    for round in 0..4 {
        for _ in 0..reps {
            let direct_sample = sample(&prog, false);
            let zoo_sample = sample(&prog, true);
            direct = direct.min(direct_sample);
            zoo = zoo.min(zoo_sample);
            ratio = ratio.min(zoo_sample / direct_sample);
        }
        overhead_pct = (ratio - 1.0) * 100.0;
        eprintln!(
            "zoo indirection overhead (round {round}): direct floor {:.3} ms, zoo floor \
             {:.3} ms, paired floor {overhead_pct:+.2}%, bound {max_pct}%",
            direct * 1e3,
            zoo * 1e3,
        );
        if overhead_pct <= max_pct {
            break;
        }
    }
    assert!(
        overhead_pct <= max_pct,
        "zoo hosting costs {overhead_pct:.2}% over the direct engine (> {max_pct}%); \
         widen with IPSIM_ZOO_OVERHEAD_PCT on noisy machines"
    );
}
