//! Guard: disabled [`ipsim_obs`] hooks must be (almost) free.
//!
//! Harness and serve call counters, gauges, histograms and spans on their
//! operational paths. With `ipsim_obs::set_enabled(false)` every such
//! call must collapse to a single relaxed atomic load — nobody should pay
//! for observability they turned off. This guard bounds that cost from
//! far above the real call density: the B side interleaves a full hook
//! bundle (counter inc, gauge add, histogram observe, span open/close)
//! into the simulation every 1 000 instructions — hundreds of bundles per
//! sample, where the harness fires a handful per *run* — so a regression
//! in the disabled path (say, a registry lock sneaking onto the hot side
//! of the flag check) is amplified well past the bound.
//!
//! Methodology mirrors `telemetry_overhead.rs`: interleaved A/B samples
//! over identical instruction streams, estimator is the floor over
//! adjacent pairs of the with/without ratio (machine-wide noise hits both
//! halves of a pair and cancels), rounds repeat until the bound holds.
//! Widen with `IPSIM_OBS_OVERHEAD_PCT` (default 3) on noisy machines.
//!
//! This test owns its process (integration-test binary) because it flips
//! the process-global enabled flag; it must not share a process with
//! enabled-path tests.

use std::time::Instant;

use ipsim_cpu::{OpSource, SystemBuilder};
use ipsim_trace::{TraceWalker, Workload};

/// Instructions per timed sample (~tens of ms: jitter well under the
/// few-percent effect being measured).
const INSTRS: u64 = 400_000;

/// Instructions between hook bundles on the B side.
const CHUNK: u64 = 1_000;

/// One timed sample. Both sides run the kernel in [`CHUNK`]-sized slices
/// so the slicing overhead is common-mode; only the B side additionally
/// fires the disabled hook bundle between slices.
fn sample(prog: &ipsim_trace::Program, hooks: bool) -> f64 {
    let m = ipsim_obs::metrics();
    let counter = m.counter("ipsim_bench_obs_guard_total", &[]);
    let gauge = m.gauge("ipsim_bench_obs_guard_depth", &[]);
    let hist = m.histogram("ipsim_bench_obs_guard_micros", &[]);
    let spans = ipsim_obs::spans();

    let mut system = SystemBuilder::single_core().build().unwrap();
    let mut walker = TraceWalker::new(prog, Workload::Web.profile(), 0, 5);
    let t0 = Instant::now();
    for i in 0..INSTRS / CHUNK {
        {
            let mut sources: Vec<&mut dyn OpSource> = vec![&mut walker];
            system.run(&mut sources, CHUNK);
        }
        if hooks {
            let _span = spans.span("bench.obs_guard");
            counter.inc();
            gauge.add(1);
            hist.observe(i);
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(system.metrics().instructions(), INSTRS);
    wall
}

#[test]
fn disabled_obs_overhead_is_bounded() {
    let max_pct: f64 = std::env::var("IPSIM_OBS_OVERHEAD_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);
    let reps: u32 = std::env::var("IPSIM_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(9);

    ipsim_obs::set_enabled(false);
    let prog = Workload::Web.build_program(1);
    // Warm-up: page in both paths (and register the guard families)
    // before any timed sample.
    sample(&prog, false);
    sample(&prog, true);
    // The hooks must be live code taking the disabled path, not
    // optimised-out: nothing may have been recorded.
    assert_eq!(
        ipsim_obs::metrics()
            .counter("ipsim_bench_obs_guard_total", &[])
            .get(),
        0,
        "disabled counters must not advance"
    );
    assert_eq!(
        ipsim_obs::spans().completed().len(),
        0,
        "disabled spans must not record"
    );

    let mut ratio = f64::INFINITY;
    let (mut off, mut on) = (f64::INFINITY, f64::INFINITY);
    let mut overhead_pct = f64::INFINITY;
    for round in 0..4 {
        for _ in 0..reps {
            let off_sample = sample(&prog, false);
            let on_sample = sample(&prog, true);
            off = off.min(off_sample);
            on = on.min(on_sample);
            ratio = ratio.min(on_sample / off_sample);
        }
        overhead_pct = (ratio - 1.0) * 100.0;
        eprintln!(
            "disabled obs hook overhead (round {round}): plain floor {:.3} ms, hooks floor \
             {:.3} ms, paired floor {overhead_pct:+.2}%, bound {max_pct}%",
            off * 1e3,
            on * 1e3,
        );
        if overhead_pct <= max_pct {
            break;
        }
    }
    assert!(
        overhead_pct <= max_pct,
        "disabled obs hooks cost {overhead_pct:.2}% (> {max_pct}%) at 100x+ real call \
         density — widen with IPSIM_OBS_OVERHEAD_PCT on noisy machines"
    );
}
