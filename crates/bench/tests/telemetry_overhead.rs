//! Guard: the telemetry hooks must be (almost) free when telemetry is
//! disabled.
//!
//! Every hook in the simulation kernel is one never-taken `Option` branch
//! while telemetry is off. A disabled run and a run on a hypothetical
//! hook-free build cannot be distinguished at runtime, so the guard bounds
//! the disabled cost from above: the B side enables telemetry with a
//! zero-size event buffer (`max_events_per_core: 0`) and an unreachable
//! sampling interval, which makes every hook *taken* — branch, call, and
//! exact counter bump — but skips the buffering that full telemetry pays
//! for. The disabled path executes a strict subset of that work (the
//! branch alone, not taken), so if B is within
//! `IPSIM_TELEMETRY_OVERHEAD_PCT` percent (default 3) of the disabled A
//! side, the disabled overhead is under the bound a fortiori.
//!
//! The measurement uses the flagship configuration (discontinuity
//! prefetcher — the noisiest event source) and interleaves A/B samples so
//! both sides see the same machine conditions (frequency scaling,
//! background load). The estimator is the floor over adjacent pairs of
//! the on/off ratio: machine-wide slowdowns hit both halves of a pair and
//! cancel, while a genuine hook regression shifts every pair. Rounds
//! repeat (up to 4×) until the bound holds — more samples only improve
//! the floor. On a pathologically noisy machine widen the bound via the
//! environment (e.g. `IPSIM_TELEMETRY_OVERHEAD_PCT=25`), mirroring
//! `IPSIM_BENCH_TOLERANCE` for the snapshot gate.

use std::time::Instant;

use ipsim_cache::InstallPolicy;
use ipsim_core::PrefetcherKind;
use ipsim_cpu::{OpSource, System, SystemBuilder};
use ipsim_telemetry::TelemetryConfig;
use ipsim_trace::{TraceWalker, Workload};

/// Instructions per sample. Larger than the `system_throughput` bench's
/// window: a ~30 ms sample keeps timer and scheduler jitter well under
/// the few-percent effect being measured.
const INSTRS: u64 = 400_000;

fn build_system(telemetry: bool) -> System {
    let mut system = SystemBuilder::single_core()
        .prefetcher(PrefetcherKind::discontinuity_default())
        .install_policy(InstallPolicy::BypassL2UntilUseful)
        .build()
        .unwrap();
    if telemetry {
        // Hooks on, buffering off: every event takes the branch and bumps
        // its exact counter, nothing is stored, and the sampler never
        // fires. This is a strict superset of the disabled path's work.
        system.enable_telemetry(TelemetryConfig {
            interval: u64::MAX,
            max_events_per_core: 0,
        });
    }
    system
}

/// One timed sample: a fresh system and a fresh (identically seeded)
/// walker, so both sides simulate the same instruction stream.
fn sample(prog: &ipsim_trace::Program, telemetry: bool) -> f64 {
    let mut system = build_system(telemetry);
    let mut walker = TraceWalker::new(prog, Workload::Web.profile(), 0, 5);
    let mut sources: Vec<&mut dyn OpSource> = vec![&mut walker];
    let t0 = Instant::now();
    system.run(&mut sources, INSTRS);
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(system.metrics().instructions(), INSTRS);
    if telemetry {
        let run = system.take_telemetry().expect("telemetry was enabled");
        assert!(
            run.cores[0].dropped > 1_000,
            "the B side must actually exercise the hooks \
             ({} events seen)",
            run.cores[0].dropped
        );
    }
    wall
}

#[test]
fn disabled_telemetry_overhead_is_bounded() {
    let max_pct: f64 = std::env::var("IPSIM_TELEMETRY_OVERHEAD_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);
    let reps: u32 = std::env::var("IPSIM_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(9);

    let prog = Workload::Web.build_program(1);
    // Warm-up: page in both paths before any timed sample.
    sample(&prog, false);
    sample(&prog, true);

    // Machine-wide noise (frequency scaling, a co-tenant waking up) slows
    // both sides together, so the estimator is the min over *adjacent
    // pairs* of the on/off ratio: within a pair the machine conditions are
    // shared and cancel, and one pair landing in a quiet window suffices.
    // A genuine hook regression shifts every pair's ratio, so the floor
    // still catches it. Extra rounds only improve the floor; stop as soon
    // as the bound holds.
    let (mut off, mut on) = (f64::INFINITY, f64::INFINITY);
    let mut ratio = f64::INFINITY;
    let mut overhead_pct = f64::INFINITY;
    for round in 0..4 {
        for _ in 0..reps {
            let off_sample = sample(&prog, false);
            let on_sample = sample(&prog, true);
            off = off.min(off_sample);
            on = on.min(on_sample);
            ratio = ratio.min(on_sample / off_sample);
        }
        overhead_pct = (ratio - 1.0) * 100.0;
        eprintln!(
            "telemetry hook overhead (round {round}): off floor {:.3} ms, hooks-on floor \
             {:.3} ms, paired floor {overhead_pct:+.2}%, bound {max_pct}%",
            off * 1e3,
            on * 1e3,
        );
        if overhead_pct <= max_pct {
            break;
        }
    }
    assert!(
        overhead_pct <= max_pct,
        "telemetry hooks cost {overhead_pct:.2}% (> {max_pct}%); the disabled \
         path is a strict subset of this — widen with \
         IPSIM_TELEMETRY_OVERHEAD_PCT on noisy machines"
    );
}
