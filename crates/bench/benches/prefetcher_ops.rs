//! Micro-benchmarks for the prefetch engines and their infrastructure.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ipsim_core::{
    DiscontinuityConfig, DiscontinuityPrefetcher, FetchEvent, NextNLinePrefetcher, PrefetchEngine,
    PrefetchQueue, PrefetchRequest, RecentFetchFilter,
};
use ipsim_types::{LineAddr, Rng64};

fn synthetic_events(n: usize) -> Vec<FetchEvent> {
    // A plausible fetch stream: mostly sequential advances with occasional
    // jumps, ~20% misses.
    let mut rng = Rng64::new(7);
    let mut line = LineAddr(1000);
    let mut events = Vec::with_capacity(n);
    let mut prev = None;
    for _ in 0..n {
        let next = if rng.chance(0.15) {
            LineAddr(1000 + rng.range(4096))
        } else {
            line.next()
        };
        events.push(FetchEvent {
            line: next,
            miss: rng.chance(0.2),
            first_use_of_prefetch: rng.chance(0.15),
            prev_line: prev,
        });
        prev = Some(next);
        line = next;
    }
    events
}

fn bench_engines(c: &mut Criterion) {
    let events = synthetic_events(4096);
    let mut group = c.benchmark_group("prefetcher");

    group.bench_function("next_4_line_on_fetch", |b| {
        let mut pf = NextNLinePrefetcher::new(4);
        let mut out = Vec::with_capacity(16);
        let mut i = 0;
        b.iter(|| {
            out.clear();
            pf.on_fetch(&events[i % events.len()], &mut out);
            i += 1;
            black_box(out.len())
        });
    });

    group.bench_function("discontinuity_on_fetch", |b| {
        let mut pf = DiscontinuityPrefetcher::new(DiscontinuityConfig::default());
        let mut out = Vec::with_capacity(16);
        let mut i = 0;
        b.iter(|| {
            out.clear();
            pf.on_fetch(&events[i % events.len()], &mut out);
            i += 1;
            black_box(out.len())
        });
    });

    group.bench_function("queue_push_pop", |b| {
        let mut q = PrefetchQueue::new(32);
        let mut rng = Rng64::new(9);
        b.iter(|| {
            q.push(PrefetchRequest::sequential(LineAddr(rng.range(256))));
            black_box(q.pop_issue())
        });
    });

    group.bench_function("filter_record_contains", |b| {
        let mut f = RecentFetchFilter::new(32);
        let mut rng = Rng64::new(11);
        b.iter(|| {
            let l = LineAddr(rng.range(128));
            f.record(l);
            black_box(f.contains(LineAddr(rng.range(128))))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
