//! Micro-benchmarks for synthetic workload generation: program synthesis
//! and trace-walking throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ipsim_trace::{TraceWalker, Workload};

fn bench_trace(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace");

    group.bench_function("build_web_program", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(Workload::Web.build_program(seed).code_bytes())
        });
    });

    let prog = Workload::Db.build_program(1);
    group.bench_function("walker_next_op", |b| {
        let mut walker = TraceWalker::new(&prog, Workload::Db.profile(), 0, 42);
        b.iter(|| black_box(walker.next_op()));
    });

    group.bench_function("walker_1k_ops", |b| {
        let mut walker = TraceWalker::new(&prog, Workload::Db.profile(), 0, 43);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc ^= walker.next_op().pc.0;
            }
            black_box(acc)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_trace);
criterion_main!(benches);
