//! Micro-benchmarks for the branch-prediction unit, the TLB hierarchy and
//! the MSHR / bus plumbing.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ipsim_cache::Mshr;
use ipsim_cpu::{BranchUnit, Bus, Tlb};
use ipsim_types::config::{BranchConfig, TlbConfig};
use ipsim_types::instr::{CtiClass, OpKind, TraceOp};
use ipsim_types::{Addr, LineAddr, Rng64};

fn bench_units(c: &mut Criterion) {
    let mut group = c.benchmark_group("units");

    group.bench_function("branch_process_cond", |b| {
        let mut unit = BranchUnit::new(&BranchConfig::default(), 16);
        let mut rng = Rng64::new(3);
        b.iter(|| {
            let op = TraceOp {
                pc: Addr(0x1000 + (rng.range(256)) * 4),
                kind: OpKind::Cti {
                    class: CtiClass::CondBranch,
                    taken: rng.chance(0.6),
                    target: Addr(0x4000),
                },
            };
            black_box(unit.process(&op))
        });
    });

    group.bench_function("branch_process_call_return", |b| {
        let mut unit = BranchUnit::new(&BranchConfig::default(), 16);
        b.iter(|| {
            let call = TraceOp {
                pc: Addr(0x1000),
                kind: OpKind::Cti {
                    class: CtiClass::Call,
                    taken: true,
                    target: Addr(0x9000),
                },
            };
            let ret = TraceOp {
                pc: Addr(0x9100),
                kind: OpKind::Cti {
                    class: CtiClass::Return,
                    taken: true,
                    target: Addr(0x1004),
                },
            };
            unit.process(&call);
            black_box(unit.process(&ret))
        });
    });

    group.bench_function("tlb_access", |b| {
        let mut tlb = Tlb::new(&TlbConfig::paper());
        let mut rng = Rng64::new(5);
        b.iter(|| black_box(tlb.access(Addr(rng.range(1 << 24)))));
    });

    group.bench_function("mshr_insert_retire", |b| {
        let mut mshr = Mshr::new(16);
        let mut now = 0u64;
        let mut line = 0u64;
        b.iter(|| {
            now += 10;
            line += 1;
            mshr.insert(LineAddr(line), now + 400, true);
            black_box(mshr.retire_ready(now).len())
        });
    });

    group.bench_function("bus_request", |b| {
        let mut bus = Bus::new(9.6);
        let mut now = 0u64;
        b.iter(|| {
            now += 25;
            black_box(bus.request(now, 400))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_units);
criterion_main!(benches);
