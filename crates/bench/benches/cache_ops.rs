//! Micro-benchmarks for the set-associative cache: hit path, miss+fill
//! path, and prefetch-probe path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ipsim_cache::{FillKind, SetAssocCache};
use ipsim_types::{CacheConfig, LineAddr, Rng64};

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");

    group.bench_function("hit_path", |b| {
        let mut cache = SetAssocCache::new(CacheConfig::default_l1());
        for l in 0..512u64 {
            cache.fill(LineAddr(l), FillKind::Demand);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 512;
            black_box(cache.access(LineAddr(i)))
        });
    });

    group.bench_function("miss_and_fill", |b| {
        let mut cache = SetAssocCache::new(CacheConfig::default_l1());
        let mut rng = Rng64::new(1);
        b.iter(|| {
            let line = LineAddr(rng.next_u64() & 0xFFFF);
            if !cache.access(line).is_hit() {
                black_box(cache.fill(line, FillKind::Demand));
            }
        });
    });

    group.bench_function("probe", |b| {
        let mut cache = SetAssocCache::new(CacheConfig::default_l1());
        for l in 0..512u64 {
            cache.fill(LineAddr(l), FillKind::Demand);
        }
        let mut rng = Rng64::new(2);
        b.iter(|| black_box(cache.probe(LineAddr(rng.next_u64() & 0x3FF))));
    });

    group.bench_function("l2_scale_access", |b| {
        let mut cache = SetAssocCache::new(CacheConfig::default_l2());
        let mut rng = Rng64::new(3);
        b.iter(|| {
            let line = LineAddr(rng.next_u64() & 0xF_FFFF);
            if !cache.access(line).is_hit() {
                black_box(cache.fill(line, FillKind::Demand));
            }
        });
    });

    group.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
