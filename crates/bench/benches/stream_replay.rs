//! Replay decode throughput vs live walker generation.
//!
//! The trace store's value proposition is that decoding a captured stream
//! is cheaper than regenerating it through the Markov walker. This bench
//! measures both sides per op for the DB profile, plus a full-trace decode
//! pass (open + every block CRC + every op).

use std::io::Cursor;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ipsim_stream::{TraceReader, TraceWriter};
use ipsim_trace::{TraceWalker, Workload};

const TRACE_OPS: u64 = 200_000;

/// Captures `TRACE_OPS` DB-profile ops into an in-memory trace file.
fn captured_db_trace() -> Vec<u8> {
    let w = Workload::Db;
    let prog = w.build_program(0x5EED_0001);
    let mut walker = TraceWalker::new(&prog, w.profile(), 0, 0x5EED_1001);
    let mut writer = TraceWriter::new(Vec::new(), 0, "bench-db").expect("header write");
    for _ in 0..TRACE_OPS {
        writer.append(&walker.next_op()).expect("append");
    }
    let (bytes, _stats) = writer.finish_into().expect("finish");
    bytes
}

fn bench_stream(c: &mut Criterion) {
    let bytes = captured_db_trace();
    let mut group = c.benchmark_group("stream");

    group.bench_function("live_walker_next_op", |b| {
        let w = Workload::Db;
        let prog = w.build_program(0x5EED_0001);
        let mut walker = TraceWalker::new(&prog, w.profile(), 0, 0x5EED_1001);
        b.iter(|| black_box(walker.next_op()));
    });

    group.bench_function("replay_decode_next_op", |b| {
        let mut reader = TraceReader::open(Cursor::new(bytes.clone())).expect("open");
        b.iter(|| match reader.next_op().expect("decode") {
            Some(op) => black_box(op),
            None => {
                reader.rewind().expect("rewind");
                black_box(reader.next_op().expect("decode").expect("nonempty"))
            }
        });
    });

    group.bench_function("replay_open_and_decode_full_trace", |b| {
        b.iter(|| {
            let mut reader = TraceReader::open(Cursor::new(bytes.clone())).expect("open");
            let mut n = 0u64;
            while let Some(op) = reader.next_op().expect("decode") {
                black_box(op);
                n += 1;
            }
            assert_eq!(n, TRACE_OPS);
            n
        });
    });

    group.finish();
}

criterion_group!(benches, bench_stream);
criterion_main!(benches);
