//! End-to-end simulator throughput: simulated instructions per second for
//! the baseline and the flagship prefetching configuration.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ipsim_cache::InstallPolicy;
use ipsim_core::PrefetcherKind;
use ipsim_cpu::{OpSource, SystemBuilder};
use ipsim_trace::{TraceWalker, Workload};
use ipsim_types::TraceOp;

const INSTRS: u64 = 100_000;

/// Serves a pre-generated op buffer, cycling — isolates the simulation
/// kernel (core/cache/memsys) from walker generation cost.
struct SliceSource<'a> {
    ops: &'a [TraceOp],
    pos: usize,
}

impl OpSource for SliceSource<'_> {
    fn next_op(&mut self) -> TraceOp {
        let op = self.ops[self.pos];
        self.pos = (self.pos + 1) % self.ops.len();
        op
    }

    fn next_block(&mut self, out: &mut [TraceOp]) {
        for slot in out {
            *slot = self.ops[self.pos];
            self.pos += 1;
            if self.pos == self.ops.len() {
                self.pos = 0;
            }
        }
    }
}

fn bench_system(c: &mut Criterion) {
    let mut group = c.benchmark_group("system");
    group.throughput(Throughput::Elements(INSTRS));
    group.sample_size(10);

    let prog = Workload::Web.build_program(1);

    group.bench_function("single_core_baseline_100k", |b| {
        b.iter(|| {
            let mut system = SystemBuilder::single_core().build().unwrap();
            let mut walker = TraceWalker::new(&prog, Workload::Web.profile(), 0, 5);
            let mut sources: Vec<&mut dyn OpSource> = vec![&mut walker];
            system.run(&mut sources, INSTRS);
            black_box(system.metrics().instructions())
        });
    });

    group.bench_function("single_core_kernel_only_100k", |b| {
        // Same run as the baseline bench but over pre-generated ops: the
        // difference between the two is pure walker-generation cost.
        let mut walker = TraceWalker::new(&prog, Workload::Web.profile(), 0, 5);
        let ops: Vec<ipsim_types::TraceOp> = (0..INSTRS)
            .map(|_| ipsim_stream::TraceSource::next_op(&mut walker))
            .collect();
        b.iter(|| {
            let mut system = SystemBuilder::single_core().build().unwrap();
            let mut source = SliceSource { ops: &ops, pos: 0 };
            let mut sources: Vec<&mut dyn OpSource> = vec![&mut source];
            system.run(&mut sources, INSTRS);
            black_box(system.metrics().instructions())
        });
    });

    group.bench_function("single_core_arena_replay_100k", |b| {
        // The kernel-only stream again, but lent zero-copy from an arena
        // through `next_slice` instead of copied into a staging block.
        let mut walker = TraceWalker::new(&prog, Workload::Web.profile(), 0, 5);
        let ops: Vec<ipsim_types::TraceOp> = (0..INSTRS)
            .map(|_| ipsim_stream::TraceSource::next_op(&mut walker))
            .collect();
        b.iter(|| {
            let mut system = SystemBuilder::single_core().build().unwrap();
            let mut source = ipsim_stream::ArenaSource::new(ops.as_slice());
            let mut sources: Vec<&mut dyn OpSource> = vec![&mut source];
            system.run(&mut sources, INSTRS);
            black_box(system.metrics().instructions())
        });
    });

    group.bench_function("single_core_straightline_1m", |b| {
        // L1I-resident straight-line fetch, the line-granular fast path's
        // best case: one tag probe per 64 B line, fifteen O(1) advances.
        const N: u64 = 1_000_000;
        let span = 256 * 64;
        let ops: Vec<ipsim_types::TraceOp> = (0..N)
            .map(|i| ipsim_types::TraceOp {
                pc: ipsim_types::Addr(0x0040_0000 + (i * 4) % span),
                kind: ipsim_types::OpKind::Other,
            })
            .collect();
        b.iter(|| {
            let mut system = SystemBuilder::single_core().build().unwrap();
            let mut source = ipsim_stream::ArenaSource::new(ops.as_slice());
            let mut sources: Vec<&mut dyn OpSource> = vec![&mut source];
            system.run(&mut sources, N);
            black_box(system.metrics().instructions())
        });
    });

    group.bench_function("single_core_discontinuity_100k", |b| {
        b.iter(|| {
            let mut system = SystemBuilder::single_core()
                .prefetcher(PrefetcherKind::discontinuity_default())
                .install_policy(InstallPolicy::BypassL2UntilUseful)
                .build()
                .unwrap();
            let mut walker = TraceWalker::new(&prog, Workload::Web.profile(), 0, 5);
            let mut sources: Vec<&mut dyn OpSource> = vec![&mut walker];
            system.run(&mut sources, INSTRS);
            black_box(system.metrics().instructions())
        });
    });

    group.bench_function("cmp4_baseline_100k_per_core", |b| {
        b.iter(|| {
            let mut system = SystemBuilder::cmp4().build().unwrap();
            let mut walkers: Vec<TraceWalker<'_>> = (0..4)
                .map(|i| TraceWalker::new(&prog, Workload::Web.profile(), i, 5))
                .collect();
            let mut sources: Vec<&mut dyn OpSource> =
                walkers.iter_mut().map(|w| w as &mut dyn OpSource).collect();
            system.run(&mut sources, INSTRS / 4);
            black_box(system.metrics().instructions())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_system);
criterion_main!(benches);
