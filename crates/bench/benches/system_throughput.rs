//! End-to-end simulator throughput: simulated instructions per second for
//! the baseline and the flagship prefetching configuration.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ipsim_cache::InstallPolicy;
use ipsim_core::PrefetcherKind;
use ipsim_cpu::{OpSource, SystemBuilder};
use ipsim_trace::{TraceWalker, Workload};

const INSTRS: u64 = 100_000;

fn bench_system(c: &mut Criterion) {
    let mut group = c.benchmark_group("system");
    group.throughput(Throughput::Elements(INSTRS));
    group.sample_size(10);

    let prog = Workload::Web.build_program(1);

    group.bench_function("single_core_baseline_100k", |b| {
        b.iter(|| {
            let mut system = SystemBuilder::single_core().build().unwrap();
            let mut walker = TraceWalker::new(&prog, Workload::Web.profile(), 0, 5);
            let mut sources: Vec<&mut dyn OpSource> = vec![&mut walker];
            system.run(&mut sources, INSTRS);
            black_box(system.metrics().instructions())
        });
    });

    group.bench_function("single_core_discontinuity_100k", |b| {
        b.iter(|| {
            let mut system = SystemBuilder::single_core()
                .prefetcher(PrefetcherKind::discontinuity_default())
                .install_policy(InstallPolicy::BypassL2UntilUseful)
                .build()
                .unwrap();
            let mut walker = TraceWalker::new(&prog, Workload::Web.profile(), 0, 5);
            let mut sources: Vec<&mut dyn OpSource> = vec![&mut walker];
            system.run(&mut sources, INSTRS);
            black_box(system.metrics().instructions())
        });
    });

    group.bench_function("cmp4_baseline_100k_per_core", |b| {
        b.iter(|| {
            let mut system = SystemBuilder::cmp4().build().unwrap();
            let mut walkers: Vec<TraceWalker<'_>> = (0..4)
                .map(|i| TraceWalker::new(&prog, Workload::Web.profile(), i, 5))
                .collect();
            let mut sources: Vec<&mut dyn OpSource> =
                walkers.iter_mut().map(|w| w as &mut dyn OpSource).collect();
            system.run(&mut sources, INSTRS / 4);
            black_box(system.metrics().instructions())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_system);
criterion_main!(benches);
