//! Property-based tests for the foundation types.

use ipsim_types::addr::{Addr, LineAddr, LineSize};
use ipsim_types::stats::CategoryCounts;
use ipsim_types::{MissCategory, Rng64};
use proptest::prelude::*;

fn any_line_size() -> impl Strategy<Value = LineSize> {
    prop_oneof![
        Just(LineSize::new(32).unwrap()),
        Just(LineSize::new(64).unwrap()),
        Just(LineSize::new(128).unwrap()),
        Just(LineSize::new(256).unwrap()),
    ]
}

proptest! {
    /// line() is consistent with integer division; base() inverts it.
    #[test]
    fn addr_line_roundtrip(addr in 0u64..u64::MAX / 2, ls in any_line_size()) {
        let a = Addr(addr);
        let line = a.line(ls);
        prop_assert_eq!(line.0, addr / ls.bytes());
        prop_assert!(line.base(ls).0 <= addr);
        prop_assert!(addr - line.base(ls).0 < ls.bytes());
        prop_assert_eq!(line.base(ls).line(ls), line);
    }

    /// Line arithmetic is consistent: ahead(n) == n applications of next().
    #[test]
    fn line_ahead_matches_next(start in 0u64..1 << 40, n in 0u64..64) {
        let mut walked = LineAddr(start);
        for _ in 0..n {
            walked = walked.next();
        }
        prop_assert_eq!(walked, LineAddr(start).ahead(n));
        prop_assert_eq!(walked.distance_from(LineAddr(start)), n as i64);
    }

    /// CategoryCounts: totals, fractions and merges are internally
    /// consistent for arbitrary counter values.
    #[test]
    fn category_counts_identities(values in prop::collection::vec(0u64..1_000_000, 9)) {
        let mut c = CategoryCounts::new();
        for (cat, v) in MissCategory::ALL.iter().zip(&values) {
            c[*cat] = *v;
        }
        let total: u64 = values.iter().sum();
        prop_assert_eq!(c.total(), total);
        let frac_sum: f64 = MissCategory::ALL.iter().map(|cat| c.fraction(*cat)).sum();
        if total > 0 {
            prop_assert!((frac_sum - 1.0).abs() < 1e-9, "fractions sum to {}", frac_sum);
        }
        let mut doubled = c;
        doubled.merge(&c);
        prop_assert_eq!(doubled.total(), 2 * total);
    }

    /// The PRNG's range() is uniform enough: over many draws every bucket
    /// of a small modulus is populated.
    #[test]
    fn rng_range_covers_buckets(seed in 0u64..10_000, bound in 2u64..17) {
        let mut rng = Rng64::new(seed);
        let mut seen = vec![false; bound as usize];
        for _ in 0..(bound * 200) {
            seen[rng.range(bound) as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s), "unpopulated bucket for bound {}", bound);
    }

    /// Geometric sampling respects its cap for any parameters.
    #[test]
    fn geometric_respects_cap(seed in 0u64..1000, p in 0.01f64..1.0, cap in 0u64..100) {
        let mut rng = Rng64::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.geometric(p, cap) <= cap);
        }
    }
}
