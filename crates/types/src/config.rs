//! Validated simulator configurations.
//!
//! Defaults follow Section 5 of the paper: per-core 32 KB 4-way 64 B L1
//! instruction and data caches (4-cycle latency), a shared unified 2 MB 4-way
//! 64 B L2 (25-cycle latency), 400-cycle memory latency, 8-wide fetch,
//! 3-wide issue, 64-entry ROB, 16-stage pipeline, 3 GHz cores with 10 GB/s
//! (single-core) or 20 GB/s (4-way CMP) off-chip bandwidth.

use crate::addr::LineSize;
use crate::error::ConfigError;
use crate::Cycle;

/// Geometry of one set-associative cache.
///
/// # Examples
///
/// ```
/// use ipsim_types::config::CacheConfig;
///
/// let l2 = CacheConfig::new(2 * 1024 * 1024, 4, 64)?;
/// assert_eq!(l2.sets(), 8192);
/// assert_eq!(l2.lines(), 32768);
/// # Ok::<(), ipsim_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    size_bytes: u64,
    assoc: u32,
    line: LineSize,
}

impl CacheConfig {
    /// Creates a cache geometry of `size_bytes` capacity, `assoc` ways and
    /// `line_bytes`-byte lines.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any quantity is zero, the line size is
    /// not a power of two, or the geometry does not divide into a
    /// power-of-two number of sets.
    pub fn new(size_bytes: u64, assoc: u32, line_bytes: u64) -> Result<CacheConfig, ConfigError> {
        if assoc == 0 {
            return Err(ConfigError::Zero {
                what: "associativity",
            });
        }
        if size_bytes == 0 {
            return Err(ConfigError::Zero { what: "cache size" });
        }
        let line = LineSize::new(line_bytes)?;
        let lines = size_bytes / line.bytes();
        if lines == 0 || !lines.is_multiple_of(assoc as u64) {
            return Err(ConfigError::BadGeometry {
                size: size_bytes,
                assoc,
                line: line_bytes,
            });
        }
        let sets = lines / assoc as u64;
        if !sets.is_power_of_two() {
            return Err(ConfigError::BadGeometry {
                size: size_bytes,
                assoc,
                line: line_bytes,
            });
        }
        Ok(CacheConfig {
            size_bytes,
            assoc,
            line,
        })
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Number of ways.
    pub fn assoc(&self) -> u32 {
        self.assoc
    }

    /// Line size.
    pub fn line(&self) -> LineSize {
        self.line
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / self.line.bytes() / self.assoc as u64
    }

    /// Total number of lines.
    pub fn lines(&self) -> u64 {
        self.size_bytes / self.line.bytes()
    }

    /// The paper's default per-core L1 cache: 32 KB, 4-way, 64 B lines.
    pub fn default_l1() -> CacheConfig {
        CacheConfig::new(32 * 1024, 4, 64).expect("default L1 geometry is valid")
    }

    /// The paper's default shared L2 cache: 2 MB, 4-way, 64 B lines.
    pub fn default_l2() -> CacheConfig {
        CacheConfig::new(2 * 1024 * 1024, 4, 64).expect("default L2 geometry is valid")
    }
}

/// TLB hierarchy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Model TLBs at all (default `false`).
    pub enabled: bool,
    /// Primary TLB entries (instruction and data each).
    pub l1_entries: u32,
    /// Primary TLB associativity.
    pub l1_assoc: u32,
    /// Unified secondary TLB entries.
    pub l2_entries: u32,
    /// Page size in bytes (SPARC base page: 8 KB).
    pub page_bytes: u64,
    /// Added latency when the primary misses but the secondary hits.
    pub l2_hit_latency: Cycle,
    /// Added latency when both levels miss (software table walk).
    pub walk_latency: Cycle,
}

impl TlbConfig {
    /// TLBs disabled (the calibrated default).
    pub fn disabled() -> TlbConfig {
        TlbConfig {
            enabled: false,
            ..TlbConfig::paper()
        }
    }

    /// The paper's TLB organisation, enabled.
    pub fn paper() -> TlbConfig {
        TlbConfig {
            enabled: true,
            l1_entries: 128,
            l1_assoc: 2,
            l2_entries: 2048,
            page_bytes: 8192,
            l2_hit_latency: 10,
            walk_latency: 200,
        }
    }
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig::disabled()
    }
}

/// Branch-prediction structures (Section 5 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchConfig {
    /// gshare pattern-history-table entries (must be a power of two).
    pub gshare_entries: u32,
    /// Branch-target-buffer entries, direct-mapped and tagless.
    pub btb_entries: u32,
    /// Return-address-stack depth.
    pub ras_entries: u32,
}

impl Default for BranchConfig {
    fn default() -> Self {
        BranchConfig {
            gshare_entries: 64 * 1024,
            btb_entries: 1024,
            ras_entries: 16,
        }
    }
}

/// Per-core pipeline parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Instructions issued per cycle.
    pub issue_width: u32,
    /// Reorder-buffer entries: bounds how far execution runs ahead of an
    /// outstanding data miss (memory-level parallelism window).
    pub rob_entries: u32,
    /// Pipeline depth; a branch misprediction restarts fetch after this many
    /// cycles.
    pub pipeline_depth: u32,
    /// Maximum outstanding misses per core (MSHRs).
    pub mshrs: u32,
    /// L1 instruction-cache geometry.
    pub l1i: CacheConfig,
    /// L1 data-cache geometry.
    pub l1d: CacheConfig,
    /// L1 hit latency in cycles.
    pub l1_latency: Cycle,
    /// Branch-prediction structures.
    pub branch: BranchConfig,
    /// TLB hierarchy (disabled by default; see [`TlbConfig`]).
    pub tlb: TlbConfig,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            fetch_width: 8,
            issue_width: 3,
            rob_entries: 64,
            pipeline_depth: 16,
            // Outstanding fills per core and side (instruction fills
            // including prefetches / data fills). Covering a 425-cycle
            // memory round-trip at the prefetch issue rates of the
            // aggressive schemes needs well over the classic 8 MSHRs.
            mshrs: 16,
            l1i: CacheConfig::default_l1(),
            l1d: CacheConfig::default_l1(),
            l1_latency: 4,
            branch: BranchConfig::default(),
            tlb: TlbConfig::default(),
        }
    }
}

/// Shared memory-system parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemConfig {
    /// Unified L2 geometry (shared by all cores in a CMP).
    pub l2: CacheConfig,
    /// L2 hit latency in cycles.
    pub l2_latency: Cycle,
    /// Main-memory latency in cycles.
    pub mem_latency: Cycle,
    /// Off-chip bandwidth in bytes per core cycle. The paper's 3 GHz cores
    /// see 10 GB/s (single core, ≈3.33 B/cycle) or 20 GB/s (4-way CMP,
    /// ≈6.67 B/cycle).
    pub offchip_bytes_per_cycle: f64,
}

impl MemConfig {
    /// Cycles one cache-line transfer occupies the off-chip bus.
    pub fn line_transfer_cycles(&self) -> f64 {
        self.l2.line().bytes() as f64 / self.offchip_bytes_per_cycle
    }

    /// The paper's single-core memory system: private 2 MB L2, 10 GB/s.
    pub fn default_single_core() -> MemConfig {
        MemConfig {
            l2: CacheConfig::default_l2(),
            l2_latency: 25,
            mem_latency: 400,
            offchip_bytes_per_cycle: 10.0 / 3.0,
        }
    }

    /// The paper's CMP memory system: shared 2 MB L2, 20 GB/s.
    pub fn default_cmp() -> MemConfig {
        MemConfig {
            offchip_bytes_per_cycle: 20.0 / 3.0,
            ..MemConfig::default_single_core()
        }
    }
}

/// Default scheduler quantum: instructions each core executes before the
/// scheduler re-picks the laggard core.
pub const DEFAULT_SCHED_QUANTUM: u64 = 16;

/// Largest supported scheduler quantum (the scheduler's op staging buffer
/// is sized to this at compile time).
pub const MAX_SCHED_QUANTUM: u64 = 64;

/// A full system: `n_cores` identical cores over one shared memory system.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Number of cores on the chip.
    pub n_cores: u32,
    /// Per-core pipeline/caches.
    pub core: CoreConfig,
    /// Shared L2 / memory / bus.
    pub mem: MemConfig,
    /// Instructions each core executes before the scheduler re-picks the
    /// laggard core. Small enough that shared-L2/bus interleaving stays
    /// faithful, large enough to amortise scheduling. 1..=[`MAX_SCHED_QUANTUM`];
    /// non-default values change multi-core interleaving and therefore
    /// results.
    pub sched_quantum: u64,
}

impl SystemConfig {
    /// The paper's single-core baseline.
    pub fn single_core() -> SystemConfig {
        SystemConfig {
            n_cores: 1,
            core: CoreConfig::default(),
            mem: MemConfig::default_single_core(),
            sched_quantum: DEFAULT_SCHED_QUANTUM,
        }
    }

    /// The paper's 4-way CMP design point.
    pub fn cmp4() -> SystemConfig {
        SystemConfig {
            n_cores: 4,
            core: CoreConfig::default(),
            mem: MemConfig::default_cmp(),
            sched_quantum: DEFAULT_SCHED_QUANTUM,
        }
    }

    /// Validates cross-field invariants.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if core count or widths are zero, or the
    /// L1/L2 line sizes differ (the memory system moves whole L2 lines).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.n_cores == 0 {
            return Err(ConfigError::Zero { what: "core count" });
        }
        if self.core.fetch_width == 0 {
            return Err(ConfigError::Zero {
                what: "fetch width",
            });
        }
        if self.core.issue_width == 0 {
            return Err(ConfigError::Zero {
                what: "issue width",
            });
        }
        if self.core.rob_entries == 0 {
            return Err(ConfigError::Zero {
                what: "ROB entries",
            });
        }
        if !self.core.branch.gshare_entries.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                what: "gshare entries",
                value: self.core.branch.gshare_entries as u64,
            });
        }
        if !self.core.branch.btb_entries.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                what: "BTB entries",
                value: self.core.branch.btb_entries as u64,
            });
        }
        if self.sched_quantum == 0 {
            return Err(ConfigError::Zero {
                what: "scheduler quantum",
            });
        }
        if self.sched_quantum > MAX_SCHED_QUANTUM {
            return Err(ConfigError::OutOfRange {
                what: "scheduler quantum",
                value: self.sched_quantum,
                max: MAX_SCHED_QUANTUM,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometries_match_paper() {
        let l1 = CacheConfig::default_l1();
        assert_eq!(l1.size_bytes(), 32 * 1024);
        assert_eq!(l1.assoc(), 4);
        assert_eq!(l1.line().bytes(), 64);
        assert_eq!(l1.sets(), 128);

        let l2 = CacheConfig::default_l2();
        assert_eq!(l2.sets(), 8192);
        assert_eq!(l2.lines(), 32 * 1024);
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(CacheConfig::new(0, 4, 64).is_err());
        assert!(CacheConfig::new(32 * 1024, 0, 64).is_err());
        assert!(CacheConfig::new(32 * 1024, 4, 48).is_err());
        // 3-way with 32KB/64B = 512 lines -> 170.67 sets: invalid.
        assert!(CacheConfig::new(32 * 1024, 3, 64).is_err());
        // 12 ways -> 42.67 sets: invalid even though divisible checks differ.
        assert!(CacheConfig::new(32 * 1024, 12, 64).is_err());
    }

    #[test]
    fn direct_mapped_and_fully_weird_assocs_work() {
        let dm = CacheConfig::new(32 * 1024, 1, 64).unwrap();
        assert_eq!(dm.sets(), 512);
        let eight = CacheConfig::new(32 * 1024, 8, 64).unwrap();
        assert_eq!(eight.sets(), 64);
    }

    #[test]
    fn bandwidth_translates_to_transfer_cycles() {
        let single = MemConfig::default_single_core();
        assert!((single.line_transfer_cycles() - 19.2).abs() < 1e-9);
        let cmp = MemConfig::default_cmp();
        assert!((cmp.line_transfer_cycles() - 9.6).abs() < 1e-9);
    }

    #[test]
    fn paper_presets_validate() {
        SystemConfig::single_core().validate().unwrap();
        SystemConfig::cmp4().validate().unwrap();
        assert_eq!(SystemConfig::cmp4().n_cores, 4);
        assert_eq!(SystemConfig::cmp4().core.pipeline_depth, 16);
    }

    #[test]
    fn validate_catches_zeroes() {
        let mut s = SystemConfig::single_core();
        s.n_cores = 0;
        assert!(s.validate().is_err());
        let mut s = SystemConfig::single_core();
        s.core.issue_width = 0;
        assert!(s.validate().is_err());
        let mut s = SystemConfig::single_core();
        s.core.branch.btb_entries = 1000;
        assert!(s.validate().is_err());
    }

    #[test]
    fn sched_quantum_is_bounded() {
        assert_eq!(SystemConfig::single_core().sched_quantum, 16);
        let mut s = SystemConfig::single_core();
        s.sched_quantum = 0;
        assert!(s.validate().is_err());
        s.sched_quantum = MAX_SCHED_QUANTUM;
        assert!(s.validate().is_ok());
        s.sched_quantum = MAX_SCHED_QUANTUM + 1;
        assert!(s.validate().is_err());
    }
}
