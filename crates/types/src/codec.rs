//! Error and statistics types for the binary trace codec (`ipsim-stream`).
//!
//! They live here rather than in `ipsim-stream` so that any crate can
//! mention a codec outcome in its API without depending on the I/O layer
//! itself (mirroring how [`crate::error::ConfigError`] serves every crate
//! that validates configuration).

use std::error::Error;
use std::fmt;

/// A failure while encoding or decoding a binary trace stream.
///
/// Every variant carries enough context to say *where* a file went bad,
/// which is what makes quarantine messages actionable.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// An underlying I/O error (message only, so the type stays `Clone`).
    Io(String),
    /// The file does not start with the trace magic.
    BadMagic,
    /// The file's format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The file ended before a complete structure could be read.
    Truncated {
        /// What was being read when the bytes ran out.
        what: &'static str,
    },
    /// A checksum did not match its protected bytes.
    CrcMismatch {
        /// Which region failed (`"header"`, `"index"`, or `"block N"`).
        what: &'static str,
        /// Block ordinal for block failures; 0 otherwise.
        block: u64,
    },
    /// An event record used an undefined tag byte.
    BadTag {
        /// The offending tag.
        tag: u8,
    },
    /// A varint ran past the 64-bit range.
    VarintOverflow,
    /// A block's payload decoded to a different op count than it declared.
    CountMismatch {
        /// Ops the structure declared.
        expected: u64,
        /// Ops actually found.
        found: u64,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Io(msg) => write!(f, "trace i/o error: {msg}"),
            CodecError::BadMagic => write!(f, "not a trace file (bad magic)"),
            CodecError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace format version {v}")
            }
            CodecError::Truncated { what } => write!(f, "trace truncated while reading {what}"),
            CodecError::CrcMismatch { what, block } => {
                if *what == "block" {
                    write!(f, "crc mismatch in block {block}")
                } else {
                    write!(f, "crc mismatch in {what}")
                }
            }
            CodecError::BadTag { tag } => write!(f, "undefined event tag {tag:#04x}"),
            CodecError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            CodecError::CountMismatch { expected, found } => {
                write!(f, "op count mismatch: declared {expected}, found {found}")
            }
        }
    }
}

impl Error for CodecError {}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> CodecError {
        CodecError::Io(e.to_string())
    }
}

/// Size and shape statistics for one encoded trace stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamStats {
    /// Dynamic instructions (events) in the stream.
    pub ops: u64,
    /// Encoded blocks.
    pub blocks: u64,
    /// Bytes of encoded event payload (pre-framing).
    pub payload_bytes: u64,
    /// Total file bytes including header, block framing and index.
    pub file_bytes: u64,
}

impl StreamStats {
    /// Mean encoded bytes per instruction (0 for an empty stream).
    pub fn bytes_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.payload_bytes as f64 / self.ops as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(CodecError::BadTag { tag: 0xff }
            .to_string()
            .contains("0xff"));
        assert!(CodecError::CrcMismatch {
            what: "block",
            block: 7
        }
        .to_string()
        .contains("block 7"));
        assert!(CodecError::Truncated { what: "footer" }
            .to_string()
            .contains("footer"));
        let io: CodecError = std::io::Error::other("disk on fire").into();
        assert!(io.to_string().contains("disk on fire"));
    }

    #[test]
    fn stats_bytes_per_op() {
        let mut s = StreamStats::default();
        assert_eq!(s.bytes_per_op(), 0.0);
        s.ops = 4;
        s.payload_bytes = 10;
        assert_eq!(s.bytes_per_op(), 2.5);
    }
}
