//! A small, fast, seedable pseudo-random number generator.
//!
//! The simulator must be deterministic: the same configuration and seed must
//! produce bit-identical results so that experiments are reproducible and
//! A/B comparisons between prefetchers see the *same* dynamic instruction
//! stream. We implement xoshiro256** (Blackman & Vigna) seeded through
//! SplitMix64 — the standard, well-tested construction — rather than pulling
//! in an external RNG crate whose output could change across versions.

/// A deterministic 64-bit PRNG (xoshiro256** seeded via SplitMix64).
///
/// # Examples
///
/// ```
/// use ipsim_types::rng::Rng64;
///
/// let mut a = Rng64::new(42);
/// let mut b = Rng64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// let x = a.range(10); // uniform in 0..10
/// assert!(x < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed. Any seed (including 0) is
    /// valid; SplitMix64 expansion guarantees a non-degenerate state.
    pub fn new(seed: u64) -> Rng64 {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng64 {
            s: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// The next raw 64 bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `0..bound` (Lemire's multiply-shift reduction;
    /// the tiny modulo bias is irrelevant for simulation purposes).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "range bound must be non-zero");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // Take the top 53 bits for a uniformly distributed mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A geometrically distributed value with success probability `p`
    /// (mean `(1-p)/p`), capped at `cap`. Used for block/function size
    /// distributions.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1]`.
    pub fn geometric(&mut self, p: f64, cap: u64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "geometric p must be in (0, 1]");
        let u = self.f64().max(f64::MIN_POSITIVE);
        let v = (u.ln() / (1.0 - p).max(f64::MIN_POSITIVE).ln()).floor() as u64;
        v.min(cap)
    }

    /// Forks an independent generator, seeded from this one's stream.
    /// Useful for giving each simulated core / component its own stream.
    pub fn fork(&mut self) -> Rng64 {
        Rng64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn range_respects_bound() {
        let mut r = Rng64::new(3);
        for bound in [1u64, 2, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(r.range(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn range_zero_panics() {
        Rng64::new(0).range(0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::new(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn chance_tracks_probability() {
        let mut r = Rng64::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn geometric_mean_is_plausible() {
        let mut r = Rng64::new(13);
        let p = 0.2;
        let n = 20_000;
        let total: u64 = (0..n).map(|_| r.geometric(p, 1_000)).sum();
        let mean = total as f64 / n as f64;
        let expect = (1.0 - p) / p; // 4.0
        assert!((mean - expect).abs() < 0.3, "mean {mean} vs {expect}");
    }

    #[test]
    fn geometric_respects_cap() {
        let mut r = Rng64::new(17);
        for _ in 0..10_000 {
            assert!(r.geometric(0.01, 5) <= 5);
        }
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = Rng64::new(21);
        let mut fork = a.fork();
        // The fork must not mirror the parent.
        let same = (0..64).filter(|_| a.next_u64() == fork.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn seed_zero_is_not_degenerate() {
        let mut r = Rng64::new(0);
        let vals: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(vals.iter().any(|&v| v != 0));
        assert!(vals.windows(2).any(|w| w[0] != w[1]));
    }
}
