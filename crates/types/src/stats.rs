//! Miss categorisation and counter plumbing.
//!
//! The paper's Figure 3 breaks instruction misses down by the transition that
//! caused them: sequential, conditional branches (taken-forward,
//! taken-backward, not-taken), unconditional branches, calls, jumps, returns
//! and traps. [`MissCategory`] reproduces that taxonomy exactly and
//! [`CategoryCounts`] accumulates per-category totals.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::addr::Addr;
use crate::instr::{CtiClass, OpKind};

/// Why an instruction fetch transitioned to the line that missed.
///
/// A miss is attributed to the dynamically preceding instruction: if it was
/// a taken CTI the miss belongs to that CTI's class; a not-taken conditional
/// branch that falls through across a line boundary is counted separately
/// (the paper's "Cond branch (nt)"); anything else is a sequential miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissCategory {
    /// Straight-line fall-through into the next line.
    Sequential,
    /// Taken conditional branch to a higher address.
    CondTakenFwd,
    /// Taken conditional branch to a lower address.
    CondTakenBwd,
    /// Not-taken conditional branch falling through across a line boundary.
    CondNotTaken,
    /// Unconditional PC-relative branch.
    UncondBranch,
    /// Direct call.
    Call,
    /// Indirect jump.
    Jump,
    /// Function return.
    Return,
    /// Trap entry.
    Trap,
}

impl MissCategory {
    /// All categories, in the paper's legend order.
    pub const ALL: [MissCategory; 9] = [
        MissCategory::Sequential,
        MissCategory::CondTakenFwd,
        MissCategory::CondTakenBwd,
        MissCategory::CondNotTaken,
        MissCategory::UncondBranch,
        MissCategory::Call,
        MissCategory::Jump,
        MissCategory::Return,
        MissCategory::Trap,
    ];

    /// Number of categories.
    pub const COUNT: usize = Self::ALL.len();

    /// Dense index for table storage.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            MissCategory::Sequential => 0,
            MissCategory::CondTakenFwd => 1,
            MissCategory::CondTakenBwd => 2,
            MissCategory::CondNotTaken => 3,
            MissCategory::UncondBranch => 4,
            MissCategory::Call => 5,
            MissCategory::Jump => 6,
            MissCategory::Return => 7,
            MissCategory::Trap => 8,
        }
    }

    /// Label used in reports, matching the paper's legend.
    pub fn label(self) -> &'static str {
        match self {
            MissCategory::Sequential => "Sequential",
            MissCategory::CondTakenFwd => "Cond branch (tf)",
            MissCategory::CondTakenBwd => "Cond branch (tb)",
            MissCategory::CondNotTaken => "Cond branch (nt)",
            MissCategory::UncondBranch => "Uncond branch",
            MissCategory::Call => "Call",
            MissCategory::Jump => "Jump",
            MissCategory::Return => "Return",
            MissCategory::Trap => "Trap",
        }
    }

    /// The coarse group used by the paper's limit study (Figure 4):
    /// sequential / branch / function-call / trap.
    pub fn group(self) -> MissGroup {
        match self {
            MissCategory::Sequential => MissGroup::Sequential,
            MissCategory::CondTakenFwd
            | MissCategory::CondTakenBwd
            | MissCategory::CondNotTaken
            | MissCategory::UncondBranch => MissGroup::Branch,
            MissCategory::Call | MissCategory::Jump | MissCategory::Return => {
                MissGroup::FunctionCall
            }
            MissCategory::Trap => MissGroup::Trap,
        }
    }

    /// Categorises a miss given the dynamically preceding instruction (if
    /// any) and whether the missing fetch landed on a new line relative to
    /// that instruction's own line.
    ///
    /// `prev` is the instruction executed immediately before the one whose
    /// fetch missed; `None` at the very start of a trace yields
    /// [`MissCategory::Sequential`].
    pub fn from_transition(prev: Option<&(Addr, OpKind)>) -> MissCategory {
        match prev {
            Some((
                pc,
                OpKind::Cti {
                    class,
                    taken,
                    target,
                },
            )) => match (class, taken) {
                (CtiClass::CondBranch, true) => {
                    if target.0 > pc.0 {
                        MissCategory::CondTakenFwd
                    } else {
                        MissCategory::CondTakenBwd
                    }
                }
                (CtiClass::CondBranch, false) => MissCategory::CondNotTaken,
                (CtiClass::UncondBranch, _) => MissCategory::UncondBranch,
                (CtiClass::Call, _) => MissCategory::Call,
                (CtiClass::Jump, _) => MissCategory::Jump,
                (CtiClass::Return, _) => MissCategory::Return,
                (CtiClass::Trap, _) => MissCategory::Trap,
            },
            _ => MissCategory::Sequential,
        }
    }
}

impl fmt::Display for MissCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Coarse miss grouping used by the limit study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissGroup {
    /// Sequential misses.
    Sequential,
    /// All branch-caused misses.
    Branch,
    /// Call / jump / return misses.
    FunctionCall,
    /// Trap misses.
    Trap,
}

/// Per-[`MissCategory`] counters.
///
/// # Examples
///
/// ```
/// use ipsim_types::stats::{CategoryCounts, MissCategory};
///
/// let mut c = CategoryCounts::default();
/// c[MissCategory::Sequential] += 3;
/// c[MissCategory::Call] += 1;
/// assert_eq!(c.total(), 4);
/// assert_eq!(c.fraction(MissCategory::Sequential), 0.75);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CategoryCounts {
    counts: [u64; MissCategory::COUNT],
}

impl CategoryCounts {
    /// A zeroed counter set.
    pub fn new() -> CategoryCounts {
        CategoryCounts::default()
    }

    /// Sum over all categories.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of the total in `cat` (0 when the total is 0).
    pub fn fraction(&self, cat: MissCategory) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self[cat] as f64 / total as f64
        }
    }

    /// Sum over all categories belonging to `group`.
    pub fn group_total(&self, group: MissGroup) -> u64 {
        MissCategory::ALL
            .iter()
            .filter(|c| c.group() == group)
            .map(|c| self[*c])
            .sum()
    }

    /// Iterates `(category, count)` pairs in legend order.
    pub fn iter(&self) -> impl Iterator<Item = (MissCategory, u64)> + '_ {
        MissCategory::ALL.iter().map(move |c| (*c, self[*c]))
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &CategoryCounts) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }
}

impl Index<MissCategory> for CategoryCounts {
    type Output = u64;

    fn index(&self, cat: MissCategory) -> &u64 {
        &self.counts[cat.index()]
    }
}

impl IndexMut<MissCategory> for CategoryCounts {
    fn index_mut(&mut self, cat: MissCategory) -> &mut u64 {
        &mut self.counts[cat.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use crate::instr::{CtiClass, OpKind};

    fn cti(pc: u64, class: CtiClass, taken: bool, target: u64) -> (Addr, OpKind) {
        (
            Addr(pc),
            OpKind::Cti {
                class,
                taken,
                target: Addr(target),
            },
        )
    }

    #[test]
    fn index_round_trips() {
        for (i, cat) in MissCategory::ALL.iter().enumerate() {
            assert_eq!(cat.index(), i);
        }
    }

    #[test]
    fn categorise_taken_cond_directions() {
        let fwd = cti(100, CtiClass::CondBranch, true, 500);
        assert_eq!(
            MissCategory::from_transition(Some(&fwd)),
            MissCategory::CondTakenFwd
        );
        let bwd = cti(500, CtiClass::CondBranch, true, 100);
        assert_eq!(
            MissCategory::from_transition(Some(&bwd)),
            MissCategory::CondTakenBwd
        );
    }

    #[test]
    fn categorise_not_taken_and_plain() {
        let nt = cti(100, CtiClass::CondBranch, false, 500);
        assert_eq!(
            MissCategory::from_transition(Some(&nt)),
            MissCategory::CondNotTaken
        );
        let plain = (Addr(100), OpKind::Other);
        assert_eq!(
            MissCategory::from_transition(Some(&plain)),
            MissCategory::Sequential
        );
        assert_eq!(
            MissCategory::from_transition(None),
            MissCategory::Sequential
        );
    }

    #[test]
    fn categorise_call_class_and_trap() {
        for (class, expect) in [
            (CtiClass::Call, MissCategory::Call),
            (CtiClass::Jump, MissCategory::Jump),
            (CtiClass::Return, MissCategory::Return),
            (CtiClass::Trap, MissCategory::Trap),
            (CtiClass::UncondBranch, MissCategory::UncondBranch),
        ] {
            let op = cti(100, class, true, 900);
            assert_eq!(MissCategory::from_transition(Some(&op)), expect);
        }
    }

    #[test]
    fn groups_match_paper_aggregation() {
        assert_eq!(MissCategory::Sequential.group(), MissGroup::Sequential);
        assert_eq!(MissCategory::CondTakenFwd.group(), MissGroup::Branch);
        assert_eq!(MissCategory::CondNotTaken.group(), MissGroup::Branch);
        assert_eq!(MissCategory::Call.group(), MissGroup::FunctionCall);
        assert_eq!(MissCategory::Return.group(), MissGroup::FunctionCall);
        assert_eq!(MissCategory::Trap.group(), MissGroup::Trap);
    }

    #[test]
    fn counts_accumulate_and_merge() {
        let mut a = CategoryCounts::new();
        a[MissCategory::Sequential] = 6;
        a[MissCategory::Call] = 2;
        let mut b = CategoryCounts::new();
        b[MissCategory::Call] = 3;
        b[MissCategory::Trap] = 1;
        a.merge(&b);
        assert_eq!(a.total(), 12);
        assert_eq!(a[MissCategory::Call], 5);
        assert_eq!(a.group_total(MissGroup::FunctionCall), 5);
        assert_eq!(a.fraction(MissCategory::Sequential), 0.5);
    }

    #[test]
    fn fraction_of_empty_counts_is_zero() {
        let c = CategoryCounts::new();
        assert_eq!(c.fraction(MissCategory::Call), 0.0);
        assert_eq!(c.total(), 0);
    }
}
