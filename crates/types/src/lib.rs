//! Common foundation types for the `ipsim` instruction-prefetching simulator.
//!
//! `ipsim` reproduces *"Effective Instruction Prefetching in Chip
//! Multiprocessors for Modern Commercial Applications"* (Spracklen, Chou &
//! Abraham, HPCA 2005). This crate holds the vocabulary shared by every other
//! crate in the workspace:
//!
//! * [`addr`] — byte/cache-line address newtypes and line arithmetic,
//! * [`instr`] — the instruction taxonomy (control-transfer classes) used by
//!   the trace generator, the miss categoriser and the prefetchers,
//! * [`config`] — validated cache / core / memory / system configurations,
//! * [`stats`] — miss-category accounting and counter plumbing,
//! * [`rng`] — a small, fast, seedable PRNG so every simulation is
//!   deterministic and reproducible without external dependencies,
//! * [`error`] — configuration error types,
//! * [`codec`] — error/statistics types for the binary trace codec
//!   (`ipsim-stream`).
//!
//! # Examples
//!
//! ```
//! use ipsim_types::addr::{Addr, LineSize};
//! use ipsim_types::config::CacheConfig;
//!
//! let line = LineSize::new(64).unwrap();
//! let addr = Addr(0x1_0040);
//! assert_eq!(addr.line(line).0, 0x401);
//!
//! let l1i = CacheConfig::new(32 * 1024, 4, 64).unwrap();
//! assert_eq!(l1i.sets(), 128);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod codec;
pub mod config;
pub mod error;
pub mod instr;
pub mod rng;
pub mod stats;

pub use addr::{Addr, LineAddr, LineSize};
pub use codec::{CodecError, StreamStats};
pub use config::{CacheConfig, CoreConfig, MemConfig, SystemConfig};
pub use error::ConfigError;
pub use instr::{CtiClass, OpKind, TraceOp};
pub use rng::Rng64;
pub use stats::MissCategory;

/// Simulated processor cycles.
///
/// Kept as a plain `u64` alias rather than a newtype: cycle arithmetic is
/// pervasive in the timing model and the quantity is never confused with
/// another `u64` domain in practice (addresses use the [`Addr`] newtype).
pub type Cycle = u64;
