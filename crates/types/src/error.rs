//! Error types returned by configuration validation.

use std::error::Error;
use std::fmt;

/// An invalid simulator configuration.
///
/// Returned by the constructors in [`crate::config`] and by
/// [`crate::addr::LineSize::new`]. All variants carry enough context to tell
/// the user exactly which parameter was rejected and why.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A quantity that must be a power of two was not.
    NotPowerOfTwo {
        /// Human-readable name of the offending parameter.
        what: &'static str,
        /// The rejected value.
        value: u64,
    },
    /// A quantity that must be non-zero was zero.
    Zero {
        /// Human-readable name of the offending parameter.
        what: &'static str,
    },
    /// A cache's geometry does not divide evenly (size / assoc / line size).
    BadGeometry {
        /// Total capacity in bytes.
        size: u64,
        /// Associativity (ways).
        assoc: u32,
        /// Line size in bytes.
        line: u64,
    },
    /// A parameter exceeded a supported bound.
    OutOfRange {
        /// Human-readable name of the offending parameter.
        what: &'static str,
        /// The rejected value.
        value: u64,
        /// Maximum supported value.
        max: u64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NotPowerOfTwo { what, value } => {
                write!(f, "{what} must be a power of two, got {value}")
            }
            ConfigError::Zero { what } => write!(f, "{what} must be non-zero"),
            ConfigError::BadGeometry { size, assoc, line } => write!(
                f,
                "cache geometry invalid: {size} bytes / {assoc} ways / {line}B lines \
                 does not yield a power-of-two set count"
            ),
            ConfigError::OutOfRange { what, value, max } => {
                write!(f, "{what} out of range: {value} exceeds {max}")
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ConfigError::NotPowerOfTwo {
            what: "line size",
            value: 48,
        };
        let msg = e.to_string();
        assert!(msg.contains("line size"));
        assert!(msg.contains("48"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_err<E: Error + Send + Sync + 'static>(_e: E) {}
        takes_err(ConfigError::Zero { what: "ways" });
    }
}
