//! The instruction taxonomy shared by the trace generator, the timing model
//! and the miss categoriser.
//!
//! The paper's workloads run on the SPARC ISA: fixed 4-byte instructions,
//! PC-relative branches (targets trivially computable), direct `call` and
//! indirect `jump` / `return`. We model exactly the classes the paper's
//! Figure 3 distinguishes.

use crate::addr::Addr;

/// Size of every simulated instruction, in bytes (SPARC: fixed 4-byte).
pub const INSTR_BYTES: u64 = 4;

/// The class of a control-transfer instruction (CTI).
///
/// Matches the categories of the paper's miss breakdown (Figure 3); the
/// conditional-branch class is refined further by taken/not-taken and
/// direction when categorising misses (see [`crate::stats::MissCategory`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CtiClass {
    /// Conditional PC-relative branch.
    CondBranch,
    /// Unconditional PC-relative branch.
    UncondBranch,
    /// Direct function call (`call`): target embedded in the instruction.
    Call,
    /// Indirect jump (`jmpl`): target computed from registers.
    Jump,
    /// Function return: target from the return-address register.
    Return,
    /// Trap into kernel / trap-handler code.
    Trap,
}

impl CtiClass {
    /// `true` for the classes implementing function calls in the SPARC ISA
    /// (`call`, `jump`, `return`) — the paper groups these as "function
    /// call" misses.
    pub fn is_call_class(self) -> bool {
        matches!(self, CtiClass::Call | CtiClass::Jump | CtiClass::Return)
    }

    /// `true` for branch classes (conditional or unconditional).
    pub fn is_branch_class(self) -> bool {
        matches!(self, CtiClass::CondBranch | CtiClass::UncondBranch)
    }
}

/// What a single traced instruction does, beyond occupying its PC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A non-memory, non-CTI instruction (ALU and similar).
    Other,
    /// A load from `addr`.
    Load {
        /// Byte address read.
        addr: Addr,
    },
    /// A store to `addr`.
    Store {
        /// Byte address written.
        addr: Addr,
    },
    /// A control-transfer instruction.
    Cti {
        /// Which class of CTI this is.
        class: CtiClass,
        /// Whether the transfer happened (always `true` for unconditional
        /// classes; meaningful for [`CtiClass::CondBranch`]).
        taken: bool,
        /// The (resolved) target address. For a not-taken conditional branch
        /// this is still the would-be target, which the branch predictor
        /// model uses.
        target: Addr,
    },
}

impl OpKind {
    /// The CTI class, if this op is a control transfer.
    #[inline]
    pub fn cti_class(&self) -> Option<CtiClass> {
        match self {
            OpKind::Cti { class, .. } => Some(*class),
            _ => None,
        }
    }

    /// `true` when this op redirects the fetch stream (a taken CTI).
    #[inline]
    pub fn is_taken_cti(&self) -> bool {
        matches!(self, OpKind::Cti { taken: true, .. })
    }
}

/// One dynamically executed instruction, as emitted by the trace walker.
///
/// The walker guarantees the stream is *self-consistent*: the PC of each op
/// follows from the previous op (sequential `+4`, or the previous op's taken
/// target).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// This instruction's program counter.
    pub pc: Addr,
    /// What the instruction does.
    pub kind: OpKind,
}

impl TraceOp {
    /// The PC of the next instruction in the dynamic stream.
    #[inline]
    pub fn next_pc(&self) -> Addr {
        match self.kind {
            OpKind::Cti {
                taken: true,
                target,
                ..
            } => target,
            _ => self.pc.offset(INSTR_BYTES),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_pc_sequential_for_plain_ops() {
        let op = TraceOp {
            pc: Addr(100),
            kind: OpKind::Other,
        };
        assert_eq!(op.next_pc(), Addr(104));
    }

    #[test]
    fn next_pc_follows_taken_cti() {
        let op = TraceOp {
            pc: Addr(100),
            kind: OpKind::Cti {
                class: CtiClass::Call,
                taken: true,
                target: Addr(0x9000),
            },
        };
        assert_eq!(op.next_pc(), Addr(0x9000));
    }

    #[test]
    fn next_pc_falls_through_not_taken_branch() {
        let op = TraceOp {
            pc: Addr(100),
            kind: OpKind::Cti {
                class: CtiClass::CondBranch,
                taken: false,
                target: Addr(0x9000),
            },
        };
        assert_eq!(op.next_pc(), Addr(104));
    }

    #[test]
    fn class_groupings_match_paper() {
        assert!(CtiClass::Call.is_call_class());
        assert!(CtiClass::Jump.is_call_class());
        assert!(CtiClass::Return.is_call_class());
        assert!(!CtiClass::CondBranch.is_call_class());
        assert!(CtiClass::CondBranch.is_branch_class());
        assert!(CtiClass::UncondBranch.is_branch_class());
        assert!(!CtiClass::Trap.is_branch_class());
        assert!(!CtiClass::Trap.is_call_class());
    }
}
